//! Cross-crate integration tests for the unified execution layer: the same
//! communicator-generic RELAX/ROUND code must produce consistent results
//! whether it runs on [`firal::comm::SelfComm`] (`p = 1`, collectives are
//! no-ops), on the real multi-threaded [`firal::comm::ThreadComm`] runtime,
//! or on the TCP-mesh [`firal::comm::SocketComm`] backend, at any rank
//! count — in both precisions.

use firal::comm::{
    launch, launch_backend, socket_launch, Backend, CommScalar, Communicator, ReduceOp, SelfComm,
};
use firal::core::parallel::{
    parallel_approx_firal, parallel_approx_firal_grouped, parallel_select_by_name,
};
use firal::core::{
    strategy_by_name, EigSolver, Executor, FiralConfig, RelaxConfig, SelectionProblem,
    ShardedProblem,
};
use firal::data::SyntheticConfig;
use firal::linalg::Scalar;
use firal::logreg::LogisticRegression;

fn problem<T: Scalar>(seed: u64, n: usize, d: usize, c: usize) -> SelectionProblem<T> {
    let ds = SyntheticConfig::new(c, d)
        .with_pool_size(n)
        .with_initial_per_class(2)
        .with_seed(seed)
        .generate::<T>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        c,
    )
}

/// The consistency matrix of the unified path: for each rank count and
/// each multi-rank backend (shared-memory ThreadComm and TCP SocketComm),
/// the run must select the identical batch as the SelfComm reference and
/// reproduce its per-iteration RELAX objective series within `obj_tol`
/// (relative) — floating-point partial sums are the only permitted
/// difference between the runs.
fn consistency_matrix_case<T: CommScalar>(seed: u64, obj_tol: f64) {
    let p: SelectionProblem<T> = problem(seed, 48, 4, 3);
    let budget = 5;
    let eta = T::from_f64(6.0) * T::from_usize(p.ehat()).sqrt();
    let cfg = RelaxConfig {
        seed: 11,
        md: firal::core::MirrorDescentConfig {
            max_iters: 8,
            ..Default::default()
        },
        ..Default::default()
    };

    // p = 1 reference: the SelfComm instantiation of the same code.
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(&p);
    let exec = Executor::serial(&comm, &shard);
    let ref_relax = exec.relax(budget, &cfg);
    let ref_round = exec.round(&ref_relax.z_local, budget, eta, EigSolver::Exact);
    let ref_obj: Vec<f64> = ref_relax
        .telemetry
        .objective_history
        .iter()
        .map(|v| v.to_f64())
        .collect();

    let rank_body = |comm: &dyn Communicator| {
        let shard = ShardedProblem::shard(&p, comm.rank(), comm.size());
        let exec = Executor::new(comm, &shard);
        let relax = exec.relax(budget, &cfg);
        let round = exec.round(&relax.z_local, budget, eta, EigSolver::Exact);
        let obj: Vec<f64> = relax
            .telemetry
            .objective_history
            .iter()
            .map(|v| v.to_f64())
            .collect();
        (round.selected, obj)
    };

    // Both multi-rank backends against the same SelfComm reference: the
    // shared-memory transport at p ∈ {2, 4, 7} and the TCP socket mesh at
    // p ∈ {2, 4}.
    for (backend, rank_counts) in [
        (Backend::Thread, &[2usize, 4, 7][..]),
        (Backend::Socket, &[2usize, 4][..]),
    ] {
        for &procs in rank_counts {
            let results = launch_backend(backend, procs, rank_body);

            for (rank, (selected, obj)) in results.iter().enumerate() {
                assert_eq!(
                    selected, &ref_round.selected,
                    "{backend:?} p={procs} rank {rank}: selection diverged from the SelfComm reference"
                );
                assert_eq!(
                    obj.len(),
                    ref_obj.len(),
                    "{backend:?} p={procs} rank {rank}: RELAX iteration counts diverged"
                );
                for (t, (a, b)) in obj.iter().zip(ref_obj.iter()).enumerate() {
                    assert!(
                        (a - b).abs() <= obj_tol * b.abs().max(1e-9),
                        "{backend:?} p={procs} rank {rank}: objective at iteration {t} drifted: {a} vs {b}"
                    );
                }
            }
            // And all ranks agree bitwise among themselves.
            for (selected, obj) in &results[1..] {
                assert_eq!(selected, &results[0].0);
                assert_eq!(obj, &results[0].1);
            }
        }
    }
}

#[test]
fn consistency_matrix_f64() {
    consistency_matrix_case::<f64>(21, 1e-9);
}

#[test]
fn consistency_matrix_f32() {
    // f32 partial sums differ across shard boundaries; the objective series
    // tolerance is correspondingly looser, but the selected batch must
    // still be identical.
    consistency_matrix_case::<f32>(22, 5e-3);
}

/// The backend × strategy consistency matrix for the executor-generic
/// selection strategies, mirroring the Approx-FIRAL rows above: the
/// distributed selection must be **bitwise identical** to the serial
/// SelfComm selection (the `p = 1` instantiation of the same
/// `DistStrategy` code) on both multi-rank backends at p ∈ {1, 2, 4} and
/// at kernel-pool sizes threads ∈ {1, 4}, and all ranks must agree among
/// themselves. For UPAL every decision is made from replicated state
/// (Allgathered scores in global order + owner-Bcast rows), so the
/// invariance is by construction; for Bayes-Batch the pool target `t`
/// crosses shard boundaries through an Allreduce, making this matrix the
/// pin that the Frank–Wolfe argmaxes absorb the last-ulp drift exactly
/// like ROUND's MAXLOC does.
fn strategy_matrix_case(name: &str) {
    let p: SelectionProblem<f64> = problem(51, 48, 4, 3);
    let budget = 5;
    let seed = 9;
    let serial = strategy_by_name::<f64>(name)
        .unwrap()
        .select(&p, budget, seed)
        .unwrap();
    assert_eq!(serial.len(), budget);
    for backend in [Backend::Thread, Backend::Socket] {
        for procs in [1usize, 2, 4] {
            for threads in [1usize, 4] {
                let prob = p.clone();
                let results = launch_backend(backend, procs, move |comm| {
                    parallel_select_by_name(comm, &prob, name, budget, seed, threads)
                        .unwrap()
                        .selected
                });
                for (rank, sel) in results.iter().enumerate() {
                    assert_eq!(
                        sel, &serial,
                        "{name}: {backend:?} p={procs} threads={threads} rank {rank} \
                         diverged from the SelfComm reference"
                    );
                }
            }
        }
    }
}

#[test]
fn strategy_matrix_upal() {
    strategy_matrix_case("upal");
}

#[test]
fn strategy_matrix_bayes_batch() {
    strategy_matrix_case("bayes-batch");
}

/// The intra-rank parallelism determinism matrix: Approx-FIRAL's selected
/// indices AND its RELAX objective series must be **bitwise identical**
/// across kernel-pool sizes (`threads ∈ {ambient, 1, 2, 4}`, where
/// `ambient` = 0 inherits the `FIRAL_NUM_THREADS`-sized global pool — CI
/// re-runs this test under `FIRAL_NUM_THREADS=1` and `=4`) at every
/// ThreadComm rank count `p ∈ {1, 2}`. This is the contract
/// `firal_linalg::gemm` documents: chunk boundaries are shape-derived and
/// partial sums combine in chunk order, so the thread axis never perturbs
/// floating point. (Across the *rank* axis the selection stays identical
/// while objective bits may differ at shard boundaries — that axis is
/// covered by `consistency_matrix_*` above.)
#[test]
fn thread_determinism_matrix() {
    // Shape chosen so the dense kernels cross firal_linalg's parallel
    // threshold — the pool genuinely engages instead of taking the
    // sequential small-shape fallback.
    let p: SelectionProblem<f64> = problem(31, 768, 16, 4);
    let budget = 4;
    let eta = 4.0 * (p.ehat() as f64).sqrt();
    let cfg = RelaxConfig {
        seed: 13,
        md: firal::core::MirrorDescentConfig {
            max_iters: 3,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut selection_ref: Option<Vec<usize>> = None;
    for ranks in [1usize, 2] {
        let mut cell_ref: Option<(Vec<usize>, Vec<u64>)> = None;
        for threads in [0usize, 1, 2, 4] {
            let prob = p.clone();
            let config = cfg;
            let results = launch(ranks, move |comm| {
                let shard = ShardedProblem::shard(&prob, comm.rank(), comm.size());
                let exec = Executor::new(comm, &shard).with_threads(threads);
                let relax = exec.relax(budget, &config);
                let round = exec.round(&relax.z_local, budget, eta, EigSolver::Exact);
                let obj_bits: Vec<u64> = relax
                    .telemetry
                    .objective_history
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                (round.selected, obj_bits)
            });
            for cell in &results[1..] {
                assert_eq!(cell, &results[0], "p={ranks} t={threads}: ranks disagreed");
            }
            match &cell_ref {
                None => cell_ref = Some(results[0].clone()),
                Some((sel, bits)) => {
                    assert_eq!(
                        &results[0].0, sel,
                        "p={ranks} t={threads}: selection changed with thread count"
                    );
                    assert_eq!(
                        &results[0].1, bits,
                        "p={ranks} t={threads}: RELAX objective bits changed with thread count"
                    );
                }
            }
        }
        let (sel, _) = cell_ref.unwrap();
        match &selection_ref {
            None => selection_ref = Some(sel),
            Some(r) => assert_eq!(&sel, r, "p={ranks}: selection diverged across rank counts"),
        }
    }
}

/// Selection + RELAX-objective fingerprint of one full Approx-FIRAL run
/// (SelfComm, ambient threads), shared by the forced-scalar consistency
/// row below. Shape chosen so the dense kernels cross firal_linalg's
/// parallel threshold and genuinely engage the dispatched SIMD paths.
fn simd_fingerprint() -> (Vec<usize>, Vec<u64>) {
    let p: SelectionProblem<f64> = problem(31, 768, 16, 4);
    let budget = 4;
    let eta = 4.0 * (p.ehat() as f64).sqrt();
    let cfg = RelaxConfig {
        seed: 13,
        md: firal::core::MirrorDescentConfig {
            max_iters: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(&p);
    let exec = Executor::serial(&comm, &shard);
    let relax = exec.relax(budget, &cfg);
    let round = exec.round(&relax.z_local, budget, eta, EigSolver::Exact);
    let obj_bits = relax
        .telemetry
        .objective_history
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (round.selected, obj_bits)
}

/// Child half of `simd_off_selection_is_bitwise_identical`: when re-invoked
/// by that test with `FIRAL_SIMD=off` in the environment, print the
/// fingerprint for the parent to parse; a no-op in a normal test run.
/// (The SIMD tier is latched process-wide on first kernel use, so forcing
/// the scalar tier requires a fresh process — flipping a global in-process
/// would race with concurrently running tests.)
#[test]
fn simd_off_child_fingerprint() {
    if std::env::var("FIRAL_SIMD_OFF_CHILD").is_err() {
        return;
    }
    let (sel, bits) = simd_fingerprint();
    let sel: Vec<String> = sel.iter().map(|v| v.to_string()).collect();
    let bits: Vec<String> = bits.iter().map(|v| v.to_string()).collect();
    println!("SIMD_OFF_FINGERPRINT={}|{}", sel.join(","), bits.join(","));
}

/// The `FIRAL_SIMD=off` consistency row: the full Approx-FIRAL selection
/// AND the RELAX objective bits must be identical under forced-scalar
/// kernels and under this process's default dispatch tier — the
/// whole-pipeline instantiation of the canonical-summation-tree contract
/// (`firal_linalg::simd`). The scalar run happens in a child process (same
/// test binary, filtered to the helper above) because the tier latches
/// once per process.
#[test]
fn simd_off_selection_is_bitwise_identical() {
    if std::env::var("FIRAL_SIMD_OFF_CHILD").is_ok() {
        return; // don't recurse when running inside the child
    }
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "simd_off_child_fingerprint",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("FIRAL_SIMD_OFF_CHILD", "1")
        .env("FIRAL_SIMD", "off")
        .output()
        .expect("spawn forced-scalar child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "forced-scalar child failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The harness may print its own `test … ...` prefix on the same line,
    // so locate the marker anywhere in the line.
    const MARKER: &str = "SIMD_OFF_FINGERPRINT=";
    let payload = stdout
        .lines()
        .find_map(|l| l.find(MARKER).map(|i| &l[i + MARKER.len()..]))
        .unwrap_or_else(|| panic!("child printed no fingerprint:\n{stdout}"));
    let (sel_csv, bits_csv) = payload.split_once('|').expect("malformed fingerprint");
    let parse_csv = |s: &str| -> Vec<u64> {
        s.split(',')
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().unwrap())
            .collect()
    };
    let child_sel: Vec<usize> = parse_csv(sel_csv).iter().map(|&v| v as usize).collect();
    let child_bits = parse_csv(bits_csv);

    let (sel, bits) = simd_fingerprint();
    assert_eq!(
        child_sel, sel,
        "forced-scalar selection diverged from the default tier"
    );
    assert_eq!(
        child_bits, bits,
        "forced-scalar RELAX objective bits diverged from the default tier"
    );
}

/// The η-group consistency matrix: the full grouped pipeline (RELAX on
/// each group's p_shard-way partition, then the η grid distributed over
/// p_eta sub-communicator groups) must return the **bitwise identical**
/// (η★, selection) as the serial SelfComm grid sweep at every layout
/// (p_shard, p_eta) ∈ {(1,1), (2,1), (1,2), (2,2)} on both multi-rank
/// backends — and the criterion bits must be invariant along the η-group
/// axis for a fixed group size p_shard (the only permitted float
/// difference across layouts is shard-boundary partial sums along the
/// p_shard axis).
#[test]
fn eta_group_matrix_matches_serial_grid_sweep() {
    let p: SelectionProblem<f64> = problem(41, 36, 4, 3);
    let budget = 5;
    let config = FiralConfig {
        relax: RelaxConfig {
            seed: 17,
            md: firal::core::MirrorDescentConfig {
                max_iters: 6,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };

    // Serial reference: SelfComm RELAX + sequential grid sweep.
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(&p);
    let exec = Executor::serial(&comm, &shard);
    let ref_relax = exec.relax(budget, &config.relax);
    let ref_round = exec.select_eta(&ref_relax.z_local, budget, &config.round.eta_grid);
    let ref_crit = ref_round.criterion.expect("grid sweep records criterion");

    // criterion bits per p_shard: layouts with the same group size must
    // agree exactly, whatever p_eta is.
    let mut crit_bits_by_shard: std::collections::HashMap<usize, u64> = Default::default();
    for (p_shard, p_eta) in [(1usize, 1usize), (2, 1), (1, 2), (2, 2)] {
        let world = p_shard * p_eta;
        for backend in [Backend::Thread, Backend::Socket] {
            let prob = p.clone();
            let mut cfg = config.clone();
            cfg.eta_groups = p_eta;
            let results = launch_backend(backend, world, move |comm| {
                let run = parallel_approx_firal_grouped(comm, &prob, budget, &cfg);
                (
                    run.round.selected,
                    run.round.eta.to_bits(),
                    run.round.criterion.unwrap().to_bits(),
                    run.group,
                    run.geometry,
                )
            });
            for (rank, (selected, eta_bits, crit_bits, group, geometry)) in
                results.iter().enumerate()
            {
                assert_eq!((geometry.p_shard, geometry.p_eta), (p_shard, p_eta));
                assert_eq!(*group, rank / p_shard);
                assert_eq!(
                    selected, &ref_round.selected,
                    "{backend:?} ({p_shard}x{p_eta}) rank {rank}: selection diverged from serial"
                );
                assert_eq!(
                    *eta_bits,
                    ref_round.eta.to_bits(),
                    "{backend:?} ({p_shard}x{p_eta}) rank {rank}: η★ bits diverged from serial"
                );
                match crit_bits_by_shard.get(&p_shard) {
                    None => {
                        crit_bits_by_shard.insert(p_shard, *crit_bits);
                    }
                    Some(&bits) => assert_eq!(
                        *crit_bits, bits,
                        "{backend:?} ({p_shard}x{p_eta}) rank {rank}: criterion bits changed \
                         along the η-group axis"
                    ),
                }
            }
        }
    }
    // p_shard = 1 is exactly the serial computation: same criterion bits.
    assert_eq!(crit_bits_by_shard[&1], ref_crit.to_bits());
}

/// The streaming-state consistency row: one fixed update sequence committed
/// through [`StreamingState`] (including a refactor boundary — interval 3
/// over 3 batches) must leave every rank of every backend with the
/// **bitwise-identical** replicated fingerprint (`Σ⋄`, `B(H_o)`, factors) at
/// a fixed rank count, fingerprints must agree **across backends** at that
/// rank count, and the post-stream selection must equal the SelfComm
/// reference at every rank count — the streaming instantiation of the
/// repo-wide shard convention (selections invariant across `p`, partial-sum
/// bits only pinned within a fixed `p`).
#[test]
fn streaming_state_consistency_row() {
    use firal::core::{FiralConfig as FC, PoolUpdate, StreamingState};

    let p: SelectionProblem<f64> = problem(61, 40, 4, 3);
    let weights: Vec<f64> = (0..p.pool_size())
        .map(|i| 0.04 + 0.01 * (i % 5) as f64)
        .collect();
    let cfg = FC {
        refactor_interval: 3,
        ..Default::default()
    };
    let budget = 4;
    // Initial points carry ids 0..40; the batch-0 Add mints id 40, which
    // batch 2 then removes — exercising add/label/remove plus the refactor
    // boundary on the final commit.
    let updates: Vec<Vec<PoolUpdate<f64>>> = vec![
        vec![
            PoolUpdate::Add {
                x: vec![0.2, -0.1, 0.4, 0.05],
                h: vec![0.3, 0.2],
                weight: 0.06,
            },
            PoolUpdate::Label { id: 5 },
        ],
        vec![PoolUpdate::Remove { id: 11 }, PoolUpdate::Remove { id: 2 }],
        vec![
            PoolUpdate::Add {
                x: vec![-0.3, 0.2, 0.1, 0.3],
                h: vec![0.25, 0.25],
                weight: 0.05,
            },
            PoolUpdate::Label { id: 7 },
            PoolUpdate::Remove { id: 40 },
        ],
    ];

    let rank_body = {
        let (p, weights, cfg, updates) = (p.clone(), weights.clone(), cfg.clone(), updates.clone());
        move |comm: &dyn Communicator| -> (u64, bool, Vec<usize>) {
            let mut st = StreamingState::new(comm, &p, &weights, &cfg);
            let mut refactored = false;
            for batch in &updates {
                refactored = st.commit(comm, batch).refactored;
            }
            let eta = 6.0 * (p.ehat() as f64).sqrt();
            let run = st.select(comm, budget, eta, EigSolver::Exact);
            (st.fingerprint(), refactored, run.selected)
        }
    };

    // p = 1 reference: the SelfComm instantiation of the same sequence.
    let (ref_fp, ref_refactored, ref_sel) = rank_body(&SelfComm::new());
    assert!(
        ref_refactored,
        "third commit must hit the interval-3 boundary"
    );
    assert_eq!(ref_sel.len(), budget);

    for (backend, rank_counts) in [
        (Backend::Thread, &[2usize, 4][..]),
        (Backend::Socket, &[2usize][..]),
    ] {
        for &procs in rank_counts {
            let results = launch_backend(backend, procs, rank_body.clone());
            for (rank, (fp, refactored, selected)) in results.iter().enumerate() {
                assert!(refactored, "{backend:?} p={procs} rank {rank}: no refactor");
                assert_eq!(
                    selected, &ref_sel,
                    "{backend:?} p={procs} rank {rank}: streaming selection diverged \
                     from the SelfComm reference"
                );
                assert_eq!(
                    *fp, results[0].0,
                    "{backend:?} p={procs} rank {rank}: fingerprint diverged across ranks"
                );
            }
            // Fixed p: the fingerprint is backend-invariant, so the thread
            // p=2 cell doubles as the socket p=2 expectation.
            if procs == 2 {
                let thread_fp = launch_backend(Backend::Thread, 2, rank_body.clone())[0].0;
                assert_eq!(
                    results[0].0, thread_fp,
                    "{backend:?} p=2: fingerprint diverged across backends"
                );
            }
        }
    }
    // p = 1 on a real backend matches the SelfComm reference bitwise.
    let p1 = launch_backend(Backend::Thread, 1, rank_body.clone());
    assert_eq!(p1[0].0, ref_fp, "thread p=1 fingerprint != SelfComm");
    assert_eq!(p1[0].2, ref_sel);
}

#[test]
fn full_pipeline_rank_invariance() {
    let p: SelectionProblem<f64> = problem(1, 60, 6, 4);
    let eta = 6.0 * (p.ehat() as f64).sqrt();
    let cfg = RelaxConfig {
        seed: 5,
        ..Default::default()
    };
    let mut reference: Option<Vec<usize>> = None;
    for ranks in [1usize, 2, 3, 5] {
        let prob = p.clone();
        let config = cfg;
        let results = launch(ranks, move |comm| {
            parallel_approx_firal(comm, &prob, 8, &config, eta)
        });
        // Identical on every rank.
        for sel in &results[1..] {
            assert_eq!(sel, &results[0], "ranks disagreed at p={ranks}");
        }
        match &reference {
            None => reference = Some(results[0].clone()),
            Some(r) => {
                let overlap = r.iter().filter(|i| results[0].contains(i)).count();
                assert!(
                    overlap >= 7,
                    "p={ranks} selection {:?} drifted from p=1 {:?}",
                    results[0],
                    r
                );
            }
        }
    }
}

#[test]
fn relax_weights_sum_to_budget_across_ranks() {
    let p: SelectionProblem<f64> = problem(2, 45, 6, 4);
    for ranks in [2usize, 3] {
        let prob = p.clone();
        let results = launch(ranks, move |comm| {
            let shard = ShardedProblem::shard(&prob, comm.rank(), comm.size());
            let out = Executor::new(comm, &shard).relax(6, &RelaxConfig::default());
            (
                out.z_local.iter().sum::<f64>(),
                out.z_diamond.iter().sum::<f64>(),
            )
        });
        let local_total: f64 = results.iter().map(|(l, _)| l).sum();
        assert!(
            (local_total - 6.0).abs() < 1e-8,
            "locals sum to {local_total}"
        );
        for (_, global) in &results {
            assert!((global - 6.0).abs() < 1e-8, "global sums to {global}");
        }
    }
}

/// A mixed sequence of collectives with data dependencies, shared by the
/// thread- and socket-backend composition tests below so the cross-backend
/// equality assertion always compares the identical workload.
fn mixed_collectives_body(comm: &dyn Communicator) -> f64 {
    let mut acc = 0.0f64;
    for round in 0..20 {
        let mut v = vec![(comm.rank() * (round + 1)) as f64; 8];
        comm.allreduce_f64(&mut v, ReduceOp::Sum);
        let gathered = comm.allgatherv_f64(&v[..1]);
        let mut top = vec![gathered.iter().sum::<f64>()];
        comm.bcast_f64(&mut top, round % 4);
        let (mx, who) = comm.allreduce_maxloc(top[0] + comm.rank() as f64, comm.rank() as u64);
        assert_eq!(who, 3, "max always at the highest rank");
        acc += mx;
    }
    acc
}

#[test]
fn collectives_compose_under_load() {
    // Exercises slot reuse and barrier correctness under the real thread
    // runtime.
    let results = launch(4, |comm| mixed_collectives_body(comm));
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn collectives_compose_under_load_socket() {
    // The same sequence over the TCP mesh: exercises the hub reduction,
    // direct-mesh bcast, and wire framing under data dependencies, and
    // must agree with the ThreadComm backend exactly (both implement the
    // rank-ordered reduction contract).
    let socket = socket_launch(4, |comm| mixed_collectives_body(comm));
    let thread = launch(4, |comm| mixed_collectives_body(comm));
    for r in &socket[1..] {
        assert_eq!(r, &socket[0]);
    }
    assert_eq!(socket, thread);
}

#[test]
fn sharded_problem_covers_pool_for_odd_sizes() {
    let p: SelectionProblem<f64> = problem(3, 53, 6, 4); // deliberately not divisible
    for ranks in [2usize, 3, 7] {
        let total: usize = (0..ranks)
            .map(|r| ShardedProblem::shard(&p, r, ranks).local_n())
            .sum();
        assert_eq!(total, 53);
    }
}
