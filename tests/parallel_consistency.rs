//! Cross-crate integration tests for the SPMD implementation: the
//! distributed RELAX/ROUND must agree with the serial solvers for every
//! rank count, and the collectives must compose correctly under the real
//! multi-threaded runtime.

use firal::comm::{launch, Communicator, ReduceOp};
use firal::core::parallel::{parallel_approx_firal, parallel_relax, ShardedProblem};
use firal::core::{RelaxConfig, SelectionProblem};
use firal::data::SyntheticConfig;
use firal::logreg::LogisticRegression;

fn problem(seed: u64, n: usize) -> SelectionProblem<f64> {
    let ds = SyntheticConfig::new(4, 6)
        .with_pool_size(n)
        .with_initial_per_class(2)
        .with_seed(seed)
        .generate::<f64>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        4,
    )
}

#[test]
fn full_pipeline_rank_invariance() {
    let p = problem(1, 60);
    let eta = 6.0 * (p.ehat() as f64).sqrt();
    let cfg = RelaxConfig {
        seed: 5,
        ..Default::default()
    };
    let mut reference: Option<Vec<usize>> = None;
    for ranks in [1usize, 2, 3, 5] {
        let prob = p.clone();
        let config = cfg;
        let results = launch(ranks, move |comm| {
            parallel_approx_firal(comm, &prob, 8, &config, eta)
        });
        // Identical on every rank.
        for sel in &results[1..] {
            assert_eq!(sel, &results[0], "ranks disagreed at p={ranks}");
        }
        match &reference {
            None => reference = Some(results[0].clone()),
            Some(r) => {
                let overlap = r.iter().filter(|i| results[0].contains(i)).count();
                assert!(
                    overlap >= 7,
                    "p={ranks} selection {:?} drifted from p=1 {:?}",
                    results[0],
                    r
                );
            }
        }
    }
}

#[test]
fn relax_weights_sum_to_budget_across_ranks() {
    let p = problem(2, 45);
    for ranks in [2usize, 3] {
        let prob = p.clone();
        let results = launch(ranks, move |comm| {
            let shard = ShardedProblem::shard(&prob, comm.rank(), comm.size());
            let out = parallel_relax(comm, &shard, 6, &RelaxConfig::default());
            (out.z_local.iter().sum::<f64>(), out.z_diamond.iter().sum::<f64>())
        });
        let local_total: f64 = results.iter().map(|(l, _)| l).sum();
        assert!((local_total - 6.0).abs() < 1e-8, "locals sum to {local_total}");
        for (_, global) in &results {
            assert!((global - 6.0).abs() < 1e-8, "global sums to {global}");
        }
    }
}

#[test]
fn collectives_compose_under_load() {
    // A mixed sequence of collectives with data dependencies — exercises
    // slot reuse and barrier correctness under the real thread runtime.
    let results = launch(4, |comm| {
        let mut acc = 0.0f64;
        for round in 0..20 {
            let mut v = vec![(comm.rank() * (round + 1)) as f64; 8];
            comm.allreduce_f64(&mut v, ReduceOp::Sum);
            let gathered = comm.allgatherv_f64(&v[..1]);
            let mut top = vec![gathered.iter().sum::<f64>()];
            comm.bcast_f64(&mut top, round % 4);
            let (mx, who) = comm.allreduce_maxloc(top[0] + comm.rank() as f64, comm.rank() as u64);
            assert_eq!(who, 3, "max always at the highest rank");
            acc += mx;
        }
        acc
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn sharded_problem_covers_pool_for_odd_sizes() {
    let p = problem(3, 53); // deliberately not divisible
    for ranks in [2usize, 3, 7] {
        let total: usize = (0..ranks)
            .map(|r| ShardedProblem::shard(&p, r, ranks).local_n())
            .sum();
        assert_eq!(total, 53);
    }
}
