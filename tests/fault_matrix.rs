//! Deterministic fault-injection matrix over real process meshes.
//!
//! This binary is both the parent (the `#[test]` that sweeps the fault
//! matrix) and the SPMD child: the parent re-executes its own test
//! executable with `--exact fault_matrix_child_entry` and the
//! `FIRAL_SPMD_*` coordinates set, so each scenario runs on a genuine
//! 4-process TCP mesh — the same transport `spmd_launch` uses — with a
//! fault injected from [`firal::comm::FAULT_ENV`].
//!
//! The contract pinned here is the PR's acceptance criterion: killing,
//! stalling, or disconnecting any single rank mid-RELAX, mid-ROUND, or
//! mid-rendezvous leaves **zero** deadlocked or orphaned processes, and
//! every survivor exits through the structured [`firal::comm::CommError`]
//! path (exit code 42 below) within the configured deadline — never a
//! hang and never an uncontrolled panic. The fault-free probe run pins
//! the flip side: with no fault, the fallible path selects bitwise the
//! same batch as the `SelfComm` serial reference.
//!
//! Child exit-code protocol:
//!   0   — workload completed (fault-free probe)
//!   41  — rendezvous failed with a structured error (mid-rendezvous kills)
//!   42  — a collective failed with a structured `CommError`
//!   113 — `KILL_EXIT_CODE`: the injected `kill:` fault fired on this rank

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use firal::comm::fault::KILL_EXIT_CODE;
use firal::comm::socket_comm::{ENV_ADDR, ENV_RANK, ENV_SIZE};
use firal::comm::{
    free_rendezvous_addr, Communicator, SelfComm, SocketComm, COMM_TIMEOUT_ENV, FAULT_ENV,
    RENDEZVOUS_TIMEOUT_ENV, VERIFY_ENV,
};
use firal::core::{
    EigSolver, Executor, MirrorDescentConfig, RelaxConfig, SelectionProblem, ShardedProblem,
};
use firal::data::SyntheticConfig;
use firal::logreg::LogisticRegression;

const BUDGET: usize = 5;
/// Per-frame read deadline for fault scenarios (ms): short enough that a
/// stalled peer is detected quickly, long enough that debug-build compute
/// phases between collectives never trip it.
const DEADLINE_MS: u64 = 700;
/// The stall injected in the stall scenario must exceed the deadline.
const STALL_MS: u64 = 2500;
/// Rendezvous deadline for the mid-rendezvous kill scenario (ms).
const RENDEZVOUS_MS: u64 = 2000;
/// Hard per-scenario bound: if any child is still alive after this, the
/// mesh deadlocked — kill the stragglers and fail the test.
const SCENARIO_CAP: Duration = Duration::from_secs(45);

const CODE_RENDEZVOUS_FAILED: i32 = 41;
const CODE_COMM_ERROR: i32 = 42;

fn problem(seed: u64) -> SelectionProblem<f64> {
    let ds = SyntheticConfig::new(3, 4)
        .with_pool_size(48)
        .with_initial_per_class(2)
        .with_seed(seed)
        .generate::<f64>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        3,
    )
}

fn relax_config() -> RelaxConfig<f64> {
    RelaxConfig {
        seed: 11,
        md: MirrorDescentConfig {
            max_iters: 8,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The SPMD child body: join the mesh from env coordinates, arm the panic
/// abort hook, run RELAX + ROUND through the fallible executor entry
/// points, and translate every outcome into the exit-code protocol.
fn child_main() -> i32 {
    let comm = match SocketComm::from_env() {
        Some(Ok(c)) => c,
        Some(Err(e)) => {
            eprintln!("fault-matrix child: rendezvous failed: {e}");
            return CODE_RENDEZVOUS_FAILED;
        }
        None => unreachable!("child entry runs only with {ENV_RANK} set"),
    };
    comm.install_panic_abort();

    let p = problem(7);
    let eta = 6.0 * (p.ehat() as f64).sqrt();
    let shard = ShardedProblem::shard(&p, comm.rank(), comm.size());
    let exec = Executor::new(&comm, &shard);

    let relax = match exec.try_relax(BUDGET, &relax_config()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rank {}: RELAX failed: {e}", comm.rank());
            return CODE_COMM_ERROR;
        }
    };
    let relax_seq = comm.collective_seq();
    let round = match exec.try_round(&relax.z_local, BUDGET, eta, EigSolver::Exact) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rank {}: ROUND failed: {e}", comm.rank());
            return CODE_COMM_ERROR;
        }
    };
    let total_seq = comm.collective_seq();
    if comm.rank() == 0 {
        let sel: Vec<String> = round.selected.iter().map(|i| i.to_string()).collect();
        println!(
            "FAULT_MATRIX relax_seq={relax_seq} total_seq={total_seq} selected={}",
            sel.join(",")
        );
    }
    0
}

/// Not a test of this process: the SPMD re-exec target. Returns
/// immediately in ordinary `cargo test` runs (no rank coordinates set).
#[test]
fn fault_matrix_child_entry() {
    if std::env::var(ENV_RANK).is_err() {
        return;
    }
    std::process::exit(child_main());
}

struct ChildResult {
    code: i32,
    stdout: String,
    stderr: String,
}

struct Scenario<'a> {
    name: &'a str,
    /// `FIRAL_FAULT` spec, or `None` for the fault-free probe.
    fault: Option<String>,
    rendezvous_ms: u64,
    /// Expected exit code per rank.
    expect: Vec<i32>,
}

/// Spawn a `size`-rank mesh of this test binary and supervise it: poll
/// with a hard cap, kill and reap any straggler (that is the deadlock
/// detector), and return each rank's exit code and captured output.
fn run_mesh(size: usize, fault: Option<&str>, rendezvous_ms: u64) -> Vec<ChildResult> {
    let exe = std::env::current_exe().expect("test executable path");
    let addr = free_rendezvous_addr().expect("free rendezvous port");
    let mut children: Vec<Option<Child>> = (0..size)
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.arg("fault_matrix_child_entry")
                .arg("--exact")
                .arg("--test-threads=1")
                .arg("--nocapture")
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, size.to_string())
                .env(ENV_ADDR, &addr)
                .env(VERIFY_ENV, "1")
                .env(COMM_TIMEOUT_ENV, DEADLINE_MS.to_string())
                .env(RENDEZVOUS_TIMEOUT_ENV, rendezvous_ms.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            match fault {
                Some(spec) => cmd.env(FAULT_ENV, spec),
                None => cmd.env_remove(FAULT_ENV),
            };
            Some(cmd.spawn().expect("spawn fault-matrix child"))
        })
        .collect();

    let start = Instant::now();
    let mut codes = vec![None; size];
    loop {
        let mut alive = 0;
        for (rank, slot) in children.iter_mut().enumerate() {
            let Some(child) = slot else { continue };
            match child.try_wait().expect("try_wait") {
                Some(status) => codes[rank] = Some(status.code().unwrap_or(-1)),
                None => {
                    alive += 1;
                    continue;
                }
            }
        }
        if alive == 0 {
            break;
        }
        if start.elapsed() > SCENARIO_CAP {
            // Deadlock: reap everything so no orphan outlives the test,
            // then fail below on the sentinel code.
            for (rank, slot) in children.iter_mut().enumerate() {
                let Some(child) = slot else { continue };
                if codes[rank].is_none() {
                    let _ = child.kill();
                    let _ = child.wait();
                    codes[rank] = Some(-99);
                }
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    children
        .iter_mut()
        .enumerate()
        .map(|(rank, slot)| {
            let mut child = slot.take().expect("child present");
            let mut stdout = String::new();
            let mut stderr = String::new();
            if let Some(mut s) = child.stdout.take() {
                let _ = s.read_to_string(&mut stdout);
            }
            if let Some(mut s) = child.stderr.take() {
                let _ = s.read_to_string(&mut stderr);
            }
            // Already reaped above; this wait is a no-op safety net.
            let _ = child.wait();
            ChildResult {
                code: codes[rank].expect("exit code recorded"),
                stdout,
                stderr,
            }
        })
        .collect()
}

fn dump(name: &str, results: &[ChildResult]) -> String {
    let mut out = format!("scenario {name}:\n");
    for (rank, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  rank {rank}: exit {}\n    stdout: {}\n    stderr: {}\n",
            r.code,
            r.stdout.trim().replace('\n', "\n            "),
            r.stderr.trim().replace('\n', "\n            "),
        ));
    }
    out
}

/// The serial `SelfComm` reference for the probe's selection: the
/// fault-free fallible path must match it bitwise.
fn serial_selection() -> Vec<usize> {
    let p = problem(7);
    let eta = 6.0 * (p.ehat() as f64).sqrt();
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(&p);
    let exec = Executor::serial(&comm, &shard);
    let relax = exec.relax(BUDGET, &relax_config());
    exec.round(&relax.z_local, BUDGET, eta, EigSolver::Exact)
        .selected
}

#[test]
fn fault_matrix_survivors_return_structured_errors_with_no_orphans() {
    const P: usize = 4;

    // --- Probe: fault-free run with deadlines + verification ON. ---
    // Yields the schedule coordinates (per-rank collective sequence
    // numbers) the fault specs below address, and pins that the fallible
    // path with a read deadline configured stays bitwise identical to the
    // serial reference.
    let probe = run_mesh(P, None, 15_000);
    for (rank, r) in probe.iter().enumerate() {
        assert_eq!(r.code, 0, "probe rank {rank}\n{}", dump("probe", &probe));
    }
    // The marker may share a line with libtest's `test ... ` progress
    // prefix (the child harness prints it without a trailing newline).
    let marker = probe[0]
        .stdout
        .lines()
        .find_map(|l| l.find("FAULT_MATRIX ").map(|at| &l[at..]))
        .unwrap_or_else(|| panic!("probe rank 0 printed no marker\n{}", dump("probe", &probe)));
    let field = |key: &str| -> String {
        marker
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("marker missing {key}: {marker}"))
            .to_string()
    };
    let relax_seq: u64 = field("relax_seq").parse().expect("relax_seq");
    let total_seq: u64 = field("total_seq").parse().expect("total_seq");
    let selected: Vec<usize> = field("selected")
        .split(',')
        .map(|s| s.parse().expect("selected index"))
        .collect();
    assert_eq!(
        selected,
        serial_selection(),
        "fault-free fallible path diverged from the SelfComm reference"
    );
    // The schedule must be deep enough for a mid-RELAX and a mid-ROUND
    // coordinate to exist.
    assert!(relax_seq > 2, "RELAX ran only {relax_seq} collectives");
    assert!(
        total_seq > relax_seq + 1,
        "ROUND ran only {} collectives",
        total_seq - relax_seq
    );
    let mid_relax = 2;
    let mid_round = relax_seq + 1;

    // --- The matrix. ---
    let mut scenarios: Vec<Scenario> = Vec::new();
    // Killing *any* single rank mid-ROUND: victim exits with the injected
    // kill code, every survivor returns a CommError within the deadline.
    for victim in 0..P {
        let mut expect = vec![CODE_COMM_ERROR; P];
        expect[victim] = KILL_EXIT_CODE;
        scenarios.push(Scenario {
            name: "kill mid-round",
            fault: Some(format!("kill:rank={victim},op={mid_round}")),
            rendezvous_ms: 15_000,
            expect,
        });
    }
    // Kill mid-RELAX.
    {
        let mut expect = vec![CODE_COMM_ERROR; P];
        expect[1] = KILL_EXIT_CODE;
        scenarios.push(Scenario {
            name: "kill mid-relax",
            fault: Some(format!("kill:rank=1,op={mid_relax}")),
            rendezvous_ms: 15_000,
            expect,
        });
    }
    // Stall past the deadline: the stalled rank is not killed, so the
    // survivors' DeadlineExceeded aborts the group and the stalled rank
    // itself then fails on the dead mesh — all four exit structured.
    scenarios.push(Scenario {
        name: "stall past deadline mid-round",
        fault: Some(format!("stall:rank=2,op={mid_round},ms={STALL_MS}")),
        rendezvous_ms: 15_000,
        expect: vec![CODE_COMM_ERROR; P],
    });
    // Severed connections: the dropping rank's own collectives fail too.
    scenarios.push(Scenario {
        name: "drop-conn mid-round",
        fault: Some(format!("drop-conn:rank=3,op={mid_round}")),
        rendezvous_ms: 15_000,
        expect: vec![CODE_COMM_ERROR; P],
    });
    // Mid-rendezvous kill: no mesh exists yet, so the survivors fail the
    // rendezvous itself — bounded by the rendezvous deadline, not the
    // (unset-able) collective deadline.
    {
        let mut expect = vec![CODE_RENDEZVOUS_FAILED; P];
        expect[3] = KILL_EXIT_CODE;
        scenarios.push(Scenario {
            name: "kill mid-rendezvous",
            fault: Some("kill:rank=3".to_string()),
            rendezvous_ms: RENDEZVOUS_MS,
            expect,
        });
    }

    for sc in &scenarios {
        let started = Instant::now();
        let results = run_mesh(P, sc.fault.as_deref(), sc.rendezvous_ms);
        let elapsed = started.elapsed();
        let codes: Vec<i32> = results.iter().map(|r| r.code).collect();
        assert!(
            !codes.contains(&-99),
            "deadlocked children had to be reaped\n{}",
            dump(sc.name, &results)
        );
        assert_eq!(
            codes,
            sc.expect,
            "({} | fault {:?}, took {elapsed:?})\n{}",
            sc.name,
            sc.fault,
            dump(sc.name, &results)
        );
        // Every structured failure carries a CommError rendering, not a
        // bare abort: the child prints it before choosing its exit code.
        for (rank, r) in results.iter().enumerate() {
            if r.code == CODE_COMM_ERROR {
                assert!(
                    r.stderr.contains("failed"),
                    "{}: rank {rank} exited 42 without a diagnostic\n{}",
                    sc.name,
                    dump(sc.name, &results)
                );
            }
        }
    }
}
