//! Soak test: the streaming round state over a real 4-process TCP mesh.
//!
//! Like `serve_soak`, this binary is both the parent and the SPMD child:
//! the parent re-executes itself with `--exact stream_soak_child_entry`
//! and the `FIRAL_SPMD_*` coordinates set, so the streaming state advances
//! on a genuine 4-process `SocketComm` mesh with schedule verification
//! (`FIRAL_COMM_VERIFY=1`) and read deadlines armed. Every rank commits
//! the identical scripted sequence of interleaved add/label/remove batches
//! with periodic selections, crossing the `refactor_interval` boundary
//! twice.
//!
//! The contract pinned here is the streaming tentpole's acceptance
//! criterion:
//!
//! 1. each rank's replicated-state **fingerprint** (`Σ⋄`, `B(H_o)`, every
//!    Cholesky factor) is bitwise identical across all 4 ranks after every
//!    phase — the delta-Allreduce and the canonical factor sweeps never
//!    let replicas diverge;
//! 2. after the final refactor the state is **bitwise equal to a
//!    from-scratch rebuild** of the same registry (`Σ⋄` and `B(H_o)`
//!    compared block-by-block against a fresh `StreamingState` built from
//!    the materialized pool), and `factor_drift` is at rounding level;
//! 3. interleaved selections agree across ranks (the parent diffs the
//!    per-rank markers), and all 4 ranks exit 0 with no stragglers.

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use firal::comm::socket_comm::{ENV_ADDR, ENV_RANK, ENV_SIZE};
use firal::comm::{
    free_rendezvous_addr, Communicator, SocketComm, COMM_TIMEOUT_ENV, FAULT_ENV,
    RENDEZVOUS_TIMEOUT_ENV, VERIFY_ENV,
};
use firal::core::{EigSolver, FiralConfig, PoolUpdate, SelectionProblem, StreamingState};
use firal::data::SyntheticConfig;
use firal::logreg::LogisticRegression;

const P: usize = 4;
const ROUNDS: usize = 10;
const REFACTOR_INTERVAL: usize = 4;
const DEADLINE_MS: u64 = 5000;
const SUPERVISE_CAP: Duration = Duration::from_secs(120);

const CODE_RENDEZVOUS_FAILED: i32 = 41;
const CODE_CONTRACT: i32 = 43;

fn soak_problem() -> (SelectionProblem<f64>, Vec<f64>) {
    let ds = SyntheticConfig::new(3, 4)
        .with_pool_size(40)
        .with_initial_per_class(2)
        .with_seed(33)
        .generate::<f64>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    let problem = SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        3,
    );
    let weights = (0..problem.pool_size())
        .map(|i| 0.04 + 0.01 * (i % 5) as f64)
        .collect();
    (problem, weights)
}

/// Deterministic update batch for one soak round: one add plus one
/// label/remove of a live point, all derived from the round index and the
/// current (replicated, hence rank-identical) id list.
fn scripted_batch(round: usize, ids: &[u64]) -> Vec<PoolUpdate<f64>> {
    let live = ids.len();
    let mut batch = vec![PoolUpdate::Add {
        x: (0..4)
            .map(|j| 0.05 * ((round * 7 + j * 3) % 11) as f64 - 0.25)
            .collect(),
        h: vec![
            0.2 + 0.03 * (round % 5) as f64,
            0.3 - 0.02 * (round % 4) as f64,
        ],
        weight: 0.04 + 0.005 * (round % 6) as f64,
    }];
    if round.is_multiple_of(2) {
        batch.push(PoolUpdate::Label {
            id: ids[(round * 5 + 3) % live],
        });
    } else {
        batch.push(PoolUpdate::Remove {
            id: ids[(round * 11 + 1) % live],
        });
    }
    batch
}

/// The SPMD child body: advance the streaming state through the scripted
/// soak on the mesh, verifying the refactor and drift contracts locally,
/// and print the fingerprint/selection marker for the parent to diff.
fn child_main() -> i32 {
    let comm = match SocketComm::from_env() {
        Some(Ok(c)) => c,
        Some(Err(e)) => {
            eprintln!("stream-soak child: rendezvous failed: {e}");
            return CODE_RENDEZVOUS_FAILED;
        }
        None => unreachable!("child entry runs only with {ENV_RANK} set"),
    };
    comm.install_panic_abort();

    let (problem, weights) = soak_problem();
    let cfg = FiralConfig {
        refactor_interval: REFACTOR_INTERVAL,
        ..Default::default()
    };
    let mut st = StreamingState::new(&comm, &problem, &weights, &cfg);

    // Shadow id → weight ledger, kept in live insertion order so the final
    // from-scratch rebuild can be driven from outside the crate.
    let mut shadow: Vec<(u64, f64)> = st
        .ids()
        .iter()
        .zip(weights.iter())
        .map(|(&id, &w)| (id, w))
        .collect();
    let mut next_id = st.ids().len() as u64;

    let mut refactors = 0usize;
    let mut fingerprints: Vec<u64> = Vec::new();
    let mut selections: Vec<Vec<usize>> = Vec::new();
    for round in 0..ROUNDS {
        let batch = scripted_batch(round, &st.ids());
        for upd in &batch {
            match upd {
                PoolUpdate::Add { weight, .. } => {
                    shadow.push((next_id, *weight));
                    next_id += 1;
                }
                PoolUpdate::Remove { id } | PoolUpdate::Label { id } => {
                    shadow.retain(|&(pid, _)| pid != *id);
                }
            }
        }
        let commit = st.commit(&comm, &batch);
        if commit.refactored {
            refactors += 1;
        }
        fingerprints.push(st.fingerprint());
        if round % 3 == 2 {
            let eta = 6.0 * (st.live() as f64).sqrt();
            let run = st.select(&comm, 3, eta, EigSolver::Exact);
            selections.push(run.selected);
        }
    }
    if refactors != ROUNDS / REFACTOR_INTERVAL {
        eprintln!(
            "rank {}: expected {} refactor boundaries, saw {refactors}",
            comm.rank(),
            ROUNDS / REFACTOR_INTERVAL
        );
        return CODE_CONTRACT;
    }
    let drift_incremental = st.factor_drift();
    // NaN-safe bound: a poisoned factor must fail too.
    if !drift_incremental.is_finite() || drift_incremental >= 1e-8 {
        eprintln!(
            "rank {}: incremental drift {drift_incremental}",
            comm.rank()
        );
        return CODE_CONTRACT;
    }

    // Refactor, then rebuild the identical registry from scratch through
    // the public construction path: Σ⋄ and B(H_o) must be bitwise equal.
    st.refactor(&comm);
    let full = st.materialize_shard(0, 1);
    let rebuilt_problem = SelectionProblem::new(
        full.local_x.clone(),
        full.local_h.clone(),
        full.labeled_x.clone(),
        full.labeled_h.clone(),
        3,
    );
    let rebuilt_weights: Vec<f64> = shadow.iter().map(|&(_, w)| w).collect();
    let fresh = StreamingState::new(&comm, &rebuilt_problem, &rebuilt_weights, &cfg);
    let (mine, theirs) = (
        st.round_state(comm.rank(), comm.size()),
        fresh.round_state(comm.rank(), comm.size()),
    );
    for k in 0..2 {
        if mine.sigma().block(k).as_slice() != theirs.sigma().block(k).as_slice() {
            eprintln!(
                "rank {}: refactored Σ⋄ block {k} != from-scratch",
                comm.rank()
            );
            return CODE_CONTRACT;
        }
        if mine.bho().block(k).as_slice() != theirs.bho().block(k).as_slice() {
            eprintln!("rank {}: B(H_o) block {k} != from-scratch", comm.rank());
            return CODE_CONTRACT;
        }
    }
    let drift_refactored = st.factor_drift();
    if !drift_refactored.is_finite() || drift_refactored >= 1e-13 {
        eprintln!(
            "rank {}: post-refactor drift {drift_refactored}",
            comm.rank()
        );
        return CODE_CONTRACT;
    }

    let fps: Vec<String> = fingerprints.iter().map(|f| format!("{f:016x}")).collect();
    let sels: Vec<String> = selections
        .iter()
        .map(|s| {
            s.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    println!(
        "STREAM_SOAK live={} labeled={} fps={} sels={}",
        st.live(),
        st.labeled(),
        fps.join(";"),
        sels.join(";")
    );
    0
}

/// Not a test of this process: the SPMD re-exec target. Returns
/// immediately in ordinary `cargo test` runs (no rank coordinates set).
#[test]
fn stream_soak_child_entry() {
    if std::env::var(ENV_RANK).is_err() {
        return;
    }
    std::process::exit(child_main());
}

struct ChildResult {
    code: i32,
    stdout: String,
    stderr: String,
}

/// A spawned mesh whose `Drop` kills every still-running rank, so a
/// failing (panicking) test can never leak orphan processes.
struct Mesh {
    children: Vec<Option<Child>>,
}

impl Mesh {
    fn spawn(size: usize) -> Mesh {
        let exe = std::env::current_exe().expect("test executable path");
        let rendezvous = free_rendezvous_addr().expect("free rendezvous port");
        let children = (0..size)
            .map(|rank| {
                let mut cmd = Command::new(&exe);
                cmd.arg("stream_soak_child_entry")
                    .arg("--exact")
                    .arg("--test-threads=1")
                    .arg("--nocapture")
                    .env(ENV_RANK, rank.to_string())
                    .env(ENV_SIZE, size.to_string())
                    .env(ENV_ADDR, &rendezvous)
                    .env(VERIFY_ENV, "1")
                    .env(COMM_TIMEOUT_ENV, DEADLINE_MS.to_string())
                    .env(RENDEZVOUS_TIMEOUT_ENV, "15000")
                    .env_remove(FAULT_ENV)
                    .stdin(Stdio::null())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::piped());
                Some(cmd.spawn().expect("spawn stream-soak child"))
            })
            .collect();
        Mesh { children }
    }

    /// Wait for every rank with a hard cap; stragglers are killed and
    /// reported with the `-99` sentinel (the orphan/deadlock detector).
    fn supervise(&mut self, cap: Duration) -> Vec<ChildResult> {
        let start = Instant::now();
        let size = self.children.len();
        let mut codes = vec![None; size];
        loop {
            let mut alive = 0;
            for (rank, slot) in self.children.iter_mut().enumerate() {
                let Some(child) = slot else { continue };
                match child.try_wait().expect("try_wait") {
                    Some(status) if codes[rank].is_none() => {
                        codes[rank] = Some(status.code().unwrap_or(-1));
                    }
                    Some(_) => {}
                    None => alive += 1,
                }
            }
            if alive == 0 {
                break;
            }
            if start.elapsed() > cap {
                for (rank, slot) in self.children.iter_mut().enumerate() {
                    let Some(child) = slot else { continue };
                    if codes[rank].is_none() {
                        let _ = child.kill();
                        let _ = child.wait();
                        codes[rank] = Some(-99);
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        self.children
            .iter_mut()
            .enumerate()
            .map(|(rank, slot)| {
                let mut child = slot.take().expect("child present");
                let mut stdout = String::new();
                let mut stderr = String::new();
                if let Some(mut s) = child.stdout.take() {
                    let _ = s.read_to_string(&mut stdout);
                }
                if let Some(mut s) = child.stderr.take() {
                    let _ = s.read_to_string(&mut stderr);
                }
                let _ = child.wait();
                ChildResult {
                    code: codes[rank].expect("exit code recorded"),
                    stdout,
                    stderr,
                }
            })
            .collect()
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        for slot in self.children.iter_mut() {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn dump(results: &[ChildResult]) -> String {
    let mut out = String::new();
    for (rank, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  rank {rank}: exit {}\n    stdout: {}\n    stderr: {}\n",
            r.code,
            r.stdout.trim().replace('\n', "\n            "),
            r.stderr.trim().replace('\n', "\n            "),
        ));
    }
    out
}

#[test]
fn stream_soak_four_process_mesh_stays_bitwise_replicated() {
    let mut mesh = Mesh::spawn(P);
    let results = mesh.supervise(SUPERVISE_CAP);
    let codes: Vec<i32> = results.iter().map(|r| r.code).collect();
    assert!(
        !codes.contains(&-99),
        "stragglers had to be killed\n{}",
        dump(&results)
    );
    assert_eq!(codes, vec![0; P], "\n{}", dump(&results));

    // Every rank printed the same marker: identical per-round fingerprints
    // (bitwise-replicated Σ⋄/B(H_o)/factors) and identical selections.
    let markers: Vec<String> = results
        .iter()
        .enumerate()
        .map(|(rank, r)| {
            r.stdout
                .lines()
                .find_map(|l| l.find("STREAM_SOAK ").map(|at| l[at..].to_string()))
                .unwrap_or_else(|| panic!("rank {rank} printed no marker\n{}", dump(&results)))
        })
        .collect();
    for (rank, marker) in markers.iter().enumerate().skip(1) {
        assert_eq!(
            marker,
            &markers[0],
            "rank {rank} diverged from rank 0\n{}",
            dump(&results)
        );
    }
    assert!(
        markers[0].contains("sels=") && !markers[0].ends_with("sels="),
        "soak must have recorded selections: {}",
        markers[0]
    );
}
