//! The strategy contract, pinned for every registered strategy × seed ×
//! dtype: `select` returns exactly `budget` distinct in-range pool
//! indices, repeat calls with the same seed are bitwise identical, the
//! seed-free strategies ignore the seed entirely, and the `SelectError`
//! edges (zero budget, empty pool, oversized budget) are rejected with
//! their dedicated variants instead of panicking downstream.
//!
//! CI runs this suite under `FIRAL_NUM_THREADS=1` and `=4`: the contract
//! includes bitwise invariance to the ambient kernel-pool size.

use firal::comm::CommScalar;
use firal::core::{strategy_by_name, SelectError, SelectionProblem, STRATEGY_NAMES};
use firal::data::SyntheticConfig;
use firal::linalg::Matrix;
use firal::logreg::LogisticRegression;

fn problem<T: CommScalar>(seed: u64, n: usize) -> SelectionProblem<T> {
    let ds = SyntheticConfig::new(3, 4)
        .with_pool_size(n)
        .with_initial_per_class(2)
        .with_seed(seed)
        .generate::<T>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        3,
    )
}

fn assert_valid(name: &str, sel: &[usize], budget: usize, pool: usize) {
    assert_eq!(sel.len(), budget, "{name}: wrong batch size {sel:?}");
    let mut sorted = sel.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), budget, "{name}: duplicates in {sel:?}");
    assert!(
        sel.iter().all(|&i| i < pool),
        "{name}: out-of-range index in {sel:?}"
    );
}

/// budget-distinct-in-range + bitwise seed stability, for one dtype.
fn contract_case<T: CommScalar>() {
    let pool = 48;
    let budget = 5;
    for problem_seed in [1u64, 2] {
        let p: SelectionProblem<T> = problem(problem_seed, pool);
        for name in STRATEGY_NAMES {
            let s = strategy_by_name::<T>(name).unwrap();
            for seed in [0u64, 7, 1234] {
                let sel = s
                    .select(&p, budget, seed)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_valid(name, &sel, budget, pool);
                // Determinism given (problem, budget, seed): bitwise
                // seed-stable on a repeat call.
                let again = s.select(&p, budget, seed).unwrap();
                assert_eq!(sel, again, "{name}: repeat call with seed {seed} diverged");
            }
        }
    }
}

#[test]
fn contract_f64() {
    contract_case::<f64>();
}

#[test]
fn contract_f32() {
    contract_case::<f32>();
}

#[test]
fn seed_free_strategies_ignore_the_seed() {
    let p: SelectionProblem<f64> = problem(3, 48);
    for name in ["entropy", "exact-firal", "bayes-batch"] {
        let s = strategy_by_name::<f64>(name).unwrap();
        let a = s.select(&p, 5, 1).unwrap();
        let b = s.select(&p, 5, 999).unwrap();
        assert_eq!(a, b, "{name} must be seed-invariant");
    }
}

#[test]
fn stochastic_strategies_respond_to_the_seed() {
    let p: SelectionProblem<f64> = problem(4, 48);
    for name in ["random", "upal"] {
        let s = strategy_by_name::<f64>(name).unwrap();
        let a = s.select(&p, 6, 1).unwrap();
        let b = s.select(&p, 6, 2).unwrap();
        assert_ne!(a, b, "{name}: different seeds should differ (w.h.p.)");
    }
}

#[test]
fn select_error_edges_on_every_strategy() {
    let p: SelectionProblem<f64> = problem(5, 20);
    let empty = SelectionProblem::new(
        Matrix::<f64>::zeros(0, 4),
        Matrix::zeros(0, 2),
        p.labeled_x.clone(),
        p.labeled_h.clone(),
        3,
    );
    for name in STRATEGY_NAMES {
        let s = strategy_by_name::<f64>(name).unwrap();
        assert_eq!(
            s.select(&p, 0, 1),
            Err(SelectError::ZeroBudget),
            "{name}: budget = 0"
        );
        assert_eq!(
            s.select(&empty, 4, 1),
            Err(SelectError::EmptyPool),
            "{name}: empty pool"
        );
        assert_eq!(
            s.select(&p, 21, 1),
            Err(SelectError::BudgetTooLarge {
                budget: 21,
                pool: 20
            }),
            "{name}: oversized budget"
        );
    }
}
