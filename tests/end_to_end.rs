//! Cross-crate integration tests: the full active-learning loop through the
//! public umbrella API, exact-vs-approx agreement, and reproducibility.

use firal::core::{
    run_experiment, run_experiment_named, strategy_by_name, ApproxFiral, ExactFiral,
    RandomStrategy, SelectionProblem, Strategy, STRATEGY_NAMES,
};
use firal::data::{ExperimentPreset, PresetName, SyntheticConfig};
use firal::logreg::{LogisticRegression, TrainConfig};

fn small_dataset(seed: u64) -> firal::data::Dataset<f64> {
    SyntheticConfig::new(4, 8)
        .with_pool_size(160)
        .with_initial_per_class(1)
        .with_eval_size(200)
        .with_separation(3.5)
        .with_seed(seed)
        .generate()
}

fn problem_from(ds: &firal::data::Dataset<f64>) -> SelectionProblem<f64> {
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        ds.num_classes,
    )
}

#[test]
fn every_strategy_completes_a_three_round_loop() {
    let ds = small_dataset(1);
    // The full registry — the paper's five plus UPAL and Bayes-Batch.
    for name in STRATEGY_NAMES {
        let s = strategy_by_name::<f64>(name).unwrap();
        let res = run_experiment(&ds, s.as_ref(), 3, 4, 0, &TrainConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        assert_eq!(res.rounds.len(), 4, "{}", s.name());
        assert_eq!(res.acquired.len(), 12, "{}", s.name());
        // Monotone label counts and sane accuracy values.
        for w in res.rounds.windows(2) {
            assert!(w[1].num_labeled > w[0].num_labeled);
        }
        for r in &res.rounds {
            assert!((0.0..=1.0).contains(&r.eval_accuracy));
        }
    }
}

#[test]
fn upal_and_bayes_batch_keep_up_with_random_and_record_their_runs() {
    // Two rounds of the §IV-A loop on the synthetic Gaussian problem: the
    // new strategies must be no worse than the Random baseline (averaged
    // over trials, like the paper's 10-trial protocol), and every
    // selection round must record its wall-clock and collective traffic.
    let ds = small_dataset(6);
    let rounds = 2;
    let budget = 8;
    let train = TrainConfig::default();

    let mut random_mean = 0.0;
    let trials = 5;
    for seed in 0..trials {
        let res = run_experiment(&ds, &RandomStrategy, rounds, budget, seed, &train).unwrap();
        random_mean += res.final_eval_accuracy();
    }
    random_mean /= trials as f64;

    for name in ["upal", "bayes-batch"] {
        let res = run_experiment_named(&ds, name, rounds, budget, 0, &train)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(res.rounds.len(), rounds + 1);
        assert!(
            res.final_eval_accuracy() >= random_mean - 1e-9,
            "{name}: final eval accuracy {} worse than mean Random {random_mean}",
            res.final_eval_accuracy()
        );
        // RoundRecord bookkeeping: selection rounds carry wall-clock and
        // the comm-layer record (both strategies issue collectives even on
        // the serial SelfComm path); the final evaluation-only round is
        // all zeros.
        for r in &res.rounds[..rounds] {
            assert!(r.selection_seconds > 0.0, "{name}: missing timing");
            assert!(
                r.selection_comm.total_calls() > 0,
                "{name}: missing CommStats"
            );
        }
        let last = res.rounds.last().unwrap();
        assert_eq!(last.selection_seconds, 0.0);
        assert_eq!(last.selection_comm.total_calls(), 0);
    }
}

#[test]
fn firal_improves_over_initial_model() {
    let ds = small_dataset(2);
    let res = run_experiment(
        &ds,
        &ApproxFiral::default(),
        3,
        8,
        0,
        &TrainConfig::default(),
    )
    .unwrap();
    let first = res.rounds.first().unwrap().eval_accuracy;
    let last = res.rounds.last().unwrap().eval_accuracy;
    assert!(
        last > first,
        "30 extra labels should beat 4 initial labels: {first} → {last}"
    );
}

#[test]
fn approx_and_exact_firal_agree_on_small_problems() {
    // With tight CG and many probes the approximation error is tiny; the
    // two algorithms should buy heavily-overlapping batches.
    let ds = small_dataset(3);
    let problem = problem_from(&ds);
    let b = 6;

    let exact = ExactFiral::<f64>::default().select(&problem, b, 0).unwrap();
    let approx = {
        let mut cfg = firal::core::FiralConfig::<f64>::default();
        cfg.relax.probes = 60;
        cfg.relax.cg_tol = 1e-7;
        ApproxFiral::new(cfg).select(&problem, b, 0).unwrap()
    };
    let overlap = exact.iter().filter(|i| approx.contains(i)).count();
    assert!(
        overlap * 2 >= b,
        "exact {exact:?} vs approx {approx:?}: overlap {overlap}/{b}"
    );

    // And both should dominate random on the Fisher objective.
    let f_exact = firal::core::objective::selection_objective(&problem, &exact);
    let f_approx = firal::core::objective::selection_objective(&problem, &approx);
    let random = RandomStrategy.select(&problem, b, 0).unwrap();
    let f_random = firal::core::objective::selection_objective(&problem, &random);
    assert!(f_exact < f_random, "{f_exact} !< {f_random}");
    assert!(f_approx < f_random, "{f_approx} !< {f_random}");
}

#[test]
fn experiments_are_reproducible_given_seed() {
    let ds = small_dataset(4);
    let a = run_experiment(
        &ds,
        &ApproxFiral::default(),
        2,
        5,
        7,
        &TrainConfig::default(),
    )
    .unwrap();
    let b = run_experiment(
        &ds,
        &ApproxFiral::default(),
        2,
        5,
        7,
        &TrainConfig::default(),
    )
    .unwrap();
    assert_eq!(a.acquired, b.acquired);
    let c = run_experiment(&ds, &RandomStrategy, 2, 5, 8, &TrainConfig::default()).unwrap();
    let d = run_experiment(&ds, &RandomStrategy, 2, 5, 9, &TrainConfig::default()).unwrap();
    assert_ne!(c.acquired, d.acquired, "different seeds should differ");
}

#[test]
fn table_v_presets_generate_and_run_one_round() {
    // Every Table V preset must produce a functioning round at smoke scale.
    for name in PresetName::all() {
        let preset = ExperimentPreset::host_scaled(name).scale_down(8);
        let ds = preset.generate::<f64>(0);
        assert_eq!(ds.num_classes, preset.config.classes, "{}", name.label());
        let res = run_experiment(
            &ds,
            &RandomStrategy,
            1,
            preset.config.classes.min(ds.pool_size() / 2),
            0,
            &TrainConfig::default(),
        )
        .unwrap();
        assert_eq!(res.rounds.len(), 2, "{}", name.label());
    }
}

#[test]
fn f32_and_f64_pipelines_agree_on_selection_shape() {
    let ds64 = small_dataset(5);
    let ds32 = ds64.cast::<f32>();
    let p64 = problem_from(&ds64);
    let model32 =
        LogisticRegression::fit_default(&ds32.initial_features, &ds32.initial_labels).unwrap();
    let p32 = SelectionProblem::new(
        ds32.pool_features.clone(),
        model32.class_probs_cm1(&ds32.pool_features),
        ds32.initial_features.clone(),
        model32.class_probs_cm1(&ds32.initial_features),
        ds32.num_classes,
    );
    let s64 = ApproxFiral::<f64>::default().select(&p64, 5, 0).unwrap();
    let s32 = ApproxFiral::<f32>::default().select(&p32, 5, 0).unwrap();
    // Different precisions may not match point-for-point, but both must be
    // valid distinct batches from the same pool.
    assert_eq!(s64.len(), 5);
    assert_eq!(s32.len(), 5);
    let overlap = s64.iter().filter(|i| s32.contains(i)).count();
    assert!(overlap >= 2, "f32 {s32:?} vs f64 {s64:?} diverged entirely");
}
