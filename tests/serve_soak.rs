//! Soak test: concurrent clients against a real 4-process serving mesh.
//!
//! Like `fault_matrix`, this binary is both the parent and the SPMD
//! child: the parent re-executes itself with `--exact
//! serve_soak_child_entry` and the `FIRAL_SPMD_*` coordinates set, so the
//! server runs on a genuine 4-process TCP mesh with schedule verification
//! and read deadlines armed. The parent then plays the client side:
//! several threads hammer the server with mixed strategies and budgets
//! over one shared pool.
//!
//! The contract pinned here is the serving tentpole's acceptance
//! criterion:
//!
//! 1. every response is **bitwise identical** to the in-process
//!    `select_serial` reference — distribution over sub-groups is
//!    invisible to clients;
//! 2. at least one round hosts **two concurrent requests on disjoint
//!    sub-groups** (true multi-tenancy, not queueing);
//! 3. per-request `CommStats` are **isolated**: summing every response's
//!    bill reproduces the server's cumulative `OP_STATS` accounting
//!    exactly — no request's traffic leaks into another's bill;
//! 4. a clean shutdown leaves **zero orphan processes**: all four ranks
//!    exit 0 within the cap (a guard kills stragglers and fails loudly).

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use firal::comm::socket_comm::{ENV_ADDR, ENV_RANK, ENV_SIZE};
use firal::comm::{
    free_rendezvous_addr, Communicator, SocketComm, COMM_TIMEOUT_ENV, FAULT_ENV,
    RENDEZVOUS_TIMEOUT_ENV, VERIFY_ENV,
};
use firal::core::{select_serial, strategy_by_name, SelectionProblem};
use firal::data::SyntheticConfig;
use firal::logreg::LogisticRegression;
use firal::serve::{run, SelectSpec, SelectionOutcome, ServeClient, ServeConfig};

/// Env var carrying the serve listen address into the SPMD children.
const SERVE_ADDR_ENV: &str = "FIRAL_TEST_SERVE_ADDR";

const P: usize = 4;
const CLIENTS: usize = 4;
const REQUESTS: usize = 2;
const MIX: [&str; 3] = ["random", "entropy", "approx-firal"];
const BUDGETS: [usize; 3] = [3, 4, 6];
/// Per-frame read deadline for the mesh (ms): generous, because debug
/// builds interleave real compute between collectives.
const DEADLINE_MS: u64 = 5000;
/// Hard bound on mesh wind-down after the shutdown ack: if any rank is
/// still alive past this, the mesh deadlocked.
const WIND_DOWN_CAP: Duration = Duration::from_secs(45);

const CODE_RENDEZVOUS_FAILED: i32 = 41;
const CODE_COMM_ERROR: i32 = 42;
const CODE_DEGRADED: i32 = 45;

fn soak_problem() -> SelectionProblem<f64> {
    let ds = SyntheticConfig::new(3, 4)
        .with_pool_size(72)
        .with_initial_per_class(2)
        .with_seed(21)
        .generate::<f64>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        3,
    )
}

/// The SPMD child body: join the mesh, then hold the server open until a
/// client-initiated shutdown (or a degraded wind-down) ends it.
fn child_main() -> i32 {
    let comm = match SocketComm::from_env() {
        Some(Ok(c)) => c,
        Some(Err(e)) => {
            eprintln!("serve-soak child: rendezvous failed: {e}");
            return CODE_RENDEZVOUS_FAILED;
        }
        None => unreachable!("child entry runs only with {ENV_RANK} set"),
    };
    comm.install_panic_abort();
    let addr = std::env::var(SERVE_ADDR_ENV).expect("serve address env");
    let config = ServeConfig::new(addr)
        .with_min_batch(2)
        .with_batch_wait(Duration::from_millis(300));
    match run(&comm, &config) {
        Ok(summary) => {
            if comm.rank() == 0 {
                println!(
                    "SERVE_SOAK rounds={} ok={} err={} degraded={:?}",
                    summary.rounds, summary.requests_ok, summary.requests_err, summary.degraded
                );
            }
            if summary.degraded.is_some() {
                CODE_DEGRADED
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("rank {}: serve failed: {e}", comm.rank());
            CODE_COMM_ERROR
        }
    }
}

/// Not a test of this process: the SPMD re-exec target. Returns
/// immediately in ordinary `cargo test` runs (no rank coordinates set).
#[test]
fn serve_soak_child_entry() {
    if std::env::var(ENV_RANK).is_err() {
        return;
    }
    std::process::exit(child_main());
}

struct ChildResult {
    code: i32,
    stdout: String,
    stderr: String,
}

/// A spawned server mesh whose `Drop` kills every still-running rank, so
/// a failing (panicking) test can never leak orphan processes.
struct Mesh {
    children: Vec<Option<Child>>,
}

impl Mesh {
    fn spawn(size: usize, serve_addr: &str) -> Mesh {
        let exe = std::env::current_exe().expect("test executable path");
        let rendezvous = free_rendezvous_addr().expect("free rendezvous port");
        let children = (0..size)
            .map(|rank| {
                let mut cmd = Command::new(&exe);
                cmd.arg("serve_soak_child_entry")
                    .arg("--exact")
                    .arg("--test-threads=1")
                    .arg("--nocapture")
                    .env(ENV_RANK, rank.to_string())
                    .env(ENV_SIZE, size.to_string())
                    .env(ENV_ADDR, &rendezvous)
                    .env(SERVE_ADDR_ENV, serve_addr)
                    .env(VERIFY_ENV, "1")
                    .env(COMM_TIMEOUT_ENV, DEADLINE_MS.to_string())
                    .env(RENDEZVOUS_TIMEOUT_ENV, "15000")
                    .env_remove(FAULT_ENV)
                    .stdin(Stdio::null())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::piped());
                Some(cmd.spawn().expect("spawn serve-soak child"))
            })
            .collect();
        Mesh { children }
    }

    /// Wait for every rank with a hard cap; stragglers are killed and
    /// reported with the `-99` sentinel (the orphan/deadlock detector).
    fn supervise(&mut self, cap: Duration) -> Vec<ChildResult> {
        let start = Instant::now();
        let size = self.children.len();
        let mut codes = vec![None; size];
        loop {
            let mut alive = 0;
            for (rank, slot) in self.children.iter_mut().enumerate() {
                let Some(child) = slot else { continue };
                match child.try_wait().expect("try_wait") {
                    Some(status) if codes[rank].is_none() => {
                        codes[rank] = Some(status.code().unwrap_or(-1));
                    }
                    Some(_) => {}
                    None => alive += 1,
                }
            }
            if alive == 0 {
                break;
            }
            if start.elapsed() > cap {
                for (rank, slot) in self.children.iter_mut().enumerate() {
                    let Some(child) = slot else { continue };
                    if codes[rank].is_none() {
                        let _ = child.kill();
                        let _ = child.wait();
                        codes[rank] = Some(-99);
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        self.children
            .iter_mut()
            .enumerate()
            .map(|(rank, slot)| {
                let mut child = slot.take().expect("child present");
                let mut stdout = String::new();
                let mut stderr = String::new();
                if let Some(mut s) = child.stdout.take() {
                    let _ = s.read_to_string(&mut stdout);
                }
                if let Some(mut s) = child.stderr.take() {
                    let _ = s.read_to_string(&mut stderr);
                }
                let _ = child.wait();
                ChildResult {
                    code: codes[rank].expect("exit code recorded"),
                    stdout,
                    stderr,
                }
            })
            .collect()
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        for slot in self.children.iter_mut() {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn dump(results: &[ChildResult]) -> String {
    let mut out = String::new();
    for (rank, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  rank {rank}: exit {}\n    stdout: {}\n    stderr: {}\n",
            r.code,
            r.stdout.trim().replace('\n', "\n            "),
            r.stderr.trim().replace('\n', "\n            "),
        ));
    }
    out
}

#[test]
fn serve_soak_concurrent_clients_are_bitwise_serial_with_isolated_stats() {
    let serve_addr = free_rendezvous_addr().expect("free serve port");
    let mut mesh = Mesh::spawn(P, &serve_addr);

    let problem = soak_problem();
    let mut control = ServeClient::connect(serve_addr.as_str(), Duration::from_secs(20))
        .and_then(|c| c.with_patience(Some(Duration::from_secs(60))))
        .expect("control connect");
    let pool = control.upload_pool(&problem).expect("pool upload");

    // --- The soak: CLIENTS threads x REQUESTS mixed requests each, first
    // wave released simultaneously so rounds genuinely share the mesh. ---
    let barrier = Barrier::new(CLIENTS);
    let outcomes: Vec<(SelectSpec, SelectionOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let barrier = &barrier;
                let serve_addr = serve_addr.as_str();
                scope.spawn(move || {
                    let mut client = ServeClient::connect(serve_addr, Duration::from_secs(10))
                        .and_then(|c| c.with_patience(Some(Duration::from_secs(60))))
                        .expect("client connect");
                    barrier.wait();
                    (0..REQUESTS)
                        .map(|i| {
                            let spec = SelectSpec {
                                pool,
                                strategy: MIX[(t + i) % MIX.len()].to_string(),
                                budget: BUDGETS[(t * REQUESTS + i) % BUDGETS.len()],
                                seed: 50 + (t * 17 + i) as u64,
                                threads: 0,
                                max_ranks: 2,
                            };
                            let outcome = client.select(&spec).unwrap_or_else(|e| {
                                panic!("client {t} request {i} ({}) failed: {e}", spec.strategy)
                            });
                            (spec, outcome)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(outcomes.len(), CLIENTS * REQUESTS);

    // 1 — every response bitwise-identical to the serial reference.
    for (spec, outcome) in &outcomes {
        let reference = select_serial(
            strategy_by_name::<f64>(&spec.strategy)
                .expect("registry name")
                .as_ref(),
            &problem,
            spec.budget,
            spec.seed,
        )
        .expect("serial reference")
        .selected;
        assert_eq!(
            outcome.selected, reference,
            "{} b={} seed={} diverged from select_serial",
            spec.strategy, spec.budget, spec.seed
        );
        assert_eq!(outcome.group.len(), 2, "max_ranks=2 over a 4-rank mesh");
        assert!(
            outcome.group.windows(2).all(|w| w[0] < w[1]) && outcome.group.iter().all(|&r| r < P),
            "malformed group {:?}",
            outcome.group
        );
        if spec.strategy != "random" {
            assert!(
                outcome.comm.total_calls() > 0,
                "a distributed {} selection must bill at least one collective",
                spec.strategy
            );
        }
    }

    // 2 — true concurrency: some round hosted >= 2 requests, and requests
    // sharing a round ran on pairwise disjoint sub-groups.
    let mut by_round: std::collections::BTreeMap<u64, Vec<&SelectionOutcome>> =
        std::collections::BTreeMap::new();
    for (_, outcome) in &outcomes {
        by_round.entry(outcome.round).or_default().push(outcome);
    }
    for (round, sharing) in &by_round {
        let mut seen = std::collections::BTreeSet::new();
        for outcome in sharing {
            for &r in &outcome.group {
                assert!(
                    seen.insert(r),
                    "round {round}: rank {r} served two requests at once"
                );
            }
        }
    }
    assert!(
        by_round.values().any(|sharing| sharing.len() >= 2),
        "no round ever hosted two concurrent requests; rounds: {:?}",
        by_round.keys().collect::<Vec<_>>()
    );

    // 3 — stats isolation: the per-response bills sum *exactly* to the
    // server's cumulative accounting.
    let stats = control.stats().expect("stats query");
    assert_eq!(stats.requests_ok, (CLIENTS * REQUESTS) as u64, "{stats:?}");
    assert_eq!(stats.requests_err, 0, "{stats:?}");
    assert!(stats.rounds >= 4, "8 requests at <= 2/round: {stats:?}");
    let mut summed = firal::comm::CommStats::default();
    for (_, outcome) in &outcomes {
        summed.merge(&outcome.comm);
    }
    assert_eq!(summed.allreduce_calls, stats.comm.allreduce_calls);
    assert_eq!(summed.allreduce_bytes, stats.comm.allreduce_bytes);
    assert_eq!(summed.bcast_calls, stats.comm.bcast_calls);
    assert_eq!(summed.bcast_bytes, stats.comm.bcast_bytes);
    assert_eq!(summed.allgather_calls, stats.comm.allgather_calls);
    assert_eq!(summed.allgather_bytes, stats.comm.allgather_bytes);
    assert_eq!(summed.time, stats.comm.time, "billed time must sum exactly");

    // 4 — clean shutdown, zero orphans.
    control.shutdown().expect("shutdown ack");
    let results = mesh.supervise(WIND_DOWN_CAP);
    let codes: Vec<i32> = results.iter().map(|r| r.code).collect();
    assert!(
        !codes.contains(&-99),
        "stragglers had to be killed after shutdown\n{}",
        dump(&results)
    );
    assert_eq!(codes, vec![0; P], "\n{}", dump(&results));
    let marker = results[0]
        .stdout
        .lines()
        .find_map(|l| l.find("SERVE_SOAK ").map(|at| l[at..].to_string()))
        .unwrap_or_else(|| panic!("rank 0 printed no summary marker\n{}", dump(&results)));
    assert!(
        marker.contains(&format!("ok={}", CLIENTS * REQUESTS)) && marker.contains("err=0"),
        "server summary disagrees with the client view: {marker}"
    );
    assert!(marker.contains("degraded=None"), "healthy soak: {marker}");
}
