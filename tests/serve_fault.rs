//! Fault-matrix extension for the serving layer: a rank dies mid-request.
//!
//! Same self-re-exec harness as `fault_matrix` and `serve_soak`, with one
//! `FIRAL_FAULT` row injected: rank 3 is killed a few collectives into its
//! sub-group's selection. Two concurrent requests share the round on
//! disjoint sub-groups (`[0,1]` and `[2,3]`), so the kill lands inside
//! exactly one of them. The contract pinned here is the PR 8 failure model
//! *scoped by the serving layer's abort confinement*:
//!
//! 1. the affected request comes back as a **structured** `ERR_COMM`
//!    response within a bounded wall-clock (one read deadline plus round
//!    mechanics — never a hang);
//! 2. the unaffected concurrent request **completes**, bitwise identical
//!    to the serial reference — the sibling sub-group never sees the
//!    abort;
//! 3. the server reports the degraded mesh (summary marker + exit code)
//!    and winds down instead of serving on a broken mesh;
//! 4. the victim exits with the injected kill code and **no rank
//!    deadlocks or is orphaned**.

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use firal::comm::fault::KILL_EXIT_CODE;
use firal::comm::socket_comm::{ENV_ADDR, ENV_RANK, ENV_SIZE};
use firal::comm::{
    free_rendezvous_addr, Communicator, SocketComm, COMM_TIMEOUT_ENV, FAULT_ENV,
    RENDEZVOUS_TIMEOUT_ENV, VERIFY_ENV,
};
use firal::core::{select_serial, strategy_by_name, SelectionProblem};
use firal::data::SyntheticConfig;
use firal::logreg::LogisticRegression;
use firal::serve::proto::ERR_COMM;
use firal::serve::{run, ClientError, SelectSpec, ServeClient, ServeConfig};

/// Env var carrying the serve listen address into the SPMD children.
const SERVE_ADDR_ENV: &str = "FIRAL_TEST_SERVE_ADDR";

const P: usize = 4;
/// Per-frame read deadline (ms). The kill closes the victim's sockets, so
/// the sibling detects `PeerDeath` immediately; the deadline is the
/// backstop that bounds the *worst* case.
const DEADLINE_MS: u64 = 1500;
/// `kill:rank=3,op=4`: rank 3's sub-communicator reaches collective #4
/// only while running a selection (approx-firal runs many collectives per
/// pick), and its *root* communicator reaches seq 4 only after five
/// serving rounds — far more than this scenario ever runs. The coordinate
/// therefore lands mid-request, deterministically.
const FAULT_SPEC: &str = "kill:rank=3,op=4";
/// Hard bound on the whole scenario (spawn to last exit).
const SCENARIO_CAP: Duration = Duration::from_secs(60);

const CODE_RENDEZVOUS_FAILED: i32 = 41;
const CODE_COMM_ERROR: i32 = 42;
const CODE_DEGRADED: i32 = 45;

fn fault_problem() -> SelectionProblem<f64> {
    let ds = SyntheticConfig::new(3, 4)
        .with_pool_size(48)
        .with_initial_per_class(2)
        .with_seed(9)
        .generate::<f64>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        3,
    )
}

fn child_main() -> i32 {
    let comm = match SocketComm::from_env() {
        Some(Ok(c)) => c,
        Some(Err(e)) => {
            eprintln!("serve-fault child: rendezvous failed: {e}");
            return CODE_RENDEZVOUS_FAILED;
        }
        None => unreachable!("child entry runs only with {ENV_RANK} set"),
    };
    comm.install_panic_abort();
    let addr = std::env::var(SERVE_ADDR_ENV).expect("serve address env");
    // A long batch wait with min_batch 2 holds the round until *both*
    // concurrent requests are queued, pinning the [0,1] / [2,3] carve-up.
    let config = ServeConfig::new(addr)
        .with_min_batch(2)
        .with_batch_wait(Duration::from_secs(5));
    match run(&comm, &config) {
        Ok(summary) => {
            if comm.rank() == 0 {
                println!(
                    "SERVE_FAULT rounds={} ok={} err={} degraded={:?}",
                    summary.rounds, summary.requests_ok, summary.requests_err, summary.degraded
                );
            }
            if summary.degraded.is_some() {
                CODE_DEGRADED
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("rank {}: serve failed: {e}", comm.rank());
            CODE_COMM_ERROR
        }
    }
}

/// Not a test of this process: the SPMD re-exec target.
#[test]
fn serve_fault_child_entry() {
    if std::env::var(ENV_RANK).is_err() {
        return;
    }
    std::process::exit(child_main());
}

struct ChildResult {
    code: i32,
    stdout: String,
    stderr: String,
}

/// Spawned server mesh; `Drop` reaps every still-running rank so a failed
/// assertion can never leak orphans.
struct Mesh {
    children: Vec<Option<Child>>,
}

impl Mesh {
    fn spawn(size: usize, serve_addr: &str, fault: &str) -> Mesh {
        let exe = std::env::current_exe().expect("test executable path");
        let rendezvous = free_rendezvous_addr().expect("free rendezvous port");
        let children = (0..size)
            .map(|rank| {
                let mut cmd = Command::new(&exe);
                cmd.arg("serve_fault_child_entry")
                    .arg("--exact")
                    .arg("--test-threads=1")
                    .arg("--nocapture")
                    .env(ENV_RANK, rank.to_string())
                    .env(ENV_SIZE, size.to_string())
                    .env(ENV_ADDR, &rendezvous)
                    .env(SERVE_ADDR_ENV, serve_addr)
                    .env(VERIFY_ENV, "1")
                    .env(COMM_TIMEOUT_ENV, DEADLINE_MS.to_string())
                    .env(RENDEZVOUS_TIMEOUT_ENV, "15000")
                    .env(FAULT_ENV, fault)
                    .stdin(Stdio::null())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::piped());
                Some(cmd.spawn().expect("spawn serve-fault child"))
            })
            .collect();
        Mesh { children }
    }

    fn supervise(&mut self, cap: Duration) -> Vec<ChildResult> {
        let start = Instant::now();
        let size = self.children.len();
        let mut codes = vec![None; size];
        loop {
            let mut alive = 0;
            for (rank, slot) in self.children.iter_mut().enumerate() {
                let Some(child) = slot else { continue };
                match child.try_wait().expect("try_wait") {
                    Some(status) if codes[rank].is_none() => {
                        codes[rank] = Some(status.code().unwrap_or(-1));
                    }
                    Some(_) => {}
                    None => alive += 1,
                }
            }
            if alive == 0 {
                break;
            }
            if start.elapsed() > cap {
                for (rank, slot) in self.children.iter_mut().enumerate() {
                    let Some(child) = slot else { continue };
                    if codes[rank].is_none() {
                        let _ = child.kill();
                        let _ = child.wait();
                        codes[rank] = Some(-99);
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        self.children
            .iter_mut()
            .enumerate()
            .map(|(rank, slot)| {
                let mut child = slot.take().expect("child present");
                let mut stdout = String::new();
                let mut stderr = String::new();
                if let Some(mut s) = child.stdout.take() {
                    let _ = s.read_to_string(&mut stdout);
                }
                if let Some(mut s) = child.stderr.take() {
                    let _ = s.read_to_string(&mut stderr);
                }
                let _ = child.wait();
                ChildResult {
                    code: codes[rank].expect("exit code recorded"),
                    stdout,
                    stderr,
                }
            })
            .collect()
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        for slot in self.children.iter_mut() {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn dump(results: &[ChildResult]) -> String {
    let mut out = String::new();
    for (rank, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  rank {rank}: exit {}\n    stdout: {}\n    stderr: {}\n",
            r.code,
            r.stdout.trim().replace('\n', "\n            "),
            r.stderr.trim().replace('\n', "\n            "),
        ));
    }
    out
}

#[test]
fn a_rank_killed_mid_request_fails_only_its_own_sub_group() {
    let serve_addr = free_rendezvous_addr().expect("free serve port");
    let mut mesh = Mesh::spawn(P, &serve_addr, FAULT_SPEC);

    let problem = fault_problem();
    let mut control = ServeClient::connect(serve_addr.as_str(), Duration::from_secs(20))
        .and_then(|c| c.with_patience(Some(Duration::from_secs(60))))
        .expect("control connect");
    let pool = control.upload_pool(&problem).expect("pool upload");

    // Two concurrent requests, released together so both land in round 1:
    // one runs on [0,1], the other on [2,3] where the kill fires.
    let spec = |seed: u64| SelectSpec {
        pool,
        strategy: "approx-firal".to_string(),
        budget: 5,
        seed,
        threads: 0,
        max_ranks: 2,
    };
    let barrier = Barrier::new(2);
    let submitted = Instant::now();
    let results: Vec<(u64, Result<Vec<usize>, ClientError>, Duration)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2u64)
                .map(|t| {
                    let barrier = &barrier;
                    let serve_addr = serve_addr.as_str();
                    let spec = spec(300 + t);
                    scope.spawn(move || {
                        let mut client = ServeClient::connect(serve_addr, Duration::from_secs(10))
                            .and_then(|c| c.with_patience(Some(Duration::from_secs(60))))
                            .expect("client connect");
                        barrier.wait();
                        let result = client.select(&spec).map(|o| o.selected);
                        (spec.seed, result, submitted.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });

    // 1+2 — exactly one structured ERR_COMM, exactly one bitwise success.
    let mut ok = Vec::new();
    let mut err = Vec::new();
    for (seed, result, elapsed) in results {
        match result {
            Ok(selected) => ok.push((seed, selected, elapsed)),
            Err(ClientError::Server(e)) => err.push((seed, e, elapsed)),
            Err(ClientError::Io(e)) => {
                panic!("seed {seed}: transport failure, not a structured error: {e}")
            }
        }
    }
    assert_eq!(
        (ok.len(), err.len()),
        (1, 1),
        "expected one survivor and one structured failure: ok={ok:?} err={err:?}"
    );
    let (seed, selected, ok_elapsed) = &ok[0];
    let reference = select_serial(
        strategy_by_name::<f64>("approx-firal").unwrap().as_ref(),
        &problem,
        5,
        *seed,
    )
    .unwrap()
    .selected;
    assert_eq!(
        selected, &reference,
        "the unaffected concurrent request must still be bitwise serial"
    );
    let (_, remote, err_elapsed) = &err[0];
    assert_eq!(remote.code, ERR_COMM, "taxonomy: {remote:?}");
    assert!(
        !remote.message.is_empty(),
        "a comm failure must carry a diagnosis"
    );
    // "Within one deadline" plus round mechanics: the hub finishes its own
    // (healthy) assignment, then collects the failed one. Both responses
    // must arrive in a small multiple of the deadline, never the cap.
    let bound = Duration::from_millis(DEADLINE_MS * 20);
    assert!(
        *err_elapsed < bound && *ok_elapsed < bound,
        "responses took ok={ok_elapsed:?} err={err_elapsed:?} (bound {bound:?})"
    );

    // 3+4 — degraded wind-down, victim killed, nobody orphaned.
    let results = mesh.supervise(SCENARIO_CAP);
    let codes: Vec<i32> = results.iter().map(|r| r.code).collect();
    assert!(
        !codes.contains(&-99),
        "deadlocked ranks had to be reaped\n{}",
        dump(&results)
    );
    assert_eq!(
        codes,
        vec![CODE_DEGRADED, CODE_DEGRADED, CODE_DEGRADED, KILL_EXIT_CODE],
        "\n{}",
        dump(&results)
    );
    let marker = results[0]
        .stdout
        .lines()
        .find_map(|l| l.find("SERVE_FAULT ").map(|at| l[at..].to_string()))
        .unwrap_or_else(|| panic!("rank 0 printed no summary marker\n{}", dump(&results)));
    assert!(
        marker.contains("ok=1") && marker.contains("err=1") && marker.contains("degraded=Some"),
        "server must report the degraded mesh: {marker}"
    );
}
