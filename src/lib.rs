//! # firal — scalable active learning for multiclass logistic regression
//!
//! Umbrella crate re-exporting the full workspace: a Rust reproduction of
//! **"A Scalable Algorithm for Active Learning"** (Chen, Wen, Biros —
//! SC 2024), i.e. the Approx-FIRAL algorithm, the exact FIRAL baseline, the
//! classical active-learning baselines, and the supporting HPC substrate.
//!
//! ## Architecture
//!
//! The repo-root `ARCHITECTURE.md` maps every paper section, algorithm,
//! and equation to its crate and module, and states the determinism
//! contracts the layers hold each other to; this section is the
//! condensed version.
//!
//! The paper's central structural claim is that Approx-FIRAL is *one*
//! algorithm whose collectives degenerate to no-ops at `p = 1`. The
//! workspace mirrors that claim in its layering — RELAX and ROUND are
//! written **once**, generic over a communicator, and every entry point is
//! an instantiation of the same code:
//!
//! ```text
//!           strategies / driver / bench / examples
//!                          │
//!              firal_core::exec::Executor        ← the execution layer:
//!            (communicator + shard geometry +      RELAX/ROUND written once
//!             RNG seeding + PhaseTimer + CommStats)
//!          │                 │                  │
//!   SelfComm (p = 1,   ThreadComm (p ranks,   SocketComm (p ranks, OS
//!   no-op collectives: OS threads + shared-   processes or threads on a
//!   the "serial" path) memory collectives)    localhost TCP mesh with a
//!                                             rank-0 rendezvous; launched
//!                                             by `spmd_launch`)
//!                          │
//!        firal_solvers (CG / Lanczos / Hutchinson / bisection;
//!        `AllreduceOperator` puts the §III-C matvec reduction
//!        behind the ordinary LinearOperator trait)
//!                          │
//!        firal_linalg (GEMM kernels, Cholesky, eigensolvers,
//!        block-diagonal operators of Definition 1)
//! ```
//!
//! Concretely:
//!
//! * [`core::exec`] holds [`core::Executor`] and [`core::ShardedProblem`].
//!   An executor owns one rank's context — communicator endpoint, shard
//!   geometry (`offset = 0`, `local_n = n` for the trivial single-rank
//!   shard), probe-RNG seeding, the phase timer, and per-run communication
//!   statistics — and exposes `relax`, `round`, `select_eta`, and
//!   `approx_firal`.
//! * The serial API ([`core::fast_relax`], [`core::diag_round`],
//!   [`core::ApproxFiral`]) instantiates the executor over
//!   [`comm::SelfComm`]; the SPMD API ([`core::parallel`]) instantiates it
//!   over any [`comm::Communicator`]. Neither carries its own copy of the
//!   math.
//! * Communication volume is first-class: every run returns
//!   [`comm::CommStats`] (per-collective calls/bytes/time), which the bench
//!   harnesses print next to wall-clock so scaling tables show *what was
//!   communicated*, not just how long it took.
//!
//! This is the prerequisite for every scaling direction on the roadmap: a
//! process/MPI backend or a GPU-resident backend is one new `Communicator`
//! (plus kernels), not a re-implementation of the solvers; new selection
//! strategies (unbiased-weighting or Bayesian-batch variants) are written
//! once and are immediately distributed.
//!
//! ## Quickstart
//!
//! ```
//! use firal::core::{ApproxFiral, SelectionProblem, Strategy};
//! use firal::data::SyntheticConfig;
//! use firal::logreg::LogisticRegression;
//!
//! // 3-class toy pool in 4 dimensions.
//! let ds = SyntheticConfig::new(3, 4).with_pool_size(90).with_seed(7).generate::<f64>();
//! let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
//! let problem = SelectionProblem::new(
//!     ds.pool_features.clone(),
//!     model.class_probs_cm1(&ds.pool_features),
//!     ds.initial_features.clone(),
//!     model.class_probs_cm1(&ds.initial_features),
//!     ds.num_classes,
//! );
//! let picked = ApproxFiral::default().select(&problem, 6, 0).unwrap();
//! assert_eq!(picked.len(), 6);
//! ```
//!
//! The same selection, explicitly through the execution layer on one rank:
//!
//! ```
//! use firal::comm::SelfComm;
//! use firal::core::{EigSolver, Executor, RelaxConfig, ShardedProblem};
//! # use firal::core::SelectionProblem;
//! # use firal::data::SyntheticConfig;
//! # use firal::logreg::LogisticRegression;
//! # let ds = SyntheticConfig::new(3, 4).with_pool_size(90).with_seed(7).generate::<f64>();
//! # let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
//! # let problem = SelectionProblem::new(
//! #     ds.pool_features.clone(),
//! #     model.class_probs_cm1(&ds.pool_features),
//! #     ds.initial_features.clone(),
//! #     model.class_probs_cm1(&ds.initial_features),
//! #     ds.num_classes,
//! # );
//! let comm = SelfComm::new();
//! let shard = ShardedProblem::replicate(&problem);
//! let exec = Executor::serial(&comm, &shard);
//! let relax = exec.relax(6, &RelaxConfig::default());
//! let round = exec.round(&relax.z_local, 6, 8.0 * (problem.ehat() as f64).sqrt(), EigSolver::Exact);
//! assert_eq!(round.selected.len(), 6);
//! ```
//!
//! See `examples/` for full active-learning loops, strong/weak scaling runs
//! and method comparisons, and `crates/bench` for the harnesses that
//! regenerate every table and figure of the paper.

/// Dense linear algebra kernels (matrices, GEMM, Cholesky, eigensolvers).
pub use firal_linalg as linalg;

/// Iterative solvers: preconditioned CG, Hutchinson traces, bisection,
/// L-BFGS, and the communicator-aware `AllreduceOperator`.
pub use firal_solvers as solvers;

/// Message-passing substrate (SPMD ranks, collectives, cost model): no-op
/// `SelfComm`, shared-memory `ThreadComm`, and the inter-process TCP-mesh
/// `SocketComm` backend.
pub use firal_comm as comm;

/// Synthetic embedding-style datasets with the paper's Table V presets.
pub use firal_data as data;

/// k-means clustering (the K-Means selection baseline).
pub use firal_cluster as cluster;

/// Multinomial logistic regression classifier and metrics.
pub use firal_logreg as logreg;

/// FIRAL / Approx-FIRAL algorithms, baselines, experiment driver, and the
/// communicator-generic execution layer.
pub use firal_core as core;

/// Active-learning-as-a-service: the persistent selection server held open
/// over a warm rank mesh, its client protocol, and the sub-group scheduler.
pub use firal_serve as serve;
