//! # firal — scalable active learning for multiclass logistic regression
//!
//! Umbrella crate re-exporting the full workspace: a Rust reproduction of
//! **"A Scalable Algorithm for Active Learning"** (Chen, Wen, Biros —
//! SC 2024), i.e. the Approx-FIRAL algorithm, the exact FIRAL baseline, the
//! classical active-learning baselines, and the supporting HPC substrate.
//!
//! ## Quickstart
//!
//! ```
//! use firal::core::{ApproxFiral, SelectionProblem, Strategy};
//! use firal::data::SyntheticConfig;
//! use firal::logreg::LogisticRegression;
//!
//! // 3-class toy pool in 4 dimensions.
//! let ds = SyntheticConfig::new(3, 4).with_pool_size(90).with_seed(7).generate::<f64>();
//! let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels).unwrap();
//! let problem = SelectionProblem::new(
//!     ds.pool_features.clone(),
//!     model.class_probs_cm1(&ds.pool_features),
//!     ds.initial_features.clone(),
//!     model.class_probs_cm1(&ds.initial_features),
//!     ds.num_classes,
//! );
//! let picked = ApproxFiral::default().select(&problem, 6, 0).unwrap();
//! assert_eq!(picked.len(), 6);
//! ```
//!
//! See `examples/` for full active-learning loops, strong/weak scaling runs
//! and method comparisons, and `crates/bench` for the harnesses that
//! regenerate every table and figure of the paper.

/// Dense linear algebra kernels (matrices, GEMM, Cholesky, eigensolvers).
pub use firal_linalg as linalg;

/// Iterative solvers: preconditioned CG, Hutchinson traces, bisection, L-BFGS.
pub use firal_solvers as solvers;

/// Simulated message-passing substrate (SPMD ranks, collectives, cost model).
pub use firal_comm as comm;

/// Synthetic embedding-style datasets with the paper's Table V presets.
pub use firal_data as data;

/// k-means clustering (the K-Means selection baseline).
pub use firal_cluster as cluster;

/// Multinomial logistic regression classifier and metrics.
pub use firal_logreg as logreg;

/// FIRAL / Approx-FIRAL algorithms, baselines, experiment driver.
pub use firal_core as core;
