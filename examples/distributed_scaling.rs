//! Mini Figs. 6–7: SPMD Approx-FIRAL on simulated ranks with per-phase
//! timing and the paper's analytic communication model.
//!
//! Runs one RELAX mirror-descent solve and a short ROUND on p = 1, 2, 4
//! ranks, printing the measured phase breakdown next to the cost model's
//! prediction. Ranks default to shared-memory `ThreadComm` threads; with
//! `--socket` the same rank bodies run over the real localhost-TCP
//! `SocketComm` mesh, so the measured comm column is actual wire time.
//!
//! Run with: `cargo run --release --example distributed_scaling [--socket]
//! [--eta-groups G]`
//!
//! With `--eta-groups G > 1` a second table follows: the full pipeline
//! (RELAX + the §IV-A η-grid sweep) over the 2D rank geometry
//! `p = p_shard × G`, one row per η group with that group's own
//! communication counters.
//!
//! For one-OS-process-per-rank execution of this same measurement, use the
//! SPMD launcher: `cargo run --release -p firal-bench --bin spmd_launch --
//! -p 4 scaling`.

use firal::comm::{launch_backend, Backend, CostModel};
use firal::core::{
    parallel_approx_firal_grouped, EigSolver, Executor, FiralConfig, RelaxConfig, SelectionProblem,
    ShardedProblem,
};
use firal::data::SyntheticConfig;
use firal::logreg::LogisticRegression;

fn build_problem() -> SelectionProblem<f32> {
    let ds = SyntheticConfig::new(8, 24)
        .with_pool_size(4000)
        .with_initial_per_class(2)
        .with_seed(3)
        .generate::<f32>();
    let model = LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
        .expect("train failed");
    SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        ds.num_classes,
    )
}

fn main() {
    let backend = if std::env::args().any(|a| a == "--socket") {
        Backend::Socket
    } else {
        Backend::Thread
    };
    let problem = build_problem();
    let budget = 8;
    let eta = 8.0 * (problem.ehat() as f32).sqrt();
    let cost = CostModel::paper_a100();

    println!(
        "pool n={} d={} c={} (ê={}), backend={}",
        problem.pool_size(),
        problem.dim(),
        problem.num_classes,
        problem.ehat(),
        backend.tag(),
    );
    println!(
        "\n{:<6} {:>10} {:>10} {:>10} {:>10} {:>14} {:>9} {:>12} {:>14}",
        "ranks",
        "precond",
        "cg",
        "gradient",
        "round",
        "calls ar/bc/ag",
        "coll MB",
        "comm (meas)",
        "comm (model)"
    );

    for p in [1usize, 2, 4] {
        let prob = problem.clone();
        let cfg = RelaxConfig {
            seed: 1,
            md: firal::core::MirrorDescentConfig {
                max_iters: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let results = launch_backend(backend, p, move |comm| {
            let shard = ShardedProblem::shard(&prob, comm.rank(), comm.size());
            let exec = Executor::new(comm, &shard);
            let relax = exec.relax(budget, &cfg);
            let round = exec.round(&relax.z_local, budget, eta, EigSolver::Exact);
            let mut stats = relax.comm_stats;
            stats.merge(&round.comm_stats);
            (relax.timer, round.timer, stats, round.selected)
        });

        // Report rank 0's timers (ranks are symmetric).
        let (relax_timer, round_timer, stats, selected) = &results[0];
        let comm_predicted = cost.predict_comm(stats, p);
        println!(
            "{:<6} {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s {:>14} {:>9.2} {:>11.3}s {:>13.6}s",
            p,
            relax_timer.get("precond").as_secs_f64(),
            relax_timer.get("cg").as_secs_f64(),
            relax_timer.get("gradient").as_secs_f64(),
            round_timer.total().as_secs_f64(),
            format!(
                "{}/{}/{}",
                stats.allreduce_calls, stats.bcast_calls, stats.allgather_calls
            ),
            stats.total_bytes() as f64 / 1e6,
            stats.time.as_secs_f64(),
            comm_predicted,
        );
        // Sanity: every rank agrees on the selection.
        for (_, _, _, sel) in &results[1..] {
            assert_eq!(sel, selected, "ranks disagreed on the selection!");
        }
    }

    // Optional second act: distribute the η grid over sub-communicator
    // groups (the ranks × η-groups tier).
    let eta_groups: usize = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--eta-groups")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    };
    if eta_groups > 1 {
        println!(
            "\nη grid distributed over {eta_groups} groups (grid {:?}·√ê, backend {}):",
            firal::core::RoundConfig::<f32>::default().eta_grid,
            backend.tag(),
        );
        println!(
            "{:<10} {:>4} {:>10} {:>16} {:>10} {:>10} {:>16}",
            "p", "grp", "eta*", "grp calls", "grp MB", "grp comm", "cross ar/bc/ag"
        );
        for p in [1usize, 2, 4]
            .into_iter()
            .filter(|p| p.is_multiple_of(eta_groups))
        {
            let prob = problem.clone();
            let config = FiralConfig::<f32> {
                relax: RelaxConfig {
                    seed: 1,
                    md: firal::core::MirrorDescentConfig {
                        max_iters: 3,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                eta_groups,
                ..Default::default()
            };
            let results = launch_backend(backend, p, move |comm| {
                let run = parallel_approx_firal_grouped(comm, &prob, budget, &config);
                (
                    run.group,
                    run.round.eta,
                    run.round.selected,
                    run.group_stats,
                    run.cross_stats,
                )
            });
            // One row per group (its shard-rank-0 endpoint), plus a
            // cross-rank agreement check.
            let p_shard = p / eta_groups;
            for g in 0..eta_groups {
                let (group, eta_star, selected, grp, cross) = &results[g * p_shard];
                assert_eq!(*group, g);
                assert_eq!(
                    selected, &results[0].2,
                    "groups disagreed on the winning selection!"
                );
                println!(
                    "{:<10} {:>4} {:>10.3} {:>16} {:>10.2} {:>9.3}s {:>16}",
                    format!("{}={}x{}", p, p_shard, eta_groups),
                    g,
                    eta_star,
                    format!(
                        "{}/{}/{}",
                        grp.allreduce_calls, grp.bcast_calls, grp.allgather_calls
                    ),
                    grp.total_bytes() as f64 / 1e6,
                    grp.time.as_secs_f64(),
                    format!(
                        "{}/{}/{}",
                        cross.allreduce_calls, cross.bcast_calls, cross.allgather_calls
                    ),
                );
            }
        }
    }

    println!(
        "\nNote: this host oversubscribes ranks onto a few cores, so measured \
         times flatten beyond the physical core count; the model column shows \
         what the paper's IB-HDR/A100 constants predict for the same message \
         pattern (see EXPERIMENTS.md)."
    );
}
