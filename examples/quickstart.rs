//! 60-second tour of the firal API.
//!
//! Generates a small synthetic embedding pool, runs one Approx-FIRAL
//! selection round, retrains the classifier on the bought labels, and
//! prints the before/after accuracies.
//!
//! Run with: `cargo run --release --example quickstart`

use firal::core::{ApproxFiral, SelectionProblem, Strategy};
use firal::data::SyntheticConfig;
use firal::logreg::{LogisticRegression, TrainConfig};

fn main() {
    // A 5-class, 10-dimensional "embedding" pool: 500 unlabeled points,
    // one labeled point per class to start, 300 held-out evaluation points.
    let dataset = SyntheticConfig::new(5, 10)
        .with_pool_size(500)
        .with_initial_per_class(1)
        .with_eval_size(300)
        .with_separation(3.0)
        .with_seed(42)
        .generate::<f64>();

    // Round 0: train on the 5 initial labels.
    let model = LogisticRegression::fit(
        &dataset.initial_features,
        &dataset.initial_labels,
        dataset.num_classes,
        &TrainConfig::default(),
    )
    .expect("training failed");
    let acc_before = model.accuracy(&dataset.eval_features, &dataset.eval_labels);
    println!("accuracy with {:>3} labels: {:.1}%", 5, 100.0 * acc_before);

    // Ask Approx-FIRAL for the 20 most informative points.
    let problem = SelectionProblem::new(
        dataset.pool_features.clone(),
        model.class_probs_cm1(&dataset.pool_features),
        dataset.initial_features.clone(),
        model.class_probs_cm1(&dataset.initial_features),
        dataset.num_classes,
    );
    let budget = 20;
    let picked = ApproxFiral::default()
        .select(&problem, budget, 0)
        .expect("selection failed");
    println!("Approx-FIRAL selected pool indices: {picked:?}");

    // Buy those labels and retrain.
    let (features, labels) = dataset.labeled_union(&picked);
    let model = LogisticRegression::fit(
        &features,
        &labels,
        dataset.num_classes,
        &TrainConfig::default(),
    )
    .expect("retraining failed");
    let acc_after = model.accuracy(&dataset.eval_features, &dataset.eval_labels);
    println!(
        "accuracy with {:>3} labels: {:.1}%",
        5 + budget,
        100.0 * acc_after
    );
    println!(
        "improvement: {:+.1} percentage points",
        100.0 * (acc_after - acc_before)
    );
}
