//! Mini Fig. 2: compare Random, K-Means, Entropy, UPAL, Bayes-Batch and
//! Approx-FIRAL on a balanced and an imbalanced pool.
//!
//! The paper's headline accuracy result is that FIRAL dominates the
//! baselines — especially under class imbalance, where Random/K-Means
//! degrade. This example reproduces that story at toy scale in a few
//! seconds, with the two PAPERS.md strategies (UPAL's unbiased
//! importance-weighted sampler and Bayesian batch selection via
//! Frank–Wolfe) in the lineup.
//!
//! Run with: `cargo run --release --example compare_methods`

use firal::core::{
    run_experiment, ApproxFiral, BayesBatchStrategy, EntropyStrategy, KMeansStrategy,
    RandomStrategy, Strategy, UpalStrategy,
};
use firal::data::SyntheticConfig;
use firal::logreg::TrainConfig;

fn run_suite(title: &str, imbalance: f64) {
    let dataset = SyntheticConfig::new(6, 12)
        .with_pool_size(600)
        .with_initial_per_class(1)
        .with_eval_size(600)
        .with_separation(2.8)
        .with_imbalance(imbalance)
        .with_seed(7)
        .generate::<f64>();

    println!("\n=== {title} (max class ratio {imbalance}) ===");
    println!("pool class counts: {:?}", dataset.pool_class_counts());
    println!("{:<14} {:>10} {:>10}", "method", "pool acc", "eval acc");

    let rounds = 3;
    let budget = 12;
    let train = TrainConfig::default();

    let strategies: Vec<Box<dyn Strategy<f64>>> = vec![
        Box::new(RandomStrategy),
        Box::new(KMeansStrategy),
        Box::new(EntropyStrategy),
        Box::new(UpalStrategy::default()),
        Box::new(BayesBatchStrategy::default()),
        Box::new(ApproxFiral::default()),
    ];
    for strategy in &strategies {
        // Average the stochastic baselines over a few trials, like the
        // paper's 10-trial averages.
        let trials: u64 = match strategy.name() {
            "Random" | "K-Means" | "UPAL" => 5,
            _ => 1,
        };
        let mut pool_acc = 0.0;
        let mut eval_acc = 0.0;
        for trial in 0..trials {
            let res = run_experiment(&dataset, strategy.as_ref(), rounds, budget, trial, &train)
                .expect("experiment failed");
            pool_acc += res.final_pool_accuracy();
            eval_acc += res.final_eval_accuracy();
        }
        println!(
            "{:<14} {:>9.1}% {:>9.1}%",
            strategy.name(),
            100.0 * pool_acc / trials as f64,
            100.0 * eval_acc / trials as f64
        );
    }
}

fn main() {
    run_suite("balanced pool", 1.0);
    run_suite("imbalanced pool", 10.0);
    println!(
        "\nExpected shape (paper Fig. 2): FIRAL at or near the top on both; \
         Random/K-Means notably weaker on the imbalanced pool."
    );
}
