//! The paper's motivating story, §I + Fig. 2(H): with a limited labeling
//! budget on an *imbalanced* pool, random-ish baselines under-sample rare
//! classes and their accuracy is both lower and high-variance; FIRAL's
//! deterministic Fisher-information objective keeps covering rare classes.
//!
//! This example quantifies that with per-class label counts and
//! class-balanced accuracy.
//!
//! Run with: `cargo run --release --example imbalanced_rescue`

use firal::core::{run_experiment, ApproxFiral, RandomStrategy, Strategy};
use firal::data::SyntheticConfig;
use firal::logreg::TrainConfig;

fn main() {
    // 8 classes with a 10:1 size ratio — rare classes have few pool points.
    let dataset = SyntheticConfig::new(8, 16)
        .with_pool_size(800)
        .with_initial_per_class(1)
        .with_eval_size(800)
        .with_separation(2.6)
        .with_imbalance(10.0)
        .with_seed(11)
        .generate::<f64>();

    println!("pool class counts: {:?}", dataset.pool_class_counts());
    let rounds = 3;
    let budget = 16;
    let train = TrainConfig::default();

    let report = |name: &str, strategy: &dyn Strategy<f64>, trials: u64| {
        let mut eval = Vec::new();
        let mut balanced = Vec::new();
        let mut rare_labels = Vec::new();
        for trial in 0..trials {
            let res = run_experiment(&dataset, strategy, rounds, budget, trial, &train)
                .expect("experiment failed");
            let last = res.rounds.last().unwrap();
            eval.push(last.eval_accuracy);
            balanced.push(last.balanced_eval_accuracy);
            // How many of the bought labels came from the three rarest
            // classes (5, 6, 7 in the geometric profile)?
            let rare = res
                .acquired
                .iter()
                .filter(|&&i| dataset.pool_labels[i] >= 5)
                .count();
            rare_labels.push(rare as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let std = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        println!(
            "{:<14} eval {:>5.1}% ± {:>4.1}   balanced {:>5.1}%   rare-class labels {:>4.1}/{}",
            name,
            100.0 * mean(&eval),
            100.0 * std(&eval),
            100.0 * mean(&balanced),
            mean(&rare_labels),
            rounds * budget,
        );
    };

    report("Random", &RandomStrategy, 8);
    report("Approx-FIRAL", &ApproxFiral::default(), 1);

    println!(
        "\nExpected shape (paper Fig. 2(C)/(H)): FIRAL holds accuracy under \
         imbalance with low variance, while Random drops and fluctuates; \
         FIRAL also buys proportionally more rare-class labels."
    );
}
