//! Communicator-aware operator composition.
//!
//! The SPMD decomposition of §III-C shards the pool term of `Σ_z` across
//! ranks: each rank applies its local partial operator and the partial
//! results are summed with `MPI_Allreduce`, while the labeled term is
//! replicated and added locally. [`AllreduceOperator`] packages exactly that
//! pattern behind the ordinary [`LinearOperator`] interface, so the CG
//! solver (and any other operator consumer) is written once and runs
//! unchanged on one rank (`SelfComm`, where the reduction is a no-op) or on
//! a full process group.

use firal_comm::{CommScalar, Communicator, ReduceOp};
use firal_linalg::{BlockDiag, Matrix};

use crate::op::LinearOperator;

/// Delta-Allreduce of block-diagonal partial sums: the **streaming**
/// counterpart of the [`AllreduceOperator`] full-sum seam. Where the full
/// seam reduces every block of a §III-C partial sum on every call, this one
/// ships only the blocks some rank actually changed since the last sync.
///
/// Protocol (collective — every rank must call with the same block
/// geometry): first the per-block changed flags are agreed with one small
/// Max-Allreduce, then the union of flagged blocks is packed in ascending
/// block order and Sum-Allreduced in a single payload. On return `deltas`
/// holds the **reduced** delta for every globally flagged block (unflagged
/// blocks are untouched) and `changed` holds the global flag union.
///
/// Determinism: the flag union is order-insensitive (Max over {0,1}) and
/// the payload reduction inherits the backend's rank-ordered deterministic
/// Sum, so for a fixed rank count the reduced deltas are bitwise identical
/// across backends, threads, and repeated runs; block packing order is
/// ascending block index on every rank by construction.
pub fn delta_allreduce_blocks<T: CommScalar>(
    comm: &dyn Communicator,
    deltas: &mut BlockDiag<T>,
    changed: &mut [bool],
) {
    let cm1 = deltas.nblocks();
    assert_eq!(changed.len(), cm1, "changed mask / block count mismatch");
    let d = deltas.dim();

    // Agree on the union of changed blocks.
    let mut flags: Vec<f64> = changed.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect();
    comm.allreduce_f64(&mut flags, ReduceOp::Max);
    for (c, f) in changed.iter_mut().zip(flags.iter()) {
        *c = *f > 0.5;
    }

    // Pack only the flagged blocks (ascending block order) and reduce them
    // in one payload.
    let flagged: Vec<usize> = (0..cm1).filter(|&k| changed[k]).collect();
    if flagged.is_empty() {
        return;
    }
    let mut flat: Vec<T> = Vec::with_capacity(flagged.len() * d * d);
    for &k in &flagged {
        flat.extend_from_slice(deltas.block(k).as_slice());
    }
    T::allreduce(comm, &mut flat, ReduceOp::Sum);
    for (slot, &k) in flagged.iter().enumerate() {
        deltas
            .block_mut(k)
            .as_mut_slice()
            .copy_from_slice(&flat[slot * d * d..(slot + 1) * d * d]);
    }
}

/// `A = allreduce(A_local) + A_replicated`: a distributed operator whose
/// matvec performs the §III-C partial-sum Allreduce.
///
/// `local` is this rank's shard of the pool term (partial sums); the
/// optional `replicated` term is identical on every rank and is added
/// *after* the reduction so it is counted exactly once.
pub struct AllreduceOperator<'a, T: CommScalar> {
    comm: &'a dyn Communicator,
    local: &'a dyn LinearOperator<T>,
    replicated: Option<&'a dyn LinearOperator<T>>,
}

impl<'a, T: CommScalar> AllreduceOperator<'a, T> {
    /// Compose a sharded operator (and an optional replicated term) over a
    /// communicator.
    pub fn new(
        comm: &'a dyn Communicator,
        local: &'a dyn LinearOperator<T>,
        replicated: Option<&'a dyn LinearOperator<T>>,
    ) -> Self {
        if let Some(rep) = replicated {
            assert_eq!(
                rep.dim(),
                local.dim(),
                "replicated term dimension disagrees with the local shard"
            );
        }
        Self {
            comm,
            local,
            replicated,
        }
    }
}

impl<T: CommScalar> LinearOperator<T> for AllreduceOperator<'_, T> {
    fn dim(&self) -> usize {
        self.local.dim()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        self.local.apply(x, y);
        T::allreduce(self.comm, y, ReduceOp::Sum);
        if let Some(rep) = self.replicated {
            let mut tmp = vec![T::ZERO; y.len()];
            rep.apply(x, &mut tmp);
            for (a, b) in y.iter_mut().zip(tmp.iter()) {
                *a += *b;
            }
        }
    }

    fn apply_panel(&self, x: &Matrix<T>) -> Matrix<T> {
        let mut out = self.local.apply_panel(x);
        T::allreduce(self.comm, out.as_mut_slice(), ReduceOp::Sum);
        if let Some(rep) = self.replicated {
            let rep_part = rep.apply_panel(x);
            out.add_scaled(T::ONE, &rep_part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOperator;
    use firal_comm::{launch, SelfComm};
    use firal_linalg::Matrix;

    fn diag_op(entries: &[f64]) -> DenseOperator<f64> {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        DenseOperator::new(m)
    }

    #[test]
    fn selfcomm_is_local_plus_replicated() {
        let comm = SelfComm::new();
        let local = diag_op(&[1.0, 2.0, 3.0]);
        let rep = diag_op(&[10.0, 10.0, 10.0]);
        let op = AllreduceOperator::new(&comm, &local, Some(&rep));
        let mut y = vec![0.0; 3];
        op.apply(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn multi_rank_sums_partial_operators() {
        let results = launch(3, |comm| {
            // Rank r contributes diag(r + 1): the reduced operator is
            // diag(1 + 2 + 3) = 6·I, plus a replicated identity = 7·I.
            let local = diag_op(&[comm.rank() as f64 + 1.0; 4]);
            let rep = diag_op(&[1.0; 4]);
            let op = AllreduceOperator::new(comm, &local, Some(&rep));
            let panel = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
            op.apply_panel(&panel)
        });
        for out in &results {
            for i in 0..4 {
                for j in 0..2 {
                    assert_eq!(out[(i, j)], 7.0 * (i + j) as f64);
                }
            }
        }
    }

    #[test]
    fn delta_allreduce_ships_only_flagged_blocks() {
        use firal_linalg::BlockDiag;
        let results = launch(3, |comm| {
            let mut bd = BlockDiag::<f64>::zeros(4, 2);
            let mut changed = [false; 4];
            // Rank r changed block r only; block 3 is touched by nobody.
            let r = comm.rank();
            changed[r] = true;
            bd.block_mut(r).add_diag((r + 1) as f64);
            super::delta_allreduce_blocks(comm, &mut bd, &mut changed);
            (bd, changed)
        });
        for (bd, changed) in &results {
            assert_eq!(changed, &[true, true, true, false]);
            for k in 0..3 {
                for i in 0..2 {
                    assert_eq!(bd.block(k)[(i, i)], (k + 1) as f64, "block {k}");
                }
            }
            // The unflagged block was never shipped nor written.
            assert_eq!(bd.block(3).max_abs(), 0.0);
        }
    }

    #[test]
    fn delta_allreduce_with_no_changes_is_a_cheap_no_op() {
        let comm = SelfComm::new();
        let mut bd = firal_linalg::BlockDiag::<f64>::zeros(2, 3);
        let mut changed = [false; 2];
        super::delta_allreduce_blocks(&comm, &mut bd, &mut changed);
        assert_eq!(changed, [false, false]);
        assert_eq!(bd.block(0).max_abs(), 0.0);
    }

    #[test]
    fn panel_and_vector_paths_agree() {
        let comm = SelfComm::new();
        let local = diag_op(&[2.0, 5.0]);
        let op = AllreduceOperator::new(&comm, &local, None);
        let panel = Matrix::from_fn(2, 3, |i, j| (1 + i * 3 + j) as f64);
        let by_panel = op.apply_panel(&panel);
        for j in 0..3 {
            let mut y = vec![0.0; 2];
            op.apply(&panel.col(j), &mut y);
            for i in 0..2 {
                assert_eq!(by_panel[(i, j)], y[i]);
            }
        }
    }
}
