//! Communicator-aware operator composition.
//!
//! The SPMD decomposition of §III-C shards the pool term of `Σ_z` across
//! ranks: each rank applies its local partial operator and the partial
//! results are summed with `MPI_Allreduce`, while the labeled term is
//! replicated and added locally. [`AllreduceOperator`] packages exactly that
//! pattern behind the ordinary [`LinearOperator`] interface, so the CG
//! solver (and any other operator consumer) is written once and runs
//! unchanged on one rank (`SelfComm`, where the reduction is a no-op) or on
//! a full process group.

use firal_comm::{CommScalar, Communicator, ReduceOp};
use firal_linalg::Matrix;

use crate::op::LinearOperator;

/// `A = allreduce(A_local) + A_replicated`: a distributed operator whose
/// matvec performs the §III-C partial-sum Allreduce.
///
/// `local` is this rank's shard of the pool term (partial sums); the
/// optional `replicated` term is identical on every rank and is added
/// *after* the reduction so it is counted exactly once.
pub struct AllreduceOperator<'a, T: CommScalar> {
    comm: &'a dyn Communicator,
    local: &'a dyn LinearOperator<T>,
    replicated: Option<&'a dyn LinearOperator<T>>,
}

impl<'a, T: CommScalar> AllreduceOperator<'a, T> {
    /// Compose a sharded operator (and an optional replicated term) over a
    /// communicator.
    pub fn new(
        comm: &'a dyn Communicator,
        local: &'a dyn LinearOperator<T>,
        replicated: Option<&'a dyn LinearOperator<T>>,
    ) -> Self {
        if let Some(rep) = replicated {
            assert_eq!(
                rep.dim(),
                local.dim(),
                "replicated term dimension disagrees with the local shard"
            );
        }
        Self {
            comm,
            local,
            replicated,
        }
    }
}

impl<T: CommScalar> LinearOperator<T> for AllreduceOperator<'_, T> {
    fn dim(&self) -> usize {
        self.local.dim()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        self.local.apply(x, y);
        T::allreduce(self.comm, y, ReduceOp::Sum);
        if let Some(rep) = self.replicated {
            let mut tmp = vec![T::ZERO; y.len()];
            rep.apply(x, &mut tmp);
            for (a, b) in y.iter_mut().zip(tmp.iter()) {
                *a += *b;
            }
        }
    }

    fn apply_panel(&self, x: &Matrix<T>) -> Matrix<T> {
        let mut out = self.local.apply_panel(x);
        T::allreduce(self.comm, out.as_mut_slice(), ReduceOp::Sum);
        if let Some(rep) = self.replicated {
            let rep_part = rep.apply_panel(x);
            out.add_scaled(T::ONE, &rep_part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOperator;
    use firal_comm::{launch, SelfComm};
    use firal_linalg::Matrix;

    fn diag_op(entries: &[f64]) -> DenseOperator<f64> {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        DenseOperator::new(m)
    }

    #[test]
    fn selfcomm_is_local_plus_replicated() {
        let comm = SelfComm::new();
        let local = diag_op(&[1.0, 2.0, 3.0]);
        let rep = diag_op(&[10.0, 10.0, 10.0]);
        let op = AllreduceOperator::new(&comm, &local, Some(&rep));
        let mut y = vec![0.0; 3];
        op.apply(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn multi_rank_sums_partial_operators() {
        let results = launch(3, |comm| {
            // Rank r contributes diag(r + 1): the reduced operator is
            // diag(1 + 2 + 3) = 6·I, plus a replicated identity = 7·I.
            let local = diag_op(&[comm.rank() as f64 + 1.0; 4]);
            let rep = diag_op(&[1.0; 4]);
            let op = AllreduceOperator::new(comm, &local, Some(&rep));
            let panel = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
            op.apply_panel(&panel)
        });
        for out in &results {
            for i in 0..4 {
                for j in 0..2 {
                    assert_eq!(out[(i, j)], 7.0 * (i + j) as f64);
                }
            }
        }
    }

    #[test]
    fn panel_and_vector_paths_agree() {
        let comm = SelfComm::new();
        let local = diag_op(&[2.0, 5.0]);
        let op = AllreduceOperator::new(&comm, &local, None);
        let panel = Matrix::from_fn(2, 3, |i, j| (1 + i * 3 + j) as f64);
        let by_panel = op.apply_panel(&panel);
        for j in 0..3 {
            let mut y = vec![0.0; 2];
            op.apply(&panel.col(j), &mut y);
            for i in 0..2 {
                assert_eq!(by_panel[(i, j)], y[i]);
            }
        }
    }
}
