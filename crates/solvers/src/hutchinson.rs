//! Hutchinson randomized trace estimation with Rademacher probes.
//!
//! Eq. 12 of the paper: `g_i ≈ -(1/s) Σ_j v_jᵀ H_i (Σ_z⁻¹ H_p Σ_z⁻¹ v_j)`
//! with `v_j ∈ {±1}^ê`. This module provides the probe generation and the
//! generic estimator `Tr(A) ≈ (1/s) Σ_j v_jᵀ A v_j`; the RELAX solver
//! assembles the full gradient pipeline on top.

use firal_linalg::{Matrix, Scalar};
use rand::Rng;

use crate::op::LinearOperator;

/// One Rademacher probe vector (entries ±1, each with probability ½).
pub fn rademacher_vector<T: Scalar, R: Rng>(dim: usize, rng: &mut R) -> Vec<T> {
    (0..dim)
        .map(|_| if rng.gen::<bool>() { T::ONE } else { -T::ONE })
        .collect()
}

/// An `dim × s` panel of Rademacher probes (Line 4 of Algorithm 2).
pub fn rademacher_panel<T: Scalar, R: Rng>(dim: usize, s: usize, rng: &mut R) -> Matrix<T> {
    let mut m = Matrix::zeros(dim, s);
    for i in 0..dim {
        let row = m.row_mut(i);
        for v in row.iter_mut() {
            *v = if rng.gen::<bool>() { T::ONE } else { -T::ONE };
        }
    }
    m
}

/// Estimate `Tr(A)` with `s` Rademacher probes: `(1/s) Σ_j v_jᵀ A v_j`.
///
/// Unbiased for any square `A`; variance `2(‖A‖_F² - Σ A_ii²)/s` for
/// symmetric `A` (Hutchinson 1990).
pub fn hutchinson_trace<T: Scalar, R: Rng>(op: &dyn LinearOperator<T>, s: usize, rng: &mut R) -> T {
    assert!(s > 0, "hutchinson_trace needs at least one probe");
    let n = op.dim();
    let mut acc = T::ZERO;
    let mut av = vec![T::ZERO; n];
    for _ in 0..s {
        let v: Vec<T> = rademacher_vector(n, rng);
        op.apply(&v, &mut av);
        acc += firal_linalg::dot(&v, &av);
    }
    acc / T::from_usize(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOperator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probes_are_plus_minus_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<f64> = rademacher_vector(1000, &mut rng);
        assert!(v.iter().all(|&x| x == 1.0 || x == -1.0));
        // Roughly balanced.
        let sum: f64 = v.iter().sum();
        assert!(sum.abs() < 150.0, "suspiciously unbalanced: {sum}");
    }

    #[test]
    fn panel_shape_and_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let p: Matrix<f32> = rademacher_panel(8, 3, &mut rng);
        assert_eq!(p.shape(), (8, 3));
        assert!(p.as_slice().iter().all(|&x| x == 1.0 || x == -1.0));
    }

    #[test]
    fn trace_estimate_is_exact_for_diagonal_with_many_probes() {
        // For diagonal A, vᵀAv = Σ A_ii v_i² = Tr(A) exactly, per probe.
        let a = Matrix::from_diag(&[1.0, 2.0, 3.0, 4.0]);
        let op = DenseOperator::new(a);
        let mut rng = StdRng::seed_from_u64(3);
        let t = hutchinson_trace(&op, 1, &mut rng);
        assert!((t - 10.0).abs() < 1e-12);
    }

    #[test]
    fn trace_estimate_converges_statistically() {
        // Dense symmetric matrix: estimator is unbiased; with s=2000 probes
        // the deviation should be well within a few std deviations.
        let n = 6;
        let mut a = Matrix::from_fn(n, n, |i, j| ((i * n + j) % 5) as f64 * 0.2 - 0.4);
        a.symmetrize();
        for i in 0..n {
            a[(i, i)] += 2.0;
        }
        let tr = a.trace();
        let op = DenseOperator::new(a);
        let mut rng = StdRng::seed_from_u64(4);
        let t = hutchinson_trace(&op, 2000, &mut rng);
        assert!(
            (t - tr).abs() < 0.25,
            "estimate {t} too far from true trace {tr}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Matrix::from_diag(&[5.0f32, 1.0]);
        let op = DenseOperator::new(a);
        let t1 = hutchinson_trace(&op, 4, &mut StdRng::seed_from_u64(9));
        let t2 = hutchinson_trace(&op, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1, t2);
    }
}
