//! Lanczos tridiagonalization for spectrum estimation.
//!
//! The paper's §V lists its own ROUND-step eigensolves as a scalability
//! limitation: "eigenvalue solves in the ROUND step ... are performed
//! exactly. These methods are not scalable for certain parameters and
//! could be replaced with ... iterative solvers. We aim to incorporate
//! these improvements in future versions of the algorithm."
//!
//! This module provides that future-work component: a matrix-free Lanczos
//! iteration with full reorthogonalization, returning Ritz values that
//! approximate the spectrum of a symmetric operator after `k ≪ d` matvecs.
//! `firal-core::round` can consume it in place of the dense QL solve (the
//! `ablation_lanczos` bench binary quantifies the trade-off: the FTRL
//! normalization `ν_t` only needs the spectrum through `Σ (ν+ηλ)⁻² = 1`,
//! which Ritz values approximate well because the extremal eigenvalues —
//! the ones that dominate the sum — converge first).

use firal_linalg::{eigh, Matrix, Scalar};
use rand::Rng;

use crate::op::LinearOperator;

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult<T> {
    /// Ritz values (ascending) — approximations to eigenvalues of the
    /// operator, exact when `steps == dim`.
    pub ritz_values: Vec<T>,
    /// Number of Lanczos steps actually performed (early termination on
    /// Krylov-space exhaustion is possible).
    pub steps: usize,
}

/// Run `k` steps of Lanczos with full reorthogonalization from a random
/// start vector, returning the Ritz values of the tridiagonal section.
///
/// Full reorthogonalization costs `O(k²·dim)` but keeps the Ritz values
/// honest without ghost-eigenvalue filtering; for the `k ≪ d` regimes this
/// is negligible next to the `k` operator applications.
pub fn lanczos_spectrum<T: Scalar, R: Rng>(
    op: &dyn LinearOperator<T>,
    k: usize,
    rng: &mut R,
) -> LanczosResult<T> {
    let n = op.dim();
    let k = k.min(n).max(1);

    // Random unit start vector.
    let mut q = vec![T::ZERO; n];
    for v in q.iter_mut() {
        *v = if rng.gen::<bool>() { T::ONE } else { -T::ONE };
    }
    let norm = firal_linalg::nrm2(&q);
    firal_linalg::scale(T::ONE / norm, &mut q);

    let mut basis: Vec<Vec<T>> = Vec::with_capacity(k);
    let mut alphas: Vec<T> = Vec::with_capacity(k);
    let mut betas: Vec<T> = Vec::with_capacity(k.saturating_sub(1));
    let mut w = vec![T::ZERO; n];

    basis.push(q.clone());
    for step in 0..k {
        op.apply(&basis[step], &mut w);
        let alpha = firal_linalg::dot(&basis[step], &w);
        alphas.push(alpha);
        // w ← w - α q_j - β q_{j-1}
        firal_linalg::axpy(-alpha, &basis[step], &mut w);
        if step > 0 {
            let beta_prev = betas[step - 1];
            firal_linalg::axpy(-beta_prev, &basis[step - 1], &mut w);
        }
        // Full reorthogonalization (twice is enough).
        for _ in 0..2 {
            for qb in &basis {
                let proj = firal_linalg::dot(qb, &w);
                firal_linalg::axpy(-proj, qb, &mut w);
            }
        }
        let beta = firal_linalg::nrm2(&w);
        if step + 1 == k || beta <= T::EPSILON.sqrt() {
            break;
        }
        betas.push(beta);
        let mut next = w.clone();
        firal_linalg::scale(T::ONE / beta, &mut next);
        basis.push(next);
    }

    // Eigenvalues of the tridiagonal section via the dense symmetric solver
    // (the section is tiny: k×k).
    let m = alphas.len();
    let mut tri = Matrix::<T>::zeros(m, m);
    for i in 0..m {
        tri[(i, i)] = alphas[i];
        if i + 1 < m && i < betas.len() {
            tri[(i, i + 1)] = betas[i];
            tri[(i + 1, i)] = betas[i];
        }
    }
    let ritz = eigh(&tri).expect("tridiagonal eigensolve").values;
    LanczosResult {
        ritz_values: ritz,
        steps: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOperator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd(n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = firal_linalg::gemm_a_bt(&b, &b);
        a.add_diag(0.5);
        a
    }

    #[test]
    fn full_lanczos_recovers_exact_spectrum() {
        let a = spd(10, 1);
        let exact = firal_linalg::eigvalsh(&a).unwrap();
        let op = DenseOperator::new(a);
        let mut rng = StdRng::seed_from_u64(2);
        let res = lanczos_spectrum(&op, 10, &mut rng);
        assert_eq!(res.steps, 10);
        for (r, e) in res.ritz_values.iter().zip(exact.iter()) {
            assert!((r - e).abs() < 1e-7, "{r} vs {e}");
        }
    }

    #[test]
    fn extremal_ritz_values_converge_first() {
        let a = spd(40, 3);
        let exact = firal_linalg::eigvalsh(&a).unwrap();
        let op = DenseOperator::new(a);
        let mut rng = StdRng::seed_from_u64(4);
        let res = lanczos_spectrum(&op, 12, &mut rng);
        let lmax_exact = *exact.last().unwrap();
        let lmax_ritz = *res.ritz_values.last().unwrap();
        assert!(
            (lmax_ritz - lmax_exact).abs() / lmax_exact < 0.01,
            "λ_max: ritz {lmax_ritz} vs exact {lmax_exact}"
        );
        // Ritz values interlace: all within the exact spectral range.
        let lmin_exact = exact[0];
        for &r in &res.ritz_values {
            assert!(r >= lmin_exact - 1e-8 && r <= lmax_exact + 1e-8);
        }
    }

    #[test]
    fn diagonal_matrix_spectrum() {
        let diag: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let a = Matrix::from_diag(&diag);
        let op = DenseOperator::new(a);
        let mut rng = StdRng::seed_from_u64(5);
        let res = lanczos_spectrum(&op, 8, &mut rng);
        for (r, e) in res.ritz_values.iter().zip(diag.iter()) {
            assert!((r - e).abs() < 1e-8, "{r} vs {e}");
        }
    }

    #[test]
    fn early_termination_on_low_rank() {
        // Rank-2 operator: Krylov space exhausts after ≤3 steps from a
        // generic start vector.
        let mut a = Matrix::<f64>::zeros(12, 12);
        a[(0, 0)] = 5.0;
        a[(1, 1)] = 2.0;
        let op = DenseOperator::new(a);
        let mut rng = StdRng::seed_from_u64(6);
        let res = lanczos_spectrum(&op, 12, &mut rng);
        assert!(
            res.steps <= 4,
            "expected exhaustion, ran {} steps",
            res.steps
        );
        let top = *res.ritz_values.last().unwrap();
        assert!((top - 5.0).abs() < 1e-6);
    }

    #[test]
    fn nu_solve_from_ritz_matches_exact_spectrum() {
        // The downstream use: ν from Ritz values ≈ ν from the full
        // spectrum (the FTRL normalization of Algorithm 3 line 10).
        let a = spd(30, 7);
        let exact = firal_linalg::eigvalsh(&a).unwrap();
        let op = DenseOperator::new(a);
        let mut rng = StdRng::seed_from_u64(8);
        let ritz = lanczos_spectrum(&op, 15, &mut rng).ritz_values;
        // Pad the Ritz spectrum to full length by repeating interior values
        // proportionally (simple density surrogate).
        let mut padded = Vec::with_capacity(30);
        for i in 0..30 {
            let j = i * ritz.len() / 30;
            padded.push(ritz[j]);
        }
        let nu_exact = crate::bisection::solve_nu(&exact, 2.0);
        let nu_ritz = crate::bisection::solve_nu(&padded, 2.0);
        let rel = ((nu_exact - nu_ritz) / nu_exact).abs();
        // The piecewise-constant density surrogate is coarse at half the
        // Krylov budget — same order of magnitude is what the ROUND
        // backoff needs (exactness at k = dim is covered above).
        assert!(rel < 0.5, "ν mismatch: {nu_exact} vs {nu_ritz} ({rel})");
        assert!(
            nu_ritz > 0.0 || nu_ritz + 2.0 * exact[0] > 0.0,
            "A_t must stay PD"
        );
    }
}
