//! Bisection root finding, and the FTRL normalization solve.
//!
//! At every ROUND iteration the follow-the-regularized-leader matrix is
//! `A_{t+1} = ν_{t+1} I + η H̃_t` with `ν_{t+1}` the unique scalar making
//! `Tr(A_{t+1}^{-2}) = 1`, i.e. `Σ_j (ν + ηλ_j)^{-2} = 1` over the
//! eigenvalues `λ_j` of `H̃_t` (Algorithm 1 line 17, Algorithm 3 line 10).
//! The left side is strictly decreasing in `ν` on `(-ηλ_min, ∞)`, so the
//! root brackets cleanly and bisection is exact enough and branch-free.

use firal_linalg::Scalar;

/// Generic bisection: find `x ∈ (lo, hi)` with `f(x) = 0`, assuming
/// `f(lo) > 0 > f(hi)` (strictly decreasing `f`). Panics if the bracket is
/// invalid in debug builds; converges to `tol` on the argument.
pub fn bisect<T: Scalar>(f: impl Fn(T) -> T, mut lo: T, mut hi: T, tol: T, max_iter: usize) -> T {
    debug_assert!(lo < hi, "bisect: invalid bracket");
    let mut mid = (lo + hi) * T::HALF;
    for _ in 0..max_iter {
        mid = (lo + hi) * T::HALF;
        if hi - lo <= tol {
            break;
        }
        let fm = f(mid);
        if fm > T::ZERO {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    mid
}

/// Solve `Σ_j (ν + η λ_j)^{-2} = 1` for `ν`.
///
/// `lambdas` are the eigenvalues of the accumulated whitened Hessian `H̃_t`
/// (all non-negative up to rounding) and `η > 0` the FTRL learning rate.
/// Returns the unique `ν > -η λ_min` satisfying the trace normalization.
pub fn solve_nu<T: Scalar>(lambdas: &[T], eta: T) -> T {
    assert!(!lambdas.is_empty(), "solve_nu needs a non-empty spectrum");
    let m = T::from_usize(lambdas.len());

    let lam_min = lambdas
        .iter()
        .fold(T::INFINITY, |acc, &v| acc.minv(eta * v));

    let g = |nu: T| -> T {
        let mut acc = T::ZERO;
        for &l in lambdas {
            let t = nu + eta * l;
            acc += T::ONE / (t * t);
        }
        acc - T::ONE
    };

    // Lower end: ν → -λ'_min⁺ makes g → +∞. Step in from the pole until g>0.
    let span = m.sqrt().maxv(T::ONE);
    let mut lo = -lam_min + T::from_f64(1e-12).maxv(T::EPSILON * span);
    while !g(lo).is_finite() || g(lo) <= T::ZERO {
        // If even just inside the pole g ≤ 0 the root is further right of
        // the pole; nudge right geometrically (handles λ'_min huge).
        lo += (span + lam_min.abs()) * T::from_f64(1e-6);
        if lo > span * T::TWO {
            break;
        }
    }
    // Upper end: ν = √m ⇒ each term ≤ 1/m (λ' ≥ 0) ⇒ g ≤ 0.
    let mut hi = span;
    while g(hi) > T::ZERO {
        hi *= T::TWO;
    }

    let tol = T::EPSILON.sqrt() * span;
    bisect(g, lo, hi, tol, 200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        // f(x) = 2 - x², decreasing on [0, 2], root at √2.
        let root = bisect(|x: f64| 2.0 - x * x, 0.0, 2.0, 1e-12, 100);
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn nu_for_zero_spectrum_is_sqrt_m() {
        // λ = 0: Σ ν⁻² = m/ν² = 1 ⇒ ν = √m. This is exactly the
        // initialization A₁ = √ê·I of the ROUND step.
        for m in [1usize, 4, 16, 100] {
            let lambdas = vec![0.0f64; m];
            let nu = solve_nu(&lambdas, 1.0);
            assert!(
                (nu - (m as f64).sqrt()).abs() < 1e-6,
                "m={m}: ν={nu} vs {}",
                (m as f64).sqrt()
            );
        }
    }

    #[test]
    fn nu_satisfies_normalization() {
        let lambdas = vec![0.1f64, 0.5, 1.0, 2.0, 7.5];
        let eta = 3.0;
        let nu = solve_nu(&lambdas, eta);
        let sum: f64 = lambdas.iter().map(|&l| (nu + eta * l).powi(-2)).sum();
        assert!((sum - 1.0).abs() < 1e-6, "normalization off: {sum}");
    }

    #[test]
    fn nu_can_go_negative_for_large_spectrum() {
        // If all λ' are huge, ν must be negative to pull terms up to sum 1.
        let lambdas = vec![100.0f64; 4];
        let nu = solve_nu(&lambdas, 1.0);
        assert!(nu < 0.0);
        let sum: f64 = lambdas.iter().map(|&l| (nu + l).powi(-2)).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // A stays PD: ν + λ'_min > 0
        assert!(nu + 100.0 > 0.0);
    }

    #[test]
    fn nu_f32_matches_f64_loosely() {
        let l64 = vec![0.2f64, 0.9, 3.0];
        let l32: Vec<f32> = l64.iter().map(|&x| x as f32).collect();
        let n64 = solve_nu(&l64, 2.0);
        let n32 = solve_nu(&l32, 2.0f32);
        assert!((n64 - n32 as f64).abs() < 1e-3);
    }
}
