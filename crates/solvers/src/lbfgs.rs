//! Limited-memory BFGS with a weak-Wolfe (Lewis–Overton bracketing) line
//! search.
//!
//! Stands in for scikit-learn's `LogisticRegression(solver="lbfgs")`, the
//! classifier the paper trains after every active-learning round (§IV-A).
//! Generic over the objective: the caller provides `f(x, grad) -> value`
//! writing the gradient in place. The Wolfe curvature condition is enforced
//! so every stored correction pair has `sᵀy > 0`, keeping the implicit
//! Hessian approximation positive definite.

use firal_linalg::Scalar;

/// L-BFGS hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LbfgsConfig<T> {
    /// History length (number of (s, y) pairs kept).
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Gradient-norm stopping tolerance (relative to max(1, ‖x‖)).
    pub grad_tol: T,
    /// Armijo sufficient-decrease constant (Wolfe `c₁`).
    pub armijo_c1: T,
    /// Curvature constant (Wolfe `c₂`, with `c₁ < c₂ < 1`).
    pub wolfe_c2: T,
    /// Maximum line-search steps per iteration.
    pub max_line_search: usize,
}

impl<T: Scalar> Default for LbfgsConfig<T> {
    fn default() -> Self {
        Self {
            memory: 10,
            max_iter: 200,
            grad_tol: T::from_f64(1e-6),
            armijo_c1: T::from_f64(1e-4),
            wolfe_c2: T::from_f64(0.9),
            max_line_search: 50,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbfgsStatus {
    /// Gradient norm fell below tolerance.
    Converged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// Line search could not find sufficient decrease (flat/noisy region).
    LineSearchFailed,
}

/// Optimization outcome.
#[derive(Debug, Clone)]
pub struct LbfgsResult<T> {
    /// Final iterate.
    pub x: Vec<T>,
    /// Final objective value.
    pub value: T,
    /// Final gradient norm.
    pub grad_norm: T,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Stopping reason.
    pub status: LbfgsStatus,
}

/// Minimize `f` starting from `x0`.
///
/// `f(x, grad)` must return the objective value and fill `grad` with the
/// gradient at `x`.
pub fn lbfgs_minimize<T: Scalar>(
    mut f: impl FnMut(&[T], &mut [T]) -> T,
    x0: &[T],
    config: &LbfgsConfig<T>,
) -> LbfgsResult<T> {
    let n = x0.len();
    let m = config.memory.max(1);

    let mut x = x0.to_vec();
    let mut grad = vec![T::ZERO; n];
    let mut value = f(&x, &mut grad);

    // Ring buffers of correction pairs.
    let mut s_hist: Vec<Vec<T>> = Vec::with_capacity(m);
    let mut y_hist: Vec<Vec<T>> = Vec::with_capacity(m);
    let mut rho_hist: Vec<T> = Vec::with_capacity(m);

    let mut status = LbfgsStatus::MaxIterations;
    let mut iterations = 0usize;

    for _ in 0..config.max_iter {
        let gnorm = firal_linalg::nrm2(&grad);
        let xnorm = firal_linalg::nrm2(&x).maxv(T::ONE);
        if gnorm <= config.grad_tol * xnorm {
            status = LbfgsStatus::Converged;
            break;
        }
        iterations += 1;

        // Two-loop recursion: direction = -H·grad.
        let mut q = grad.clone();
        let k = s_hist.len();
        let mut alphas = vec![T::ZERO; k];
        for i in (0..k).rev() {
            let alpha = rho_hist[i] * firal_linalg::dot(&s_hist[i], &q);
            alphas[i] = alpha;
            firal_linalg::axpy(-alpha, &y_hist[i], &mut q);
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy of the newest pair.
        if k > 0 {
            let sy = firal_linalg::dot(&s_hist[k - 1], &y_hist[k - 1]);
            let yy = firal_linalg::dot(&y_hist[k - 1], &y_hist[k - 1]);
            if yy > T::ZERO && sy > T::ZERO {
                firal_linalg::scale(sy / yy, &mut q);
            }
        }
        for i in 0..k {
            let beta = rho_hist[i] * firal_linalg::dot(&y_hist[i], &q);
            firal_linalg::axpy(alphas[i] - beta, &s_hist[i], &mut q);
        }
        // q is now H·grad; direction is -q.
        let dir_dot_grad = -firal_linalg::dot(&q, &grad);
        let mut dir = q;
        firal_linalg::scale(-T::ONE, &mut dir);
        let (dir, dir_dot_grad) = if dir_dot_grad < T::ZERO {
            (dir, dir_dot_grad)
        } else {
            // Not a descent direction (can happen right after history reset
            // on ill-scaled problems): fall back to steepest descent.
            let mut d = grad.clone();
            firal_linalg::scale(-T::ONE, &mut d);
            let ddg = -firal_linalg::dot(&grad, &grad);
            (d, ddg)
        };

        // Weak-Wolfe line search by bracketing (Lewis–Overton): shrink on
        // Armijo failure, grow on curvature failure, bisect once bracketed.
        let mut step = T::ONE;
        let mut lo = T::ZERO;
        let mut hi = T::INFINITY;
        let mut new_x = x.clone();
        let mut new_grad = vec![T::ZERO; n];
        let mut ls_ok = false;
        for _ in 0..config.max_line_search {
            new_x.copy_from_slice(&x);
            firal_linalg::axpy(step, &dir, &mut new_x);
            let new_value = f(&new_x, &mut new_grad);
            let armijo = new_value.is_finite()
                && new_value <= value + config.armijo_c1 * step * dir_dot_grad;
            if !armijo {
                hi = step;
                step = (lo + hi) * T::HALF;
                continue;
            }
            let dg_new = firal_linalg::dot(&dir, &new_grad);
            if dg_new < config.wolfe_c2 * dir_dot_grad {
                // Not enough curvature captured: move right.
                lo = step;
                step = if hi == T::INFINITY {
                    step * T::TWO
                } else {
                    (lo + hi) * T::HALF
                };
                continue;
            }
            // Accept; update history.
            let mut s = new_x.clone();
            for (si, &xi) in s.iter_mut().zip(x.iter()) {
                *si -= xi;
            }
            let mut yv = new_grad.clone();
            for (yi, &gi) in yv.iter_mut().zip(grad.iter()) {
                *yi -= gi;
            }
            let sy = firal_linalg::dot(&s, &yv);
            if sy > T::EPSILON {
                if s_hist.len() == m {
                    s_hist.remove(0);
                    y_hist.remove(0);
                    rho_hist.remove(0);
                }
                rho_hist.push(T::ONE / sy);
                s_hist.push(s);
                y_hist.push(yv);
            }
            x.copy_from_slice(&new_x);
            grad.copy_from_slice(&new_grad);
            value = new_value;
            ls_ok = true;
            break;
        }
        if !ls_ok {
            status = LbfgsStatus::LineSearchFailed;
            break;
        }
    }

    let grad_norm = firal_linalg::nrm2(&grad);
    if grad_norm <= config.grad_tol * firal_linalg::nrm2(&x).maxv(T::ONE) {
        status = LbfgsStatus::Converged;
    }
    LbfgsResult {
        x,
        value,
        grad_norm,
        iterations,
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f = ½(x-a)ᵀD(x-a)
        let a = [1.0f64, -2.0, 3.0];
        let d = [2.0f64, 5.0, 0.5];
        let res = lbfgs_minimize(
            |x, g| {
                let mut v = 0.0;
                for i in 0..3 {
                    let r = x[i] - a[i];
                    g[i] = d[i] * r;
                    v += 0.5 * d[i] * r * r;
                }
                v
            },
            &[0.0; 3],
            &LbfgsConfig::default(),
        );
        assert_eq!(res.status, LbfgsStatus::Converged);
        for i in 0..3 {
            assert!((res.x[i] - a[i]).abs() < 1e-5, "x[{i}] = {}", res.x[i]);
        }
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let res = lbfgs_minimize(
            |x, g| {
                let (a, b) = (1.0f64, 100.0f64);
                let f = (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2);
                g[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
                g[1] = 2.0 * b * (x[1] - x[0] * x[0]);
                f
            },
            &[-1.2, 1.0],
            &LbfgsConfig {
                max_iter: 500,
                ..Default::default()
            },
        );
        assert!(
            (res.x[0] - 1.0).abs() < 1e-4 && (res.x[1] - 1.0).abs() < 1e-4,
            "rosenbrock solution: {:?} after {} iters ({:?})",
            res.x,
            res.iterations,
            res.status
        );
    }

    #[test]
    fn converges_immediately_at_optimum() {
        let res = lbfgs_minimize(
            |x, g| {
                g[0] = x[0];
                0.5 * x[0] * x[0]
            },
            &[0.0f64],
            &LbfgsConfig::default(),
        );
        assert_eq!(res.iterations, 0);
        assert_eq!(res.status, LbfgsStatus::Converged);
    }

    #[test]
    fn logistic_1d_regularized() {
        // f = log(1+e^{-x}) + 0.05 x²: strictly convex, unique minimum.
        let res = lbfgs_minimize(
            |x, g| {
                let e = (-x[0]).exp();
                let f = (1.0 + e).ln() + 0.05 * x[0] * x[0];
                g[0] = -e / (1.0 + e) + 0.1 * x[0];
                f
            },
            &[5.0f64],
            &LbfgsConfig::default(),
        );
        assert_eq!(res.status, LbfgsStatus::Converged);
        // Optimality: gradient ≈ 0
        assert!(res.grad_norm < 1e-5);
    }

    #[test]
    fn f32_quadratic() {
        let res = lbfgs_minimize(
            |x, g| {
                g[0] = 2.0f32 * (x[0] - 3.0);
                (x[0] - 3.0) * (x[0] - 3.0)
            },
            &[0.0f32],
            &LbfgsConfig {
                grad_tol: 1e-4,
                ..Default::default()
            },
        );
        assert!((res.x[0] - 3.0).abs() < 1e-3);
    }
}
