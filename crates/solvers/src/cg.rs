//! Preconditioned conjugate gradients, single and batched multi-RHS.
//!
//! Algorithm 2 solves `Σ_z W = V` for an `ê × s` Rademacher panel twice per
//! mirror-descent iteration. The batched solver advances all `s` columns in
//! lock-step so each iteration costs one *panel* operator application — the
//! CPU analogue of the paper batching its CuPy einsum matvecs — and records
//! per-iteration relative residuals for the Fig. 1 study.

use firal_linalg::{Matrix, Scalar};

use crate::op::{LinearOperator, Preconditioner};

/// CG termination controls.
///
/// The paper's RELAX step stops CG "when the relative residual falls below
/// 0.1" (§IV-A); `rel_tol` defaults accordingly. `max_iter` is a safety
/// bound, defaulting to the operator dimension (CG's exact-arithmetic
/// termination bound).
#[derive(Debug, Clone, Copy)]
pub struct CgConfig<T> {
    /// Relative-residual stopping tolerance `‖r‖/‖b‖`.
    pub rel_tol: T,
    /// Maximum iterations (0 ⇒ use the operator dimension).
    pub max_iter: usize,
}

impl<T: Scalar> Default for CgConfig<T> {
    fn default() -> Self {
        Self {
            rel_tol: T::from_f64(0.1),
            max_iter: 0,
        }
    }
}

impl<T: Scalar> CgConfig<T> {
    /// Config with a given relative tolerance.
    pub fn with_tol(rel_tol: T) -> Self {
        Self {
            rel_tol,
            max_iter: 0,
        }
    }

    fn resolved_max_iter(&self, dim: usize) -> usize {
        if self.max_iter == 0 {
            // Exact arithmetic terminates in `dim` steps; leave slack for
            // rounding when running at tight tolerances.
            (2 * dim).max(8)
        } else {
            self.max_iter
        }
    }
}

/// Convergence record for one solve (or one column of a panel solve).
#[derive(Debug, Clone)]
pub struct CgTelemetry<T> {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Relative residual after each iteration (`residuals[k]` is after
    /// iteration `k+1`); the series plotted in Fig. 1.
    pub residuals: Vec<T>,
    /// Whether `rel_tol` was reached before `max_iter`.
    pub converged: bool,
}

/// Solve `A x = b` by preconditioned CG starting from `x = 0`.
pub fn cg_solve<T: Scalar>(
    op: &dyn LinearOperator<T>,
    prec: &dyn Preconditioner<T>,
    b: &[T],
    config: &CgConfig<T>,
) -> (Vec<T>, CgTelemetry<T>) {
    let n = op.dim();
    assert_eq!(b.len(), n, "cg_solve rhs dimension mismatch");
    let max_iter = config.resolved_max_iter(n);

    let mut x = vec![T::ZERO; n];
    let mut r = b.to_vec();
    let bnorm = firal_linalg::nrm2(b).maxv(T::MIN_POSITIVE);

    let mut z = vec![T::ZERO; n];
    prec.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = firal_linalg::dot(&r, &z);
    let mut ap = vec![T::ZERO; n];

    let mut telemetry = CgTelemetry {
        iterations: 0,
        residuals: Vec::new(),
        converged: firal_linalg::nrm2(&r) / bnorm <= config.rel_tol,
    };
    if telemetry.converged {
        return (x, telemetry);
    }

    for _ in 0..max_iter {
        op.apply(&p, &mut ap);
        let pap = firal_linalg::dot(&p, &ap);
        if pap <= T::ZERO || !pap.is_finite() {
            // Operator lost positive definiteness (or breakdown); stop with
            // the best iterate so far.
            break;
        }
        let alpha = rz / pap;
        firal_linalg::axpy(alpha, &p, &mut x);
        firal_linalg::axpy(-alpha, &ap, &mut r);
        telemetry.iterations += 1;

        let rel = firal_linalg::nrm2(&r) / bnorm;
        telemetry.residuals.push(rel);
        if rel <= config.rel_tol {
            telemetry.converged = true;
            break;
        }

        prec.apply(&r, &mut z);
        let rz_new = firal_linalg::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p ← z + β p
        for (pi, &zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }
    (x, telemetry)
}

/// Batched CG: solve `A X = B` for an `n × s` right-hand-side panel.
///
/// All columns share operator applications (`apply_panel`), which is where
/// the fast Hessian matvec amortizes; each column keeps its own α/β
/// recurrence and stops contributing to the iteration criterion once
/// converged. Returns the solution panel and per-column telemetry.
pub fn cg_solve_panel<T: Scalar>(
    op: &dyn LinearOperator<T>,
    prec: &dyn Preconditioner<T>,
    b: &Matrix<T>,
    config: &CgConfig<T>,
) -> (Matrix<T>, Vec<CgTelemetry<T>>) {
    let n = op.dim();
    let s = b.cols();
    assert_eq!(b.rows(), n, "cg_solve_panel rhs dimension mismatch");
    let max_iter = config.resolved_max_iter(n);

    let mut x = Matrix::zeros(n, s);
    let mut r = b.clone();
    let bnorms: Vec<T> = (0..s)
        .map(|j| firal_linalg::nrm2(&b.col(j)).maxv(T::MIN_POSITIVE))
        .collect();

    // z = M⁻¹ r column-wise
    let apply_prec = |r: &Matrix<T>| -> Matrix<T> {
        let mut z = Matrix::zeros(n, s);
        let mut rc = vec![T::ZERO; n];
        let mut zc = vec![T::ZERO; n];
        for j in 0..s {
            for i in 0..n {
                rc[i] = r[(i, j)];
            }
            prec.apply(&rc, &mut zc);
            z.set_col(j, &zc);
        }
        z
    };

    let mut z = apply_prec(&r);
    let mut p = z.clone();
    let col_dot = |a: &Matrix<T>, b: &Matrix<T>, j: usize| -> T {
        let mut acc = T::ZERO;
        for i in 0..n {
            acc += a[(i, j)] * b[(i, j)];
        }
        acc
    };
    let mut rz: Vec<T> = (0..s).map(|j| col_dot(&r, &z, j)).collect();

    let mut telemetry: Vec<CgTelemetry<T>> = (0..s)
        .map(|j| {
            let rel = firal_linalg::nrm2(&r.col(j)) / bnorms[j];
            CgTelemetry {
                iterations: 0,
                residuals: Vec::new(),
                converged: rel <= config.rel_tol,
            }
        })
        .collect();
    let mut active: Vec<bool> = telemetry.iter().map(|t| !t.converged).collect();

    for _ in 0..max_iter {
        if !active.iter().any(|&a| a) {
            break;
        }
        let ap = op.apply_panel(&p);
        for j in 0..s {
            if !active[j] {
                continue;
            }
            let pap = col_dot(&p, &ap, j);
            if pap <= T::ZERO || !pap.is_finite() {
                active[j] = false;
                continue;
            }
            let alpha = rz[j] / pap;
            for i in 0..n {
                x[(i, j)] += alpha * p[(i, j)];
                r[(i, j)] -= alpha * ap[(i, j)];
            }
            telemetry[j].iterations += 1;
            let rel = firal_linalg::nrm2(&r.col(j)) / bnorms[j];
            telemetry[j].residuals.push(rel);
            if rel <= config.rel_tol {
                telemetry[j].converged = true;
                active[j] = false;
            }
        }
        if !active.iter().any(|&a| a) {
            break;
        }
        z = apply_prec(&r);
        for j in 0..s {
            if !active[j] {
                continue;
            }
            let rz_new = col_dot(&r, &z, j);
            let beta = rz_new / rz[j];
            rz[j] = rz_new;
            for i in 0..n {
                p[(i, j)] = z[(i, j)] + beta * p[(i, j)];
            }
        }
    }
    (x, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{DenseOperator, IdentityPreconditioner};
    use firal_linalg::Matrix;

    fn spd_system(n: usize, seed: u64) -> (DenseOperator<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = firal_linalg::gemm_a_bt(&b, &b);
        a.add_diag(n as f64 * 0.1);
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        (DenseOperator::new(a), rhs)
    }

    #[test]
    fn cg_solves_spd_system() {
        let (op, b) = spd_system(20, 1);
        let cfg = CgConfig {
            rel_tol: 1e-10,
            max_iter: 0,
        };
        let (x, tel) = cg_solve(&op, &IdentityPreconditioner, &b, &cfg);
        assert!(
            tel.converged,
            "CG did not converge in {} iters",
            tel.iterations
        );
        let mut ax = vec![0.0; 20];
        op.apply(&x, &mut ax);
        for (u, v) in ax.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-7, "residual {}", (u - v).abs());
        }
    }

    #[test]
    fn residuals_are_monotone_enough() {
        // CG residuals can oscillate slightly, but the telemetry must be
        // recorded every iteration and end below tolerance.
        let (op, b) = spd_system(30, 2);
        let cfg = CgConfig {
            rel_tol: 1e-8,
            max_iter: 0,
        };
        let (_, tel) = cg_solve(&op, &IdentityPreconditioner, &b, &cfg);
        assert_eq!(tel.residuals.len(), tel.iterations);
        assert!(*tel.residuals.last().unwrap() <= 1e-8);
    }

    #[test]
    fn perfect_preconditioner_converges_in_one_iteration() {
        let (op, b) = spd_system(15, 3);
        let inv = firal_linalg::spd_inverse(op.matrix()).unwrap();
        struct InvPrec(Matrix<f64>);
        impl Preconditioner<f64> for InvPrec {
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                z.copy_from_slice(&self.0.matvec(r));
            }
        }
        let cfg = CgConfig {
            rel_tol: 1e-9,
            max_iter: 0,
        };
        let (_, tel) = cg_solve(&op, &InvPrec(inv), &b, &cfg);
        assert!(tel.converged);
        assert!(
            tel.iterations <= 2,
            "exact preconditioner took {} iterations",
            tel.iterations
        );
    }

    #[test]
    fn panel_solve_matches_column_solves() {
        let (op, _) = spd_system(12, 4);
        let rhs = Matrix::from_fn(12, 3, |i, j| ((i + j * 3) % 7) as f64 - 3.0);
        let cfg = CgConfig {
            rel_tol: 1e-10,
            max_iter: 0,
        };
        let (xp, tels) = cg_solve_panel(&op, &IdentityPreconditioner, &rhs, &cfg);
        assert!(tels.iter().all(|t| t.converged));
        for j in 0..3 {
            let (xc, _) = cg_solve(&op, &IdentityPreconditioner, &rhs.col(j), &cfg);
            for i in 0..12 {
                assert!(
                    (xp[(i, j)] - xc[i]).abs() < 1e-6,
                    "col {j} row {i}: {} vs {}",
                    xp[(i, j)],
                    xc[i]
                );
            }
        }
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let (op, _) = spd_system(8, 5);
        let b = vec![0.0; 8];
        let (x, tel) = cg_solve(&op, &IdentityPreconditioner, &b, &CgConfig::default());
        assert!(tel.converged);
        assert_eq!(tel.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_iter_caps_work() {
        let (op, b) = spd_system(40, 6);
        let cfg = CgConfig {
            rel_tol: 1e-14,
            max_iter: 3,
        };
        let (_, tel) = cg_solve(&op, &IdentityPreconditioner, &b, &cfg);
        assert_eq!(tel.iterations, 3);
    }

    #[test]
    fn f32_path_converges() {
        let n = 10usize;
        let a64 = {
            let (op, _) = spd_system(n, 7);
            op.matrix().clone()
        };
        let a32: Matrix<f32> = a64.cast();
        let op = DenseOperator::new(a32);
        let b: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let cfg = CgConfig {
            rel_tol: 1e-4,
            max_iter: 200,
        };
        let (_, tel) = cg_solve(&op, &IdentityPreconditioner, &b, &cfg);
        assert!(tel.converged);
    }
}
