//! Matrix-free linear operator and preconditioner abstractions.
//!
//! The CG solver never sees matrix entries — only `y = A x` products. This
//! is the contract that lets Approx-FIRAL plug in the fast Hessian matvec of
//! Lemma 2 (implemented in `firal-core::hessian`) without materializing the
//! `ê × ê` operators of Exact-FIRAL.

use firal_linalg::{Matrix, Scalar};

/// A symmetric positive-definite linear operator given by its action.
///
/// Not `Sync`: SPMD rank-local operators hold a communicator endpoint that
/// is single-threaded by design; the CG solver drives operators from one
/// thread (internal kernels parallelize with rayon on their own).
pub trait LinearOperator<T: Scalar> {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// `y ← A x`. `y` is pre-zeroed by callers that require it; the
    /// implementation must fully overwrite `y`.
    fn apply(&self, x: &[T], y: &mut [T]);

    /// Panel application `Y ← A X` (column-wise by default; implementations
    /// with a batched fast path — like the pool-panel Hessian matvec, which
    /// turns `s` columns into two GEMMs — should override).
    fn apply_panel(&self, x: &Matrix<T>) -> Matrix<T> {
        let (n, s) = x.shape();
        assert_eq!(n, self.dim(), "apply_panel dimension mismatch");
        let mut out = Matrix::zeros(n, s);
        let mut xv = vec![T::ZERO; n];
        let mut yv = vec![T::ZERO; n];
        for j in 0..s {
            for i in 0..n {
                xv[i] = x[(i, j)];
            }
            self.apply(&xv, &mut yv);
            out.set_col(j, &yv);
        }
        out
    }
}

/// A preconditioner application `z = M⁻¹ r`.
pub trait Preconditioner<T: Scalar> {
    /// `z ← M⁻¹ r`. Must fully overwrite `z`.
    fn apply(&self, r: &[T], z: &mut [T]);
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl<T: Scalar> Preconditioner<T> for IdentityPreconditioner {
    #[inline]
    fn apply(&self, r: &[T], z: &mut [T]) {
        z.copy_from_slice(r);
    }
}

/// Dense-matrix operator wrapper (tests and Exact-FIRAL cross-checks).
#[derive(Debug, Clone)]
pub struct DenseOperator<T: Scalar> {
    matrix: Matrix<T>,
}

impl<T: Scalar> DenseOperator<T> {
    /// Wrap a square dense matrix.
    pub fn new(matrix: Matrix<T>) -> Self {
        assert_eq!(matrix.rows(), matrix.cols(), "DenseOperator needs square");
        Self { matrix }
    }

    /// Borrow the wrapped matrix.
    pub fn matrix(&self) -> &Matrix<T> {
        &self.matrix
    }
}

impl<T: Scalar> LinearOperator<T> for DenseOperator<T> {
    fn dim(&self) -> usize {
        self.matrix.rows()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        y.copy_from_slice(&self.matrix.matvec(x));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_operator_applies() {
        let m = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 3.0]);
        let op = DenseOperator::new(m);
        let mut y = vec![0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    fn identity_preconditioner_copies() {
        let p = IdentityPreconditioner;
        let mut z = vec![0.0f32; 3];
        Preconditioner::apply(&p, &[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn default_panel_matches_columns() {
        let m = Matrix::from_vec(3, 3, vec![1.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 4.0]);
        let op = DenseOperator::new(m.clone());
        let x = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let y = op.apply_panel(&x);
        for j in 0..2 {
            let yj = m.matvec(&x.col(j));
            for i in 0..3 {
                assert!((y[(i, j)] - yj[i]).abs() < 1e-14);
            }
        }
    }
}
