//! Iterative solvers and optimizers for the firal workspace.
//!
//! Approx-FIRAL (SC'24) replaces Exact-FIRAL's dense direct solves with:
//!
//! * matrix-free **preconditioned conjugate gradients** ([`cg`]) for the two
//!   linear systems per Hutchinson probe in the RELAX step (Algorithm 2,
//!   lines 6/8), with per-iteration relative-residual telemetry so the
//!   Fig. 1 preconditioner study can be regenerated;
//! * the **Hutchinson randomized trace estimator** ([`hutchinson`]) with
//!   Rademacher probes (Eq. 12);
//! * **bisection** ([`bisection`]) for the FTRL normalization constant
//!   `ν_t` with `Σ_j (ν + ηλ_j)^{-2} = 1` (Algorithm 1 line 17 /
//!   Algorithm 3 line 10);
//! * **L-BFGS** ([`lbfgs`]) — the classifier trainer standing in for
//!   scikit-learn's `LogisticRegression(solver="lbfgs")` used in §IV-A;
//! * **Lanczos** ([`lanczos`]) — the paper's stated future work (§V):
//!   iterative spectrum estimation to replace the exact ROUND-step
//!   eigensolves;
//! * **distributed operators** ([`dist`]) — [`AllreduceOperator`] composes
//!   a rank-local operator shard with the §III-C partial-sum Allreduce (and
//!   an optional replicated term) behind the ordinary [`LinearOperator`]
//!   trait, so CG is written once for serial and SPMD execution.
//!
//! Determinism contracts relevant to this crate (rank-ordered reductions
//! behind [`AllreduceOperator`], shape-only CG panel chunking) are
//! catalogued in the repo-root `ARCHITECTURE.md` ("Determinism contracts
//! and how they are enforced") and mechanically checked by `firal-lint`.

#![deny(missing_docs)]

pub mod bisection;
pub mod cg;
pub mod dist;
pub mod hutchinson;
pub mod lanczos;
pub mod lbfgs;
pub mod op;

pub use bisection::{bisect, solve_nu};
pub use cg::{cg_solve, cg_solve_panel, CgConfig, CgTelemetry};
pub use dist::{delta_allreduce_blocks, AllreduceOperator};
pub use hutchinson::{hutchinson_trace, rademacher_panel, rademacher_vector};
pub use lanczos::{lanczos_spectrum, LanczosResult};
pub use lbfgs::{lbfgs_minimize, LbfgsConfig, LbfgsResult, LbfgsStatus};
pub use op::{DenseOperator, IdentityPreconditioner, LinearOperator, Preconditioner};
