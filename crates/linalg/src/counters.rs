//! Global flop/byte counters.
//!
//! The paper's Tables II and III make storage/compute complexity claims;
//! the `table2_complexity` and `table3_matvec` harnesses verify them
//! empirically by reading these counters around kernel invocations.
//!
//! Counters are relaxed atomics incremented once per kernel call (never per
//! scalar operation), so the overhead is unmeasurable next to the kernels
//! themselves.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Record `n` floating-point operations.
#[inline(always)]
pub fn add_flops(n: usize) {
    FLOPS.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record `n` bytes of allocation traffic.
#[inline(always)]
pub fn add_bytes(n: usize) {
    BYTES.fetch_add(n as u64, Ordering::Relaxed);
}

/// Snapshot of the global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Cumulative floating-point operations recorded.
    pub flops: u64,
    /// Cumulative bytes of matrix allocations recorded.
    pub bytes: u64,
}

/// Read the counters.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        flops: FLOPS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Reset both counters to zero (benchmark harness only; not thread-safe with
/// respect to concurrent kernels, which is fine for sequential measurement
/// sections).
pub fn reset() {
    FLOPS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

/// Measure the flops/bytes consumed by a closure.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, CounterSnapshot) {
    let before = snapshot();
    let r = f();
    let after = snapshot();
    (
        r,
        CounterSnapshot {
            flops: after.flops - before.flops,
            bytes: after.bytes - before.bytes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_captures_deltas() {
        let (_, delta) = measure(|| {
            add_flops(100);
            add_bytes(8);
        });
        assert!(delta.flops >= 100);
        assert!(delta.bytes >= 8);
    }
}
