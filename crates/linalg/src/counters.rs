//! Global flop/byte counters.
//!
//! The paper's Tables II and III make storage/compute complexity claims;
//! the `table2_complexity` and `table3_matvec` harnesses verify them
//! empirically by reading these counters around kernel invocations.
//!
//! Counters are relaxed atomics incremented once per kernel call (never per
//! scalar operation), so the overhead is unmeasurable next to the kernels
//! themselves.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Pinned flop formulas for the five dense kernels (`firal_linalg::gemm`).
//
// Convention: one multiply-add = 2 flops (the standard `2·mnk` GEMM count).
// The kernels charge exactly these formulas, and the benchmark harnesses
// (`kernel_bench`, the Criterion benches) derive GF/s from the same
// functions, so throughput numbers stay comparable across PRs.
// ---------------------------------------------------------------------------

/// `C = A·B` with `A ∈ m×k`, `B ∈ k×n`: `2·m·n·k`.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> usize {
    2 * m * n * k
}

/// `C = Aᵀ·B` with `A ∈ n×d`, `B ∈ n×m`: `2·n·d·m`.
pub fn gemm_at_b_flops(n: usize, d: usize, m: usize) -> usize {
    2 * n * d * m
}

/// `C = A·Bᵀ` with `A ∈ n×d`, `B ∈ m×d`: `2·n·m·d`.
pub fn gemm_a_bt_flops(n: usize, m: usize, d: usize) -> usize {
    2 * n * m * d
}

/// `G = Xᵀdiag(w)X` with `X ∈ n×d`, exploiting symmetry: per row,
/// `d(d+1)/2` multiply-adds on the upper triangle (2 flops each) plus `d`
/// weight-scaling multiplies — `n·d·(d+2)` total. (The historical
/// `n·d·(d+1)` figure dropped the weight scaling and so undercounted
/// relative to the `2·` multiply-add convention of the GEMM kernels.)
pub fn gram_weighted_flops(n: usize, d: usize) -> usize {
    n * d * (d + 2)
}

/// `c` fused weighted Gram blocks ([`gram_weighted_flops`] per class).
pub fn gram_weighted_multi_flops(c: usize, n: usize, d: usize) -> usize {
    c * gram_weighted_flops(n, d)
}

// ---------------------------------------------------------------------------
// Pinned byte formulas for the packed-panel SIMD paths. Packing stages an
// operand copy that the scalar kernels never make, so it is charged to the
// byte counter (one element write per packed element) — keeping Table-III
// style traffic accounting honest across dispatch tiers.
// ---------------------------------------------------------------------------

/// Bytes staged when packing a `rows × cols` operand panel into a
/// contiguous buffer: `rows·cols·elem`.
pub fn pack_panel_bytes(rows: usize, cols: usize, elem: usize) -> usize {
    rows * cols * elem
}

/// Packed-panel traffic of one `C = AᵀB` call when the autotuned plan
/// enables packing: each of the `n` rows stages its `vd` lane-aligned
/// leading columns once — [`pack_panel_bytes`]`(n, vd, elem)`.
pub fn gemm_at_b_pack_bytes(n: usize, vd: usize, elem: usize) -> usize {
    pack_panel_bytes(n, vd, elem)
}

/// Packed-operand traffic of the `C = A·Bᵀ` SIMD path, which stages `Bᵀ`
/// (`d × m`) once per call so the panel kernel streams `B` row-major:
/// [`pack_panel_bytes`]`(d, m, elem)`.
pub fn gemm_a_bt_pack_bytes(d: usize, m: usize, elem: usize) -> usize {
    pack_panel_bytes(d, m, elem)
}

/// Record `n` floating-point operations.
#[inline(always)]
pub fn add_flops(n: usize) {
    FLOPS.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record `n` bytes of allocation traffic.
#[inline(always)]
pub fn add_bytes(n: usize) {
    BYTES.fetch_add(n as u64, Ordering::Relaxed);
}

/// Snapshot of the global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Cumulative floating-point operations recorded.
    pub flops: u64,
    /// Cumulative bytes of matrix allocations recorded.
    pub bytes: u64,
}

/// Read the counters.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        flops: FLOPS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Reset both counters to zero (benchmark harness only; not thread-safe with
/// respect to concurrent kernels, which is fine for sequential measurement
/// sections).
pub fn reset() {
    FLOPS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

/// Measure the flops/bytes consumed by a closure.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, CounterSnapshot) {
    let before = snapshot();
    let r = f();
    let after = snapshot();
    (
        r,
        CounterSnapshot {
            flops: after.flops - before.flops,
            bytes: after.bytes - before.bytes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_captures_deltas() {
        let (_, delta) = measure(|| {
            add_flops(100);
            add_bytes(8);
        });
        assert!(delta.flops >= 100);
        assert!(delta.bytes >= 8);
    }

    #[test]
    fn kernel_flop_formulas_are_pinned() {
        // The five dense-kernel formulas, spelled out numerically so any
        // accidental change to a formula fails loudly here.
        assert_eq!(gemm_flops(3, 4, 5), 2 * 3 * 4 * 5);
        assert_eq!(gemm_at_b_flops(100, 8, 6), 2 * 100 * 8 * 6);
        assert_eq!(gemm_a_bt_flops(100, 7, 9), 2 * 100 * 7 * 9);
        // Symmetric Gram: d(d+1) triangle flops + d weight scalings per row.
        assert_eq!(gram_weighted_flops(10, 4), 10 * (4 * 5 + 4));
        assert_eq!(gram_weighted_multi_flops(3, 10, 4), 3 * 10 * (4 * 5 + 4));
        // The multi kernel is exactly c independent single-weight Grams.
        assert_eq!(
            gram_weighted_multi_flops(7, 123, 17),
            7 * gram_weighted_flops(123, 17)
        );
    }

    #[test]
    fn pack_byte_formulas_are_pinned() {
        // Packed-panel staging traffic: one element write per packed
        // element, and the per-kernel formulas are pure reparameterizations
        // of `pack_panel_bytes`.
        assert_eq!(pack_panel_bytes(100, 8, 4), 100 * 8 * 4);
        assert_eq!(pack_panel_bytes(3, 5, 8), 3 * 5 * 8);
        assert_eq!(gemm_at_b_pack_bytes(1000, 64, 4), 1000 * 64 * 4);
        assert_eq!(gemm_at_b_pack_bytes(77, 16, 8), pack_panel_bytes(77, 16, 8));
        assert_eq!(gemm_a_bt_pack_bytes(64, 40, 8), 64 * 40 * 8);
        assert_eq!(gemm_a_bt_pack_bytes(65, 1, 4), pack_panel_bytes(65, 1, 4));
    }
}
