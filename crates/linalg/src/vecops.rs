//! Level-1 vector kernels (dot, axpy, norms) with rayon fan-out for long
//! vectors. Used by the CG solver on `d(c-1)`-length stacked vectors and by
//! the mirror-descent weight updates on `n`-length pool vectors.

use rayon::prelude::*;

use crate::counters;
use crate::scalar::Scalar;

/// Length above which level-1 kernels parallelize.
const PAR_LEN: usize = 1 << 16;

/// Dot product `xᵀy`.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    counters::add_flops(2 * x.len());
    if x.len() >= PAR_LEN {
        x.par_chunks(PAR_LEN / 4)
            .zip(y.par_chunks(PAR_LEN / 4))
            .map(|(a, b)| {
                let mut acc = T::ZERO;
                for (u, v) in a.iter().zip(b.iter()) {
                    acc += *u * *v;
                }
                acc
            })
            .reduce(|| T::ZERO, |a, b| a + b)
    } else {
        let mut acc = T::ZERO;
        for (u, v) in x.iter().zip(y.iter()) {
            acc += *u * *v;
        }
        acc
    }
}

/// `y ← y + alpha · x`.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    counters::add_flops(2 * x.len());
    if x.len() >= PAR_LEN {
        y.par_chunks_mut(PAR_LEN / 4)
            .zip(x.par_chunks(PAR_LEN / 4))
            .for_each(|(yc, xc)| {
                for (v, u) in yc.iter_mut().zip(xc.iter()) {
                    *v += alpha * *u;
                }
            });
    } else {
        for (v, u) in y.iter_mut().zip(x.iter()) {
            *v += alpha * *u;
        }
    }
}

/// `x ← alpha · x`.
pub fn scale<T: Scalar>(alpha: T, x: &mut [T]) {
    counters::add_flops(x.len());
    if x.len() >= PAR_LEN {
        x.par_chunks_mut(PAR_LEN / 4).for_each(|c| {
            for v in c.iter_mut() {
                *v *= alpha;
            }
        });
    } else {
        for v in x.iter_mut() {
            *v *= alpha;
        }
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_parallel_matches_serial() {
        let n = PAR_LEN + 123;
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let par = dot(&x, &y);
        let ser: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        assert!((par - ser).abs() < 1e-6 * ser.abs().max(1.0));
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0f32, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn scale_and_nrm2() {
        let mut x = vec![3.0f64, 4.0];
        scale(2.0, &mut x);
        assert_eq!(nrm2(&x), 10.0);
    }
}
