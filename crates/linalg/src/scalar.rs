//! Floating-point abstraction over `f32` and `f64`.
//!
//! The paper's HPC implementation uses single precision end-to-end
//! (§III-C); the accuracy experiments are insensitive to precision. Writing
//! every kernel against [`Scalar`] lets the test-suite cross-check `f32`
//! results against `f64` references and lets the benchmark harness measure
//! the precision ablation.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in all firal kernels.
///
/// Implemented for `f32` and `f64`. The constants and conversions are the
/// minimal set the workspace needs; this avoids pulling a numeric-traits
/// dependency into an HPC crate that wants full control over inlining.
/// The [`crate::simd::Dispatch`] supertrait routes the hot kernels to the
/// monomorphic `std::arch` bodies of the active SIMD tier.
pub trait Scalar:
    crate::simd::Dispatch
    + Copy
    + Send
    + Sync
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Two.
    const TWO: Self;
    /// One half.
    const HALF: Self;
    /// Machine epsilon of the underlying type.
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Positive infinity.
    const INFINITY: Self;

    /// Lossy conversion from `f64` (used for constants and tolerances).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (used for reporting and reductions).
    fn to_f64(self) -> f64;
    /// Conversion from a count.
    fn from_usize(n: usize) -> Self;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// `max` that propagates the non-NaN operand.
    fn maxv(self, other: Self) -> Self;
    /// `min` that propagates the non-NaN operand.
    fn minv(self, other: Self) -> Self;
    /// Euclidean norm of (self, other) without overflow.
    fn hypot(self, other: Self) -> Self;
    /// True when finite (not NaN/inf).
    fn is_finite(self) -> bool;
    /// Copysign: magnitude of `self`, sign of `sign`.
    fn copysign(self, sign: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const EPSILON: Self = <$t>::EPSILON;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;
            const INFINITY: Self = <$t>::INFINITY;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_usize(n: usize) -> Self {
                n as $t
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn maxv(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn minv(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                self.hypot(other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline(always)]
            fn copysign(self, sign: Self) -> Self {
                self.copysign(sign)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        assert!((T::from_f64(2.0).sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert!(T::ONE.is_finite());
        assert!(!T::INFINITY.is_finite());
    }

    #[test]
    fn scalar_f32_roundtrip() {
        roundtrip::<f32>();
    }

    #[test]
    fn scalar_f64_roundtrip() {
        roundtrip::<f64>();
    }

    #[test]
    fn copysign_and_hypot() {
        assert_eq!(3.0f64.copysign(-1.0), -3.0);
        assert!((Scalar::hypot(3.0f32, 4.0f32) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_propagate() {
        assert_eq!(Scalar::maxv(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::minv(1.0f32, 2.0), 1.0);
    }
}
