//! Block-diagonal matrices with uniform `d × d` blocks.
//!
//! Definition 1 of the paper: `B(H)` keeps the `c-1` diagonal `d × d` blocks
//! of an `ê × ê` matrix. Approx-FIRAL's ROUND step (Algorithm 3) works
//! entirely in this representation — storage `O(cd²)` instead of `O(c²d²)` —
//! and its Sherman–Morrison update (Lemma 3) and Eq. 17 objective are
//! per-block operations implemented here.

use rayon::prelude::*;

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::Result;

/// Block-diagonal matrix: `nblocks` dense blocks, each `dim × dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDiag<T: Scalar> {
    dim: usize,
    blocks: Vec<Matrix<T>>,
}

impl<T: Scalar> BlockDiag<T> {
    /// Zero block-diagonal with `nblocks` blocks of order `dim`.
    pub fn zeros(nblocks: usize, dim: usize) -> Self {
        Self {
            dim,
            blocks: (0..nblocks).map(|_| Matrix::zeros(dim, dim)).collect(),
        }
    }

    /// Block-diagonal identity (each block `I_dim`).
    pub fn identity(nblocks: usize, dim: usize) -> Self {
        Self {
            dim,
            blocks: (0..nblocks).map(|_| Matrix::identity(dim)).collect(),
        }
    }

    /// Wrap existing equal-sized square blocks.
    pub fn from_blocks(blocks: Vec<Matrix<T>>) -> Self {
        assert!(!blocks.is_empty(), "BlockDiag needs at least one block");
        let dim = blocks[0].rows();
        for b in &blocks {
            assert_eq!(
                b.shape(),
                (dim, dim),
                "BlockDiag blocks must be square and equal"
            );
        }
        Self { dim, blocks }
    }

    /// Number of blocks (`c-1` in the paper's usage).
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// Order of each block (`d` in the paper's usage).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total order of the represented matrix (`nblocks * dim = ê`).
    pub fn order(&self) -> usize {
        self.nblocks() * self.dim
    }

    /// Borrow block `k`.
    pub fn block(&self, k: usize) -> &Matrix<T> {
        &self.blocks[k]
    }

    /// Mutably borrow block `k`.
    pub fn block_mut(&mut self, k: usize) -> &mut Matrix<T> {
        &mut self.blocks[k]
    }

    /// Iterate blocks.
    pub fn blocks(&self) -> &[Matrix<T>] {
        &self.blocks
    }

    /// `self += alpha * other` block-wise.
    pub fn add_scaled(&mut self, alpha: T, other: &Self) {
        assert_eq!(self.nblocks(), other.nblocks());
        assert_eq!(self.dim, other.dim);
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            a.add_scaled(alpha, b);
        }
    }

    /// Rank-one update on every block: `block_k += γ_k · x xᵀ`.
    ///
    /// This is how a (block-diagonalized) Fisher-information matrix of a
    /// single point enters an accumulator: Eq. 14,
    /// `B(H_i) = diag(h⊙(1-h)) ⊗ x xᵀ`, i.e. `γ_k = h_k(1-h_k)`.
    pub fn rank_one_update(&mut self, gammas: &[T], x: &[T]) {
        assert_eq!(gammas.len(), self.nblocks(), "one γ per block");
        assert_eq!(x.len(), self.dim, "x must have block dimension");
        crate::counters::add_flops(self.nblocks() * self.dim * self.dim * 2);
        for (blk, &g) in self.blocks.iter_mut().zip(gammas.iter()) {
            if g == T::ZERO {
                continue;
            }
            for p in 0..x.len() {
                let s = g * x[p];
                let row = blk.row_mut(p);
                for (q, &xq) in x.iter().enumerate() {
                    row[q] += s * xq;
                }
            }
        }
    }

    /// Matvec on the stacked vector `v ∈ R^{nblocks·dim}`.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.order(), "BlockDiag::matvec length mismatch");
        let d = self.dim;
        let mut out = vec![T::ZERO; v.len()];
        // Parallel over blocks: each block touches a disjoint output slice.
        out.par_chunks_mut(d)
            .zip(self.blocks.par_iter())
            .zip(v.par_chunks(d))
            .for_each(|((yk, blk), vk)| {
                let y = blk.matvec(vk);
                yk.copy_from_slice(&y);
            });
        out
    }

    /// Multi-RHS matvec on a stacked panel `V ∈ R^{order × s}`.
    pub fn matmul(&self, v: &Matrix<T>) -> Matrix<T> {
        assert_eq!(v.rows(), self.order(), "BlockDiag::matmul shape mismatch");
        let d = self.dim;
        let s = v.cols();
        let mut out = Matrix::zeros(v.rows(), s);
        for (k, blk) in self.blocks.iter().enumerate() {
            // rows k·d..(k+1)·d of the output
            for jcol in 0..s {
                for p in 0..d {
                    let mut acc = T::ZERO;
                    for q in 0..d {
                        acc += blk[(p, q)] * v[(k * d + q, jcol)];
                    }
                    out[(k * d + p, jcol)] = acc;
                }
            }
        }
        crate::counters::add_flops(2 * self.nblocks() * d * d * s);
        out
    }

    /// Per-block Cholesky-based inverse (the `cupy.linalg.inv` batched call
    /// of Algorithm 3 lines 4/11 and Algorithm 2 line 5). Blocks invert in
    /// parallel.
    pub fn inverse(&self) -> Result<Self> {
        let inv: Result<Vec<Matrix<T>>> = self
            .blocks
            .par_iter()
            .map(|b| Cholesky::new(b).map(|ch| ch.inverse()))
            .collect();
        Ok(Self {
            dim: self.dim,
            blocks: inv?,
        })
    }

    /// Per-block Cholesky factorizations (kept for repeated solves).
    pub fn cholesky(&self) -> Result<Vec<Cholesky<T>>> {
        self.blocks.par_iter().map(Cholesky::new).collect()
    }

    /// Trace of the full represented matrix.
    pub fn trace(&self) -> T {
        let mut t = T::ZERO;
        for b in &self.blocks {
            t += b.trace();
        }
        t
    }

    /// Block-wise quadratic form: returns `[xᵀ B_k x]_k` for a single
    /// `dim`-vector `x` (the inner kernels of Eq. 17).
    pub fn quadratic_forms(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.dim);
        crate::counters::add_flops(2 * self.nblocks() * self.dim * self.dim);
        self.blocks
            .iter()
            .map(|b| {
                let bx = b.matvec(x);
                crate::vecops::dot(x, &bx)
            })
            .collect()
    }

    /// Assemble the dense `order × order` matrix (test/diagnostic use only).
    pub fn to_dense(&self) -> Matrix<T> {
        let n = self.order();
        let d = self.dim;
        let mut m = Matrix::zeros(n, n);
        for (k, blk) in self.blocks.iter().enumerate() {
            for p in 0..d {
                for q in 0..d {
                    m[(k * d + p, k * d + q)] = blk[(p, q)];
                }
            }
        }
        m
    }

    /// Extract the block diagonal of a dense matrix (Definition 1's `B(·)`).
    pub fn from_dense(m: &Matrix<T>, nblocks: usize) -> Self {
        let n = m.rows();
        assert_eq!(m.rows(), m.cols());
        assert_eq!(n % nblocks, 0, "order must divide into equal blocks");
        let d = n / nblocks;
        let blocks = (0..nblocks).map(|k| m.block(k * d, k * d, d)).collect();
        Self { dim: d, blocks }
    }

    /// Sum of per-block minimum eigenvalues' minimum — the η-selection
    /// criterion of §IV-A (`max_η min_k λ_min((H)_k)`).
    pub fn min_block_eigenvalue(&self) -> Result<T> {
        let mins: Result<Vec<T>> = self
            .blocks
            .par_iter()
            .map(|b| crate::eigen::eigvalsh(b).map(|v| v[0]))
            .collect();
        Ok(mins?.into_iter().fold(T::INFINITY, |acc, v| acc.minv(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_blockdiag() -> BlockDiag<f64> {
        let b0 = Matrix::from_vec(2, 2, vec![2.0, 0.5, 0.5, 3.0]);
        let b1 = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 5.0]);
        BlockDiag::from_blocks(vec![b0, b1])
    }

    #[test]
    fn matvec_matches_dense() {
        let bd = test_blockdiag();
        let dense = bd.to_dense();
        let v = vec![1.0, -2.0, 3.0, 0.5];
        let y1 = bd.matvec(&v);
        let y2 = dense.matvec(&v);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_matches_matvec_per_column() {
        let bd = test_blockdiag();
        let v = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 - 2.0);
        let out = bd.matmul(&v);
        for j in 0..3 {
            let col = bd.matvec(&v.col(j));
            for i in 0..4 {
                assert!((out[(i, j)] - col[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inverse_per_block() {
        let bd = test_blockdiag();
        let inv = bd.inverse().unwrap();
        let prod = crate::gemm::gemm(inv.block(0), bd.block(0));
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rank_one_update_matches_manual() {
        let mut bd = BlockDiag::<f64>::zeros(2, 2);
        bd.rank_one_update(&[0.5, 2.0], &[1.0, 2.0]);
        // block 0: 0.5 * [1 2; 2 4]
        assert_eq!(bd.block(0)[(0, 0)], 0.5);
        assert_eq!(bd.block(0)[(0, 1)], 1.0);
        assert_eq!(bd.block(0)[(1, 1)], 2.0);
        // block 1: 2 * [1 2; 2 4]
        assert_eq!(bd.block(1)[(1, 1)], 8.0);
    }

    #[test]
    fn from_dense_roundtrip() {
        let bd = test_blockdiag();
        let dense = bd.to_dense();
        let back = BlockDiag::from_dense(&dense, 2);
        assert_eq!(bd, back);
    }

    #[test]
    fn trace_matches_dense() {
        let bd = test_blockdiag();
        assert!((bd.trace() - bd.to_dense().trace()).abs() < 1e-12);
    }

    #[test]
    fn quadratic_forms_match_manual() {
        let bd = test_blockdiag();
        let q = bd.quadratic_forms(&[1.0, 1.0]);
        // block0: [1 1] [2 .5; .5 3] [1 1]ᵀ = 2+.5+.5+3 = 6
        assert!((q[0] - 6.0).abs() < 1e-12);
        // block1: 4+1+1+5 = 11
        assert!((q[1] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn min_block_eigenvalue_picks_global_min() {
        let bd = test_blockdiag();
        let m = bd.min_block_eigenvalue().unwrap();
        // block0 eigs: 2.5 ± sqrt(0.25+0.25) → min ≈ 1.79; block1: 4.5 ± sqrt(0.25+1) → min ≈ 3.38
        assert!((m - (2.5 - 0.5f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn identity_behaves() {
        let id = BlockDiag::<f32>::identity(3, 2);
        let v: Vec<f32> = (0..6).map(|i| i as f32).collect();
        assert_eq!(id.matvec(&v), v);
        assert_eq!(id.trace(), 6.0);
    }
}
