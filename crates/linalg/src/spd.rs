//! Helpers for symmetric positive-definite matrices: inverse, square root,
//! inverse square root, condition number.
//!
//! Exact-FIRAL's whitening transform (Eq. 8, `H̃ = Σ_⋄^{-1/2} H Σ_⋄^{-1/2}`)
//! needs the SPD inverse square root; the preconditioner study around Fig. 1
//! needs condition numbers.

use crate::cholesky::Cholesky;
use crate::eigen::eigh;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::Result;

/// `A^{-1}` for SPD `A`, via Cholesky.
pub fn spd_inverse<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>> {
    Ok(Cholesky::new(a)?.inverse())
}

/// Symmetric square root `A^{1/2}` via eigendecomposition. Negative
/// eigenvalues from rounding are clamped to zero.
pub fn spd_sqrt<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>> {
    let eig = eigh(a)?;
    Ok(eig.apply_fn(|x| x.maxv(T::ZERO).sqrt()))
}

/// Symmetric inverse square root `A^{-1/2}` via eigendecomposition
/// (the Eq. 8 whitening factor). Eigenvalues are floored at
/// `ε·λ_max` to keep the transform bounded on nearly singular inputs.
pub fn spd_inv_sqrt<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>> {
    let eig = eigh(a)?;
    let lmax = eig
        .values
        .iter()
        .fold(T::ZERO, |acc, &v| acc.maxv(v.abs()))
        .maxv(T::MIN_POSITIVE);
    let floor = T::EPSILON * lmax;
    Ok(eig.apply_fn(|x| T::ONE / x.maxv(floor).sqrt()))
}

/// 2-norm condition number `λ_max / λ_min` of an SPD matrix (used to report
/// the preconditioner quality numbers quoted in §III-A: "the condition
/// number of Σ_z is 198, while the condition number of B(Σ_z)^{-1}Σ_z is 72").
pub fn spd_condition_number<T: Scalar>(a: &Matrix<T>) -> Result<T> {
    let vals = crate::eigen::eigvalsh(a)?;
    let lmin = vals.first().copied().unwrap_or(T::ONE);
    let lmax = vals.last().copied().unwrap_or(T::ONE);
    Ok(lmax / lmin.maxv(T::MIN_POSITIVE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, gemm_a_bt};

    fn spd_test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = gemm_a_bt(&b, &b);
        a.add_diag(n as f64 * 0.5);
        a
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd_test_matrix(6, 1);
        let inv = spd_inverse(&a).unwrap();
        let p = gemm(&a, &inv);
        for i in 0..6 {
            for j in 0..6 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let a = spd_test_matrix(5, 2);
        let r = spd_sqrt(&a).unwrap();
        let sq = gemm(&r, &r);
        for i in 0..5 {
            for j in 0..5 {
                assert!((sq[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn inv_sqrt_whitens() {
        let a = spd_test_matrix(5, 3);
        let w = spd_inv_sqrt(&a).unwrap();
        // W A W = I
        let p = gemm(&gemm(&w, &a), &w);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let a = Matrix::<f64>::identity(4);
        assert!((spd_condition_number(&a).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn condition_number_of_diag() {
        let a = Matrix::from_diag(&[1.0, 10.0, 100.0]);
        assert!((spd_condition_number(&a).unwrap() - 100.0).abs() < 1e-8);
    }
}
