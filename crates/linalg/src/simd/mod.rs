//! Runtime SIMD feature dispatch for the hot dense kernels.
//!
//! The five kernels in [`mod@crate::gemm`] are implemented at three levels:
//! the always-available scalar register-tiled panels (the reference
//! semantics), and explicit-`std::arch` SIMD bodies for x86-64 (AVX2 and
//! the SSE2 baseline) and AArch64 (NEON). The tier is picked **once** at
//! first kernel use — best detected feature set, overridable with
//! `FIRAL_SIMD=off|sse2|avx2|neon` — and every subsequent call dispatches
//! through it.
//!
//! # The canonical-summation-tree determinism contract
//!
//! Every tier of every kernel produces **bitwise identical** results — to
//! the scalar fallback and to each other — because each kernel pins one
//! canonical summation tree that is independent of the vector lane width,
//! and every backend implements exactly that tree:
//!
//! * [`crate::gemm::gemm`] / [`crate::gemm::gemm_a_bt`]: each output
//!   element is a single accumulator updated in depth-ascending order;
//! * [`crate::gemm::gemm_at_b`]: rows join each output element in groups
//!   of four — `acc += ((a₀b₀ + a₁b₁) + a₂b₂) + a₃b₃` — trailing rows
//!   singly, within the shape-derived reduction chunks of the thread
//!   contract;
//! * [`crate::gemm::gram_weighted`] / [`crate::gemm::gram_weighted_multi`]:
//!   rows accumulate strictly sequentially.
//!
//! Lane-width independence holds because vector lanes always span
//! independent *output elements* (columns of `C`/`G`, the `d` rows of
//! `AᵀB`), never a summation axis, and all arithmetic is unfused
//! multiply-then-add (no FMA: fusing would change the rounding of every
//! product and break scalar equivalence — and the SSE2 baseline has no FMA
//! at all). Consequently `FIRAL_SIMD` composes orthogonally with
//! `FIRAL_NUM_THREADS`: any tier at any thread count yields the same bits,
//! which `kernel_bench` and the `simd_equality` test matrix re-verify.

mod body;
mod vector;

use std::sync::OnceLock;

/// A SIMD dispatch tier. All variants exist on every architecture (so
/// harnesses can name and report them); only the tiers in
/// [`available_tiers`] can ever be active on the running host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Scalar register-tiled panels — the reference semantics, always
    /// available.
    Scalar,
    /// x86-64 SSE2 (baseline on every x86-64 CPU): 4×f32 / 2×f64 lanes.
    Sse2,
    /// x86-64 AVX2: 8×f32 / 4×f64 lanes.
    Avx2,
    /// AArch64 NEON (baseline on every AArch64 CPU): 4×f32 / 2×f64 lanes.
    Neon,
}

impl Tier {
    /// Stable lower-case name (matches the `FIRAL_SIMD` values; `Scalar`
    /// is spelled `"off"`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "off",
            Tier::Sse2 => "sse2",
            Tier::Avx2 => "avx2",
            Tier::Neon => "neon",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best tier the running CPU supports.
fn detect_best() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Tier::Avx2
        } else {
            Tier::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        Tier::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Tier::Scalar
    }
}

/// Every tier usable on the running host, scalar first, best last. The
/// equality harnesses iterate this list to cross-check all tiers bitwise.
pub fn available_tiers() -> Vec<Tier> {
    let mut tiers = vec![Tier::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        tiers.push(Tier::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            tiers.push(Tier::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        tiers.push(Tier::Neon);
    }
    tiers
}

/// The dispatch tier used by the plain kernel entry points
/// ([`crate::gemm::gemm`] etc.), resolved once per process: the
/// `FIRAL_SIMD` override if set and available on this host (with a warning
/// and fallback to the detected best otherwise), else the detected best.
pub fn active_tier() -> Tier {
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(|| match std::env::var("FIRAL_SIMD") {
        Err(_) => detect_best(),
        Ok(v) => {
            let requested = match v.to_ascii_lowercase().as_str() {
                "off" | "scalar" | "0" => Some(Tier::Scalar),
                "sse2" => Some(Tier::Sse2),
                "avx2" => Some(Tier::Avx2),
                "neon" => Some(Tier::Neon),
                other => {
                    eprintln!(
                        "[firal_linalg] FIRAL_SIMD={other:?} not recognized \
                         (expected off|sse2|avx2|neon); using detected best"
                    );
                    None
                }
            };
            match requested {
                Some(t) if available_tiers().contains(&t) => t,
                Some(t) => {
                    let best = detect_best();
                    eprintln!(
                        "[firal_linalg] FIRAL_SIMD={} unavailable on this host; using {}",
                        t.name(),
                        best.name()
                    );
                    best
                }
                None => detect_best(),
            }
        }
    })
}

/// Whether the running CPU can execute `tier` (cheap: the feature macros
/// cache their CPUID probes). The kernel entry points assert this so a
/// harness passing a foreign tier fails loudly instead of executing
/// illegal instructions.
pub fn tier_available(tier: Tier) -> bool {
    match tier {
        Tier::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Tier::Sse2 => true,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "aarch64")]
        Tier::Neon => true,
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Whether `tier` maps to a SIMD body on the compiled architecture (i.e.
/// the [`Dispatch`] methods will handle it). `false` means the caller must
/// run its scalar panel. Kernel entry points branch on this once, up
/// front, so mixed scalar/SIMD execution within one kernel call is
/// impossible.
pub fn tier_is_simd(tier: Tier) -> bool {
    match tier {
        Tier::Scalar => false,
        #[cfg(target_arch = "x86_64")]
        Tier::Sse2 | Tier::Avx2 => true,
        #[cfg(target_arch = "aarch64")]
        Tier::Neon => true,
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Space-separated summary of the SIMD-relevant CPU features detected at
/// runtime (recorded by `kernel_bench` in `BENCH_kernels.json`).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = vec!["sse2"];
        if std::arch::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        feats.join(" ")
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon".to_string()
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        String::new()
    }
}

/// Per-dtype routing from a [`Tier`] to the monomorphized SIMD bodies.
///
/// This is the dispatch seam between the shape/chunking logic in
/// [`mod@crate::gemm`] (written once, generic over [`crate::Scalar`]) and the
/// `#[target_feature]` kernels (necessarily monomorphic per dtype and
/// ISA). Each method returns `true` if a SIMD tier handled the call and
/// `false` for [`Tier::Scalar`] (or a tier foreign to the compiled
/// architecture), in which case the caller runs its scalar panel.
pub trait Dispatch: Sized {
    /// SIMD `gemm_panel` body; see [`crate::gemm::gemm`].
    #[doc(hidden)]
    fn simd_gemm_panel(
        tier: Tier,
        c: &mut [Self],
        a: &[Self],
        b: &[Self],
        k: usize,
        n: usize,
    ) -> bool;

    /// SIMD `AᵀB` reduction-chunk body; see [`crate::gemm::gemm_at_b`].
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    fn simd_at_b_chunk(
        tier: Tier,
        acc: &mut [Self],
        a: &[Self],
        b: &[Self],
        d: usize,
        m: usize,
        jb: usize,
        pack: bool,
        packbuf: &mut Vec<Self>,
    ) -> bool;

    /// SIMD weighted-Gram chunk body; see [`crate::gemm::gram_weighted`].
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    fn simd_gram_rows(
        tier: Tier,
        acc: &mut [Self],
        x: &[Self],
        w: &[Self],
        wstride: usize,
        k0: usize,
        k1: usize,
        d: usize,
    ) -> bool;
}

/// `#[target_feature]` wrappers: one set of three kernels per (tier,
/// dtype). `body::*` is `#[inline(always)]`, so each body monomorphizes
/// and codegens under the wrapper's feature set.
macro_rules! tier_wrappers {
    ($feat:literal, $t:ty, $v:ty, $gemm:ident, $atb:ident, $gram:ident) => {
        // SAFETY (this wrapper and the two below): `#[target_feature]`
        // makes the fn unsafe with the contract "caller verified $feat";
        // that is exactly the feature backing `$v`, the kernel entry
        // points validate the slice shapes before dispatching here, and
        // the body is `#[inline(always)]` so its intrinsics codegen under
        // this wrapper's feature set.
        #[target_feature(enable = $feat)]
        pub(super) unsafe fn $gemm(c: &mut [$t], a: &[$t], b: &[$t], k: usize, n: usize) {
            // SAFETY: feature and shape contract forwarded, see above.
            unsafe { super::body::gemm_panel::<$t, $v>(c, a, b, k, n) }
        }
        // SAFETY: same wrapper contract as the first kernel above.
        #[target_feature(enable = $feat)]
        #[allow(clippy::too_many_arguments)]
        pub(super) unsafe fn $atb(
            acc: &mut [$t],
            a: &[$t],
            b: &[$t],
            d: usize,
            m: usize,
            jb: usize,
            pack: bool,
            packbuf: &mut Vec<$t>,
        ) {
            // SAFETY: feature and shape contract forwarded, see above.
            unsafe { super::body::at_b_chunk::<$t, $v>(acc, a, b, d, m, jb, pack, packbuf) }
        }
        // SAFETY: same wrapper contract as the first kernel above.
        #[target_feature(enable = $feat)]
        #[allow(clippy::too_many_arguments)]
        pub(super) unsafe fn $gram(
            acc: &mut [$t],
            x: &[$t],
            w: &[$t],
            wstride: usize,
            k0: usize,
            k1: usize,
            d: usize,
        ) {
            // SAFETY: feature and shape contract forwarded, see above.
            unsafe { super::body::gram_rows::<$t, $v>(acc, x, w, wstride, k0, k1, d) }
        }
    };
}

#[cfg(target_arch = "x86_64")]
mod wrap {
    use super::vector::x86::{Avx2F32, Avx2F64, Sse2F32, Sse2F64};

    tier_wrappers!(
        "avx2",
        f32,
        Avx2F32,
        avx2_gemm_f32,
        avx2_atb_f32,
        avx2_gram_f32
    );
    tier_wrappers!(
        "avx2",
        f64,
        Avx2F64,
        avx2_gemm_f64,
        avx2_atb_f64,
        avx2_gram_f64
    );
    tier_wrappers!(
        "sse2",
        f32,
        Sse2F32,
        sse2_gemm_f32,
        sse2_atb_f32,
        sse2_gram_f32
    );
    tier_wrappers!(
        "sse2",
        f64,
        Sse2F64,
        sse2_gemm_f64,
        sse2_atb_f64,
        sse2_gram_f64
    );
}

#[cfg(target_arch = "aarch64")]
mod wrap {
    use super::vector::arm::{NeonF32, NeonF64};

    tier_wrappers!(
        "neon",
        f32,
        NeonF32,
        neon_gemm_f32,
        neon_atb_f32,
        neon_gram_f32
    );
    tier_wrappers!(
        "neon",
        f64,
        NeonF64,
        neon_gemm_f64,
        neon_atb_f64,
        neon_gram_f64
    );
}

/// Implements [`Dispatch`] for one dtype by routing each tier to its
/// wrapper. Safety of the `unsafe` calls: the matched tier is only ever
/// produced by [`active_tier`]/[`available_tiers`] (runtime-verified) or
/// by harnesses iterating [`available_tiers`].
macro_rules! dispatch_impl {
    ($t:ty, $avx2_gemm:ident, $avx2_atb:ident, $avx2_gram:ident,
        $sse2_gemm:ident, $sse2_atb:ident, $sse2_gram:ident,
        $neon_gemm:ident, $neon_atb:ident, $neon_gram:ident) => {
        impl Dispatch for $t {
            fn simd_gemm_panel(
                tier: Tier,
                c: &mut [Self],
                a: &[Self],
                b: &[Self],
                k: usize,
                n: usize,
            ) -> bool {
                match tier {
                    // SAFETY: the matched tier proves the wrapper's
                    // feature is available (see macro doc above).
                    #[cfg(target_arch = "x86_64")]
                    Tier::Avx2 => unsafe {
                        wrap::$avx2_gemm(c, a, b, k, n);
                        true
                    },
                    // SAFETY: SSE2 is the x86-64 compile-time baseline.
                    #[cfg(target_arch = "x86_64")]
                    Tier::Sse2 => unsafe {
                        wrap::$sse2_gemm(c, a, b, k, n);
                        true
                    },
                    // SAFETY: NEON is the AArch64 compile-time baseline.
                    #[cfg(target_arch = "aarch64")]
                    Tier::Neon => unsafe {
                        wrap::$neon_gemm(c, a, b, k, n);
                        true
                    },
                    _ => false,
                }
            }

            fn simd_at_b_chunk(
                tier: Tier,
                acc: &mut [Self],
                a: &[Self],
                b: &[Self],
                d: usize,
                m: usize,
                jb: usize,
                pack: bool,
                packbuf: &mut Vec<Self>,
            ) -> bool {
                match tier {
                    // SAFETY: the matched tier proves the wrapper's
                    // feature is available (see macro doc above).
                    #[cfg(target_arch = "x86_64")]
                    Tier::Avx2 => unsafe {
                        wrap::$avx2_atb(acc, a, b, d, m, jb, pack, packbuf);
                        true
                    },
                    // SAFETY: SSE2 is the x86-64 compile-time baseline.
                    #[cfg(target_arch = "x86_64")]
                    Tier::Sse2 => unsafe {
                        wrap::$sse2_atb(acc, a, b, d, m, jb, pack, packbuf);
                        true
                    },
                    // SAFETY: NEON is the AArch64 compile-time baseline.
                    #[cfg(target_arch = "aarch64")]
                    Tier::Neon => unsafe {
                        wrap::$neon_atb(acc, a, b, d, m, jb, pack, packbuf);
                        true
                    },
                    _ => false,
                }
            }

            fn simd_gram_rows(
                tier: Tier,
                acc: &mut [Self],
                x: &[Self],
                w: &[Self],
                wstride: usize,
                k0: usize,
                k1: usize,
                d: usize,
            ) -> bool {
                match tier {
                    // SAFETY: the matched tier proves the wrapper's
                    // feature is available (see macro doc above).
                    #[cfg(target_arch = "x86_64")]
                    Tier::Avx2 => unsafe {
                        wrap::$avx2_gram(acc, x, w, wstride, k0, k1, d);
                        true
                    },
                    // SAFETY: SSE2 is the x86-64 compile-time baseline.
                    #[cfg(target_arch = "x86_64")]
                    Tier::Sse2 => unsafe {
                        wrap::$sse2_gram(acc, x, w, wstride, k0, k1, d);
                        true
                    },
                    // SAFETY: NEON is the AArch64 compile-time baseline.
                    #[cfg(target_arch = "aarch64")]
                    Tier::Neon => unsafe {
                        wrap::$neon_gram(acc, x, w, wstride, k0, k1, d);
                        true
                    },
                    _ => false,
                }
            }
        }
    };
}

dispatch_impl!(
    f32,
    avx2_gemm_f32,
    avx2_atb_f32,
    avx2_gram_f32,
    sse2_gemm_f32,
    sse2_atb_f32,
    sse2_gram_f32,
    neon_gemm_f32,
    neon_atb_f32,
    neon_gram_f32
);
dispatch_impl!(
    f64,
    avx2_gemm_f64,
    avx2_atb_f64,
    avx2_gram_f64,
    sse2_gemm_f64,
    sse2_atb_f64,
    sse2_gram_f64,
    neon_gemm_f64,
    neon_atb_f64,
    neon_gram_f64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_tier_is_always_available() {
        let tiers = available_tiers();
        assert_eq!(tiers[0], Tier::Scalar);
        assert!(tiers.contains(&active_tier()));
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(Tier::Scalar.name(), "off");
        assert_eq!(Tier::Sse2.name(), "sse2");
        assert_eq!(Tier::Avx2.name(), "avx2");
        assert_eq!(Tier::Neon.name(), "neon");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_baseline_includes_sse2() {
        assert!(available_tiers().contains(&Tier::Sse2));
        assert!(cpu_features().contains("sse2"));
    }

    #[test]
    fn scalar_dispatch_reports_unhandled() {
        let mut c = [0.0f64; 4];
        assert!(!f64::simd_gemm_panel(
            Tier::Scalar,
            &mut c,
            &[1.0; 4],
            &[1.0; 4],
            2,
            2
        ));
        assert_eq!(c, [0.0; 4]);
    }
}
