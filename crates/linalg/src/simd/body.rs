//! Width-generic SIMD kernel bodies.
//!
//! Each body is written once against the [`SimdVec`] abstraction and
//! monomorphized per (tier, dtype) by the `#[target_feature]` wrappers in
//! the parent module; `#[inline(always)]` guarantees the body collapses
//! into the wrapper so the intrinsics compile under the wrapper's feature
//! set.
//!
//! # Canonical summation trees
//!
//! Every body reproduces the exact per-element accumulation order of the
//! scalar register-tiled panels in `firal_linalg::gemm` — the pinned
//! canonical tree of each kernel (see the `simd` module docs). That works
//! because vector lanes always span an **output-element** dimension (the
//! columns of `C` in the GEMM panel, the columns of `G` in the Gram rows,
//! the `d` rows of `C = AᵀB` in the reduction microkernel), never a
//! summation axis: changing the lane width regroups which independent
//! output elements share a register, but never re-associates any sum. All
//! arithmetic is unfused multiply-then-add, matching the scalar fallback's
//! two-rounding semantics.

use super::vector::SimdVec;
use crate::scalar::Scalar;

/// `C[r] += A[r] · B` for a panel of rows (the [`crate::gemm::gemm`] /
/// [`crate::gemm::gemm_a_bt`] inner body).
///
/// 4-row × 2-vector register tile: the `C` tile lives in registers across
/// the whole depth loop, each `B` row vector is reused by all four `A`
/// rows. Per element the accumulation is depth-ascending onto the incoming
/// `C` value — bitwise identical to the scalar `gemm_rows` panel.
///
/// # Safety
/// Caller must hold the target feature backing `V` and pass consistent
/// shapes: `a.len() = rows·k`, `c.len() = rows·n`, `b.len() = k·n`, `k > 0`.
#[inline(always)]
pub(crate) unsafe fn gemm_panel<T: Scalar, V: SimdVec<T>>(
    c: &mut [T],
    a: &[T],
    b: &[T],
    k: usize,
    n: usize,
) {
    let l = V::LANES;
    let rows = a.len() / k;
    let cp = c.as_mut_ptr();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    // SAFETY: the caller's shape contract (`a.len() = rows·k`,
    // `c.len() = rows·n`, `b.len() = k·n`) bounds every index below:
    // `r < rows`, `j + l ≤ n` (vector steps) or `j < n` (scalar tail),
    // `p < k`, so all pointer offsets stay inside their slices; the
    // target feature backing `V` is held by the caller.
    unsafe {
        let mut r = 0;
        while r + 4 <= rows {
            let mut j = 0;
            while j + 2 * l <= n {
                let mut c00 = V::load(cp.add(r * n + j));
                let mut c01 = V::load(cp.add(r * n + j + l));
                let mut c10 = V::load(cp.add((r + 1) * n + j));
                let mut c11 = V::load(cp.add((r + 1) * n + j + l));
                let mut c20 = V::load(cp.add((r + 2) * n + j));
                let mut c21 = V::load(cp.add((r + 2) * n + j + l));
                let mut c30 = V::load(cp.add((r + 3) * n + j));
                let mut c31 = V::load(cp.add((r + 3) * n + j + l));
                for p in 0..k {
                    let b0 = V::load(bp.add(p * n + j));
                    let b1 = V::load(bp.add(p * n + j + l));
                    let x0 = V::splat(*ap.add(r * k + p));
                    c00 = c00.add(x0.mul(b0));
                    c01 = c01.add(x0.mul(b1));
                    let x1 = V::splat(*ap.add((r + 1) * k + p));
                    c10 = c10.add(x1.mul(b0));
                    c11 = c11.add(x1.mul(b1));
                    let x2 = V::splat(*ap.add((r + 2) * k + p));
                    c20 = c20.add(x2.mul(b0));
                    c21 = c21.add(x2.mul(b1));
                    let x3 = V::splat(*ap.add((r + 3) * k + p));
                    c30 = c30.add(x3.mul(b0));
                    c31 = c31.add(x3.mul(b1));
                }
                c00.store(cp.add(r * n + j));
                c01.store(cp.add(r * n + j + l));
                c10.store(cp.add((r + 1) * n + j));
                c11.store(cp.add((r + 1) * n + j + l));
                c20.store(cp.add((r + 2) * n + j));
                c21.store(cp.add((r + 2) * n + j + l));
                c30.store(cp.add((r + 3) * n + j));
                c31.store(cp.add((r + 3) * n + j + l));
                j += 2 * l;
            }
            while j + l <= n {
                let mut c0 = V::load(cp.add(r * n + j));
                let mut c1 = V::load(cp.add((r + 1) * n + j));
                let mut c2 = V::load(cp.add((r + 2) * n + j));
                let mut c3 = V::load(cp.add((r + 3) * n + j));
                for p in 0..k {
                    let bv = V::load(bp.add(p * n + j));
                    c0 = c0.add(V::splat(*ap.add(r * k + p)).mul(bv));
                    c1 = c1.add(V::splat(*ap.add((r + 1) * k + p)).mul(bv));
                    c2 = c2.add(V::splat(*ap.add((r + 2) * k + p)).mul(bv));
                    c3 = c3.add(V::splat(*ap.add((r + 3) * k + p)).mul(bv));
                }
                c0.store(cp.add(r * n + j));
                c1.store(cp.add((r + 1) * n + j));
                c2.store(cp.add((r + 2) * n + j));
                c3.store(cp.add((r + 3) * n + j));
                j += l;
            }
            while j < n {
                for i in 0..4 {
                    let mut s = *cp.add((r + i) * n + j);
                    for p in 0..k {
                        s += *ap.add((r + i) * k + p) * *bp.add(p * n + j);
                    }
                    *cp.add((r + i) * n + j) = s;
                }
                j += 1;
            }
            r += 4;
        }
        while r < rows {
            let mut j = 0;
            while j + l <= n {
                let mut cv = V::load(cp.add(r * n + j));
                for p in 0..k {
                    cv = cv.add(V::splat(*ap.add(r * k + p)).mul(V::load(bp.add(p * n + j))));
                }
                cv.store(cp.add(r * n + j));
                j += l;
            }
            while j < n {
                let mut s = *cp.add(r * n + j);
                for p in 0..k {
                    s += *ap.add(r * k + p) * *bp.add(p * n + j);
                }
                *cp.add(r * n + j) = s;
                j += 1;
            }
            r += 1;
        }
    }
}

/// Reduction microkernel of [`at_b_chunk`]: accumulates `JB` output columns
/// (one per broadcast `B` column) over one `V::LANES`-wide strip of output
/// rows, with the `JB × 1`-vector accumulator tile held in registers across
/// the whole row loop. Rows are consumed in the canonical 4-row groups:
/// `acc += ((a₀b₀ + a₁b₁) + a₂b₂) + a₃b₃`, trailing rows singly.
///
/// # Safety
/// Caller must hold the target feature backing `V`; `accp` addresses a
/// `j`-major accumulator with row stride `d`, `ap` an A-panel column strip
/// with row stride `astride` and at least `V::LANES` valid columns, `b` a
/// row-major operand with row stride `bstride` and at least `JB` valid
/// columns.
#[inline(always)]
unsafe fn at_b_micro<T: Scalar, V: SimdVec<T>, const JB: usize>(
    accp: *mut T,
    d: usize,
    ap: *const T,
    astride: usize,
    b: *const T,
    bstride: usize,
    rows: usize,
) {
    // SAFETY: the caller's pointer contract (see `# Safety`) makes every
    // offset valid: `jj < JB` columns of `b` and of the `accp` tile,
    // `r < rows` rows of stride `astride`/`bstride`, `V::LANES` lanes per
    // `ap`/`accp` access; the target feature backing `V` is held.
    unsafe {
        let mut acc: [V; JB] = core::array::from_fn(|jj| V::load(accp.add(jj * d)));
        let mut r = 0;
        while r + 4 <= rows {
            let a0 = V::load(ap.add(r * astride));
            let a1 = V::load(ap.add((r + 1) * astride));
            let a2 = V::load(ap.add((r + 2) * astride));
            let a3 = V::load(ap.add((r + 3) * astride));
            for (jj, accv) in acc.iter_mut().enumerate() {
                let mut t = a0.mul(V::splat(*b.add(r * bstride + jj)));
                t = t.add(a1.mul(V::splat(*b.add((r + 1) * bstride + jj))));
                t = t.add(a2.mul(V::splat(*b.add((r + 2) * bstride + jj))));
                t = t.add(a3.mul(V::splat(*b.add((r + 3) * bstride + jj))));
                *accv = accv.add(t);
            }
            r += 4;
        }
        while r < rows {
            let a0 = V::load(ap.add(r * astride));
            for (jj, accv) in acc.iter_mut().enumerate() {
                *accv = accv.add(a0.mul(V::splat(*b.add(r * bstride + jj))));
            }
            r += 1;
        }
        for (jj, accv) in acc.iter().enumerate() {
            accv.store(accp.add(jj * d));
        }
    }
}

/// Variable-width tail of [`at_b_micro`] for `jl < JB` trailing columns.
/// Identical arithmetic order; the accumulator array may spill, which only
/// costs time on the final partial block.
///
/// # Safety
/// As [`at_b_micro`], with `jl ≤ 8` valid `b` columns.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn at_b_micro_any<T: Scalar, V: SimdVec<T>>(
    accp: *mut T,
    d: usize,
    ap: *const T,
    astride: usize,
    b: *const T,
    bstride: usize,
    rows: usize,
    jl: usize,
) {
    debug_assert!(jl <= 8 && jl > 0);
    // SAFETY: as `at_b_micro`, except only the first `jl` accumulator
    // columns are live: every `b`/`accp` column index is capped by
    // `.take(jl)`, and the dead lanes of the spill array load from the
    // (valid) column 0. The target feature backing `V` is held.
    unsafe {
        let mut acc: [V; 8] =
            core::array::from_fn(|jj| V::load(accp.add(if jj < jl { jj * d } else { 0 })));
        let mut r = 0;
        while r + 4 <= rows {
            let a0 = V::load(ap.add(r * astride));
            let a1 = V::load(ap.add((r + 1) * astride));
            let a2 = V::load(ap.add((r + 2) * astride));
            let a3 = V::load(ap.add((r + 3) * astride));
            for (jj, accv) in acc.iter_mut().enumerate().take(jl) {
                let mut t = a0.mul(V::splat(*b.add(r * bstride + jj)));
                t = t.add(a1.mul(V::splat(*b.add((r + 1) * bstride + jj))));
                t = t.add(a2.mul(V::splat(*b.add((r + 2) * bstride + jj))));
                t = t.add(a3.mul(V::splat(*b.add((r + 3) * bstride + jj))));
                *accv = accv.add(t);
            }
            r += 4;
        }
        while r < rows {
            let a0 = V::load(ap.add(r * astride));
            for (jj, accv) in acc.iter_mut().enumerate().take(jl) {
                *accv = accv.add(a0.mul(V::splat(*b.add(r * bstride + jj))));
            }
            r += 1;
        }
        for (jj, accv) in acc.iter().enumerate().take(jl) {
            accv.store(accp.add(jj * d));
        }
    }
}

/// One reduction chunk of `C = AᵀB` (`A ∈ rows×d`, `B ∈ rows×m`),
/// accumulated into a **`j`-major** `m × d` panel (`acc[j·d + i] = C[i][j]`)
/// so the `d` axis — contiguous in every `A` row — is the vector axis.
///
/// Optionally packs each `V::LANES`-wide A-column strip into a contiguous
/// panel (`packbuf`) so the row loop streams unit-stride memory regardless
/// of `d`. Packing and the `jb` register-block size are chosen by the
/// autotuner and are bit-neutral: per element the row-accumulation order is
/// the canonical 4-row grouping of the scalar kernel, whatever the
/// blocking.
///
/// # Safety
/// Caller must hold the target feature backing `V` and pass
/// `acc.len() = m·d`, `a.len() = rows·d`, `b.len() = rows·m`, `d > 0`,
/// `m > 0`, `1 ≤ jb ≤ 8`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn at_b_chunk<T: Scalar, V: SimdVec<T>>(
    acc: &mut [T],
    a: &[T],
    b: &[T],
    d: usize,
    m: usize,
    jb: usize,
    pack: bool,
    packbuf: &mut Vec<T>,
) {
    let l = V::LANES;
    let rows = a.len() / d;
    let vd = d - d % l;
    // SAFETY: the caller's shape contract (see `# Safety`) gives the
    // microkernels their pointer contract: `ib + l ≤ vd ≤ d` keeps every
    // `A`-strip and `acc`-tile access in bounds (the packed panel is
    // `rows · l` by construction), `j0 + jl ≤ m` caps the `b`/`acc`
    // columns, and the scalar tail indexes `i < d`, `j < m`, `r < rows`
    // directly. The target feature backing `V` is held by the caller.
    unsafe {
        let mut ib = 0;
        while ib < vd {
            let (ap, astride) = if pack {
                packbuf.clear();
                packbuf.reserve(rows * l);
                for r in 0..rows {
                    packbuf.extend_from_slice(&a[r * d + ib..r * d + ib + l]);
                }
                (packbuf.as_ptr(), l)
            } else {
                (a.as_ptr().add(ib), d)
            };
            let mut j0 = 0;
            while j0 < m {
                let jl = (m - j0).min(jb);
                let accp = acc.as_mut_ptr().add(j0 * d + ib);
                let bp = b.as_ptr().add(j0);
                match jl {
                    8 => at_b_micro::<T, V, 8>(accp, d, ap, astride, bp, m, rows),
                    4 => at_b_micro::<T, V, 4>(accp, d, ap, astride, bp, m, rows),
                    _ => at_b_micro_any::<T, V>(accp, d, ap, astride, bp, m, rows, jl),
                }
                j0 += jl;
            }
            ib += l;
        }
        // Scalar tail for the last `d % LANES` output rows, in the identical
        // canonical row grouping.
        let apab = a.as_ptr();
        let bpab = b.as_ptr();
        for i in vd..d {
            for j in 0..m {
                let dst = acc.as_mut_ptr().add(j * d + i);
                let mut s = *dst;
                let mut r = 0;
                while r + 4 <= rows {
                    s += *apab.add(r * d + i) * *bpab.add(r * m + j)
                        + *apab.add((r + 1) * d + i) * *bpab.add((r + 1) * m + j)
                        + *apab.add((r + 2) * d + i) * *bpab.add((r + 2) * m + j)
                        + *apab.add((r + 3) * d + i) * *bpab.add((r + 3) * m + j);
                    r += 4;
                }
                while r < rows {
                    s += *apab.add(r * d + i) * *bpab.add(r * m + j);
                    r += 1;
                }
                *dst = s;
            }
        }
    }
}

/// One reduction chunk of the weighted Gram kernels: for every class `k`
/// in `k0..k1`, `acc_blk(k) += Σᵢ W[i][k]·xᵢxᵢᵀ` over the chunk's rows
/// (upper triangle only; the caller mirrors). Rows accumulate
/// sequentially, `q` is the vector axis — the canonical row-sequential
/// tree of the scalar Gram panels, bit-for-bit.
///
/// # Safety
/// Caller must hold the target feature backing `V` and pass
/// `acc.len() = (k1-k0)·d·d`, `x.len() = rows·d`, a weight panel with row
/// stride `wstride ≥ k1`, and `d > 0`.
#[inline(always)]
pub(crate) unsafe fn gram_rows<T: Scalar, V: SimdVec<T>>(
    acc: &mut [T],
    x: &[T],
    w: &[T],
    wstride: usize,
    k0: usize,
    k1: usize,
    d: usize,
) {
    let l = V::LANES;
    let rows = x.len() / d;
    // SAFETY: the caller's shape contract (see `# Safety`) bounds every
    // access: `i < rows` rows of `x` and `w` (row stride `wstride ≥ k1 > k`),
    // block `k - k0 < k1 - k0` of `acc`, and in-block offsets
    // `p·d + q < d·d` with `q + l ≤ d` on the vector steps. The target
    // feature backing `V` is held by the caller.
    unsafe {
        for i in 0..rows {
            let xi = x.as_ptr().add(i * d);
            for k in k0..k1 {
                let wik = *w.get_unchecked(i * wstride + k);
                if wik == T::ZERO {
                    continue;
                }
                let blk = acc.as_mut_ptr().add((k - k0) * d * d);
                for p in 0..d {
                    let s = wik * *xi.add(p);
                    let sv = V::splat(s);
                    let dst = blk.add(p * d);
                    let mut q = p;
                    while q + l <= d {
                        V::load(dst.add(q))
                            .add(sv.mul(V::load(xi.add(q))))
                            .store(dst.add(q));
                        q += l;
                    }
                    while q < d {
                        *dst.add(q) += s * *xi.add(q);
                        q += 1;
                    }
                }
            }
        }
    }
}
