//! Minimal SIMD vector abstraction over `std::arch` intrinsics.
//!
//! Each implementation wraps one hardware register type and exposes exactly
//! the four operations the kernel bodies in [`super::body`] need: unaligned
//! load/store, lane broadcast, multiply, and add. Multiplication and
//! addition are deliberately **unfused** (`mulps` + `addps`, never FMA):
//! the crate-wide determinism contract pins two-rounding multiply-then-add
//! semantics so every dispatch tier — the scalar fallback included —
//! produces bitwise identical results (see `firal_linalg::simd`).
//!
//! All methods are `unsafe` because they compile to target-feature-gated
//! intrinsics: callers must only invoke them from a context where the
//! corresponding feature is known to be available (the `#[target_feature]`
//! wrappers in `super::dispatch` establish exactly that).

/// One SIMD register of `T` lanes.
///
/// Safety contract: every method must only be called when the CPU feature
/// backing the implementing type has been verified at runtime (or is a
/// compile-time baseline, like SSE2 on x86-64 and NEON on AArch64).
pub(crate) trait SimdVec<T: Copy>: Copy {
    /// Number of `T` lanes in the register.
    const LANES: usize;

    /// Unaligned load of `LANES` elements starting at `p`.
    ///
    /// # Safety
    /// The backing CPU feature must be held and `p` must be valid for
    /// `LANES` reads of `T`.
    unsafe fn load(p: *const T) -> Self;
    /// Unaligned store of `LANES` elements starting at `p`.
    ///
    /// # Safety
    /// The backing CPU feature must be held and `p` must be valid for
    /// `LANES` writes of `T`.
    unsafe fn store(self, p: *mut T);
    /// Broadcast one scalar to all lanes.
    ///
    /// # Safety
    /// The backing CPU feature must be held.
    unsafe fn splat(x: T) -> Self;
    /// Lane-wise product (single rounding per lane, not fused with any add).
    ///
    /// # Safety
    /// The backing CPU feature must be held.
    unsafe fn mul(self, o: Self) -> Self;
    /// Lane-wise sum.
    ///
    /// # Safety
    /// The backing CPU feature must be held.
    unsafe fn add(self, o: Self) -> Self;
}

/// Implements the five [`SimdVec`] methods for one register newtype by
/// routing each to its intrinsic. Factored as a macro so the per-intrinsic
/// `SAFETY` reasoning is stated once, next to the only `unsafe` blocks.
macro_rules! simd_vec_impl {
    ($ty:ty, $t:ty, $lanes:literal, $feat:literal,
        $load:ident, $store:ident, $splat:ident, $mul:ident, $add:ident) => {
        impl SimdVec<$t> for $ty {
            const LANES: usize = $lanes;
            #[inline(always)]
            unsafe fn load(p: *const $t) -> Self {
                // SAFETY: the caller holds the backing feature and `p` is
                // valid for `LANES` reads (SimdVec trait contract); the
                // intrinsic performs an unaligned load, so no alignment
                // requirement beyond validity.
                Self(unsafe { $load(p) })
            }
            #[inline(always)]
            unsafe fn store(self, p: *mut $t) {
                // SAFETY: the caller holds the backing feature and `p` is
                // valid for `LANES` writes (SimdVec trait contract);
                // unaligned store intrinsic.
                unsafe { $store(p, self.0) }
            }
            #[inline(always)]
            unsafe fn splat(x: $t) -> Self {
                // SAFETY: register-only broadcast; the caller holds the
                // backing feature (SimdVec trait contract).
                Self(unsafe { $splat(x) })
            }
            #[inline(always)]
            unsafe fn mul(self, o: Self) -> Self {
                // SAFETY: register-only lane-wise multiply; the caller
                // holds the backing feature (SimdVec trait contract).
                Self(unsafe { $mul(self.0, o.0) })
            }
            #[inline(always)]
            unsafe fn add(self, o: Self) -> Self {
                // SAFETY: register-only lane-wise add; the caller holds
                // the backing feature (SimdVec trait contract).
                Self(unsafe { $add(self.0, o.0) })
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use super::SimdVec;
    use std::arch::x86_64::*;

    /// 8 × f32 in one AVX ymm register.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2F32(__m256);

    simd_vec_impl!(
        Avx2F32,
        f32,
        8,
        "avx2",
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_add_ps
    );

    /// 4 × f64 in one AVX ymm register.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2F64(__m256d);

    simd_vec_impl!(
        Avx2F64,
        f64,
        4,
        "avx2",
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_mul_pd,
        _mm256_add_pd
    );

    /// 4 × f32 in one SSE xmm register (x86-64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2F32(__m128);

    simd_vec_impl!(
        Sse2F32,
        f32,
        4,
        "sse2",
        _mm_loadu_ps,
        _mm_storeu_ps,
        _mm_set1_ps,
        _mm_mul_ps,
        _mm_add_ps
    );

    /// 2 × f64 in one SSE xmm register (x86-64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2F64(__m128d);

    simd_vec_impl!(
        Sse2F64,
        f64,
        2,
        "sse2",
        _mm_loadu_pd,
        _mm_storeu_pd,
        _mm_set1_pd,
        _mm_mul_pd,
        _mm_add_pd
    );
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod arm {
    use super::SimdVec;
    use std::arch::aarch64::*;

    /// 4 × f32 in one NEON q register (AArch64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct NeonF32(float32x4_t);

    simd_vec_impl!(
        NeonF32,
        f32,
        4,
        "neon",
        vld1q_f32,
        vst1q_f32,
        vdupq_n_f32,
        vmulq_f32,
        vaddq_f32
    );

    /// 2 × f64 in one NEON q register (AArch64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct NeonF64(float64x2_t);

    simd_vec_impl!(
        NeonF64,
        f64,
        2,
        "neon",
        vld1q_f64,
        vst1q_f64,
        vdupq_n_f64,
        vmulq_f64,
        vaddq_f64
    );
}
