//! Minimal SIMD vector abstraction over `std::arch` intrinsics.
//!
//! Each implementation wraps one hardware register type and exposes exactly
//! the four operations the kernel bodies in [`super::body`] need: unaligned
//! load/store, lane broadcast, multiply, and add. Multiplication and
//! addition are deliberately **unfused** (`mulps` + `addps`, never FMA):
//! the crate-wide determinism contract pins two-rounding multiply-then-add
//! semantics so every dispatch tier — the scalar fallback included —
//! produces bitwise identical results (see `firal_linalg::simd`).
//!
//! All methods are `unsafe` because they compile to target-feature-gated
//! intrinsics: callers must only invoke them from a context where the
//! corresponding feature is known to be available (the `#[target_feature]`
//! wrappers in `super::dispatch` establish exactly that).

/// One SIMD register of `T` lanes.
///
/// Safety contract: every method must only be called when the CPU feature
/// backing the implementing type has been verified at runtime (or is a
/// compile-time baseline, like SSE2 on x86-64 and NEON on AArch64).
pub(crate) trait SimdVec<T: Copy>: Copy {
    /// Number of `T` lanes in the register.
    const LANES: usize;

    /// Unaligned load of `LANES` elements starting at `p`.
    unsafe fn load(p: *const T) -> Self;
    /// Unaligned store of `LANES` elements starting at `p`.
    unsafe fn store(self, p: *mut T);
    /// Broadcast one scalar to all lanes.
    unsafe fn splat(x: T) -> Self;
    /// Lane-wise product (single rounding per lane, not fused with any add).
    unsafe fn mul(self, o: Self) -> Self;
    /// Lane-wise sum.
    unsafe fn add(self, o: Self) -> Self;
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use super::SimdVec;
    use std::arch::x86_64::*;

    /// 8 × f32 in one AVX ymm register.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2F32(__m256);

    impl SimdVec<f32> for Avx2F32 {
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            Self(_mm256_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm256_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(_mm256_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm256_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm256_add_ps(self.0, o.0))
        }
    }

    /// 4 × f64 in one AVX ymm register.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2F64(__m256d);

    impl SimdVec<f64> for Avx2F64 {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Self(_mm256_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(_mm256_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm256_mul_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm256_add_pd(self.0, o.0))
        }
    }

    /// 4 × f32 in one SSE xmm register (x86-64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2F32(__m128);

    impl SimdVec<f32> for Sse2F32 {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            Self(_mm_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(_mm_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm_add_ps(self.0, o.0))
        }
    }

    /// 2 × f64 in one SSE xmm register (x86-64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2F64(__m128d);

    impl SimdVec<f64> for Sse2F64 {
        const LANES: usize = 2;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Self(_mm_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(_mm_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm_mul_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm_add_pd(self.0, o.0))
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod arm {
    use super::SimdVec;
    use std::arch::aarch64::*;

    /// 4 × f32 in one NEON q register (AArch64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct NeonF32(float32x4_t);

    impl SimdVec<f32> for NeonF32 {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            Self(vld1q_f32(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            vst1q_f32(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(vdupq_n_f32(x))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(vmulq_f32(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(vaddq_f32(self.0, o.0))
        }
    }

    /// 2 × f64 in one NEON q register (AArch64 baseline).
    #[derive(Clone, Copy)]
    pub(crate) struct NeonF64(float64x2_t);

    impl SimdVec<f64> for NeonF64 {
        const LANES: usize = 2;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Self(vld1q_f64(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            vst1q_f64(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(vdupq_n_f64(x))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(vmulq_f64(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(vaddq_f64(self.0, o.0))
        }
    }
}
