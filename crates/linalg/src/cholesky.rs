//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used for: inverting the `d × d` preconditioner blocks of Definition 1
//! (`cupy.linalg.inv` in the paper, Line 5 of Algorithm 2 and Lines 4/11 of
//! Algorithm 3), the whitening transform `Σ_⋄^{-1/2}` factors, and the dense
//! solves inside Exact-FIRAL.

use crate::counters;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky<T: Scalar> {
    l: Matrix<T>,
}

impl<T: Scalar> Cholesky<T> {
    /// Factor an SPD matrix. Fails with [`LinalgError::NotPositiveDefinite`]
    /// on a non-positive pivot.
    pub fn new(a: &Matrix<T>) -> Result<Self> {
        Self::factor(a, T::ZERO)
    }

    /// Factor `A + ridge·I` (numerical safety net for nearly singular sums
    /// of Hessians; `ridge = 0` by convention in the main algorithms).
    ///
    /// The ridge is folded into the diagonal reads of the factorization
    /// loop, so the semidefinite-rescue path pays no `O(d²)` copy of `A`.
    /// The result is bitwise identical to factoring an explicit
    /// `A + ridge·I` (the fold adds `ridge` to `A[(i,i)]` before any other
    /// arithmetic touches the pivot, exactly as `add_diag` would).
    pub fn new_with_ridge(a: &Matrix<T>, ridge: T) -> Result<Self> {
        Self::factor(a, ridge)
    }

    /// Shared factorization loop. A non-zero `ridge` is added to each
    /// diagonal entry as it is read; `ridge == 0` takes the exact code path
    /// (and therefore the exact bits) of the historical ridge-free factor.
    fn factor(a: &Matrix<T>, ridge: T) -> Result<Self> {
        let n = a.rows();
        assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
        counters::add_flops(n * n * n / 3);

        let mut l = Matrix::<T>::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // acc = A[i][j] - Σ_{k<j} L[i][k] L[j][k]
                let mut acc = a[(i, j)];
                if i == j && ridge != T::ZERO {
                    acc += ridge;
                }
                let (li, lj) = (l.row(i), l.row(j));
                for k in 0..j {
                    acc -= li[k] * lj[k];
                }
                if i == j {
                    if acc <= T::ZERO || !acc.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = acc.sqrt();
                } else {
                    l[(i, j)] = acc / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Rank-1 update: refactor `L` in place so that `L Lᵀ = A + x xᵀ`,
    /// where `A` is the currently factored matrix.
    ///
    /// Classic Givens-style column sweep in `O(n²)` (vs. `O(n³/3)` for a
    /// fresh factor). The sweep is strictly sequential in `k` with unfused
    /// mul-then-add arithmetic, so the result is a pure function of the
    /// input bits — identical across threads, SIMD tiers, and ranks.
    pub fn update(&mut self, x: &[T]) {
        let n = self.order();
        assert_eq!(x.len(), n, "Cholesky::update dimension mismatch");
        counters::add_flops(4 * n * n / 2 + 4 * n);
        let mut w = x.to_vec();
        for k in 0..n {
            let lkk = self.l[(k, k)];
            let r = lkk.hypot(w[k]);
            let c = r / lkk;
            let s = w[k] / lkk;
            self.l[(k, k)] = r;
            for i in (k + 1)..n {
                let lik = (self.l[(i, k)] + s * w[i]) / c;
                self.l[(i, k)] = lik;
                w[i] = c * w[i] - s * lik;
            }
        }
    }

    /// Rank-1 downdate: refactor `L` in place so that `L Lᵀ = A − x xᵀ`.
    ///
    /// Hyperbolic-rotation column sweep, `O(n²)`. Fails with
    /// [`LinalgError::NotPositiveDefinite`] when the downdate destroys
    /// positive definiteness (the subtracted matrix is only guaranteed
    /// semidefinite); **on error the factor is left partially mutated and
    /// must not be reused** — callers recover by refactoring from scratch,
    /// conventionally via [`Cholesky::new_with_ridge`] on the downdated
    /// matrix (the documented ridge-refactor fallback used by
    /// `firal_core::stream`). Same sequential determinism contract as
    /// [`Cholesky::update`].
    pub fn downdate(&mut self, x: &[T]) -> Result<()> {
        let n = self.order();
        assert_eq!(x.len(), n, "Cholesky::downdate dimension mismatch");
        counters::add_flops(4 * n * n / 2 + 4 * n);
        let mut w = x.to_vec();
        for k in 0..n {
            let lkk = self.l[(k, k)];
            let r2 = (lkk - w[k]) * (lkk + w[k]);
            if r2 <= T::ZERO || !r2.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: k });
            }
            let r = r2.sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            self.l[(k, k)] = r;
            for i in (k + 1)..n {
                let lik = (self.l[(i, k)] - s * w[i]) / c;
                self.l[(i, k)] = lik;
                w[i] = c * w[i] - s * lik;
            }
        }
        Ok(())
    }

    /// Rank-k update: `L Lᵀ ← A + Xᵀ X` for a row-major panel whose rows
    /// are the update vectors, applied one rank-1 [`Cholesky::update`] per
    /// row **in row order** (the order is part of the bitwise contract).
    pub fn update_panel(&mut self, xs: &Matrix<T>) {
        assert_eq!(
            xs.cols(),
            self.order(),
            "Cholesky::update_panel dimension mismatch"
        );
        for i in 0..xs.rows() {
            self.update(xs.row(i));
        }
    }

    /// Rank-k downdate: `L Lᵀ ← A − Xᵀ X`, one rank-1
    /// [`Cholesky::downdate`] per panel row in row order. On error the
    /// factor is partially mutated (some rows applied) and must be rebuilt;
    /// see [`Cholesky::downdate`] for the recovery convention.
    pub fn downdate_panel(&mut self, xs: &Matrix<T>) -> Result<()> {
        assert_eq!(
            xs.cols(),
            self.order(),
            "Cholesky::downdate_panel dimension mismatch"
        );
        for i in 0..xs.rows() {
            self.downdate(xs.row(i))?;
        }
        Ok(())
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix<T> {
        &self.l
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` (forward then backward substitution).
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// In-place `A x = b` solve.
    pub fn solve_in_place(&self, x: &mut [T]) {
        let n = self.order();
        assert_eq!(x.len(), n, "Cholesky::solve dimension mismatch");
        counters::add_flops(2 * n * n);
        // L y = b
        for i in 0..n {
            let li = self.l.row(i);
            let mut acc = x[i];
            for k in 0..i {
                acc -= li[k] * x[k];
            }
            x[i] = acc / li[i];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * x[k];
            }
            x[i] = acc / self.l[(i, i)];
        }
    }

    /// Solve `A X = B` column-by-column for a multi-RHS panel.
    pub fn solve_mat(&self, b: &Matrix<T>) -> Matrix<T> {
        let n = self.order();
        assert_eq!(b.rows(), n, "Cholesky::solve_mat dimension mismatch");
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![T::ZERO; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_in_place(&mut col);
            out.set_col(j, &col);
        }
        out
    }

    /// Solve `A X = Bᵀ` without materializing the transpose: row `j` of `B`
    /// is consumed directly as right-hand-side column `j`. Saves the
    /// `O(rows·cols)` transpose copy that `solve_mat(&b.transpose())` pays
    /// on hot paths (e.g. Exact-FIRAL's per-iteration `Σ⁻¹(Σ⁻¹H_p)ᵀ`).
    pub fn solve_mat_t(&self, b: &Matrix<T>) -> Matrix<T> {
        let n = self.order();
        assert_eq!(b.cols(), n, "Cholesky::solve_mat_t dimension mismatch");
        let mut out = Matrix::zeros(n, b.rows());
        let mut col = vec![T::ZERO; n];
        for j in 0..b.rows() {
            col.copy_from_slice(b.row(j));
            self.solve_in_place(&mut col);
            out.set_col(j, &col);
        }
        out
    }

    /// Forward substitution only: solve `L y = b`.
    pub fn solve_l(&self, b: &[T]) -> Vec<T> {
        let n = self.order();
        assert_eq!(b.len(), n);
        counters::add_flops(n * n);
        let mut y = b.to_vec();
        for i in 0..n {
            let li = self.l.row(i);
            let mut acc = y[i];
            for k in 0..i {
                acc -= li[k] * y[k];
            }
            y[i] = acc / li[i];
        }
        y
    }

    /// Back substitution only: solve `Lᵀ x = y`.
    pub fn solve_lt(&self, y: &[T]) -> Vec<T> {
        let n = self.order();
        assert_eq!(y.len(), n);
        counters::add_flops(n * n);
        let mut x = y.to_vec();
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * x[k];
            }
            x[i] = acc / self.l[(i, i)];
        }
        x
    }

    /// Explicit inverse `A^{-1}` (the paper's `cupy.linalg.inv` on the
    /// block diagonals; only ever called on `d × d` blocks).
    pub fn inverse(&self) -> Matrix<T> {
        let n = self.order();
        counters::add_flops(2 * n * n * n / 3);
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![T::ZERO; n];
        for j in 0..n {
            e.fill(T::ZERO);
            e[j] = T::ONE;
            self.solve_in_place(&mut e);
            inv.set_col(j, &e);
        }
        // Clean up asymmetry from rounding.
        inv.symmetrize();
        inv
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn logdet(&self) -> T {
        let mut acc = T::ZERO;
        for i in 0..self.order() {
            acc += self.l[(i, i)].ln();
        }
        acc + acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        // A = B Bᵀ + n·I is SPD
        let mut a = crate::gemm::gemm_a_bt(&b, &b);
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_test_matrix(8, 1);
        let ch = Cholesky::new(&a).unwrap();
        let r = crate::gemm::gemm_a_bt(ch.l(), ch.l());
        let mut diff: f64 = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                diff = diff.max((r[(i, j)] - a[(i, j)]).abs());
            }
        }
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_test_matrix(10, 2);
        let ch = Cholesky::new(&a).unwrap();
        let x_true: Vec<f64> = (0..10).map(|i| i as f64 - 4.5).collect();
        let b = a.matvec(&x_true);
        let x = ch.solve(&b);
        let err: f64 = x
            .iter()
            .zip(x_true.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "max err {err}");
    }

    #[test]
    fn forward_backward_composes_to_solve() {
        let a = spd_test_matrix(6, 3);
        let ch = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let x1 = ch.solve(&b);
        let x2 = ch.solve_lt(&ch.solve_l(&b));
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_test_matrix(7, 4);
        let inv = Cholesky::new(&a).unwrap().inverse();
        let p = crate::gemm::gemm(&inv, &a);
        for i in 0..7 {
            for j in 0..7 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (p[(i, j)] - expect).abs() < 1e-8,
                    "({i},{j}) = {}",
                    p[(i, j)]
                );
            }
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut a = Matrix::<f64>::identity(3);
        a[(2, 2)] = -1.0;
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 2 })
        ));
    }

    #[test]
    fn ridge_rescues_semidefinite() {
        let mut a = Matrix::<f64>::zeros(3, 3);
        a[(0, 0)] = 1.0; // rank-1 PSD
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::new_with_ridge(&a, 1e-6).is_ok());
    }

    #[test]
    fn logdet_matches_identity_scaling() {
        let mut a = Matrix::<f64>::identity(5);
        a.scale_inplace(3.0);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.logdet() - 5.0 * 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_mat_matches_columnwise() {
        let a = spd_test_matrix(5, 6);
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let x = ch.solve_mat(&b);
        for j in 0..3 {
            let xj = ch.solve(&b.col(j));
            for i in 0..5 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ridge_on_the_fly_is_bitwise_equal_to_explicit_add_diag() {
        for seed in 0..8u64 {
            let a = spd_test_matrix(6, 100 + seed);
            let ridge = 1e-3 * (seed + 1) as f64;
            let fused = Cholesky::new_with_ridge(&a, ridge).unwrap();
            let mut ar = a.clone();
            ar.add_diag(ridge);
            let explicit = Cholesky::new(&ar).unwrap();
            for i in 0..6 {
                for j in 0..6 {
                    assert!(
                        fused.l()[(i, j)] == explicit.l()[(i, j)],
                        "ridge fold must be bitwise at ({i},{j}), seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_one_update_matches_fresh_factor() {
        let n = 7;
        let a = spd_test_matrix(n, 11);
        let x: Vec<f64> = (0..n).map(|i| 0.3 * (i as f64) - 1.0).collect();
        let mut ch = Cholesky::new(&a).unwrap();
        ch.update(&x);
        let mut ax = a.clone();
        for i in 0..n {
            for j in 0..n {
                ax[(i, j)] += x[i] * x[j];
            }
        }
        let fresh = Cholesky::new(&ax).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (ch.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-10,
                    "update drift at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn downdate_inverts_update() {
        let n = 6;
        let a = spd_test_matrix(n, 12);
        let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64).sin()).collect();
        let mut ch = Cholesky::new(&a).unwrap();
        ch.update(&x);
        ch.downdate(&x).unwrap();
        let fresh = Cholesky::new(&a).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (ch.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-9,
                    "roundtrip drift at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn downdate_to_semidefinite_is_a_structured_error() {
        // A = I₃; removing e₂e₂ᵀ zeroes the last pivot exactly.
        let a = Matrix::<f64>::identity(3);
        let mut ch = Cholesky::new(&a).unwrap();
        assert_eq!(
            ch.downdate(&[0.0, 0.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite { pivot: 2 })
        );
        // Documented recovery: refactor the true downdated matrix with a
        // ridge instead of reusing the poisoned factor.
        let mut down = a.clone();
        down[(2, 2)] = 0.0;
        assert!(Cholesky::new(&down).is_err());
        assert!(Cholesky::new_with_ridge(&down, 1e-8).is_ok());
    }

    #[test]
    fn panel_update_is_row_ordered_rank_ones() {
        let n = 5;
        let a = spd_test_matrix(n, 13);
        let xs = Matrix::from_fn(3, n, |i, j| ((i + 2 * j) as f64).cos());
        let mut panel = Cholesky::new(&a).unwrap();
        panel.update_panel(&xs);
        let mut serial = Cholesky::new(&a).unwrap();
        for r in 0..3 {
            serial.update(xs.row(r));
        }
        for i in 0..n {
            for j in 0..n {
                assert!(panel.l()[(i, j)] == serial.l()[(i, j)], "({i},{j})");
            }
        }
        panel.downdate_panel(&xs).unwrap();
        let fresh = Cholesky::new(&a).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!((panel.l()[(i, j)] - fresh.l()[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// Property test: 500 seeded cases of updates/downdates composed in
    /// random order must match a fresh factor of the mutated matrix.
    #[test]
    fn random_update_downdate_compositions_match_fresh_factor() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for case in 0..500u64 {
            let mut rng = StdRng::seed_from_u64(0xC0DE_D00D ^ case);
            let n = rng.gen_range(1..=8usize);
            let a = spd_test_matrix(n, 1000 + case);
            let mut ch = Cholesky::new(&a).unwrap();
            let mut mirror = a.clone();
            // Vectors currently added on top of the base matrix; downdates
            // only ever remove one of these, so the mirror stays SPD.
            let mut live: Vec<Vec<f64>> = Vec::new();
            let ops = rng.gen_range(1..=8usize);
            for _ in 0..ops {
                let remove = !live.is_empty() && rng.gen::<bool>();
                let x = if remove {
                    live.swap_remove(rng.gen_range(0..live.len()))
                } else {
                    let x: Vec<f64> = (0..n).map(|_| 2.0 * rng.gen::<f64>() - 1.0).collect();
                    live.push(x.clone());
                    x
                };
                let sign = if remove { -1.0 } else { 1.0 };
                for i in 0..n {
                    for j in 0..n {
                        mirror[(i, j)] += sign * x[i] * x[j];
                    }
                }
                if remove {
                    ch.downdate(&x)
                        .expect("mirror is SPD, downdate must succeed");
                } else {
                    ch.update(&x);
                }
            }
            let fresh = Cholesky::new(&mirror).expect("mirror is SPD");
            let scale: f64 = (0..n).map(|i| mirror[(i, i)].abs()).fold(1.0, f64::max);
            for i in 0..n {
                for j in 0..n {
                    let diff = (ch.l()[(i, j)] - fresh.l()[(i, j)]).abs();
                    assert!(
                        diff < 1e-8 * scale,
                        "case {case}: drift {diff} at ({i},{j}), n {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_mat_t_equals_solve_of_explicit_transpose() {
        let a = spd_test_matrix(5, 7);
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(4, 5, |i, j| (2 * i + 3 * j) as f64 - 6.0);
        let fused = ch.solve_mat_t(&b);
        let explicit = ch.solve_mat(&b.transpose());
        assert_eq!(fused.shape(), (5, 4));
        for i in 0..5 {
            for j in 0..4 {
                assert!((fused[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
