//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used for: inverting the `d × d` preconditioner blocks of Definition 1
//! (`cupy.linalg.inv` in the paper, Line 5 of Algorithm 2 and Lines 4/11 of
//! Algorithm 3), the whitening transform `Σ_⋄^{-1/2}` factors, and the dense
//! solves inside Exact-FIRAL.

use crate::counters;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky<T: Scalar> {
    l: Matrix<T>,
}

impl<T: Scalar> Cholesky<T> {
    /// Factor an SPD matrix. Fails with [`LinalgError::NotPositiveDefinite`]
    /// on a non-positive pivot.
    pub fn new(a: &Matrix<T>) -> Result<Self> {
        let n = a.rows();
        assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
        counters::add_flops(n * n * n / 3);

        let mut l = Matrix::<T>::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // acc = A[i][j] - Σ_{k<j} L[i][k] L[j][k]
                let mut acc = a[(i, j)];
                let (li, lj) = (l.row(i), l.row(j));
                for k in 0..j {
                    acc -= li[k] * lj[k];
                }
                if i == j {
                    if acc <= T::ZERO || !acc.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = acc.sqrt();
                } else {
                    l[(i, j)] = acc / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Factor `A + ridge·I` (numerical safety net for nearly singular sums
    /// of Hessians; `ridge = 0` by convention in the main algorithms).
    pub fn new_with_ridge(a: &Matrix<T>, ridge: T) -> Result<Self> {
        if ridge == T::ZERO {
            return Self::new(a);
        }
        let mut ar = a.clone();
        ar.add_diag(ridge);
        Self::new(&ar)
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix<T> {
        &self.l
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` (forward then backward substitution).
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// In-place `A x = b` solve.
    pub fn solve_in_place(&self, x: &mut [T]) {
        let n = self.order();
        assert_eq!(x.len(), n, "Cholesky::solve dimension mismatch");
        counters::add_flops(2 * n * n);
        // L y = b
        for i in 0..n {
            let li = self.l.row(i);
            let mut acc = x[i];
            for k in 0..i {
                acc -= li[k] * x[k];
            }
            x[i] = acc / li[i];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * x[k];
            }
            x[i] = acc / self.l[(i, i)];
        }
    }

    /// Solve `A X = B` column-by-column for a multi-RHS panel.
    pub fn solve_mat(&self, b: &Matrix<T>) -> Matrix<T> {
        let n = self.order();
        assert_eq!(b.rows(), n, "Cholesky::solve_mat dimension mismatch");
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![T::ZERO; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_in_place(&mut col);
            out.set_col(j, &col);
        }
        out
    }

    /// Solve `A X = Bᵀ` without materializing the transpose: row `j` of `B`
    /// is consumed directly as right-hand-side column `j`. Saves the
    /// `O(rows·cols)` transpose copy that `solve_mat(&b.transpose())` pays
    /// on hot paths (e.g. Exact-FIRAL's per-iteration `Σ⁻¹(Σ⁻¹H_p)ᵀ`).
    pub fn solve_mat_t(&self, b: &Matrix<T>) -> Matrix<T> {
        let n = self.order();
        assert_eq!(b.cols(), n, "Cholesky::solve_mat_t dimension mismatch");
        let mut out = Matrix::zeros(n, b.rows());
        let mut col = vec![T::ZERO; n];
        for j in 0..b.rows() {
            col.copy_from_slice(b.row(j));
            self.solve_in_place(&mut col);
            out.set_col(j, &col);
        }
        out
    }

    /// Forward substitution only: solve `L y = b`.
    pub fn solve_l(&self, b: &[T]) -> Vec<T> {
        let n = self.order();
        assert_eq!(b.len(), n);
        counters::add_flops(n * n);
        let mut y = b.to_vec();
        for i in 0..n {
            let li = self.l.row(i);
            let mut acc = y[i];
            for k in 0..i {
                acc -= li[k] * y[k];
            }
            y[i] = acc / li[i];
        }
        y
    }

    /// Back substitution only: solve `Lᵀ x = y`.
    pub fn solve_lt(&self, y: &[T]) -> Vec<T> {
        let n = self.order();
        assert_eq!(y.len(), n);
        counters::add_flops(n * n);
        let mut x = y.to_vec();
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * x[k];
            }
            x[i] = acc / self.l[(i, i)];
        }
        x
    }

    /// Explicit inverse `A^{-1}` (the paper's `cupy.linalg.inv` on the
    /// block diagonals; only ever called on `d × d` blocks).
    pub fn inverse(&self) -> Matrix<T> {
        let n = self.order();
        counters::add_flops(2 * n * n * n / 3);
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![T::ZERO; n];
        for j in 0..n {
            e.fill(T::ZERO);
            e[j] = T::ONE;
            self.solve_in_place(&mut e);
            inv.set_col(j, &e);
        }
        // Clean up asymmetry from rounding.
        inv.symmetrize();
        inv
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn logdet(&self) -> T {
        let mut acc = T::ZERO;
        for i in 0..self.order() {
            acc += self.l[(i, i)].ln();
        }
        acc + acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        // A = B Bᵀ + n·I is SPD
        let mut a = crate::gemm::gemm_a_bt(&b, &b);
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_test_matrix(8, 1);
        let ch = Cholesky::new(&a).unwrap();
        let r = crate::gemm::gemm_a_bt(ch.l(), ch.l());
        let mut diff: f64 = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                diff = diff.max((r[(i, j)] - a[(i, j)]).abs());
            }
        }
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_test_matrix(10, 2);
        let ch = Cholesky::new(&a).unwrap();
        let x_true: Vec<f64> = (0..10).map(|i| i as f64 - 4.5).collect();
        let b = a.matvec(&x_true);
        let x = ch.solve(&b);
        let err: f64 = x
            .iter()
            .zip(x_true.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "max err {err}");
    }

    #[test]
    fn forward_backward_composes_to_solve() {
        let a = spd_test_matrix(6, 3);
        let ch = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let x1 = ch.solve(&b);
        let x2 = ch.solve_lt(&ch.solve_l(&b));
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_test_matrix(7, 4);
        let inv = Cholesky::new(&a).unwrap().inverse();
        let p = crate::gemm::gemm(&inv, &a);
        for i in 0..7 {
            for j in 0..7 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (p[(i, j)] - expect).abs() < 1e-8,
                    "({i},{j}) = {}",
                    p[(i, j)]
                );
            }
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut a = Matrix::<f64>::identity(3);
        a[(2, 2)] = -1.0;
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 2 })
        ));
    }

    #[test]
    fn ridge_rescues_semidefinite() {
        let mut a = Matrix::<f64>::zeros(3, 3);
        a[(0, 0)] = 1.0; // rank-1 PSD
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::new_with_ridge(&a, 1e-6).is_ok());
    }

    #[test]
    fn logdet_matches_identity_scaling() {
        let mut a = Matrix::<f64>::identity(5);
        a.scale_inplace(3.0);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.logdet() - 5.0 * 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_mat_matches_columnwise() {
        let a = spd_test_matrix(5, 6);
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let x = ch.solve_mat(&b);
        for j in 0..3 {
            let xj = ch.solve(&b.col(j));
            for i in 0..5 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_mat_t_equals_solve_of_explicit_transpose() {
        let a = spd_test_matrix(5, 7);
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(4, 5, |i, j| (2 * i + 3 * j) as f64 - 6.0);
        let fused = ch.solve_mat_t(&b);
        let explicit = ch.solve_mat(&b.transpose());
        assert_eq!(fused.shape(), (5, 4));
        for i in 0..5 {
            for j in 0..4 {
                assert!((fused[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
