//! Dense row-major matrix.
//!
//! `Matrix<T>` is the storage type for everything dense in the workspace:
//! data-point panels (`n × d`), probe blocks (`d(c-1) × s` reshaped), the
//! `d × d` blocks of Definition 1, and the full `ê × ê` matrices of
//! Exact-FIRAL. Row-major layout matches the access pattern of the hot
//! kernels (row-streaming GEMMs over the pool panel).

use crate::counters;
use crate::scalar::Scalar;

/// Dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        counters::add_bytes(rows * cols * std::mem::size_of::<T>());
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(diag: &[T]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Build from a row-major `Vec` (length must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} elements for {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major data slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `i`.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a `Vec`.
    pub fn col(&self, j: usize) -> Vec<T> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Set column `j` from a slice.
    pub fn set_col(&mut self, j: usize, v: &[T]) {
        assert_eq!(v.len(), self.rows);
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Explicit transpose (allocates). Tiled so both the source rows and the
    /// destination rows stay cache-resident within a tile — large panels
    /// (e.g. the `ê × s` probe blocks) otherwise stride-miss on every write.
    pub fn transpose(&self) -> Self {
        const TILE: usize = 32;
        let mut t = Self::zeros(self.cols, self.rows);
        for i0 in (0..self.rows).step_by(TILE) {
            let imax = (i0 + TILE).min(self.rows);
            for j0 in (0..self.cols).step_by(TILE) {
                let jmax = (j0 + TILE).min(self.cols);
                for i in i0..imax {
                    for j in j0..jmax {
                        t[(j, i)] = self[(i, j)];
                    }
                }
            }
        }
        t
    }

    /// Matrix-vector product `y = A x` (sequential; hot paths use `gemm`).
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        counters::add_flops(2 * self.rows * self.cols);
        let mut y = vec![T::ZERO; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = T::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed matrix-vector product `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        counters::add_flops(2 * self.rows * self.cols);
        let mut y = vec![T::ZERO; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            for (yj, aij) in y.iter_mut().zip(self.row(i)) {
                *yj += *aij * xi;
            }
        }
        y
    }

    /// `self += alpha * other` (element-wise).
    pub fn add_scaled(&mut self, alpha: T, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        counters::add_flops(2 * self.data.len());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// `self *= alpha` (element-wise).
    pub fn scale_inplace(&mut self, alpha: T) {
        counters::add_flops(self.data.len());
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Add `alpha` to the diagonal.
    pub fn add_diag(&mut self, alpha: T) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> T {
        let n = self.rows.min(self.cols);
        let mut t = T::ZERO;
        for i in 0..n {
            t += self[(i, i)];
        }
        t
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> T {
        let mut acc = T::ZERO;
        for &v in &self.data {
            acc += v * v;
        }
        acc.sqrt()
    }

    /// Max-abs entry (used by convergence checks and tests).
    pub fn max_abs(&self) -> T {
        let mut m = T::ZERO;
        for &v in &self.data {
            m = m.maxv(v.abs());
        }
        m
    }

    /// Symmetrize in place: `A ← (A + Aᵀ)/2`. Keeps accumulated SPD matrices
    /// numerically symmetric after long update chains.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize needs a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = (self[(i, j)] + self[(j, i)]) * T::HALF;
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// Matrix inner product `A · B = Σᵢⱼ AᵢⱼBᵢⱼ` (the `·` of Eq. 4).
    pub fn inner(&self, other: &Self) -> T {
        assert_eq!(self.shape(), other.shape(), "inner shape mismatch");
        counters::add_flops(2 * self.data.len());
        let mut acc = T::ZERO;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            acc += *a * *b;
        }
        acc
    }

    /// Extract the square sub-block starting at (`r0`, `c0`) of size `n`.
    pub fn block(&self, r0: usize, c0: usize, n: usize) -> Self {
        assert!(
            r0 + n <= self.rows && c0 + n <= self.cols,
            "block out of range"
        );
        let mut b = Self::zeros(n, n);
        for i in 0..n {
            b.row_mut(i).copy_from_slice(&self.row(r0 + i)[c0..c0 + n]);
        }
        b
    }

    /// Convert precision (e.g. build in f64, run in f32).
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        )
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:>10.4} ", self[(i, j)].to_f64())?;
            }
            if self.cols > show_cols {
                write!(f, "…")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::<f64>::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_t_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn trace_and_inner() {
        let a = Matrix::from_fn(3, 3, |i, j| if i == j { 2.0 } else { 1.0 });
        assert_eq!(a.trace(), 6.0);
        let i3 = Matrix::<f64>::identity(3);
        // A · I = trace(A)
        assert_eq!(a.inner(&i3), a.trace());
    }

    #[test]
    fn block_extraction() {
        let a = Matrix::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let b = a.block(1, 2, 2);
        assert_eq!(b[(0, 0)], 12.0);
        assert_eq!(b[(1, 1)], 23.0);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        a.symmetrize();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::<f32>::identity(2);
        let b = Matrix::<f32>::identity(2);
        a.add_scaled(3.0, &b);
        a.scale_inplace(0.5);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn cast_f64_to_f32() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64 + 0.25);
        let b: Matrix<f32> = a.cast();
        assert_eq!(b[(1, 1)], 2.25f32);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_panics_on_mismatch() {
        let m = Matrix::<f64>::identity(3);
        let _ = m.matvec(&[1.0, 2.0]);
    }
}
