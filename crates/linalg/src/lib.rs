//! Dense linear-algebra kernels underpinning the firal workspace.
//!
//! The SC'24 Approx-FIRAL paper runs on CuPy/A100; this crate provides the
//! equivalent CPU substrate: a scalar abstraction over `f32`/`f64` (the paper
//! uses single precision for both storage and compute, §III-C), a dense
//! row-major [`Matrix`], cache-blocked rayon-parallel [`gemm()`] kernels, a
//! Cholesky factorization, symmetric eigensolvers (Householder
//! tridiagonalization + implicit QL, with a cyclic-Jacobi reference), SPD
//! helpers (inverse, square root, condition number) and the block-diagonal
//! operators of Definition 1 that Approx-FIRAL's ROUND step lives on.
//!
//! All kernels are written against the [`Scalar`] trait so every algorithm in
//! the workspace can be instantiated in `f32` (paper configuration) and `f64`
//! (reference/testing configuration).
//!
//! Global flop/byte counters ([`counters`]) let the benchmark harness verify
//! the complexity claims of Tables II and III empirically.
//!
//! The bitwise-determinism contracts this crate participates in (canonical
//! summation trees, no FMA, shape-only reduction chunking) are catalogued
//! in the repo-root `ARCHITECTURE.md` ("Determinism contracts and how they
//! are enforced") and mechanically checked by `firal-lint`.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod autotune;
pub mod blockdiag;
pub mod cholesky;
pub mod counters;
pub mod eigen;
pub mod gemm;
pub mod kron;
pub mod matrix;
pub mod scalar;
pub mod simd;
pub mod spd;
pub mod vecops;

pub use autotune::{cache_geometry, plan_for, CacheGeometry, KernelPlan};
pub use blockdiag::BlockDiag;
pub use cholesky::Cholesky;
pub use eigen::{eigh, eigvalsh, jacobi_eigh, EigDecomposition};
pub use gemm::{
    gemm, gemm_a_bt, gemm_a_bt_tier, gemm_at_b, gemm_at_b_planned, gemm_at_b_tier, gemm_tier,
    gram_weighted, gram_weighted_multi, gram_weighted_multi_planned, gram_weighted_multi_tier,
    gram_weighted_tier,
};
pub use kron::{kron, unvec, vec_of};
pub use matrix::Matrix;
pub use scalar::Scalar;
pub use simd::{active_tier, available_tiers, cpu_features, Tier};
pub use spd::{spd_condition_number, spd_inv_sqrt, spd_inverse, spd_sqrt};
pub use vecops::{axpy, dot, nrm2, scale};

/// Error type for linear-algebra failures (non-SPD matrices, convergence
/// failures in the eigensolver, dimension mismatches surfaced at runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Cholesky hit a non-positive pivot: matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The QL iteration failed to converge for some eigenvalue.
    EigenNoConvergence {
        /// Index of the eigenvalue that failed.
        index: usize,
    },
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable context for the mismatch.
        context: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::EigenNoConvergence { index } => {
                write!(f, "eigensolver failed to converge (eigenvalue {index})")
            }
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
