//! Parallel dense matrix-matrix kernels.
//!
//! These are the hot kernels of Approx-FIRAL's RELAX step: the matrix-free
//! Hessian matvec of Lemma 2 vectorizes into two tall-skinny GEMMs over the
//! pool panel (`X·V` then `Xᵀ·Γ`), and the CG preconditioner of Definition 1
//! is a set of weighted Gram matrices `Xᵀdiag(w_k)X`. All kernels are
//! rayon-parallel over the long (pool) dimension, mirroring how the paper
//! shards the pool across GPUs, with panel blocking over the pool dimension
//! and 4-wide register-tiled inner loops (the tall-skinny analogue of a
//! blocked GEMM: operand panels are reused across a 4-row tile instead of
//! being re-streamed per row).
//!
//! Every kernel exists in two forms: the plain entry point (`gemm` etc.),
//! which runs on the process-wide SIMD tier picked once by
//! [`crate::simd::active_tier`], and an explicit `*_tier` variant that the
//! equality harnesses use to cross-check every available tier bitwise. The
//! SIMD bodies live in `crate::simd`; the scalar register-tiled panels in
//! this module remain the always-available fallback and the reference
//! semantics. Blocking parameters for the packed-panel paths come from the
//! one-shot autotuner ([`crate::autotune`]).
//!
//! # Determinism contract
//!
//! Every kernel's result depends only on operand shapes and values — never
//! on the worker-thread count **or the dispatch tier**:
//!
//! * **row-parallel kernels** ([`gemm`], [`gemm_a_bt`]) produce each output
//!   row in exactly one task with a fixed depth-ascending accumulation
//!   order, so any row grouping yields identical bits;
//! * **reduction kernels** ([`gemm_at_b`], [`gram_weighted`],
//!   [`gram_weighted_multi`]) fix their chunk boundaries from the problem
//!   shape alone (`reduce_chunk_rows` — never
//!   `rayon::current_num_threads()`) and combine partial accumulators in
//!   chunk-index order (the shim's ordered `reduce`);
//! * the sequential small-shape fallback uses the same accumulation order,
//!   and the parallel/sequential branch is a pure shape predicate
//!   (`PAR_THRESHOLD`);
//! * every SIMD tier implements the same canonical per-element summation
//!   tree as the scalar panels (lane-width independent because lanes span
//!   output elements, never a reduction axis; all arithmetic unfused — see
//!   the `crate::simd` module docs), and the autotuned blocking knobs are
//!   bit-neutral by construction.
//!
//! Consequence: `FIRAL_NUM_THREADS ∈ {1, 2, …}` (or any
//! `ThreadPool::install` scope) crossed with `FIRAL_SIMD ∈ {off, sse2,
//! avx2, neon}` produces bitwise-identical numerics, which the SPMD
//! consistency matrix in `tests/parallel_consistency.rs` and the
//! `simd_equality` suite rely on.

use rayon::prelude::*;

use crate::autotune::{self, KernelPlan};
use crate::counters;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::simd::{self, Tier};

/// Work threshold (in multiply-adds) below which kernels run sequentially.
/// Parallelizing tiny GEMMs costs more in task dispatch than it saves.
const PAR_THRESHOLD: usize = 1 << 15;

/// Rows per parallel task in the row-parallel kernels — a multiple of the
/// 4-row micro-tile so full tasks never hit the scalar tail.
const ROW_BLOCK: usize = 32;

/// Cap on the number of reduction chunks, bounding partial-accumulator
/// memory at `MAX_REDUCE_CHUNKS` copies of the output block.
const MAX_REDUCE_CHUNKS: usize = 64;

/// Deterministic reduction chunking: rows per chunk as a function of the
/// problem shape **only** (never the worker count), so chunk boundaries —
/// and therefore floating-point partial-sum splits — are identical at every
/// thread count.
fn reduce_chunk_rows(n: usize, min_rows: usize) -> usize {
    n.div_ceil(MAX_REDUCE_CHUNKS).max(min_rows)
}

/// Fail loudly if a harness hands us a tier the CPU cannot execute
/// (cheap: the feature probes behind it are cached).
fn check_tier(tier: Tier) {
    assert!(
        simd::tier_available(tier),
        "SIMD tier '{tier}' is unavailable on this host"
    );
}

/// `C = A · B` on the process-wide dispatch tier.
///
/// Row-parallel over 4-row tiles, `ikj` loop order so both `B` and `C`
/// stream row-major; each `B` row is reused across the 4-row tile.
pub fn gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    gemm_tier(simd::active_tier(), a, b)
}

/// [`gemm`] on an explicit dispatch tier (must be available on this host;
/// see [`crate::simd::available_tiers`]). Bitwise identical across tiers.
pub fn gemm_tier<T: Scalar>(tier: Tier, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    check_tier(tier);
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm: A is {m}x{k}, B is {kb}x{n}");
    counters::add_flops(counters::gemm_flops(m, n, k));

    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let use_simd = simd::tier_is_simd(tier);
    let body = |ci: &mut [T], ai: &[T]| {
        if !(use_simd && T::simd_gemm_panel(tier, ci, ai, b.as_slice(), k, n)) {
            gemm_rows(ci, ai, b);
        }
    };
    if m * n * k >= PAR_THRESHOLD && m > 1 {
        c.as_mut_slice()
            .par_chunks_mut(ROW_BLOCK * n)
            .zip(a.as_slice().par_chunks(ROW_BLOCK * k))
            .for_each(|(ci, ai)| body(ci, ai));
    } else {
        body(c.as_mut_slice(), a.as_slice());
    }
    c
}

/// `C[r] += A[r] · B` for a panel of rows; 4-row register-tiled body with a
/// depth-ascending (`p`) accumulation order identical for every row, so the
/// result is independent of how rows are grouped into panels. This is the
/// canonical summation tree the SIMD panel bodies replicate.
fn gemm_rows<T: Scalar>(crows: &mut [T], arows: &[T], b: &Matrix<T>) {
    let (k, n) = b.shape();
    let rows = arows.len() / k;
    let mut r = 0;
    while r + 4 <= rows {
        let (c01, c23) = crows[r * n..(r + 4) * n].split_at_mut(2 * n);
        let (c0, c1) = c01.split_at_mut(n);
        let (c2, c3) = c23.split_at_mut(n);
        let a0 = &arows[r * k..(r + 1) * k];
        let a1 = &arows[(r + 1) * k..(r + 2) * k];
        let a2 = &arows[(r + 2) * k..(r + 3) * k];
        let a3 = &arows[(r + 3) * k..(r + 4) * k];
        for p in 0..k {
            let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
            let brow = b.row(p);
            let mut j = 0;
            while j + 4 <= n {
                let (b0, b1, b2, b3) = (brow[j], brow[j + 1], brow[j + 2], brow[j + 3]);
                c0[j] += x0 * b0;
                c0[j + 1] += x0 * b1;
                c0[j + 2] += x0 * b2;
                c0[j + 3] += x0 * b3;
                c1[j] += x1 * b0;
                c1[j + 1] += x1 * b1;
                c1[j + 2] += x1 * b2;
                c1[j + 3] += x1 * b3;
                c2[j] += x2 * b0;
                c2[j + 1] += x2 * b1;
                c2[j + 2] += x2 * b2;
                c2[j + 3] += x2 * b3;
                c3[j] += x3 * b0;
                c3[j + 1] += x3 * b1;
                c3[j + 2] += x3 * b2;
                c3[j + 3] += x3 * b3;
                j += 4;
            }
            while j < n {
                let bj = brow[j];
                c0[j] += x0 * bj;
                c1[j] += x1 * bj;
                c2[j] += x2 * bj;
                c3[j] += x3 * bj;
                j += 1;
            }
        }
        r += 4;
    }
    while r < rows {
        let crow = &mut crows[r * n..(r + 1) * n];
        let arow = &arows[r * k..(r + 1) * k];
        for (p, &apk) in arow.iter().enumerate() {
            let brow = b.row(p);
            for (cj, &bpj) in crow.iter_mut().zip(brow.iter()) {
                *cj += apk * bpj;
            }
        }
        r += 1;
    }
}

/// `C = Aᵀ · B` where `A` is `n × d` and `B` is `n × m` (both tall-skinny),
/// on the process-wide dispatch tier.
///
/// This is the reduction-shaped GEMM of the fast Hessian matvec (Eq. 13):
/// the pool dimension `n` is long, the output `d × m` is small. Implemented
/// as a map-reduce over shape-fixed row chunks with per-chunk `d × m`
/// accumulators combined in chunk order — the shared-memory analogue of the
/// paper's per-GPU partial sums followed by `MPI_Allreduce`. The chunk body
/// consumes rows in 4-row tiles so each accumulator row takes four
/// multiply-adds per pass over it; on SIMD tiers the chunk body is the
/// packed-panel reduction microkernel with autotuned register blocking.
pub fn gemm_at_b<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    gemm_at_b_tier(simd::active_tier(), a, b)
}

/// [`gemm_at_b`] on an explicit dispatch tier, with the blocking plan
/// autotuned for `(tier, d, dtype)`. Bitwise identical across tiers.
pub fn gemm_at_b_tier<T: Scalar>(tier: Tier, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    check_tier(tier);
    gemm_at_b_planned(tier, autotune::plan_for::<T>(tier, a.cols()), a, b)
}

/// [`gemm_at_b`] with an explicit blocking plan. Exposed so the autotuner
/// probe and the block-invariance tests can pin that every legal plan
/// yields identical bits; normal callers use [`gemm_at_b`] /
/// [`gemm_at_b_tier`].
pub fn gemm_at_b_planned<T: Scalar>(
    tier: Tier,
    plan: KernelPlan,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    check_tier(tier);
    let (n, d) = a.shape();
    let (nb, m) = b.shape();
    assert_eq!(n, nb, "gemm_at_b: A is {n}x{d}, B is {nb}x{m}");
    counters::add_flops(counters::gemm_at_b_flops(n, d, m));
    if d == 0 || m == 0 {
        return Matrix::zeros(d, m);
    }
    if !simd::tier_is_simd(tier) {
        return gemm_at_b_scalar(a, b);
    }

    let elem = std::mem::size_of::<T>();
    let lanes = autotune::lane_count(tier, elem);
    let vd = d - d % lanes;
    let jb = plan.jb.clamp(1, 8);
    let pack = plan.pack && vd > 0;
    if pack {
        counters::add_bytes(counters::gemm_at_b_pack_bytes(n, vd, elem));
    }

    // The SIMD microkernel accumulates into a j-major m×d scratch so the
    // contiguous d axis of each A row is the vector axis; the reduced
    // result is transposed once into the row-major d×m output.
    let chunk_body = |ca: &[T], cb: &[T]| -> Vec<T> {
        let mut acc = vec![T::ZERO; m * d];
        let mut packbuf = Vec::new();
        let handled = T::simd_at_b_chunk(tier, &mut acc, ca, cb, d, m, jb, pack, &mut packbuf);
        debug_assert!(handled);
        acc
    };
    let jmajor = if n * d * m >= PAR_THRESHOLD && n > 1 {
        let chunk_rows = reduce_chunk_rows(n, 64);
        a.as_slice()
            .par_chunks(chunk_rows * d)
            .zip(b.as_slice().par_chunks(chunk_rows * m))
            .map(|(ca, cb)| chunk_body(ca, cb))
            .reduce(
                || vec![T::ZERO; m * d],
                |mut x, y| {
                    for (xi, yi) in x.iter_mut().zip(y.iter()) {
                        *xi += *yi;
                    }
                    x
                },
            )
    } else {
        chunk_body(a.as_slice(), b.as_slice())
    };
    let mut data = vec![T::ZERO; d * m];
    for j in 0..m {
        for (i, row) in data.chunks_exact_mut(m).enumerate() {
            row[j] = jmajor[j * d + i];
        }
    }
    Matrix::from_vec(d, m, data)
}

/// Scalar reference path of [`gemm_at_b`]: per-chunk row-major `d × m`
/// accumulators, rows consumed in the canonical 4-row groups.
fn gemm_at_b_scalar<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (n, d) = a.shape();
    let m = b.cols();

    let accumulate = |chunk_a: &[T], chunk_b: &[T]| -> Vec<T> {
        let rows = chunk_a.len() / d.max(1);
        let mut acc = vec![T::ZERO; d * m];
        let mut r = 0;
        while r + 4 <= rows {
            let a0 = &chunk_a[r * d..(r + 1) * d];
            let a1 = &chunk_a[(r + 1) * d..(r + 2) * d];
            let a2 = &chunk_a[(r + 2) * d..(r + 3) * d];
            let a3 = &chunk_a[(r + 3) * d..(r + 4) * d];
            let b0 = &chunk_b[r * m..(r + 1) * m];
            let b1 = &chunk_b[(r + 1) * m..(r + 2) * m];
            let b2 = &chunk_b[(r + 2) * m..(r + 3) * m];
            let b3 = &chunk_b[(r + 3) * m..(r + 4) * m];
            for i in 0..d {
                let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
                let dst = &mut acc[i * m..(i + 1) * m];
                let mut j = 0;
                while j + 4 <= m {
                    dst[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                    dst[j + 1] += x0 * b0[j + 1] + x1 * b1[j + 1] + x2 * b2[j + 1] + x3 * b3[j + 1];
                    dst[j + 2] += x0 * b0[j + 2] + x1 * b1[j + 2] + x2 * b2[j + 2] + x3 * b3[j + 2];
                    dst[j + 3] += x0 * b0[j + 3] + x1 * b1[j + 3] + x2 * b2[j + 3] + x3 * b3[j + 3];
                    j += 4;
                }
                while j < m {
                    dst[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                    j += 1;
                }
            }
            r += 4;
        }
        while r < rows {
            let arow = &chunk_a[r * d..(r + 1) * d];
            let brow = &chunk_b[r * m..(r + 1) * m];
            for (i, &ai) in arow.iter().enumerate() {
                let dst = &mut acc[i * m..(i + 1) * m];
                for (dj, &bj) in dst.iter_mut().zip(brow.iter()) {
                    *dj += ai * bj;
                }
            }
            r += 1;
        }
        acc
    };

    let data = if n * d * m >= PAR_THRESHOLD && n > 1 {
        let chunk_rows = reduce_chunk_rows(n, 64);
        a.as_slice()
            .par_chunks(chunk_rows * d)
            .zip(b.as_slice().par_chunks(chunk_rows * m))
            .map(|(ca, cb)| accumulate(ca, cb))
            .reduce(
                || vec![T::ZERO; d * m],
                |mut x, y| {
                    for (xi, yi) in x.iter_mut().zip(y.iter()) {
                        *xi += *yi;
                    }
                    x
                },
            )
    } else {
        accumulate(a.as_slice(), b.as_slice())
    };
    Matrix::from_vec(d, m, data)
}

/// `C = A · Bᵀ` where `A` is `n × d` and `B` is `m × d`, on the
/// process-wide dispatch tier.
///
/// Row-parallel; each `A` row is dotted against a 4-row tile of `B` at a
/// time (four independent accumulators), so the `A` row is loaded from
/// cache once per four outputs. On SIMD tiers `Bᵀ` is staged once (`d × m`,
/// row-major) and the GEMM panel kernel runs on it — the per-element
/// depth-ascending accumulation is identical either way. Used for pairwise
/// scores such as `X·V_k` panels and k-means distance computations.
pub fn gemm_a_bt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    gemm_a_bt_tier(simd::active_tier(), a, b)
}

/// [`gemm_a_bt`] on an explicit dispatch tier. Bitwise identical across
/// tiers.
pub fn gemm_a_bt_tier<T: Scalar>(tier: Tier, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    check_tier(tier);
    let (n, d) = a.shape();
    let (m, db) = b.shape();
    assert_eq!(d, db, "gemm_a_bt: A is {n}x{d}, B is {m}x{db}");
    counters::add_flops(counters::gemm_a_bt_flops(n, m, d));

    let mut c = Matrix::zeros(n, m);
    if n == 0 || m == 0 || d == 0 {
        return c;
    }
    if simd::tier_is_simd(tier) {
        let bt = b.transpose();
        counters::add_bytes(counters::gemm_a_bt_pack_bytes(
            d,
            m,
            std::mem::size_of::<T>(),
        ));
        let body = |ci: &mut [T], ai: &[T]| {
            let handled = T::simd_gemm_panel(tier, ci, ai, bt.as_slice(), d, m);
            debug_assert!(handled);
        };
        if n * m * d >= PAR_THRESHOLD && n > 1 {
            c.as_mut_slice()
                .par_chunks_mut(ROW_BLOCK * m)
                .zip(a.as_slice().par_chunks(ROW_BLOCK * d))
                .for_each(|(ci, ai)| body(ci, ai));
        } else {
            body(c.as_mut_slice(), a.as_slice());
        }
        return c;
    }
    let body = |(crows, arows): (&mut [T], &[T])| {
        let rows = arows.len() / d;
        for r in 0..rows {
            let arow = &arows[r * d..(r + 1) * d];
            let crow = &mut crows[r * m..(r + 1) * m];
            let mut j = 0;
            while j + 4 <= m {
                let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
                let mut s0 = T::ZERO;
                let mut s1 = T::ZERO;
                let mut s2 = T::ZERO;
                let mut s3 = T::ZERO;
                for (p, &ap) in arow.iter().enumerate() {
                    s0 += ap * b0[p];
                    s1 += ap * b1[p];
                    s2 += ap * b2[p];
                    s3 += ap * b3[p];
                }
                crow[j] = s0;
                crow[j + 1] = s1;
                crow[j + 2] = s2;
                crow[j + 3] = s3;
                j += 4;
            }
            while j < m {
                let brow = b.row(j);
                let mut acc = T::ZERO;
                for (x, y) in arow.iter().zip(brow.iter()) {
                    acc += *x * *y;
                }
                crow[j] = acc;
                j += 1;
            }
        }
    };
    if n * m * d >= PAR_THRESHOLD && n > 1 {
        c.as_mut_slice()
            .par_chunks_mut(ROW_BLOCK * m)
            .zip(a.as_slice().par_chunks(ROW_BLOCK * d))
            .for_each(body);
    } else {
        body((c.as_mut_slice(), a.as_slice()));
    }
    c
}

/// Scalar chunk body shared by the weighted Gram kernels: for every class
/// `k` in `k0..k1`, accumulate `Σᵢ W[i][k]·xᵢxᵢᵀ` (upper triangle) over the
/// chunk's rows into `acc` (one `d × d` block per class, flattened). Rows
/// accumulate strictly sequentially — the canonical summation tree the SIMD
/// Gram body replicates.
fn gram_rows_scalar<T: Scalar>(
    acc: &mut [T],
    x: &[T],
    w: &[T],
    wstride: usize,
    k0: usize,
    k1: usize,
    d: usize,
) {
    let rows = x.len() / d;
    for i in 0..rows {
        let xi = &x[i * d..(i + 1) * d];
        for k in k0..k1 {
            let wik = w[i * wstride + k];
            if wik == T::ZERO {
                continue;
            }
            let blk = &mut acc[(k - k0) * d * d..(k - k0 + 1) * d * d];
            for p in 0..d {
                let s = wik * xi[p];
                let dst = &mut blk[p * d..(p + 1) * d];
                let mut q = p;
                while q + 4 <= d {
                    dst[q] += s * xi[q];
                    dst[q + 1] += s * xi[q + 1];
                    dst[q + 2] += s * xi[q + 2];
                    dst[q + 3] += s * xi[q + 3];
                    q += 4;
                }
                while q < d {
                    dst[q] += s * xi[q];
                    q += 1;
                }
            }
        }
    }
}

/// Weighted Gram matrix `G = Xᵀ diag(w) X` for `X ∈ n × d`, on the
/// process-wide dispatch tier.
///
/// One block of the Definition-1 preconditioner (Eq. 15 summed over the
/// pool): `B_k(Σ) = Σᵢ wᵢ xᵢxᵢᵀ`. Exploits symmetry (computes the upper
/// triangle, mirrors at the end); shape-fixed reduction chunks combined in
/// chunk order (see the module determinism contract).
pub fn gram_weighted<T: Scalar>(x: &Matrix<T>, w: &[T]) -> Matrix<T> {
    gram_weighted_tier(simd::active_tier(), x, w)
}

/// [`gram_weighted`] on an explicit dispatch tier. Bitwise identical across
/// tiers.
pub fn gram_weighted_tier<T: Scalar>(tier: Tier, x: &Matrix<T>, w: &[T]) -> Matrix<T> {
    check_tier(tier);
    let (n, d) = x.shape();
    assert_eq!(w.len(), n, "gram_weighted: weight length mismatch");
    counters::add_flops(counters::gram_weighted_flops(n, d));
    if d == 0 {
        return Matrix::zeros(0, 0);
    }

    let use_simd = simd::tier_is_simd(tier);
    let accumulate = |rows: std::ops::Range<usize>| -> Vec<T> {
        let mut acc = vec![T::ZERO; d * d];
        let xs = &x.as_slice()[rows.start * d..rows.end * d];
        let ws = &w[rows.start..rows.end];
        if !(use_simd && T::simd_gram_rows(tier, &mut acc, xs, ws, 1, 0, 1, d)) {
            gram_rows_scalar(&mut acc, xs, ws, 1, 0, 1, d);
        }
        acc
    };

    let mut g = if n * d * d >= PAR_THRESHOLD && n > 1 {
        let chunk = reduce_chunk_rows(n, 32);
        let ranges: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect();
        let data = ranges.into_par_iter().map(accumulate).reduce(
            || vec![T::ZERO; d * d],
            |mut a, b| {
                for (ai, bi) in a.iter_mut().zip(b.iter()) {
                    *ai += *bi;
                }
                a
            },
        );
        Matrix::from_vec(d, d, data)
    } else {
        Matrix::from_vec(d, d, accumulate(0..n))
    };

    // Mirror the strict upper triangle down.
    for p in 0..d {
        for q in (p + 1)..d {
            g[(q, p)] = g[(p, q)];
        }
    }
    g
}

/// All class-block Gram matrices in one pass over the pool:
/// `G_k = Xᵀ diag(W[:,k]) X` for every column `k` of the `n × c` weight
/// panel `W`, on the process-wide dispatch tier. This is exactly Line 5 of
/// Algorithm 2 (preconditioner construction), fused so `X` streams through
/// memory once per class block.
///
/// Classes are processed in blocks of `class_block` (autotuned from the L2
/// size) so each reduction chunk's live accumulator set stays
/// cache-resident — an unblocked pass carries `c · d²` accumulator elements
/// per chunk (up to ~1 MiB at `c = 8`, `d = 128`, `f64`), which blows L2
/// and flatlines thread scaling. Blocking is bit-neutral: classes are
/// independent outputs and each keeps its exact per-chunk row order.
pub fn gram_weighted_multi<T: Scalar>(x: &Matrix<T>, w: &Matrix<T>) -> Vec<Matrix<T>> {
    gram_weighted_multi_tier(simd::active_tier(), x, w)
}

/// [`gram_weighted_multi`] on an explicit dispatch tier, with the class
/// blocking autotuned for `(tier, d, dtype)`. Bitwise identical across
/// tiers.
pub fn gram_weighted_multi_tier<T: Scalar>(
    tier: Tier,
    x: &Matrix<T>,
    w: &Matrix<T>,
) -> Vec<Matrix<T>> {
    check_tier(tier);
    gram_weighted_multi_planned(tier, autotune::plan_for::<T>(tier, x.cols()), x, w)
}

/// [`gram_weighted_multi`] with an explicit blocking plan (see
/// [`gemm_at_b_planned`] for why this is exposed).
pub fn gram_weighted_multi_planned<T: Scalar>(
    tier: Tier,
    plan: KernelPlan,
    x: &Matrix<T>,
    w: &Matrix<T>,
) -> Vec<Matrix<T>> {
    check_tier(tier);
    let (n, d) = x.shape();
    let (nw, c) = w.shape();
    assert_eq!(n, nw, "gram_weighted_multi: weight panel mismatch");
    counters::add_flops(counters::gram_weighted_multi_flops(c, n, d));
    if c == 0 {
        return Vec::new();
    }
    if d == 0 {
        return (0..c).map(|_| Matrix::zeros(0, 0)).collect();
    }

    let use_simd = simd::tier_is_simd(tier);
    let kb = plan.class_block.max(1);
    // The parallel predicate and chunking depend on the full problem shape
    // only — not on the class blocking — so partial-sum splits are
    // identical whatever `class_block` the autotuner picked.
    let par = n * c * d * d >= PAR_THRESHOLD && n > 1;
    let chunk = reduce_chunk_rows(n, 16);
    let mut data = vec![T::ZERO; c * d * d];
    for k0 in (0..c).step_by(kb) {
        let k1 = (k0 + kb).min(c);
        let bw = (k1 - k0) * d * d;
        let accumulate = |rows: std::ops::Range<usize>| -> Vec<T> {
            let mut acc = vec![T::ZERO; bw];
            let xs = &x.as_slice()[rows.start * d..rows.end * d];
            let ws = &w.as_slice()[rows.start * c..rows.end * c];
            if !(use_simd && T::simd_gram_rows(tier, &mut acc, xs, ws, c, k0, k1, d)) {
                gram_rows_scalar(&mut acc, xs, ws, c, k0, k1, d);
            }
            acc
        };
        let pass = if par {
            let ranges: Vec<std::ops::Range<usize>> = (0..n)
                .step_by(chunk)
                .map(|s| s..(s + chunk).min(n))
                .collect();
            ranges.into_par_iter().map(accumulate).reduce(
                || vec![T::ZERO; bw],
                |mut a, b| {
                    for (ai, bi) in a.iter_mut().zip(b.iter()) {
                        *ai += *bi;
                    }
                    a
                },
            )
        } else {
            accumulate(0..n)
        };
        data[k0 * d * d..k1 * d * d].copy_from_slice(&pass);
    }

    (0..c)
        .map(|k| {
            let mut g = Matrix::from_vec(d, d, data[k * d * d..(k + 1) * d * d].to_vec());
            for p in 0..d {
                for q in (p + 1)..d {
                    g[(q, p)] = g[(p, q)];
                }
            }
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let (m, k) = a.shape();
        let n = b.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
    }

    fn test_mat(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        // Small deterministic LCG so tests need no RNG dependency.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemm_matches_naive() {
        let a = test_mat(7, 5, 1);
        let b = test_mat(5, 9, 2);
        let c = gemm(&a, &b);
        let r = naive_gemm(&a, &b);
        assert!((0..7).all(|i| (0..9).all(|j| (c[(i, j)] - r[(i, j)]).abs() < 1e-12)));
    }

    #[test]
    fn gemm_parallel_path_matches_naive() {
        let a = test_mat(80, 40, 3);
        let b = test_mat(40, 50, 4);
        let c = gemm(&a, &b);
        let r = naive_gemm(&a, &b);
        let diff = (0..80)
            .flat_map(|i| (0..50).map(move |j| (i, j)))
            .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gemm_non_multiple_of_tile_shapes_match_naive() {
        // Rows/cols straddling the 4-row micro-tile and 4-wide unroll, on
        // both sides of the parallel threshold.
        for (m, k, n, seed) in [(5, 3, 6, 11), (33, 17, 35, 12), (66, 31, 45, 13)] {
            let a = test_mat(m, k, seed);
            let b = test_mat(k, n, seed + 100);
            let c = gemm(&a, &b);
            let r = naive_gemm(&a, &b);
            let diff = (0..m)
                .flat_map(|i| (0..n).map(move |j| (i, j)))
                .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-10, "{m}x{k}x{n}: max diff {diff}");
        }
    }

    #[test]
    fn gemm_at_b_matches_explicit_transpose() {
        let a = test_mat(120, 6, 5);
        let b = test_mat(120, 4, 6);
        let c = gemm_at_b(&a, &b);
        let r = naive_gemm(&a.transpose(), &b);
        let diff = (0..6)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gemm_at_b_odd_row_counts_match_explicit_transpose() {
        for (n, d, m, seed) in [(7, 3, 5, 21), (129, 9, 7, 22), (1003, 11, 6, 23)] {
            let a = test_mat(n, d, seed);
            let b = test_mat(n, m, seed + 50);
            let c = gemm_at_b(&a, &b);
            let r = naive_gemm(&a.transpose(), &b);
            let diff = (0..d)
                .flat_map(|i| (0..m).map(move |j| (i, j)))
                .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-9, "{n}x{d}x{m}: max diff {diff}");
        }
    }

    #[test]
    fn gemm_a_bt_matches_explicit_transpose() {
        for (n, m, d, seed) in [(30, 20, 8, 7), (65, 19, 13, 8)] {
            let a = test_mat(n, d, seed);
            let b = test_mat(m, d, seed + 30);
            let c = gemm_a_bt(&a, &b);
            let r = naive_gemm(&a, &b.transpose());
            let diff = (0..n)
                .flat_map(|i| (0..m).map(move |j| (i, j)))
                .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-10, "{n}x{m}x{d}: max diff {diff}");
        }
    }

    #[test]
    fn gram_weighted_matches_definition() {
        let x = test_mat(50, 6, 9);
        let w: Vec<f64> = (0..50).map(|i| 0.01 * i as f64).collect();
        let g = gram_weighted(&x, &w);
        // Reference: Σ wᵢ xᵢxᵢᵀ
        let mut r = Matrix::<f64>::zeros(6, 6);
        for i in 0..50 {
            let xi = x.row(i);
            for p in 0..6 {
                for q in 0..6 {
                    r[(p, q)] += w[i] * xi[p] * xi[q];
                }
            }
        }
        let diff = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| (g[(i, j)] - r[(i, j)]).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gram_weighted_multi_matches_per_class() {
        let x = test_mat(40, 5, 10);
        let w = test_mat(40, 3, 11);
        // make weights positive
        let w = Matrix::from_fn(40, 3, |i, j| w[(i, j)].abs() + 0.1);
        let gs = gram_weighted_multi(&x, &w);
        assert_eq!(gs.len(), 3);
        for k in 0..3 {
            let wk = w.col(k);
            let g_ref = gram_weighted(&x, &wk);
            let diff = (0..5)
                .flat_map(|i| (0..5).map(move |j| (i, j)))
                .map(|(i, j)| (gs[k][(i, j)] - g_ref[(i, j)]).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-10, "class {k} max diff {diff}");
        }
    }

    #[test]
    fn gram_weighted_is_symmetric() {
        let x = test_mat(64, 7, 12);
        let w = vec![1.0; 64];
        let g = gram_weighted(&x, &w);
        for p in 0..7 {
            for q in 0..7 {
                assert_eq!(g[(p, q)], g[(q, p)]);
            }
        }
    }

    #[test]
    fn all_kernels_bitwise_deterministic_across_thread_counts() {
        // The module's determinism contract, pinned at shapes that cross
        // PAR_THRESHOLD (so the parallel paths really engage): identical
        // bits at 1, 2, and 4 pool threads for all five kernels.
        let x = test_mat(900, 24, 31);
        let y = test_mat(900, 18, 32);
        let sq = test_mat(24, 900, 33);
        let w: Vec<f64> = (0..900).map(|i| 0.3 + ((i % 13) as f64) * 0.05).collect();
        let wpanel = Matrix::from_fn(900, 4, |i, j| 0.1 + ((i * 7 + j) % 11) as f64 * 0.02);
        let bits = || -> Vec<u64> {
            let mut out = Vec::new();
            out.extend(gemm(&sq, &x).as_slice().iter().map(|v| v.to_bits()));
            out.extend(gemm_at_b(&x, &y).as_slice().iter().map(|v| v.to_bits()));
            out.extend(
                gemm_a_bt(&x, &test_mat(40, 24, 34))
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits()),
            );
            out.extend(gram_weighted(&x, &w).as_slice().iter().map(|v| v.to_bits()));
            for g in gram_weighted_multi(&x, &wpanel) {
                out.extend(g.as_slice().iter().map(|v| v.to_bits()));
            }
            out
        };
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(bits);
        for threads in [2usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            assert_eq!(pool.install(bits), reference, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "gemm: A is")]
    fn gemm_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(4, 2);
        let _ = gemm(&a, &b);
    }
}
