//! Parallel dense matrix-matrix kernels.
//!
//! These are the hot kernels of Approx-FIRAL's RELAX step: the matrix-free
//! Hessian matvec of Lemma 2 vectorizes into two tall-skinny GEMMs over the
//! pool panel (`X·V` then `Xᵀ·Γ`), and the CG preconditioner of Definition 1
//! is a set of weighted Gram matrices `Xᵀdiag(w_k)X`. All kernels are
//! rayon-parallel over the long (pool) dimension with per-thread
//! accumulators, mirroring how the paper shards the pool across GPUs.

use rayon::prelude::*;

use crate::counters;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Work threshold (in multiply-adds) below which kernels run sequentially.
/// Parallelizing tiny GEMMs costs more in task dispatch than it saves.
const PAR_THRESHOLD: usize = 1 << 15;

/// `C = A · B`.
///
/// Row-parallel, `ikj` loop order so both `B` and `C` stream row-major.
pub fn gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm: A is {m}x{k}, B is {kb}x{n}");
    counters::add_flops(2 * m * n * k);

    let mut c = Matrix::zeros(m, n);
    let work = m * n * k;
    let body = |(ci, ai): (&mut [T], &[T])| {
        // ci: one row of C, ai: matching row of A
        for (p, &apk) in ai.iter().enumerate() {
            let brow = b.row(p);
            for (cj, &bpj) in ci.iter_mut().zip(brow.iter()) {
                *cj += apk * bpj;
            }
        }
    };
    if work >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .zip(a.as_slice().par_chunks(k))
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(n)
            .zip(a.as_slice().chunks(k))
            .for_each(body);
    }
    c
}

/// `C = Aᵀ · B` where `A` is `n × d` and `B` is `n × m` (both tall-skinny).
///
/// This is the reduction-shaped GEMM of the fast Hessian matvec (Eq. 13):
/// the pool dimension `n` is long, the output `d × m` is small. Implemented
/// as a rayon map-reduce over row chunks with per-thread `d × m`
/// accumulators — the shared-memory analogue of the paper's per-GPU partial
/// sums followed by `MPI_Allreduce`.
pub fn gemm_at_b<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (n, d) = a.shape();
    let (nb, m) = b.shape();
    assert_eq!(n, nb, "gemm_at_b: A is {n}x{d}, B is {nb}x{m}");
    counters::add_flops(2 * n * d * m);

    let work = n * d * m;
    let accumulate = |chunk_a: &[T], chunk_b: &[T]| -> Vec<T> {
        let rows = chunk_a.len() / d;
        let mut acc = vec![T::ZERO; d * m];
        for r in 0..rows {
            let arow = &chunk_a[r * d..(r + 1) * d];
            let brow = &chunk_b[r * m..(r + 1) * m];
            for (i, &ai) in arow.iter().enumerate() {
                let dst = &mut acc[i * m..(i + 1) * m];
                for (dj, &bj) in dst.iter_mut().zip(brow.iter()) {
                    *dj += ai * bj;
                }
            }
        }
        acc
    };

    let data = if work >= PAR_THRESHOLD && n > 1 {
        let chunk_rows = (n / (rayon::current_num_threads() * 4)).max(64);
        a.as_slice()
            .par_chunks(chunk_rows * d)
            .zip(b.as_slice().par_chunks(chunk_rows * m))
            .map(|(ca, cb)| accumulate(ca, cb))
            .reduce(
                || vec![T::ZERO; d * m],
                |mut x, y| {
                    for (xi, yi) in x.iter_mut().zip(y.iter()) {
                        *xi += *yi;
                    }
                    x
                },
            )
    } else {
        accumulate(a.as_slice(), b.as_slice())
    };
    Matrix::from_vec(d, m, data)
}

/// `C = A · Bᵀ` where `A` is `n × d` and `B` is `m × d`.
///
/// Row-parallel with row-dot-row inner kernels (both operands stream
/// row-major). Used for pairwise scores such as `X·V_k` panels and k-means
/// distance computations.
pub fn gemm_a_bt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (n, d) = a.shape();
    let (m, db) = b.shape();
    assert_eq!(d, db, "gemm_a_bt: A is {n}x{d}, B is {m}x{db}");
    counters::add_flops(2 * n * m * d);

    let mut c = Matrix::zeros(n, m);
    let body = |(crow, arow): (&mut [T], &[T])| {
        for (j, cj) in crow.iter_mut().enumerate() {
            let brow = b.row(j);
            let mut acc = T::ZERO;
            for (x, y) in arow.iter().zip(brow.iter()) {
                acc += *x * *y;
            }
            *cj = acc;
        }
    };
    if n * m * d >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(m)
            .zip(a.as_slice().par_chunks(d))
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(m)
            .zip(a.as_slice().chunks(d))
            .for_each(body);
    }
    c
}

/// Weighted Gram matrix `G = Xᵀ diag(w) X` for `X ∈ n × d`.
///
/// One block of the Definition-1 preconditioner (Eq. 15 summed over the
/// pool): `B_k(Σ) = Σᵢ wᵢ xᵢxᵢᵀ`. Exploits symmetry (computes the upper
/// triangle, mirrors at the end).
pub fn gram_weighted<T: Scalar>(x: &Matrix<T>, w: &[T]) -> Matrix<T> {
    let (n, d) = x.shape();
    assert_eq!(w.len(), n, "gram_weighted: weight length mismatch");
    counters::add_flops(n * d * (d + 1));

    let accumulate = |rows: std::ops::Range<usize>| -> Vec<T> {
        let mut acc = vec![T::ZERO; d * d];
        for i in rows {
            let wi = w[i];
            if wi == T::ZERO {
                continue;
            }
            let xi = x.row(i);
            for p in 0..d {
                let s = wi * xi[p];
                let dst = &mut acc[p * d..(p + 1) * d];
                for q in p..d {
                    dst[q] += s * xi[q];
                }
            }
        }
        acc
    };

    let mut g = if n * d * d >= PAR_THRESHOLD && n > 1 {
        let nt = rayon::current_num_threads() * 4;
        let chunk = (n / nt).max(32);
        let ranges: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect();
        let data = ranges.into_par_iter().map(accumulate).reduce(
            || vec![T::ZERO; d * d],
            |mut a, b| {
                for (ai, bi) in a.iter_mut().zip(b.iter()) {
                    *ai += *bi;
                }
                a
            },
        );
        Matrix::from_vec(d, d, data)
    } else {
        Matrix::from_vec(d, d, accumulate(0..n))
    };

    // Mirror the strict upper triangle down.
    for p in 0..d {
        for q in (p + 1)..d {
            g[(q, p)] = g[(p, q)];
        }
    }
    g
}

/// All class-block Gram matrices in one pass over the pool:
/// `G_k = Xᵀ diag(W[:,k]) X` for every column `k` of the `n × c` weight
/// panel `W`. This is exactly Line 5 of Algorithm 2 (preconditioner
/// construction), fused so `X` streams through memory once.
pub fn gram_weighted_multi<T: Scalar>(x: &Matrix<T>, w: &Matrix<T>) -> Vec<Matrix<T>> {
    let (n, d) = x.shape();
    let (nw, c) = w.shape();
    assert_eq!(n, nw, "gram_weighted_multi: weight panel mismatch");
    counters::add_flops(c * n * d * (d + 1));

    let accumulate = |rows: std::ops::Range<usize>| -> Vec<T> {
        // c upper-triangular d×d accumulators, flattened.
        let mut acc = vec![T::ZERO; c * d * d];
        for i in rows {
            let xi = x.row(i);
            let wi = w.row(i);
            for (k, &wik) in wi.iter().enumerate() {
                if wik == T::ZERO {
                    continue;
                }
                let blk = &mut acc[k * d * d..(k + 1) * d * d];
                for p in 0..d {
                    let s = wik * xi[p];
                    let dst = &mut blk[p * d..(p + 1) * d];
                    for q in p..d {
                        dst[q] += s * xi[q];
                    }
                }
            }
        }
        acc
    };

    let data = if n * c * d * d >= PAR_THRESHOLD && n > 1 {
        let nt = rayon::current_num_threads() * 4;
        let chunk = (n / nt).max(16);
        let ranges: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect();
        ranges.into_par_iter().map(accumulate).reduce(
            || vec![T::ZERO; c * d * d],
            |mut a, b| {
                for (ai, bi) in a.iter_mut().zip(b.iter()) {
                    *ai += *bi;
                }
                a
            },
        )
    } else {
        accumulate(0..n)
    };

    (0..c)
        .map(|k| {
            let mut g = Matrix::from_vec(d, d, data[k * d * d..(k + 1) * d * d].to_vec());
            for p in 0..d {
                for q in (p + 1)..d {
                    g[(q, p)] = g[(p, q)];
                }
            }
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let (m, k) = a.shape();
        let n = b.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
    }

    fn test_mat(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        // Small deterministic LCG so tests need no RNG dependency.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemm_matches_naive() {
        let a = test_mat(7, 5, 1);
        let b = test_mat(5, 9, 2);
        let c = gemm(&a, &b);
        let r = naive_gemm(&a, &b);
        assert!((0..7).all(|i| (0..9).all(|j| (c[(i, j)] - r[(i, j)]).abs() < 1e-12)));
    }

    #[test]
    fn gemm_parallel_path_matches_naive() {
        let a = test_mat(80, 40, 3);
        let b = test_mat(40, 50, 4);
        let c = gemm(&a, &b);
        let r = naive_gemm(&a, &b);
        let diff = (0..80)
            .flat_map(|i| (0..50).map(move |j| (i, j)))
            .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gemm_at_b_matches_explicit_transpose() {
        let a = test_mat(120, 6, 5);
        let b = test_mat(120, 4, 6);
        let c = gemm_at_b(&a, &b);
        let r = naive_gemm(&a.transpose(), &b);
        let diff = (0..6)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gemm_a_bt_matches_explicit_transpose() {
        let a = test_mat(30, 8, 7);
        let b = test_mat(20, 8, 8);
        let c = gemm_a_bt(&a, &b);
        let r = naive_gemm(&a, &b.transpose());
        let diff = (0..30)
            .flat_map(|i| (0..20).map(move |j| (i, j)))
            .map(|(i, j)| (c[(i, j)] - r[(i, j)]).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gram_weighted_matches_definition() {
        let x = test_mat(50, 6, 9);
        let w: Vec<f64> = (0..50).map(|i| 0.01 * i as f64).collect();
        let g = gram_weighted(&x, &w);
        // Reference: Σ wᵢ xᵢxᵢᵀ
        let mut r = Matrix::<f64>::zeros(6, 6);
        for i in 0..50 {
            let xi = x.row(i);
            for p in 0..6 {
                for q in 0..6 {
                    r[(p, q)] += w[i] * xi[p] * xi[q];
                }
            }
        }
        let diff = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| (g[(i, j)] - r[(i, j)]).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn gram_weighted_multi_matches_per_class() {
        let x = test_mat(40, 5, 10);
        let w = test_mat(40, 3, 11);
        // make weights positive
        let w = Matrix::from_fn(40, 3, |i, j| w[(i, j)].abs() + 0.1);
        let gs = gram_weighted_multi(&x, &w);
        assert_eq!(gs.len(), 3);
        for k in 0..3 {
            let wk = w.col(k);
            let g_ref = gram_weighted(&x, &wk);
            let diff = (0..5)
                .flat_map(|i| (0..5).map(move |j| (i, j)))
                .map(|(i, j)| (gs[k][(i, j)] - g_ref[(i, j)]).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-10, "class {k} max diff {diff}");
        }
    }

    #[test]
    fn gram_weighted_is_symmetric() {
        let x = test_mat(64, 7, 12);
        let w = vec![1.0; 64];
        let g = gram_weighted(&x, &w);
        for p in 0..7 {
            for q in 0..7 {
                assert_eq!(g[(p, q)], g[(q, p)]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "gemm: A is")]
    fn gemm_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(4, 2);
        let _ = gemm(&a, &b);
    }
}
