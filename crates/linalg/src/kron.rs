//! Kronecker products and vectorization helpers.
//!
//! Exact-FIRAL materializes Fisher-information matrices
//! `H_i = [diag(h)-hhᵀ] ⊗ (x xᵀ)` (Eq. 2); the fast matvec of Lemma 2 is
//! verified in tests against these dense forms. `vec`/`unvec` implement the
//! column-stacking convention the paper uses (`vec(V) = v`).

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Kronecker product `A ⊗ B`.
pub fn kron<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    crate::counters::add_flops(ar * ac * br * bc);
    let mut out = Matrix::zeros(ar * br, ac * bc);
    for i in 0..ar {
        for j in 0..ac {
            let aij = a[(i, j)];
            if aij == T::ZERO {
                continue;
            }
            for p in 0..br {
                for q in 0..bc {
                    out[(i * br + p, j * bc + q)] = aij * b[(p, q)];
                }
            }
        }
    }
    out
}

/// Column-stacking vectorization: `vec(V)` for `V ∈ R^{d×c}` returns the
/// length-`dc` vector `[V[:,0]; V[:,1]; …]`.
pub fn vec_of<T: Scalar>(v: &Matrix<T>) -> Vec<T> {
    let (d, c) = v.shape();
    let mut out = Vec::with_capacity(d * c);
    for j in 0..c {
        for i in 0..d {
            out.push(v[(i, j)]);
        }
    }
    out
}

/// Inverse of [`vec_of`]: reshape a length-`d·c` vector into `V ∈ R^{d×c}`
/// column by column.
pub fn unvec<T: Scalar>(v: &[T], d: usize, c: usize) -> Matrix<T> {
    assert_eq!(v.len(), d * c, "unvec length mismatch");
    let mut out = Matrix::zeros(d, c);
    for j in 0..c {
        for i in 0..d {
            out[(i, j)] = v[j * d + i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron_identity() {
        let a = Matrix::<f64>::identity(2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k[(0, 0)], 1.0);
        assert_eq!(k[(0, 1)], 2.0);
        assert_eq!(k[(2, 2)], 1.0);
        assert_eq!(k[(3, 3)], 4.0);
        assert_eq!(k[(0, 2)], 0.0);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 0.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![0.5, 0.0, 1.0, 2.0]);
        let c = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 0.0]);
        let d = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 2.0]);
        let lhs = crate::gemm::gemm(&kron(&a, &b), &kron(&c, &d));
        let rhs = kron(&crate::gemm::gemm(&a, &c), &crate::gemm::gemm(&b, &d));
        for i in 0..4 {
            for j in 0..4 {
                assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn vec_unvec_roundtrip() {
        let v = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        let stacked = vec_of(&v);
        assert_eq!(stacked, vec![0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
        let back = unvec(&stacked, 3, 2);
        assert_eq!(v, back);
    }

    #[test]
    fn kron_vec_identity() {
        // vec(B X Aᵀ) = (A ⊗ B) vec(X): the identity behind Lemma 2's proof.
        // (B·X)·Aᵀ goes through the fused A·Bᵀ kernel — no transpose copy.
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(3, 3, vec![1.0, 0.0, 1.0, 0.0, 2.0, 0.0, 1.0, 0.0, 3.0]);
        let x = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let lhs = kron(&a, &b).matvec(&vec_of(&x));
        let rhs = vec_of(&crate::gemm::gemm_a_bt(&crate::gemm::gemm(&b, &x), &a));
        for (u, v) in lhs.iter().zip(rhs.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
