//! Symmetric eigensolvers.
//!
//! The ROUND step needs eigenvalues of the (whitened) accumulated Hessian
//! blocks at every iteration (Line 9 of Algorithm 3, `cupy.linalg.eigvalsh`
//! in the paper) and Exact-FIRAL needs full eigendecompositions for
//! `Σ_⋄^{-1/2}` and the FTRL update. Two implementations are provided:
//!
//! * [`eigh`]/[`eigvalsh`] — Householder tridiagonalization followed by
//!   implicit-shift QL (the classical EISPACK `tred2`/`tql2` pair). `O(d³)`
//!   with a small constant; the production path.
//! * [`jacobi_eigh`] — cyclic Jacobi rotations. Slower but independently
//!   derived; used as a cross-check oracle in tests.
//!
//! Eigenvalues are returned in ascending order; eigenvectors are the
//! *columns* of the returned matrix.

use crate::counters;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::{LinalgError, Result};

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigDecomposition<T: Scalar> {
    /// Eigenvalues in ascending order.
    pub values: Vec<T>,
    /// Orthonormal eigenvectors as columns, ordered to match `values`.
    pub vectors: Matrix<T>,
}

impl<T: Scalar> EigDecomposition<T> {
    /// Reconstruct `f(A) = V diag(f(λ)) Vᵀ` for a scalar function `f`.
    pub fn apply_fn(&self, f: impl Fn(T) -> T) -> Matrix<T> {
        let n = self.values.len();
        let mut scaled = self.vectors.clone(); // columns v_j * f(λ_j)
        for j in 0..n {
            let fj = f(self.values[j]);
            for i in 0..n {
                scaled[(i, j)] *= fj;
            }
        }
        crate::gemm::gemm_a_bt(&scaled, &self.vectors)
    }
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transformation when `want_vectors` is set.
/// On return `d` holds the diagonal, `e` the sub-diagonal (in `e[1..]`),
/// and `z` the accumulated transform (or garbage if `!want_vectors`).
fn tred2<T: Scalar>(z: &mut Matrix<T>, d: &mut [T], e: &mut [T], want_vectors: bool) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = T::ZERO;
        if l > 0 {
            let mut scale = T::ZERO;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == T::ZERO {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    let v = z[(i, k)] / scale;
                    z[(i, k)] = v;
                    h += v * v;
                }
                let f = z[(i, l)];
                let g = if f > T::ZERO { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = T::ZERO;
                for j in 0..=l {
                    if want_vectors {
                        z[(j, i)] = z[(i, j)] / h;
                    }
                    let mut g_acc = T::ZERO;
                    for k in 0..=j {
                        g_acc += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_acc += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    if want_vectors {
        d[0] = T::ZERO;
    }
    e[0] = T::ZERO;

    if want_vectors {
        for i in 0..n {
            if i > 0 && d[i] != T::ZERO {
                for j in 0..i {
                    let mut g = T::ZERO;
                    for k in 0..i {
                        g += z[(i, k)] * z[(k, j)];
                    }
                    for k in 0..i {
                        let upd = g * z[(k, i)];
                        z[(k, j)] -= upd;
                    }
                }
            }
            d[i] = z[(i, i)];
            z[(i, i)] = T::ONE;
            for j in 0..i {
                z[(j, i)] = T::ZERO;
                z[(i, j)] = T::ZERO;
            }
        }
    } else {
        for i in 0..n {
            d[i] = z[(i, i)];
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
/// `d`: diagonal (in), eigenvalues (out). `e`: sub-diagonal in `e[1..]`.
/// Accumulates rotations into `z` columns when `want_vectors`.
fn tql2<T: Scalar>(z: &mut Matrix<T>, d: &mut [T], e: &mut [T], want_vectors: bool) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = T::ZERO;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small sub-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= T::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 64 {
                return Err(LinalgError::EigenNoConvergence { index: l });
            }
            // Form the implicit Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (e[l] + e[l]);
            let mut r = Scalar::hypot(g, T::ONE);
            g = d[m] - d[l] + e[l] / (g + r.abs().copysign(g));
            let mut s = T::ONE;
            let mut c = T::ONE;
            let mut p = T::ZERO;
            let mut i = m;
            while i > l {
                i -= 1;
                let mut f = s * e[i];
                let b = c * e[i];
                r = Scalar::hypot(f, g);
                e[i + 1] = r;
                if r == T::ZERO {
                    d[i + 1] -= p;
                    e[m] = T::ZERO;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + T::TWO * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if want_vectors {
                    for k in 0..n {
                        f = z[(k, i + 1)];
                        z[(k, i + 1)] = s * z[(k, i)] + c * f;
                        z[(k, i)] = c * z[(k, i)] - s * f;
                    }
                }
            }
            if r == T::ZERO && i > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = T::ZERO;
        }
    }
    Ok(())
}

/// Full symmetric eigendecomposition (values ascending, vectors as columns).
pub fn eigh<T: Scalar>(a: &Matrix<T>) -> Result<EigDecomposition<T>> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "eigh needs a square matrix");
    counters::add_flops(9 * n * n * n);

    let mut z = a.clone();
    let mut d = vec![T::ZERO; n];
    let mut e = vec![T::ZERO; n];
    tred2(&mut z, &mut d, &mut e, true);
    tql2(&mut z, &mut d, &mut e, true)?;

    // Sort ascending, permuting columns of z.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<T> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (newj, &oldj) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, newj)] = z[(i, oldj)];
        }
    }
    Ok(EigDecomposition { values, vectors })
}

/// Eigenvalues only (ascending). Skips transform accumulation — this is the
/// kernel behind Line 9 of Algorithm 3, where only the spectrum feeds the
/// bisection for `ν_{t+1}`.
pub fn eigvalsh<T: Scalar>(a: &Matrix<T>) -> Result<Vec<T>> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "eigvalsh needs a square matrix");
    counters::add_flops(4 * n * n * n);

    let mut z = a.clone();
    let mut d = vec![T::ZERO; n];
    let mut e = vec![T::ZERO; n];
    tred2(&mut z, &mut d, &mut e, false);
    tql2(&mut z, &mut d, &mut e, false)?;
    d.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(d)
}

/// Cyclic Jacobi eigendecomposition — independent reference implementation
/// used to cross-validate [`eigh`] in tests. `O(d³)` per sweep; converges in
/// a handful of sweeps for the well-conditioned blocks FIRAL produces.
pub fn jacobi_eigh<T: Scalar>(a: &Matrix<T>) -> Result<EigDecomposition<T>> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "jacobi_eigh needs a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::<T>::identity(n);
    let max_sweeps = 64;

    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = T::ZERO;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        let scale = m.fro_norm().maxv(T::MIN_POSITIVE);
        if off.sqrt() <= T::EPSILON * T::from_usize(n) * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= T::EPSILON * scale {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (T::TWO * apq);
                let t = {
                    let sign = if theta >= T::ZERO { T::ONE } else { -T::ONE };
                    sign / (theta.abs() + Scalar::hypot(theta, T::ONE))
                };
                let c = T::ONE / Scalar::hypot(t, T::ONE);
                let s = t * c;

                // Apply rotation to rows/cols p, q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut d: Vec<T> = (0..n).map(|i| m[(i, i)]).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap_or(std::cmp::Ordering::Equal));
    d = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (newj, &oldj) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, newj)] = v[(i, oldj)];
        }
    }
    Ok(EigDecomposition { values: d, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, gemm_a_bt};

    fn sym_test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut a = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        a.symmetrize();
        a
    }

    fn check_decomposition(a: &Matrix<f64>, eig: &EigDecomposition<f64>, tol: f64) {
        let n = a.rows();
        // A v_j = λ_j v_j
        for j in 0..n {
            let vj = eig.vectors.col(j);
            let av = a.matvec(&vj);
            for i in 0..n {
                assert!(
                    (av[i] - eig.values[j] * vj[i]).abs() < tol,
                    "eigenpair {j} residual {} at row {i}",
                    (av[i] - eig.values[j] * vj[i]).abs()
                );
            }
        }
        // VᵀV = I (fused AᵀB kernel — no transpose copy)
        let vtv = crate::gemm::gemm_at_b(&eig.vectors, &eig.vectors);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (vtv[(i, j)] - expect).abs() < tol,
                    "orthonormality ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn eigh_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = eigh(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
        assert!((eig.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigh_random_symmetric() {
        for n in [2usize, 3, 5, 8, 13, 21] {
            let a = sym_test_matrix(n, n as u64);
            let eig = eigh(&a).unwrap();
            check_decomposition(&a, &eig, 1e-9);
        }
    }

    #[test]
    fn eigvalsh_matches_eigh() {
        let a = sym_test_matrix(12, 99);
        let vals_only = eigvalsh(&a).unwrap();
        let full = eigh(&a).unwrap();
        for (u, v) in vals_only.iter().zip(full.values.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn jacobi_matches_ql() {
        let a = sym_test_matrix(9, 7);
        let e1 = eigh(&a).unwrap();
        let e2 = jacobi_eigh(&a).unwrap();
        check_decomposition(&a, &e2, 1e-9);
        for (u, v) in e1.values.iter().zip(e2.values.iter()) {
            assert!((u - v).abs() < 1e-9, "QL {u} vs Jacobi {v}");
        }
    }

    #[test]
    fn trace_is_sum_of_eigenvalues() {
        let a = sym_test_matrix(10, 3);
        let vals = eigvalsh(&a).unwrap();
        let sum: f64 = vals.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn apply_fn_square_root() {
        // SPD matrix: sqrt(A)² = A
        let b = sym_test_matrix(6, 11);
        let mut a = gemm_a_bt(&b, &b);
        a.add_diag(6.0);
        let eig = eigh(&a).unwrap();
        let root = eig.apply_fn(|x| x.sqrt());
        let sq = gemm(&root, &root);
        for i in 0..6 {
            for j in 0..6 {
                assert!((sq[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigh_f32_works() {
        let a64 = sym_test_matrix(7, 21);
        let a32: Matrix<f32> = a64.cast();
        let eig = eigh(&a32).unwrap();
        let ref64 = eigh(&a64).unwrap();
        for (u, v) in eig.values.iter().zip(ref64.values.iter()) {
            assert!((u.to_f64() - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn eigh_handles_1x1_and_2x2() {
        let a = Matrix::from_vec(1, 1, vec![4.0f64]);
        assert!((eigh(&a).unwrap().values[0] - 4.0).abs() < 1e-14);

        let b = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = eigh(&b).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }
}
