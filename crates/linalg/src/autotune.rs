//! One-shot cache-blocking autotuner for the hot dense kernels.
//!
//! The SIMD kernels in [`mod@crate::gemm`] have three blocking knobs that the
//! ISA does not fix: the register-block width `jb` of the `AᵀB`
//! microkernel, whether that microkernel streams its A-panel through a
//! packed contiguous buffer, and how many class blocks
//! [`crate::gemm::gram_weighted_multi`] accumulates per pass over the
//! pool. The right values depend on the problem's `d`, the element size,
//! and the host's cache geometry — so they are picked **once per
//! `(tier, d, dtype)`** at first kernel use and memoized for the life of
//! the process.
//!
//! Selection is a hybrid: the class block comes analytically from the
//! detected cache sizes (bound the live accumulator set to a fraction of
//! L2), while `(jb, pack)` are measured by a one-shot micro-probe over the
//! four candidates on synthetic operands (~1 ms, amortized over every
//! subsequent call).
//!
//! # Determinism
//!
//! Every knob here is **bit-neutral by construction**: `jb`, packing, and
//! class blocking regroup which independent output elements are computed
//! together, but never move an element between reduction chunks or
//! re-associate a sum (the only split that affects floating-point — the
//! reduction chunk boundary — stays shape-derived in `reduce_chunk_rows`,
//! untouched by this module). The `block_plan_is_bit_neutral` test in
//! `tests/simd_equality.rs` pins this, so the probe's timing-dependent
//! choice cannot perturb results across ranks or runs.
//!
//! # Environment
//!
//! * `FIRAL_KERNEL_BLOCK=jb[,kb[,pack]]` overrides the plan (e.g.
//!   `FIRAL_KERNEL_BLOCK=4,2,1`: register block 4, two Gram classes per
//!   pass, packed panels). Unset fields fall back to the tuned values.
//! * `FIRAL_SIMD` (see [`crate::simd`]) selects the tier the plan is
//!   keyed on.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::scalar::Scalar;
use crate::simd::Tier;

/// Detected (or fallback) cache geometry of the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// L1 data cache size in bytes.
    pub l1d: usize,
    /// L2 cache size in bytes (per core where exposed).
    pub l2: usize,
    /// `"sysfs"` when read from `/sys/devices/system/cpu`, `"default"`
    /// when the conservative fallback (32 KiB / 1 MiB) is in use.
    pub source: &'static str,
}

/// Parse a sysfs cache size string like `"32K"`, `"1024K"`, or `"8M"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

fn detect_cache_geometry() -> CacheGeometry {
    let fallback = CacheGeometry {
        l1d: 32 * 1024,
        l2: 1024 * 1024,
        source: "default",
    };
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let Ok(entries) = std::fs::read_dir(base) else {
        return fallback;
    };
    let mut l1d = None;
    let mut l2 = None;
    for entry in entries.flatten() {
        let dir = entry.path();
        let read = |name: &str| std::fs::read_to_string(dir.join(name)).unwrap_or_default();
        let level = read("level").trim().parse::<u32>().unwrap_or(0);
        let ty = read("type");
        let ty = ty.trim();
        let Some(size) = parse_cache_size(&read("size")) else {
            continue;
        };
        if level == 1 && ty == "Data" {
            l1d = Some(size);
        } else if level == 2 && (ty == "Unified" || ty == "Data") {
            l2 = Some(size);
        }
    }
    match (l1d, l2) {
        (Some(l1d), Some(l2)) => CacheGeometry {
            l1d,
            l2,
            source: "sysfs",
        },
        (Some(l1d), None) => CacheGeometry {
            l1d,
            l2: fallback.l2.max(4 * l1d),
            source: "sysfs",
        },
        _ => fallback,
    }
}

/// The host cache geometry, detected once per process.
pub fn cache_geometry() -> CacheGeometry {
    static GEO: OnceLock<CacheGeometry> = OnceLock::new();
    *GEO.get_or_init(detect_cache_geometry)
}

/// Blocking parameters for one `(tier, d, dtype)` kernel configuration.
/// All fields are bit-neutral (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPlan {
    /// Register-block width (output columns per microkernel pass) of the
    /// `AᵀB` reduction microkernel; `1..=8`.
    pub jb: usize,
    /// Whether the `AᵀB` microkernel packs each lane-wide A-column strip
    /// into a contiguous panel before streaming it.
    pub pack: bool,
    /// Classes accumulated per pass over the pool in
    /// [`crate::gemm::gram_weighted_multi`]; bounds the live accumulator
    /// set to roughly half of L2.
    pub class_block: usize,
}

/// `FIRAL_KERNEL_BLOCK` override, parsed once: `(jb, class_block, pack)`,
/// each independently optional.
#[allow(clippy::type_complexity)]
fn env_override() -> (Option<usize>, Option<usize>, Option<bool>) {
    static ENV: OnceLock<(Option<usize>, Option<usize>, Option<bool>)> = OnceLock::new();
    *ENV.get_or_init(|| {
        let Ok(raw) = std::env::var("FIRAL_KERNEL_BLOCK") else {
            return (None, None, None);
        };
        let mut fields = raw.split(',');
        let jb = fields.next().and_then(|s| s.trim().parse::<usize>().ok());
        let kb = fields.next().and_then(|s| s.trim().parse::<usize>().ok());
        let pack = fields
            .next()
            .and_then(|s| s.trim().parse::<u8>().ok())
            .map(|v| v != 0);
        if jb.is_none() && kb.is_none() && pack.is_none() {
            eprintln!(
                "[firal_linalg] FIRAL_KERNEL_BLOCK={raw:?} not recognized \
                 (expected jb[,class_block[,pack01]]); autotuning instead"
            );
        }
        (jb.map(|v| v.clamp(1, 8)), kb.map(|v| v.max(1)), pack)
    })
}

/// Analytic class block: keep `class_block · d² · elem` within half of L2,
/// but always at least one class per pass.
fn analytic_class_block(d: usize, elem: usize, geo: CacheGeometry) -> usize {
    let block_bytes = (d * d * elem).max(1);
    (geo.l2 / 2 / block_bytes).clamp(1, 16)
}

/// One-shot `(jb, pack)` micro-probe: time the four candidates on a
/// synthetic `(rows=512, d, m=16)` chunk and keep the fastest. Only
/// meaningful (and only run) for SIMD tiers; the scalar panels ignore both
/// knobs.
fn probe_at_b<T: Scalar>(tier: Tier, d: usize) -> (usize, bool) {
    const ROWS: usize = 512;
    const M: usize = 16;
    const REPS: usize = 3;
    let mut state = 0x9E3779B97F4A7C15u64 ^ (d as u64);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        T::from_f64(((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
    };
    let a: Vec<T> = (0..ROWS * d).map(|_| next()).collect();
    let b: Vec<T> = (0..ROWS * M).map(|_| next()).collect();

    let mut best = (8, d * std::mem::size_of::<T>() > 256);
    let mut best_secs = f64::INFINITY;
    for jb in [8usize, 4] {
        for pack in [false, true] {
            let mut acc = vec![T::ZERO; M * d];
            let mut buf = Vec::new();
            // Warm-up, then best-of-REPS.
            T::simd_at_b_chunk(tier, &mut acc, &a, &b, d, M, jb, pack, &mut buf);
            let mut secs = f64::INFINITY;
            for _ in 0..REPS {
                let t0 = Instant::now();
                T::simd_at_b_chunk(tier, &mut acc, &a, &b, d, M, jb, pack, &mut buf);
                secs = secs.min(t0.elapsed().as_secs_f64());
            }
            if secs < best_secs {
                best_secs = secs;
                best = (jb, pack);
            }
        }
    }
    best
}

/// The blocking plan for one `(tier, d, dtype)` configuration, tuned at
/// first use and memoized for the life of the process.
pub fn plan_for<T: Scalar>(tier: Tier, d: usize) -> KernelPlan {
    // BTreeMap, not HashMap: the memo table is only keyed (never iterated),
    // but an ordered container makes "no iteration order can leak into a
    // kernel shape" structural (`firal-lint` rule `hash-order`).
    type PlanMap = BTreeMap<(u8, usize, usize), KernelPlan>;
    static PLANS: OnceLock<Mutex<PlanMap>> = OnceLock::new();
    let elem = std::mem::size_of::<T>();
    let key = (tier as u8, d, elem);
    let plans = PLANS.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(plan) = plans.lock().unwrap().get(&key) {
        return *plan;
    }
    // Tune outside the lock: the probe may take ~1 ms and other threads
    // may need unrelated plans meanwhile. A racing duplicate probe is
    // harmless (both compute valid, bit-neutral plans).
    let geo = cache_geometry();
    let (env_jb, env_kb, env_pack) = env_override();
    let (probed_jb, probed_pack) = if tier == Tier::Scalar {
        (8, false)
    } else {
        probe_at_b::<T>(tier, d.max(1))
    };
    let plan = KernelPlan {
        jb: env_jb.unwrap_or(probed_jb),
        pack: env_pack.unwrap_or(probed_pack),
        class_block: env_kb.unwrap_or_else(|| analytic_class_block(d.max(1), elem, geo)),
    };
    plans.lock().unwrap().insert(key, plan);
    plan
}

/// Vector lane count of `tier` for an element size (`1` for the scalar
/// tier). Used by harnesses to build "odd shape" cases and to account
/// packed-panel traffic.
pub fn lane_count(tier: Tier, elem: usize) -> usize {
    let bytes = match tier {
        Tier::Scalar => return 1,
        Tier::Sse2 | Tier::Neon => 16,
        Tier::Avx2 => 32,
    };
    (bytes / elem).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size_strings_parse() {
        assert_eq!(parse_cache_size("32K"), Some(32 * 1024));
        assert_eq!(parse_cache_size("1024K"), Some(1024 * 1024));
        assert_eq!(parse_cache_size("8M"), Some(8 * 1024 * 1024));
        assert_eq!(parse_cache_size("123"), Some(123));
        assert_eq!(parse_cache_size("xK"), None);
    }

    #[test]
    fn geometry_has_sane_bounds() {
        let geo = cache_geometry();
        assert!(geo.l1d >= 4 * 1024, "implausible L1d: {}", geo.l1d);
        assert!(geo.l2 >= geo.l1d, "L2 {} below L1d {}", geo.l2, geo.l1d);
    }

    #[test]
    fn class_block_scales_inversely_with_d() {
        let geo = CacheGeometry {
            l1d: 32 * 1024,
            l2: 1024 * 1024,
            source: "default",
        };
        let small = analytic_class_block(16, 8, geo);
        let big = analytic_class_block(256, 8, geo);
        assert!(small >= big);
        assert!(big >= 1);
        // d = 256 f64 blocks are 512 KiB: exactly one class fits the L2
        // budget.
        assert_eq!(big, 1);
    }

    #[test]
    fn plan_is_memoized_and_clamped() {
        let p1 = plan_for::<f64>(Tier::Scalar, 48);
        let p2 = plan_for::<f64>(Tier::Scalar, 48);
        assert_eq!(p1, p2);
        assert!((1..=8).contains(&p1.jb));
        assert!(p1.class_block >= 1);
    }

    #[test]
    fn lane_counts_match_register_widths() {
        assert_eq!(lane_count(Tier::Scalar, 4), 1);
        assert_eq!(lane_count(Tier::Sse2, 4), 4);
        assert_eq!(lane_count(Tier::Sse2, 8), 2);
        assert_eq!(lane_count(Tier::Avx2, 4), 8);
        assert_eq!(lane_count(Tier::Avx2, 8), 4);
        assert_eq!(lane_count(Tier::Neon, 4), 4);
    }
}
