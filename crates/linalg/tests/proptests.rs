//! Property-style tests for the dense kernels: factorizations reconstruct,
//! eigensolvers agree with the independent Jacobi oracle, GEMM variants are
//! mutually consistent, and block-diagonal operators match their dense
//! embeddings — on seeded randomized inputs across many cases (deterministic
//! stand-in for the original proptest suite, which needs crates.io).

use firal_linalg::{
    eigh, eigvalsh, gemm, gemm_a_bt, gemm_at_b, gram_weighted, jacobi_eigh, BlockDiag, Cholesky,
    Matrix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Random matrix with entries in [-1, 1].
fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |_, _| uniform(rng, -1.0, 1.0))
}

/// Random SPD matrix A = BBᵀ + n·I.
fn random_spd(rng: &mut StdRng, n: usize) -> Matrix<f64> {
    let b = random_matrix(rng, n, n);
    let mut a = gemm_a_bt(&b, &b);
    a.add_diag(n as f64);
    a
}

#[test]
fn cholesky_reconstructs() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + case);
        let a = random_spd(&mut rng, 6);
        let ch = Cholesky::new(&a).unwrap();
        let r = gemm(ch.l(), &ch.l().transpose());
        for i in 0..6 {
            for j in 0..6 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9, "case {case}");
            }
        }
    }
}

#[test]
fn cholesky_solve_is_inverse_application() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + case);
        let a = random_spd(&mut rng, 5);
        let rhs: Vec<f64> = (0..5).map(|_| uniform(&mut rng, -2.0, 2.0)).collect();
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&rhs);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(rhs.iter()) {
            assert!((u - v).abs() < 1e-8, "case {case}: {u} vs {v}");
        }
    }
}

#[test]
fn eigh_reconstructs_and_matches_jacobi() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + case);
        let mut a = random_matrix(&mut rng, 5, 5);
        a.symmetrize();
        let e = eigh(&a).unwrap();
        // Reconstruction: V Λ Vᵀ = A
        let recon = e.apply_fn(|x| x);
        for i in 0..5 {
            for j in 0..5 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-8, "case {case}");
            }
        }
        // Independent oracle.
        let j = jacobi_eigh(&a).unwrap();
        for (u, v) in e.values.iter().zip(j.values.iter()) {
            assert!((u - v).abs() < 1e-8, "case {case}: QL {u} vs Jacobi {v}");
        }
    }
}

#[test]
fn eigvalsh_sum_is_trace() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(400 + case);
        let mut a = random_matrix(&mut rng, 7, 7);
        a.symmetrize();
        let vals = eigvalsh(&a).unwrap();
        let sum: f64 = vals.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-8, "case {case}");
    }
}

#[test]
fn gemm_transpose_identities() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(500 + case);
        let a = random_matrix(&mut rng, 6, 4);
        let b = random_matrix(&mut rng, 6, 3);
        // AᵀB via reduction kernel == explicit transpose + gemm.
        let fast = gemm_at_b(&a, &b);
        let slow = gemm(&a.transpose(), &b);
        for i in 0..4 {
            for j in 0..3 {
                assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-10, "case {case}");
            }
        }
    }
}

#[test]
fn gemm_abt_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(600 + case);
        let a = random_matrix(&mut rng, 5, 4);
        let b = random_matrix(&mut rng, 6, 4);
        let fast = gemm_a_bt(&a, &b);
        let slow = gemm(&a, &b.transpose());
        for i in 0..5 {
            for j in 0..6 {
                assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-10, "case {case}");
            }
        }
    }
}

#[test]
fn gram_is_psd() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(700 + case);
        let x = random_matrix(&mut rng, 20, 4);
        let w: Vec<f64> = (0..20).map(|_| uniform(&mut rng, 0.0, 2.0)).collect();
        let g = gram_weighted(&x, &w);
        let vals = eigvalsh(&g).unwrap();
        assert!(vals[0] > -1e-10, "case {case}: min eig {}", vals[0]);
    }
}

#[test]
fn blockdiag_matvec_matches_dense() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(800 + case);
        let b0 = random_spd(&mut rng, 3);
        let b1 = random_spd(&mut rng, 3);
        let v: Vec<f64> = (0..6).map(|_| uniform(&mut rng, -1.0, 1.0)).collect();
        let bd = BlockDiag::from_blocks(vec![b0, b1]);
        let dense = bd.to_dense();
        let y1 = bd.matvec(&v);
        let y2 = dense.matvec(&v);
        for (u, w) in y1.iter().zip(y2.iter()) {
            assert!((u - w).abs() < 1e-10, "case {case}");
        }
    }
}

#[test]
fn blockdiag_inverse_is_inverse() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(900 + case);
        let b0 = random_spd(&mut rng, 4);
        let b1 = random_spd(&mut rng, 4);
        let bd = BlockDiag::from_blocks(vec![b0, b1]);
        let inv = bd.inverse().unwrap();
        let v: Vec<f64> = (0..8).map(|i| (i as f64 * 0.37).sin()).collect();
        let back = inv.matvec(&bd.matvec(&v));
        for (u, w) in back.iter().zip(v.iter()) {
            assert!((u - w).abs() < 1e-7, "case {case}: {u} vs {w}");
        }
    }
}

#[test]
fn spd_sqrt_squares_back() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let a = random_spd(&mut rng, 4);
        let r = firal_linalg::spd_sqrt(&a).unwrap();
        let sq = gemm(&r, &r);
        for i in 0..4 {
            for j in 0..4 {
                assert!((sq[(i, j)] - a[(i, j)]).abs() < 1e-7, "case {case}");
            }
        }
    }
}
