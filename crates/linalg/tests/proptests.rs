//! Property-based tests for the dense kernels: factorizations reconstruct,
//! eigensolvers agree with the independent Jacobi oracle, GEMM variants are
//! mutually consistent, and block-diagonal operators match their dense
//! embeddings — on randomized inputs across sizes.

use firal_linalg::{
    eigh, eigvalsh, gemm, gemm_a_bt, gemm_at_b, gram_weighted, jacobi_eigh, BlockDiag, Cholesky,
    Matrix,
};
use proptest::prelude::*;

/// Random matrix with entries in [-1, 1].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Random SPD matrix A = BBᵀ + n·I.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix<f64>> {
    matrix_strategy(n, n).prop_map(move |b| {
        let mut a = gemm_a_bt(&b, &b);
        a.add_diag(n as f64);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cholesky_reconstructs(a in spd_strategy(6)) {
        let ch = Cholesky::new(&a).unwrap();
        let r = gemm(ch.l(), &ch.l().transpose());
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_solve_is_inverse_application(a in spd_strategy(5), rhs in proptest::collection::vec(-2.0f64..2.0, 5)) {
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&rhs);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(rhs.iter()) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn eigh_reconstructs_and_matches_jacobi(m in matrix_strategy(5, 5)) {
        let mut a = m;
        a.symmetrize();
        let e = eigh(&a).unwrap();
        // Reconstruction: V Λ Vᵀ = A
        let recon = e.apply_fn(|x| x);
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
        // Independent oracle.
        let j = jacobi_eigh(&a).unwrap();
        for (u, v) in e.values.iter().zip(j.values.iter()) {
            prop_assert!((u - v).abs() < 1e-8, "QL {u} vs Jacobi {v}");
        }
    }

    #[test]
    fn eigvalsh_sum_is_trace(m in matrix_strategy(7, 7)) {
        let mut a = m;
        a.symmetrize();
        let vals = eigvalsh(&a).unwrap();
        let sum: f64 = vals.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-8);
    }

    #[test]
    fn gemm_transpose_identities(a in matrix_strategy(6, 4), b in matrix_strategy(6, 3)) {
        // AᵀB via reduction kernel == explicit transpose + gemm.
        let fast = gemm_at_b(&a, &b);
        let slow = gemm(&a.transpose(), &b);
        for i in 0..4 {
            for j in 0..3 {
                prop_assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_abt_identity(a in matrix_strategy(5, 4), b in matrix_strategy(6, 4)) {
        let fast = gemm_a_bt(&a, &b);
        let slow = gemm(&a, &b.transpose());
        for i in 0..5 {
            for j in 0..6 {
                prop_assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gram_is_psd(x in matrix_strategy(20, 4), w in proptest::collection::vec(0.0f64..2.0, 20)) {
        let g = gram_weighted(&x, &w);
        let vals = eigvalsh(&g).unwrap();
        prop_assert!(vals[0] > -1e-10, "min eig {}", vals[0]);
    }

    #[test]
    fn blockdiag_matvec_matches_dense(b0 in spd_strategy(3), b1 in spd_strategy(3), v in proptest::collection::vec(-1.0f64..1.0, 6)) {
        let bd = BlockDiag::from_blocks(vec![b0, b1]);
        let dense = bd.to_dense();
        let y1 = bd.matvec(&v);
        let y2 = dense.matvec(&v);
        for (u, w) in y1.iter().zip(y2.iter()) {
            prop_assert!((u - w).abs() < 1e-10);
        }
    }

    #[test]
    fn blockdiag_inverse_is_inverse(b0 in spd_strategy(4), b1 in spd_strategy(4)) {
        let bd = BlockDiag::from_blocks(vec![b0, b1]);
        let inv = bd.inverse().unwrap();
        let v: Vec<f64> = (0..8).map(|i| (i as f64 * 0.37).sin()).collect();
        let back = inv.matvec(&bd.matvec(&v));
        for (u, w) in back.iter().zip(v.iter()) {
            prop_assert!((u - w).abs() < 1e-7, "{u} vs {w}");
        }
    }

    #[test]
    fn spd_sqrt_squares_back(a in spd_strategy(4)) {
        let r = firal_linalg::spd_sqrt(&a).unwrap();
        let sq = gemm(&r, &r);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((sq[(i, j)] - a[(i, j)]).abs() < 1e-7);
            }
        }
    }
}
