//! Cross-tier bitwise equality matrix for the five hot kernels.
//!
//! The determinism contract of `firal_linalg::gemm` says every available
//! SIMD tier implements the same canonical per-element summation tree as
//! the scalar panels, so results are **bitwise** identical — not merely
//! close — across tiers, for both dtypes, at any shape. This suite sweeps
//! deliberately awkward shapes: `n` values that are not multiples of any
//! lane width (and straddle the parallel threshold and the 4-row tile),
//! `d ∈ {1, 3, 64, 65}` (sub-lane, odd, lane-aligned, lane-misaligned),
//! and `m ∈ {1, 8}` (degenerate and register-block-wide outputs). It also
//! pins that the autotuner's blocking knobs (`jb`, `pack`, `class_block`)
//! are bit-neutral, so a timing-dependent plan choice can never perturb
//! numerics.

use firal_linalg::simd::{available_tiers, Tier};
use firal_linalg::{
    gemm_a_bt_tier, gemm_at_b_planned, gemm_at_b_tier, gemm_tier, gram_weighted_multi_planned,
    gram_weighted_multi_tier, gram_weighted_tier, KernelPlan, Matrix, Scalar,
};

/// Deterministic LCG test matrix, generic over dtype. A sprinkling of
/// exact zeros exercises the `w == 0` skip path of the Gram kernels.
fn test_mat<T: Scalar>(rows: usize, cols: usize, seed: u64, with_zeros: bool) -> Matrix<T> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut idx = 0u64;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        idx += 1;
        if with_zeros && idx.is_multiple_of(7) {
            T::ZERO
        } else {
            T::from_f64(((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
        }
    })
}

/// Bit pattern of a matrix, dtype-independent (`f32 → f64` is exact, so
/// equal f64 bits ⇔ equal original bits).
fn bits<T: Scalar>(m: &Matrix<T>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_f64().to_bits()).collect()
}

/// All five kernels at one shape on one tier, concatenated bit patterns.
fn kernel_bits<T: Scalar>(tier: Tier, n: usize, d: usize, m: usize) -> Vec<u64> {
    let a = test_mat::<T>(n, d, 1000 + n as u64, false);
    let b = test_mat::<T>(n, m, 2000 + d as u64, false);
    let sq = test_mat::<T>(d, m, 3000 + m as u64, false);
    let bm = test_mat::<T>(m, d, 4000 + n as u64, false);
    let w = test_mat::<T>(n, 1, 5000 + d as u64, true);
    let wpanel = test_mat::<T>(n, m, 6000 + n as u64, true);

    let mut out = Vec::new();
    out.extend(bits(&gemm_tier(tier, &a, &sq)));
    out.extend(bits(&gemm_at_b_tier(tier, &a, &b)));
    out.extend(bits(&gemm_a_bt_tier(tier, &a, &bm)));
    out.extend(bits(&gram_weighted_tier(tier, &a, w.as_slice())));
    for g in gram_weighted_multi_tier(tier, &a, &wpanel) {
        out.extend(bits(&g));
    }
    out
}

fn equality_sweep<T: Scalar>() {
    let tiers = available_tiers();
    assert_eq!(tiers[0], Tier::Scalar);
    for &n in &[1usize, 7, 129, 1003] {
        for &d in &[1usize, 3, 64, 65] {
            for &m in &[1usize, 8] {
                let reference = kernel_bits::<T>(Tier::Scalar, n, d, m);
                for &tier in &tiers[1..] {
                    assert_eq!(
                        kernel_bits::<T>(tier, n, d, m),
                        reference,
                        "tier {tier} diverges from scalar at n={n} d={d} m={m}"
                    );
                }
            }
        }
    }
}

#[test]
fn all_tiers_bitwise_equal_scalar_f64() {
    equality_sweep::<f64>();
}

#[test]
fn all_tiers_bitwise_equal_scalar_f32() {
    equality_sweep::<f32>();
}

/// Every legal blocking plan yields identical bits: the autotuner's choice
/// is timing-dependent, so this is what keeps runs (and SPMD ranks that
/// tuned differently) bitwise reproducible.
#[test]
fn block_plan_is_bit_neutral() {
    let n = 777;
    for &d in &[3usize, 64, 65] {
        let a = test_mat::<f64>(n, d, 42, false);
        let b = test_mat::<f64>(n, 6, 43, false);
        let wpanel = test_mat::<f64>(n, 5, 44, true);
        for tier in available_tiers() {
            let reference_atb = gemm_at_b_tier(tier, &a, &b);
            let reference_multi = gram_weighted_multi_tier(tier, &a, &wpanel);
            for jb in [1usize, 2, 4, 5, 8] {
                for pack in [false, true] {
                    for class_block in [1usize, 2, 16] {
                        let plan = KernelPlan {
                            jb,
                            pack,
                            class_block,
                        };
                        let c = gemm_at_b_planned(tier, plan, &a, &b);
                        assert_eq!(
                            bits(&c),
                            bits(&reference_atb),
                            "at_b: tier {tier} d={d} plan {plan:?}"
                        );
                        let gs = gram_weighted_multi_planned(tier, plan, &a, &wpanel);
                        assert_eq!(gs.len(), reference_multi.len());
                        for (g, r) in gs.iter().zip(reference_multi.iter()) {
                            assert_eq!(bits(g), bits(r), "multi: tier {tier} d={d} plan {plan:?}");
                        }
                    }
                }
            }
        }
    }
}

/// Degenerate shapes must not panic and must agree across tiers.
#[test]
fn degenerate_shapes_are_consistent() {
    for tier in available_tiers() {
        let empty = test_mat::<f64>(0, 4, 9, false);
        let b = test_mat::<f64>(0, 3, 10, false);
        assert_eq!(gemm_at_b_tier(tier, &empty, &b).shape(), (4, 3));
        let x1 = test_mat::<f64>(5, 4, 11, false);
        let w0 = Matrix::<f64>::zeros(5, 0);
        assert!(gram_weighted_multi_tier(tier, &x1, &w0).is_empty());
    }
}
