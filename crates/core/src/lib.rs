//! FIRAL and Approx-FIRAL: scalable active learning for multiclass
//! logistic regression (SC'24).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`hessian`] — the Fisher-information structure (Eq. 2), Lemma 2's
//!   matrix-free matvec, pooled operators and Definition 1's block
//!   diagonals;
//! * [`exact`] — Exact-FIRAL (Algorithm 1), the NeurIPS'23 baseline;
//! * [`relax`] — the fast RELAX solver (Algorithm 2: Hutchinson +
//!   preconditioned CG);
//! * [`round`] — the diagonal ROUND solver (Algorithm 3: Lemma 3 /
//!   Proposition 4);
//! * [`strategies`] — Random / K-Means / Entropy / Exact-FIRAL /
//!   Approx-FIRAL behind one [`strategies::Strategy`] trait;
//! * [`driver`] — the §IV-A multi-round active-learning loop;
//! * [`parallel`] — the SPMD implementation of §III-C over
//!   `firal-comm` communicators (pool sharding, allreduce/bcast/allgather
//!   placement matching the paper operation-for-operation);
//! * [`timing`] — the phase timers behind the Figs. 5–7 breakdowns.

pub mod config;
pub mod driver;
pub mod exact;
pub mod hessian;
pub mod objective;
pub mod parallel;
pub mod problem;
pub mod relax;
pub mod round;
pub mod strategies;
pub mod timing;

pub use config::{FiralConfig, MirrorDescentConfig, RelaxConfig, RoundConfig};
pub use driver::{run_experiment, ExperimentResult, RoundRecord};
pub use exact::{exact_firal, exact_relax, exact_round, RelaxTelemetry};
pub use problem::SelectionProblem;
pub use relax::{fast_relax, RelaxOutput};
pub use round::{diag_round, diag_round_with_eig, select_eta, EigSolver, RoundOutput};
pub use strategies::{
    ApproxFiral, EntropyStrategy, ExactFiral, KMeansStrategy, RandomStrategy, SelectError,
    Strategy,
};
pub use timing::PhaseTimer;
