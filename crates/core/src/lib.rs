//! FIRAL and Approx-FIRAL: scalable active learning for multiclass
//! logistic regression (SC'24).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`hessian`] — the Fisher-information structure (Eq. 2), Lemma 2's
//!   matrix-free matvec, pooled operators and Definition 1's block
//!   diagonals;
//! * [`exact`] — Exact-FIRAL (Algorithm 1), the NeurIPS'23 baseline;
//! * [`relax`] — the fast RELAX solver (Algorithm 2: Hutchinson +
//!   preconditioned CG);
//! * [`round`] — the diagonal ROUND solver (Algorithm 3: Lemma 3 /
//!   Proposition 4);
//! * [`exec`] — **the execution layer**: RELAX and ROUND written once,
//!   generic over `firal_comm::Communicator`. An [`exec::Executor`] owns
//!   the communicator endpoint, this rank's shard geometry
//!   ([`exec::ShardedProblem`]), probe-RNG seeding, phase timing, and
//!   per-run communication statistics. The serial path is the `SelfComm`
//!   instantiation (collectives are no-ops); the SPMD path is the same
//!   code over a real rank group — shared-memory `ThreadComm` threads or
//!   `SocketComm` processes on a TCP mesh (`spmd_launch`);
//! * [`strategies`] — Random / K-Means / Entropy / Exact-FIRAL /
//!   Approx-FIRAL plus the PAPERS.md extensions UPAL
//!   ([`strategies::UpalStrategy`]) and Bayesian batch selection
//!   ([`strategies::BayesBatchStrategy`]), behind two traits: the serial
//!   [`strategies::Strategy`] surface the driver consumes, and the
//!   executor-generic [`strategies::DistStrategy`] surface underneath it —
//!   each strategy is written once against [`exec::Executor`] and runs
//!   unchanged on every comm backend ([`strategies::strategy_by_name`]
//!   resolves registered names);
//! * [`dispatch`] — request → strategy dispatch with per-request stats
//!   accounting ([`dispatch::SelectRequest`] / [`dispatch::dispatch_select`]),
//!   the metering entry point the serving layer (`firal-serve`) and the
//!   bench workloads share;
//! * [`driver`] — the §IV-A multi-round active-learning loop;
//! * [`stream`] — **streaming round state**: a persistent, pool-versioned
//!   [`exec::RoundState`] advanced incrementally under point
//!   add/remove/label mutations (rank-one Cholesky up/downdates + a
//!   delta-Allreduce of changed partial sums) instead of rebuilt per
//!   round — see ARCHITECTURE.md § "Streaming round state" for ownership,
//!   invalidation, and the drift/refactor contract;
//! * [`parallel`] — thin SPMD-flavoured wrappers over [`exec`] for callers
//!   that hold a communicator directly;
//! * [`timing`] — the phase timers behind the Figs. 5–7 breakdowns.
//!
//! The repo-root `ARCHITECTURE.md` maps paper sections/equations to these
//! modules in detail, including the η-group (`p = p_shard × p_eta`)
//! geometry and the determinism contracts.

#![deny(missing_docs)]

pub mod config;
pub mod dispatch;
pub mod driver;
pub mod exact;
pub mod exec;
pub mod hessian;
pub mod objective;
pub mod parallel;
pub mod problem;
pub mod relax;
pub mod round;
pub mod strategies;
pub mod stream;
pub mod timing;

pub use config::{
    BayesBatchConfig, FiralConfig, MirrorDescentConfig, RelaxConfig, RoundConfig, UpalConfig,
};
pub use dispatch::{dispatch_select, SelectReport, SelectRequest};
pub use driver::{run_experiment, run_experiment_named, ExperimentResult, RoundRecord};
pub use exact::{exact_firal, exact_relax, exact_round, RelaxTelemetry};
pub use exec::{EtaGroupGeometry, Executor, RelaxRun, RoundRun, RoundState, ShardedProblem};
pub use parallel::{
    parallel_approx_firal_grouped, parallel_select, parallel_select_by_name, GroupedFiralRun,
    ParallelSelectRun,
};
pub use problem::SelectionProblem;
pub use relax::{fast_relax, RelaxOutput};
pub use round::{diag_round, diag_round_with_eig, select_eta, EigSolver, RoundOutput};
pub use strategies::{
    select_serial, strategy_by_name, ApproxFiral, BayesBatchStrategy, DistStrategy,
    EntropyStrategy, ExactFiral, KMeansStrategy, RandomStrategy, SelectError, SelectionRun,
    Strategy, UpalStrategy, STRATEGY_NAMES,
};
pub use stream::{PoolUpdate, StreamCommit, StreamingState};
pub use timing::PhaseTimer;
