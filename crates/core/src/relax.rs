//! Fast RELAX solver (Algorithm 2) — serial entry point.
//!
//! The four ingredients of §III-A — Hutchinson trace estimation (Eq. 12),
//! matrix-free Hessian matvecs (Lemma 2), preconditioned CG on
//! `Σ_z W = V`, and the block-Jacobi preconditioner `B(Σ_z)^{-1}`
//! (Definition 1) — are implemented **once**, communicator-generically, in
//! [`crate::exec::Executor::relax`]. This module is the `p = 1`
//! instantiation: it runs that same code over [`firal_comm::SelfComm`]
//! (every collective a no-op) on the trivial full shard, which is exactly
//! the paper's observation that the serial algorithm *is* the SPMD
//! algorithm at one rank.

use firal_comm::{CommScalar, SelfComm};
use firal_solvers::CgTelemetry;

use crate::config::RelaxConfig;
use crate::exact::RelaxTelemetry;
use crate::exec::{Executor, ShardedProblem};
use crate::problem::SelectionProblem;
use crate::timing::PhaseTimer;

/// Result of a fast RELAX solve.
#[derive(Debug, Clone)]
pub struct RelaxOutput<T> {
    /// The relaxed solution scaled to the budget: `z⋄ = b·z`.
    pub z_diamond: Vec<T>,
    /// Objective history / convergence record (Fig. 4 series).
    pub telemetry: RelaxTelemetry<T>,
    /// CG telemetry of the *first* mirror-descent iteration's first solve —
    /// the residual curves plotted in Fig. 1.
    pub first_cg: Vec<CgTelemetry<T>>,
    /// Phase timing breakdown (Setup B(Σz)⁻¹ / CG / gradient / other).
    pub timer: PhaseTimer,
    /// Total CG iterations across the whole solve (for Table II's
    /// `n_CG` accounting).
    pub total_cg_iters: usize,
}

/// Run Algorithm 2 on one rank. Returns `z⋄` with `‖z⋄‖₁ = b`.
pub fn fast_relax<T: CommScalar>(
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
) -> RelaxOutput<T> {
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(problem);
    let run = Executor::serial(&comm, &shard).relax(budget, config);
    RelaxOutput {
        z_diamond: run.z_diamond,
        telemetry: run.telemetry,
        first_cg: run.first_cg,
        timer: run.timer,
        total_cg_iters: run.total_cg_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MirrorDescentConfig;
    use crate::exact::exact_relax;
    use crate::hessian::{BlockJacobi, PoolHessian, SigmaZ};
    use firal_linalg::Matrix;
    use firal_solvers::{cg_solve_panel, rademacher_panel, CgConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_problem(seed: u64, n: usize, d: usize, c: usize) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(c, d)
            .with_pool_size(n)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            c,
        )
    }

    #[test]
    fn output_is_budget_scaled_simplex() {
        let p = tiny_problem(1, 60, 4, 3);
        let out = fast_relax(&p, 8, &RelaxConfig::default());
        assert_eq!(out.z_diamond.len(), 60);
        assert!(out.z_diamond.iter().all(|&v| v >= 0.0));
        let sum: f64 = out.z_diamond.iter().sum();
        assert!((sum - 8.0).abs() < 1e-8, "‖z⋄‖₁ = {sum}");
        assert!(out.telemetry.iterations >= 1);
        assert!(!out.first_cg.is_empty());
        assert!(out.total_cg_iters > 0);
    }

    #[test]
    fn approx_weights_correlate_with_exact() {
        // On a small problem the fast solver (tight CG, many probes) must
        // put large weight on roughly the same points as the exact solver.
        let p = tiny_problem(2, 40, 3, 3);
        let md = MirrorDescentConfig {
            max_iters: 30,
            ..Default::default()
        };
        let (z_exact, _) = exact_relax(&p, 5, &md);
        let cfg = RelaxConfig {
            md,
            probes: 60,
            cg_tol: 1e-6,
            seed: 3,
            ..Default::default()
        };
        let out = fast_relax(&p, 5, &cfg);
        // Rank correlation proxy: top-10 sets overlap substantially.
        let top = |z: &[f64]| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..z.len()).collect();
            idx.sort_by(|&a, &b| z[b].partial_cmp(&z[a]).unwrap());
            idx[..10].to_vec()
        };
        let te = top(&z_exact);
        let ta = top(&out.z_diamond);
        let overlap = te.iter().filter(|i| ta.contains(i)).count();
        assert!(
            overlap >= 5,
            "exact/approx top-10 overlap only {overlap}: {te:?} vs {ta:?}"
        );
    }

    #[test]
    fn objective_history_trends_down() {
        let p = tiny_problem(4, 50, 3, 4);
        let out = fast_relax(
            &p,
            5,
            &RelaxConfig {
                probes: 30,
                cg_tol: 0.01,
                seed: 5,
                ..Default::default()
            },
        );
        let h = &out.telemetry.objective_history;
        assert!(h.len() >= 2);
        let first = h[0];
        let last = *h.last().unwrap();
        assert!(
            last <= first * 1.05,
            "objective should not increase materially: {first} → {last}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = tiny_problem(6, 30, 3, 3);
        let cfg = RelaxConfig {
            seed: 11,
            ..Default::default()
        };
        let a = fast_relax(&p, 4, &cfg);
        let b = fast_relax(&p, 4, &cfg);
        assert_eq!(a.z_diamond, b.z_diamond);
        assert_eq!(
            a.telemetry.objective_history.len(),
            b.telemetry.objective_history.len()
        );
    }

    #[test]
    fn preconditioner_reduces_cg_iterations() {
        // The Fig. 1 claim, as a regression test: block-Jacobi CG converges
        // in fewer iterations than unpreconditioned CG on Σ_z.
        use firal_solvers::IdentityPreconditioner;
        let p = tiny_problem(7, 80, 5, 4);
        let n = p.pool_size();
        let z = vec![1.0 / n as f64; n];
        let sigma = SigmaZ::new(
            PoolHessian::unweighted(&p.labeled_x, &p.labeled_h),
            PoolHessian::weighted(&p.pool_x, &p.pool_h, z),
        );
        let prec = BlockJacobi::new(&sigma.block_diagonal()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let v: Matrix<f64> = rademacher_panel(p.ehat(), 4, &mut rng);
        let cfg = CgConfig {
            rel_tol: 1e-6,
            max_iter: 4 * p.ehat(),
        };
        let (_, tel_prec) = cg_solve_panel(&sigma, &prec, &v, &cfg);
        let (_, tel_plain) = cg_solve_panel(&sigma, &IdentityPreconditioner, &v, &cfg);
        let iters_prec: usize = tel_prec.iter().map(|t| t.iterations).sum();
        let iters_plain: usize = tel_plain.iter().map(|t| t.iterations).sum();
        assert!(
            iters_prec < iters_plain,
            "preconditioned {iters_prec} !< plain {iters_plain}"
        );
    }

    #[test]
    fn timer_covers_the_paper_phases() {
        let p = tiny_problem(8, 30, 3, 3);
        let out = fast_relax(&p, 3, &RelaxConfig::default());
        for phase in ["precond", "cg", "gradient"] {
            assert!(
                out.timer.phases().any(|(n, _)| n == phase),
                "missing phase {phase}"
            );
        }
    }
}
