//! Fast RELAX solver (Algorithm 2).
//!
//! Replaces Exact-FIRAL's dense gradient with the four ingredients of
//! §III-A: Hutchinson trace estimation (Eq. 12), matrix-free Hessian
//! matvecs (Lemma 2), preconditioned CG on `Σ_z W = V`, and the
//! block-Jacobi preconditioner `B(Σ_z)^{-1}` (Definition 1). Per
//! mirror-descent iteration:
//!
//! 1. draw an `ê × s` Rademacher panel `V`;
//! 2. build `B(Σ_z)` (one fused pass over pool + labeled panels) and factor
//!    it per block — *Setup B(Σz)⁻¹* in the paper's timing breakdown;
//! 3. `W ← Σ_z^{-1} V` (preconditioned CG), `W ← H_p W`, `W ← Σ_z^{-1} W`;
//! 4. `g_i ← -(1/s) Σ_j v_jᵀ H_i w_j` via two tall GEMMs;
//! 5. entropic mirror-descent update, objective tracked with a Hutchinson
//!    estimate of `Tr(Σ_z^{-1} H_p)` and the paper's 1e-4 stopping rule.

use firal_linalg::{Matrix, Scalar};
use firal_solvers::{cg_solve_panel, rademacher_panel, CgConfig, CgTelemetry, LinearOperator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::RelaxConfig;
use crate::exact::RelaxTelemetry;
use crate::hessian::{hutchinson_gradients, BlockJacobi, PoolHessian, SigmaZ};
use crate::problem::SelectionProblem;
use crate::timing::PhaseTimer;

/// Result of a fast RELAX solve.
#[derive(Debug, Clone)]
pub struct RelaxOutput<T> {
    /// The relaxed solution scaled to the budget: `z⋄ = b·z`.
    pub z_diamond: Vec<T>,
    /// Objective history / convergence record (Fig. 4 series).
    pub telemetry: RelaxTelemetry<T>,
    /// CG telemetry of the *first* mirror-descent iteration's first solve —
    /// the residual curves plotted in Fig. 1.
    pub first_cg: Vec<CgTelemetry<T>>,
    /// Phase timing breakdown (Setup B(Σz)⁻¹ / CG / gradient / other).
    pub timer: PhaseTimer,
    /// Total CG iterations across the whole solve (for Table II's
    /// `n_CG` accounting).
    pub total_cg_iters: usize,
}

/// Run Algorithm 2. Returns `z⋄` with `‖z⋄‖₁ = b`.
pub fn fast_relax<T: Scalar>(
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
) -> RelaxOutput<T> {
    let n = problem.pool_size();
    let ehat = problem.ehat();
    let b = T::from_usize(budget);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut timer = PhaseTimer::new();
    let mut z = vec![T::ONE / T::from_usize(n); n];
    let mut telemetry = RelaxTelemetry {
        objective_history: Vec::new(),
        iterations: 0,
        converged: false,
    };
    let mut first_cg: Vec<CgTelemetry<T>> = Vec::new();
    let mut total_cg_iters = 0usize;

    let cg_cfg = CgConfig {
        rel_tol: config.cg_tol,
        max_iter: config.cg_max_iter,
    };

    // B(H_o) is weight-independent: build once outside the loop.
    let ho = PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h);
    let bho = timer.time("precond", || ho.block_diagonal());
    let hp = PoolHessian::unweighted(&problem.pool_x, &problem.pool_h);

    for t in 1..=config.md.max_iters {
        telemetry.iterations = t;

        // Line 4: fresh Rademacher panel each iteration.
        let v: Matrix<T> = rademacher_panel(ehat, config.probes, &mut rng);

        // Gradients are evaluated at the feasible point b·z of Eq. 5 (z
        // itself stays on the unit simplex for the multiplicative update).
        let zb: Vec<T> = z.iter().map(|&v| v * b).collect();
        let hz = PoolHessian::weighted(&problem.pool_x, &problem.pool_h, zb.clone());
        let sigma = SigmaZ::new(
            PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h),
            hz,
        );

        // Line 5: B(Σ_z) = B(H_o) + B(H_{b·z}), factored per block.
        let prec = timer.time("precond", || {
            let mut bsz = sigma.hz.block_diagonal();
            bsz.add_scaled(T::ONE, &bho);
            if config.ridge > T::ZERO {
                BlockJacobi::new_with_ridge(&bsz, config.ridge)
            } else {
                BlockJacobi::new(&bsz).or_else(|_| {
                    // Lazy ridge fallback for numerically semidefinite blocks.
                    BlockJacobi::new_with_ridge(&bsz, T::from_f64(1e-8))
                })
            }
            .expect("preconditioner factorization failed")
        });

        // Line 6: W ← Σ_z⁻¹ V.
        let (w1, tel1) = timer.time("cg", || cg_solve_panel(&sigma, &prec, &v, &cg_cfg));
        total_cg_iters += tel1.iter().map(|t| t.iterations).sum::<usize>();
        if t == 1 {
            first_cg = tel1;
        }

        // Line 7: W ← H_p W (plus H_p·V for the objective estimate).
        let w2 = timer.time("matvec", || hp.apply_panel(&w1));
        let hpv = timer.time("matvec", || hp.apply_panel(&v));

        // Line 8: W ← Σ_z⁻¹ W.
        let (w3, tel2) = timer.time("cg", || cg_solve_panel(&sigma, &prec, &w2, &cg_cfg));
        total_cg_iters += tel2.iter().map(|t| t.iterations).sum::<usize>();

        // Line 9: g_i ← -(1/s) Σ_j v_jᵀ H_i w_j.
        let g = timer.time("gradient", || {
            hutchinson_gradients(&problem.pool_x, &problem.pool_h, &v, &w3)
        });

        // Lines 10–11: multiplicative update + simplex normalization, with
        // a √t-decaying magnitude-normalized step (see DESIGN.md).
        timer.time("other", || {
            let mut max_abs = T::ZERO;
            for &gi in &g {
                max_abs = max_abs.maxv(gi.abs());
            }
            let beta = config.md.beta0 / T::from_usize(t).sqrt() / max_abs.maxv(T::MIN_POSITIVE);
            let mut total = T::ZERO;
            for (zi, &gi) in z.iter_mut().zip(g.iter()) {
                // Gradients enter negated: g here is +(1/s)Σvᵀ H w, and the
                // objective gradient is its negation, so ascent on g.
                *zi *= (beta * gi).exp();
                total += *zi;
            }
            for zi in z.iter_mut() {
                *zi /= total;
            }
        });

        // Objective estimate f ≈ (1/s) Σ_j (Σ⁻¹v_j)ᵀ(H_p v_j) and stopping
        // rule (relative change < config.md.obj_rel_tol).
        let f_est = timer.time("other", || {
            let mut acc = T::ZERO;
            for j in 0..config.probes {
                let mut col = T::ZERO;
                for i in 0..ehat {
                    col += w1[(i, j)] * hpv[(i, j)];
                }
                acc += col;
            }
            acc / T::from_usize(config.probes)
        });
        if let Some(&prev) = telemetry.objective_history.last() {
            if ((f_est - prev) / prev.abs().maxv(T::MIN_POSITIVE)).abs() < config.md.obj_rel_tol {
                telemetry.objective_history.push(f_est);
                telemetry.converged = true;
                break;
            }
        }
        telemetry.objective_history.push(f_est);
    }

    let z_diamond: Vec<T> = z.iter().map(|&v| v * b).collect();
    RelaxOutput {
        z_diamond,
        telemetry,
        first_cg,
        timer,
        total_cg_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MirrorDescentConfig;
    use crate::exact::exact_relax;

    fn tiny_problem(seed: u64, n: usize, d: usize, c: usize) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(c, d)
            .with_pool_size(n)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            c,
        )
    }

    #[test]
    fn output_is_budget_scaled_simplex() {
        let p = tiny_problem(1, 60, 4, 3);
        let out = fast_relax(&p, 8, &RelaxConfig::default());
        assert_eq!(out.z_diamond.len(), 60);
        assert!(out.z_diamond.iter().all(|&v| v >= 0.0));
        let sum: f64 = out.z_diamond.iter().sum();
        assert!((sum - 8.0).abs() < 1e-8, "‖z⋄‖₁ = {sum}");
        assert!(out.telemetry.iterations >= 1);
        assert!(!out.first_cg.is_empty());
        assert!(out.total_cg_iters > 0);
    }

    #[test]
    fn approx_weights_correlate_with_exact() {
        // On a small problem the fast solver (tight CG, many probes) must
        // put large weight on roughly the same points as the exact solver.
        let p = tiny_problem(2, 40, 3, 3);
        let md = MirrorDescentConfig {
            max_iters: 30,
            ..Default::default()
        };
        let (z_exact, _) = exact_relax(&p, 5, &md);
        let cfg = RelaxConfig {
            md,
            probes: 60,
            cg_tol: 1e-6,
            seed: 3,
            ..Default::default()
        };
        let out = fast_relax(&p, 5, &cfg);
        // Rank correlation proxy: top-10 sets overlap substantially.
        let top = |z: &[f64]| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..z.len()).collect();
            idx.sort_by(|&a, &b| z[b].partial_cmp(&z[a]).unwrap());
            idx[..10].to_vec()
        };
        let te = top(&z_exact);
        let ta = top(&out.z_diamond);
        let overlap = te.iter().filter(|i| ta.contains(i)).count();
        assert!(
            overlap >= 5,
            "exact/approx top-10 overlap only {overlap}: {te:?} vs {ta:?}"
        );
    }

    #[test]
    fn objective_history_trends_down() {
        let p = tiny_problem(4, 50, 3, 4);
        let out = fast_relax(
            &p,
            5,
            &RelaxConfig {
                probes: 30,
                cg_tol: 0.01,
                seed: 5,
                ..Default::default()
            },
        );
        let h = &out.telemetry.objective_history;
        assert!(h.len() >= 2);
        let first = h[0];
        let last = *h.last().unwrap();
        assert!(
            last <= first * 1.05,
            "objective should not increase materially: {first} → {last}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = tiny_problem(6, 30, 3, 3);
        let cfg = RelaxConfig {
            seed: 11,
            ..Default::default()
        };
        let a = fast_relax(&p, 4, &cfg);
        let b = fast_relax(&p, 4, &cfg);
        assert_eq!(a.z_diamond, b.z_diamond);
        assert_eq!(
            a.telemetry.objective_history.len(),
            b.telemetry.objective_history.len()
        );
    }

    #[test]
    fn preconditioner_reduces_cg_iterations() {
        // The Fig. 1 claim, as a regression test: block-Jacobi CG converges
        // in fewer iterations than unpreconditioned CG on Σ_z.
        use firal_solvers::IdentityPreconditioner;
        let p = tiny_problem(7, 80, 5, 4);
        let n = p.pool_size();
        let z = vec![1.0 / n as f64; n];
        let sigma = SigmaZ::new(
            PoolHessian::unweighted(&p.labeled_x, &p.labeled_h),
            PoolHessian::weighted(&p.pool_x, &p.pool_h, z),
        );
        let prec = BlockJacobi::new(&sigma.block_diagonal()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let v: Matrix<f64> = rademacher_panel(p.ehat(), 4, &mut rng);
        let cfg = CgConfig {
            rel_tol: 1e-6,
            max_iter: 4 * p.ehat(),
        };
        let (_, tel_prec) = cg_solve_panel(&sigma, &prec, &v, &cfg);
        let (_, tel_plain) = cg_solve_panel(&sigma, &IdentityPreconditioner, &v, &cfg);
        let iters_prec: usize = tel_prec.iter().map(|t| t.iterations).sum();
        let iters_plain: usize = tel_plain.iter().map(|t| t.iterations).sum();
        assert!(
            iters_prec < iters_plain,
            "preconditioned {iters_prec} !< plain {iters_plain}"
        );
    }

    #[test]
    fn timer_covers_the_paper_phases() {
        let p = tiny_problem(8, 30, 3, 3);
        let out = fast_relax(&p, 3, &RelaxConfig::default());
        for phase in ["precond", "cg", "gradient"] {
            assert!(
                out.timer.phases().any(|(n, _)| n == phase),
                "missing phase {phase}"
            );
        }
    }
}
