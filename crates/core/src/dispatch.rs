//! Request → [`DistStrategy`](crate::strategies::DistStrategy) dispatch:
//! the metering layer of the serving path.
//!
//! A [`SelectRequest`] is the wire-shaped description of one selection —
//! strategy registry name, budget, seed, intra-rank thread count — lifted
//! out of `spmd_launch`'s ad-hoc workload plumbing so a long-running server
//! (`firal-serve`), the bench binaries, and tests all resolve and account
//! requests through one entry point. [`dispatch_select`] resolves the name
//! via [`strategy_by_name`], shards the problem for the calling rank, runs
//! the **fallible** distributed path
//! ([`try_select_dist`](crate::strategies::DistStrategy::try_select_dist)),
//! and bills exactly the collectives the request issued on the given
//! communicator (a `stats()` delta, so a warm communicator carrying earlier
//! traffic is accounted correctly).
//!
//! Determinism: the strategy contract (`crates/core/src/strategies.rs`)
//! guarantees the selected *indices* are identical across rank counts, so a
//! dispatched request returns the same selection on a 1-rank, 2-rank, or
//! p-rank (sub-)communicator — the property the serving layer's
//! bitwise-vs-serial soak test pins.

use firal_comm::{CommScalar, CommStats, Communicator};

use crate::exec::{Executor, ShardedProblem};
use crate::problem::SelectionProblem;
use crate::strategies::{strategy_by_name, SelectError};

/// One selection request, as named by a client or a workload row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectRequest {
    /// Strategy registry name ([`crate::STRATEGY_NAMES`]).
    pub strategy: String,
    /// Batch size `b`.
    pub budget: usize,
    /// Seed for the strategy's internal randomness.
    pub seed: u64,
    /// This rank's private kernel thread-pool size (`0` inherits the
    /// ambient pool).
    pub threads: usize,
}

impl SelectRequest {
    /// A request with the default seed (0) and ambient thread pool.
    pub fn new(strategy: impl Into<String>, budget: usize) -> Self {
        Self {
            strategy: strategy.into(),
            budget,
            seed: 0,
            threads: 0,
        }
    }

    /// Replace the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the intra-rank kernel thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// What one dispatched request did: the selection plus its bill.
#[derive(Debug, Clone)]
pub struct SelectReport {
    /// Selected **global** pool indices, identical on every rank of the
    /// dispatching communicator.
    pub selected: Vec<usize>,
    /// Seconds this rank spent inside the selection.
    pub seconds: f64,
    /// Collectives this rank issued *for this request* (a delta over the
    /// communicator's counters, not its lifetime totals).
    pub comm: CommStats,
}

/// Run one [`SelectRequest`] on one rank of `comm`'s group, each rank
/// holding the identical full `problem` (sharded internally, mirroring
/// `parallel_select`). Every rank of the group must dispatch the same
/// request collectively.
///
/// Failure taxonomy: an unregistered name is
/// [`SelectError::UnknownStrategy`] (resolved *before* any collective runs,
/// so a bad name never skews the group schedule); invalid budgets surface
/// as the strategy's own [`SelectError`] variants; and a communication
/// failure underneath the selection comes back as [`SelectError::Comm`]
/// through the `try_`/`comm_catch` boundary instead of aborting the rank.
pub fn dispatch_select<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    req: &SelectRequest,
) -> Result<SelectReport, SelectError> {
    let strategy =
        strategy_by_name::<T>(&req.strategy).ok_or_else(|| SelectError::UnknownStrategy {
            name: req.strategy.clone(),
        })?;
    let shard = ShardedProblem::shard(problem, comm.rank(), comm.size());
    let exec = Executor::new(comm, &shard).with_threads(req.threads);
    let stats0 = comm.stats();
    let t0 = std::time::Instant::now();
    let selected = strategy.try_select_dist(&exec, req.budget, req.seed)?;
    Ok(SelectReport {
        selected,
        seconds: t0.elapsed().as_secs_f64(),
        comm: comm.stats().since(&stats0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::select_serial;
    use firal_comm::{launch, SelfComm};

    fn tiny_problem(seed: u64) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(3, 4)
            .with_pool_size(40)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            3,
        )
    }

    #[test]
    fn dispatch_matches_select_serial_bitwise_at_p1() {
        let problem = tiny_problem(3);
        let comm = SelfComm::new();
        for name in ["random", "entropy", "approx-firal"] {
            let req = SelectRequest::new(name, 4).with_seed(11);
            let report = dispatch_select(&comm, &problem, &req).expect("dispatch");
            let strategy = strategy_by_name::<f64>(name).unwrap();
            let reference = select_serial(strategy.as_ref(), &problem, 4, 11).expect("serial");
            assert_eq!(report.selected, reference.selected, "{name}");
        }
    }

    #[test]
    fn dispatch_selects_identical_indices_across_rank_counts() {
        let problem = tiny_problem(5);
        let req = SelectRequest::new("entropy", 5).with_seed(2);
        let serial = {
            let comm = SelfComm::new();
            dispatch_select(&comm, &problem, &req)
                .expect("serial")
                .selected
        };
        for p in [2usize, 3] {
            let runs = launch(p, |comm| {
                dispatch_select(comm, &problem, &req)
                    .expect("dist")
                    .selected
            });
            for run in runs {
                assert_eq!(run, serial, "p={p}");
            }
        }
    }

    #[test]
    fn dispatch_bills_a_stats_delta_not_lifetime_totals() {
        let problem = tiny_problem(7);
        let comm = SelfComm::new();
        // Warm the communicator with unrelated traffic first.
        let warm = dispatch_select(&comm, &problem, &SelectRequest::new("approx-firal", 3))
            .expect("warm-up");
        assert!(
            warm.comm.total_calls() > 0,
            "approx-firal issues collectives"
        );
        let second = dispatch_select(&comm, &problem, &SelectRequest::new("approx-firal", 3))
            .expect("second");
        assert_eq!(
            second.comm.total_calls(),
            warm.comm.total_calls(),
            "identical requests must bill identical deltas on a warm comm"
        );
    }

    #[test]
    fn unknown_strategy_is_rejected_before_any_collective() {
        let problem = tiny_problem(1);
        let comm = SelfComm::new();
        let err = dispatch_select(&comm, &problem, &SelectRequest::new("gradient-boost", 2))
            .expect_err("unregistered name");
        assert!(matches!(err, SelectError::UnknownStrategy { .. }));
        assert_eq!(comm.stats().total_calls(), 0, "no collective may have run");
    }

    #[test]
    fn invalid_budgets_surface_the_strategy_taxonomy() {
        let problem = tiny_problem(2);
        let comm = SelfComm::new();
        let err = dispatch_select(&comm, &problem, &SelectRequest::new("random", 0))
            .expect_err("zero budget");
        assert!(matches!(err, SelectError::ZeroBudget));
        let err = dispatch_select(&comm, &problem, &SelectRequest::new("random", 10_000))
            .expect_err("budget beyond pool");
        assert!(matches!(err, SelectError::BudgetTooLarge { .. }));
    }
}
