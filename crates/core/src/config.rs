//! Hyperparameter bundles for the RELAX and ROUND solvers and the
//! non-FIRAL selection strategies.

use firal_linalg::Scalar;
use firal_logreg::TrainConfig;

/// Entropic-mirror-descent controls (shared by the exact and fast RELAX
/// solvers, Algorithms 1–2).
#[derive(Debug, Clone, Copy)]
pub struct MirrorDescentConfig<T> {
    /// Maximum iterations `T` ("fewer than 100 mirror descent iterations"
    /// suffice in all the paper's runs, §IV-A).
    pub max_iters: usize,
    /// Stop when the relative objective change drops below this
    /// (paper: `1.0E-4`).
    pub obj_rel_tol: T,
    /// Base step scale; the effective step is `β₀/√t`, normalized by the
    /// max gradient magnitude so one constant works across datasets.
    pub beta0: T,
}

impl<T: Scalar> Default for MirrorDescentConfig<T> {
    fn default() -> Self {
        Self {
            max_iters: 100,
            obj_rel_tol: T::from_f64(1e-4),
            beta0: T::ONE,
        }
    }
}

/// Fast-RELAX (Algorithm 2) controls.
#[derive(Debug, Clone, Copy)]
pub struct RelaxConfig<T> {
    /// Mirror-descent schedule.
    pub md: MirrorDescentConfig<T>,
    /// Number of Rademacher probes `s` (paper default: 10).
    pub probes: usize,
    /// CG relative-residual tolerance (paper default: 0.1).
    pub cg_tol: T,
    /// CG iteration cap (0 ⇒ 2·dimension).
    pub cg_max_iter: usize,
    /// Diagonal ridge added to preconditioner blocks if a block is not SPD
    /// (numerical safety; `0` keeps the paper's formulation and falls back
    /// lazily only on factorization failure).
    pub ridge: T,
    /// RNG seed for the probe panel.
    pub seed: u64,
}

impl<T: Scalar> Default for RelaxConfig<T> {
    fn default() -> Self {
        Self {
            md: MirrorDescentConfig::default(),
            probes: 10,
            cg_tol: T::from_f64(0.1),
            cg_max_iter: 0,
            ridge: T::ZERO,
            seed: 0,
        }
    }
}

/// Diagonal-ROUND (Algorithm 3) controls.
#[derive(Debug, Clone)]
pub struct RoundConfig<T> {
    /// FTRL learning rate `η`. `None` selects it by the paper's rule:
    /// run ROUND for each grid value and keep the `η` maximizing
    /// `min_k λ_min((H)_k)` over the selected points' Hessian sum (§IV-A).
    pub eta: Option<T>,
    /// Grid of multipliers on `√ê` tried when `eta` is `None`.
    pub eta_grid: Vec<T>,
}

impl<T: Scalar> Default for RoundConfig<T> {
    fn default() -> Self {
        Self {
            eta: None,
            eta_grid: vec![T::from_f64(2.0), T::from_f64(4.0), T::from_f64(8.0)],
        }
    }
}

impl<T: Scalar> RoundConfig<T> {
    /// Fix `η` explicitly (skips the selection grid).
    pub fn with_eta(eta: T) -> Self {
        Self {
            eta: Some(eta),
            eta_grid: Vec::new(),
        }
    }
}

/// Combined Approx-FIRAL configuration.
#[derive(Debug, Clone, Default)]
pub struct FiralConfig<T: Scalar> {
    /// RELAX-step controls.
    pub relax: RelaxConfig<T>,
    /// ROUND-step controls.
    pub round: RoundConfig<T>,
    /// Intra-rank kernel threads: size of the worker pool the dense kernels
    /// (GEMMs, weighted Grams) fan out on **within** this rank — the
    /// thread tier stacked under rank-level SPMD (the paper's GPU-per-rank
    /// analogue). `0` inherits the ambient pool (a surrounding
    /// `ThreadPool::install`, else the global pool sized by
    /// `FIRAL_NUM_THREADS`/host parallelism). Results are bitwise identical
    /// at every setting (see `firal_linalg::gemm`'s determinism contract).
    pub threads: usize,
    /// η-grid groups `p_eta` of the 2D rank geometry
    /// `p = p_shard × p_eta` (see `firal_core::exec::EtaGroupGeometry`):
    /// the SPMD world splits into `p_eta` sub-communicator groups that
    /// sweep the §IV-A η grid concurrently, one contiguous grid slice per
    /// group, with a final cross-group argmax. `0` (the default) and `1`
    /// both mean "one group" — the sequential sweep. Must divide the world
    /// size; results are bitwise identical at every setting for a fixed
    /// group size `p_shard`.
    pub eta_groups: usize,
    /// Streaming refactor cadence: every `refactor_interval` committed
    /// update batches, `firal_core::stream::StreamingState` discards its
    /// incrementally maintained round state and rebuilds it from scratch
    /// (`Executor::build_round_state`), bounding the floating-point drift
    /// the rank-one Cholesky up/downdates accumulate between boundaries.
    /// At the boundary the streaming state is **bitwise equal** to the
    /// from-scratch build. `0` (the default) means a sensible cadence of
    /// 64 batches; usize::MAX disables refactoring (drift tests only).
    pub refactor_interval: usize,
}

/// Controls for [`crate::strategies::UpalStrategy`] — the UPAL-style
/// unbiased pool sampler (Ganti & Gray, arXiv:1111.1784; see PAPERS.md).
#[derive(Debug, Clone, Copy)]
pub struct UpalConfig<T: Scalar> {
    /// Uniform mixing weight `ε` of the sampling distribution
    /// `p_t = (1-ε)·uncertainty + ε·uniform`: UPAL's minimum-probability
    /// floor, which bounds every importance weight by `n/ε`.
    pub mix: T,
    /// Cap on any single importance weight (numerical safety for the
    /// weighted re-fit; `∞` disables).
    pub max_weight: T,
    /// Training configuration of the per-step weighted re-fit.
    pub train: TrainConfig<T>,
}

impl<T: Scalar> Default for UpalConfig<T> {
    fn default() -> Self {
        Self {
            mix: T::from_f64(0.1),
            max_weight: T::from_f64(1e6),
            train: TrainConfig::default(),
        }
    }
}

/// Controls for [`crate::strategies::BayesBatchStrategy`] — Bayesian batch
/// selection as sparse subset approximation via Frank–Wolfe (Pinsler et
/// al., arXiv:1908.02144; see PAPERS.md).
#[derive(Debug, Clone, Copy, Default)]
pub struct BayesBatchConfig<T: Scalar> {
    /// Ridge added to every point's squared embedding norm `σ_i²` before
    /// the score division (guards pool points whose predictive
    /// probabilities are numerically one-hot, i.e. `σ_i = 0`).
    pub norm_ridge: T,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_defaults_are_sane() {
        let u = UpalConfig::<f64>::default();
        assert!((0.0..1.0).contains(&u.mix));
        assert!(u.max_weight > 1.0);
        let b = BayesBatchConfig::<f32>::default();
        assert_eq!(b.norm_ridge, 0.0);
    }

    #[test]
    fn defaults_match_paper() {
        let r = RelaxConfig::<f64>::default();
        assert_eq!(r.probes, 10);
        assert!((r.cg_tol - 0.1).abs() < 1e-12);
        assert_eq!(r.md.max_iters, 100);
        assert!((r.md.obj_rel_tol - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn round_with_eta_skips_grid() {
        let r = RoundConfig::with_eta(3.0f32);
        assert_eq!(r.eta, Some(3.0));
        assert!(r.eta_grid.is_empty());
    }
}
