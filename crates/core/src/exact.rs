//! Exact-FIRAL (Algorithm 1): dense RELAX + dense ROUND.
//!
//! This is the NeurIPS'23 baseline the paper accelerates. It materializes
//! `ê × ê` operators (`ê = d(c-1)`), computes exact per-point gradients
//! `g_i = -Tr(H_i Σ_z^{-1} H_p Σ_z^{-1})`, and runs the
//! follow-the-regularized-leader ROUND with full eigendecompositions —
//! `O(c²d² + nc²d)` storage and `O(c³(nd² + bd³ + bn))` compute (Table II).
//! Kept both as the accuracy oracle for Approx-FIRAL tests and as the
//! baseline for the Table VI timing comparison.
//!
//! The per-candidate ROUND objective uses the Woodbury identity on the
//! rank-`(c-1)` update `H̃_i = U_iU_iᵀ` instead of inverting an `ê × ê`
//! matrix per candidate, matching the complexity the paper reports for
//! Exact-FIRAL's ROUND.

use firal_linalg::{eigh, eigvalsh, spd_inv_sqrt, Cholesky, Matrix, Scalar};
use firal_solvers::solve_nu;

use crate::config::MirrorDescentConfig;
use crate::hessian::{gmat, PoolHessian};
use crate::objective::exact_objective;
use crate::problem::SelectionProblem;

/// Convergence record of a RELAX solve (exact or fast).
#[derive(Debug, Clone)]
pub struct RelaxTelemetry<T> {
    /// Objective value `f(b·z)` after each mirror-descent iteration —
    /// the series plotted in Fig. 4.
    pub objective_history: Vec<T>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative-change stopping rule fired.
    pub converged: bool,
}

/// `G_i^{1/2}` for one point: symmetric square root of `diag(h)-hhᵀ`.
fn g_half<T: Scalar>(h: &[T]) -> Matrix<T> {
    let g = gmat(h);
    let eig = eigh(&g).expect("G(h) eigendecomposition");
    eig.apply_fn(|x| x.maxv(T::ZERO).sqrt())
}

/// `A · (G^{1/2} ⊗ x)` without materializing the Kronecker factor:
/// `t_k = A[:, block k] · x`, column `l` = `Σ_k G½[k,l] t_k`.
fn kron_apply<T: Scalar>(a: &Matrix<T>, ghalf: &Matrix<T>, x: &[T]) -> Matrix<T> {
    let ehat = a.rows();
    let d = x.len();
    let c = ghalf.rows();
    debug_assert_eq!(a.cols(), d * c);
    // t_k = A[:, k·d..(k+1)·d] · x
    let mut t = Matrix::zeros(ehat, c);
    for row in 0..ehat {
        let arow = a.row(row);
        let trow = t.row_mut(row);
        for k in 0..c {
            let seg = &arow[k * d..(k + 1) * d];
            let mut acc = T::ZERO;
            for (av, &xv) in seg.iter().zip(x.iter()) {
                acc += *av * xv;
            }
            trow[k] = acc;
        }
    }
    firal_linalg::counters::add_flops(2 * ehat * d * c);
    // out[:, l] = Σ_k G½[k,l] t_k  →  out = t · G½ (G½ symmetric).
    firal_linalg::gemm(&t, ghalf)
}

/// Exact RELAX (Algorithm 1 lines 1–9). Returns `z⋄ = b·z` and telemetry.
pub fn exact_relax<T: Scalar>(
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &MirrorDescentConfig<T>,
) -> (Vec<T>, RelaxTelemetry<T>) {
    let n = problem.pool_size();
    let d = problem.dim();
    let cm1 = problem.nblocks();
    let ehat = problem.ehat();
    let b = T::from_usize(budget);

    let ho_dense = PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h).to_dense();
    let hp_dense = PoolHessian::unweighted(&problem.pool_x, &problem.pool_h).to_dense();

    let mut z = vec![T::ONE / T::from_usize(n); n];
    let mut telemetry = RelaxTelemetry {
        objective_history: Vec::new(),
        iterations: 0,
        converged: false,
    };

    let mut g = vec![T::ZERO; n];
    for t in 1..=config.max_iters {
        telemetry.iterations = t;

        // Σ_z = H_o + H_{b·z}: z lives on the unit simplex for the
        // multiplicative update, but the gradient is evaluated at the
        // feasible point ‖b·z‖₁ = b of the relaxed problem (Eq. 5).
        let zb: Vec<T> = z.iter().map(|&v| v * b).collect();
        let hz = PoolHessian::weighted(&problem.pool_x, &problem.pool_h, zb).to_dense();
        let mut sigma = ho_dense.clone();
        sigma.add_scaled(T::ONE, &hz);
        let ch = Cholesky::new(&sigma).expect("Σ_z must be SPD");

        // M = Σ⁻¹ H_p Σ⁻¹ (dense).
        let m1 = ch.solve_mat(&hp_dense); // Σ⁻¹H_p
        let m = ch.solve_mat_t(&m1); // Σ⁻¹(Σ⁻¹H_p)ᵀ = Σ⁻¹H_pΣ⁻¹

        // g_i = -Σ_{k,l} G_i[k,l] · x_iᵀ M_{(l,k)} x_i, batched per block.
        let mut quads = Matrix::zeros(n, cm1 * cm1);
        for l in 0..cm1 {
            for k in 0..cm1 {
                let mlk = m.block(l * d, k * d, d);
                let y = firal_linalg::gemm(&problem.pool_x, &mlk);
                for i in 0..n {
                    let mut q = T::ZERO;
                    for (a, bv) in y.row(i).iter().zip(problem.pool_x.row(i)) {
                        q += *a * *bv;
                    }
                    quads[(i, l * cm1 + k)] = q;
                }
            }
        }
        let mut max_abs_g = T::ZERO;
        for i in 0..n {
            let gm = gmat(problem.pool_h.row(i));
            let mut acc = T::ZERO;
            for k in 0..cm1 {
                for l in 0..cm1 {
                    acc += gm[(k, l)] * quads[(i, l * cm1 + k)];
                }
            }
            g[i] = -acc;
            max_abs_g = max_abs_g.maxv(acc.abs());
        }

        // Entropic mirror-descent update with a √t-decaying, magnitude-
        // normalized step.
        let beta = config.beta0 / T::from_usize(t).sqrt() / max_abs_g.maxv(T::MIN_POSITIVE);
        let mut total = T::ZERO;
        for (zi, &gi) in z.iter_mut().zip(g.iter()) {
            *zi *= (-beta * gi).exp();
            total += *zi;
        }
        for zi in z.iter_mut() {
            *zi /= total;
        }

        // Track f(b·z) and apply the paper's relative-change stopping rule.
        let scaled: Vec<T> = z.iter().map(|&v| v * b).collect();
        let f = exact_objective(problem, &scaled);
        if let Some(&prev) = telemetry.objective_history.last() {
            if ((f - prev) / prev.abs().maxv(T::MIN_POSITIVE)).abs() < config.obj_rel_tol {
                telemetry.objective_history.push(f);
                telemetry.converged = true;
                break;
            }
        }
        telemetry.objective_history.push(f);
    }
    let _ = ehat;

    let z_diamond: Vec<T> = z.iter().map(|&v| v * b).collect();
    (z_diamond, telemetry)
}

/// Exact ROUND (Algorithm 1 lines 10–19). Returns the `b` selected pool
/// indices (distinct, in selection order).
pub fn exact_round<T: Scalar>(
    problem: &SelectionProblem<T>,
    z_diamond: &[T],
    budget: usize,
    eta: T,
) -> Vec<usize> {
    let n = problem.pool_size();
    let d = problem.dim();
    let cm1 = problem.nblocks();
    let ehat = problem.ehat();
    assert!(budget <= n, "cannot select more points than the pool holds");
    let binv = T::ONE / T::from_usize(budget);

    // Σ⋄ = H_o + H_{z⋄}; whitening W = Σ⋄^{-1/2} (Eq. 8).
    let ho_dense = PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h).to_dense();
    let mut sigma = ho_dense.clone();
    sigma.add_scaled(
        T::ONE,
        &PoolHessian::weighted(&problem.pool_x, &problem.pool_h, z_diamond.to_vec()).to_dense(),
    );
    let w = spd_inv_sqrt(&sigma).expect("Σ⋄ must be SPD");
    let ho_tilde = firal_linalg::gemm(&firal_linalg::gemm(&w, &ho_dense), &w);

    // Per-point G_i^{1/2} factors (cheap, reused every round).
    let ghalves: Vec<Matrix<T>> = (0..n).map(|i| g_half(problem.pool_h.row(i))).collect();

    // A₁ = √ê·I; accumulated H̃ starts at zero.
    let mut a_t = Matrix::<T>::identity(ehat);
    a_t.scale_inplace(T::from_usize(ehat).sqrt());
    let mut h_acc = Matrix::<T>::zeros(ehat, ehat);

    let mut selected = Vec::with_capacity(budget);
    let mut taken = vec![false; n];

    for _t in 0..budget {
        // P = (A_t + η/b·H̃_o)⁻¹.
        let mut base = a_t.clone();
        base.add_scaled(eta * binv, &ho_tilde);
        base.symmetrize();
        let p = Cholesky::new(&base)
            .expect("FTRL base matrix must be SPD")
            .inverse();
        let pw = firal_linalg::gemm(&p, &w);
        let wpw = firal_linalg::gemm(&w, &pw);
        let tr_p = p.trace();

        // Score every unselected candidate via Woodbury on H̃_i = U_iU_iᵀ.
        let mut best = (T::INFINITY, usize::MAX);
        for i in 0..n {
            if taken[i] {
                continue;
            }
            let xi = problem.pool_x.row(i);
            // M1 = (P·W)(G½⊗x) = P·U_i ; M2 = (W·P·W)(G½⊗x) = W P U_i? No:
            // U_i = W·(G½⊗x) so UᵢᵀP Uᵢ = (G½⊗x)ᵀ(WPW)(G½⊗x).
            let pu = kron_apply(&pw, &ghalves[i], xi);
            let wpwu = kron_apply(&wpw, &ghalves[i], xi);
            // S1[k,l] = (G½⊗x)ᵀ_col k · wpwu_col l
            let mut s1 = Matrix::zeros(cm1, cm1);
            let mut s2 = Matrix::zeros(cm1, cm1);
            for kk in 0..cm1 {
                for ll in 0..cm1 {
                    // column kk of (G½⊗x): block m = G½[m,kk]·x
                    let mut acc1 = T::ZERO;
                    for mm in 0..cm1 {
                        let coeff = ghalves[i][(mm, kk)];
                        if coeff == T::ZERO {
                            continue;
                        }
                        let seg = (mm * d)..((mm + 1) * d);
                        let mut dotv = T::ZERO;
                        for (row, &xv) in seg.clone().zip(xi.iter()) {
                            dotv += wpwu[(row, ll)] * xv;
                        }
                        acc1 += coeff * dotv;
                    }
                    s1[(kk, ll)] = acc1;
                    let mut acc2 = T::ZERO;
                    for row in 0..ehat {
                        acc2 += pu[(row, kk)] * pu[(row, ll)];
                    }
                    s2[(kk, ll)] = acc2;
                }
            }
            // r_i = Tr(P) - η·Tr[(I + η·S1)⁻¹ S2]
            let mut inner = s1.clone();
            inner.scale_inplace(eta);
            inner.add_diag(T::ONE);
            inner.symmetrize();
            let correction = match Cholesky::new(&inner) {
                Ok(ch) => ch.solve_mat(&s2).trace(),
                Err(_) => T::ZERO, // degenerate candidate contributes nothing
            };
            let r = tr_p - eta * correction;
            if r < best.0 {
                best = (r, i);
            }
        }
        let it = best.1;
        assert!(it != usize::MAX, "no candidate available in ROUND");
        taken[it] = true;
        selected.push(it);

        // H̃ ← H̃ + (1/b)H̃_o + H̃_{i_t}
        h_acc.add_scaled(binv, &ho_tilde);
        let ui = kron_apply(&w, &ghalves[it], problem.pool_x.row(it));
        let hi_tilde = firal_linalg::gemm_a_bt(
            &{
                // (U Uᵀ) via U as rows: gemm_a_bt wants row panels; U is ê×cm1
                // so U·Uᵀ = gemm_a_bt(U, U) with U treated as ê rows of cm1.
                ui.clone()
            },
            &ui,
        );
        h_acc.add_scaled(T::ONE, &hi_tilde);
        h_acc.symmetrize();

        // ν_{t+1}: Σ_j (ν + ηλ_j)⁻² = 1 over the spectrum of H̃.
        let lambdas = eigvalsh(&h_acc).expect("H̃ eigenvalues");
        let nu = solve_nu(&lambdas, eta);
        // A_{t+1} = νI + ηH̃ (equals V(νI+Λ)Vᵀ).
        a_t = h_acc.clone();
        a_t.scale_inplace(eta);
        a_t.add_diag(nu);
    }
    selected
}

/// Full Exact-FIRAL: RELAX then ROUND.
pub fn exact_firal<T: Scalar>(
    problem: &SelectionProblem<T>,
    budget: usize,
    md: &MirrorDescentConfig<T>,
    eta: T,
) -> (Vec<usize>, RelaxTelemetry<T>) {
    let (z_diamond, telemetry) = exact_relax(problem, budget, md);
    let selected = exact_round(problem, &z_diamond, budget, eta);
    (selected, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hessian::dense_hessian;

    fn tiny_problem(seed: u64, n: usize, d: usize, c: usize) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(c, d)
            .with_pool_size(n)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            c,
        )
    }

    #[test]
    fn g_half_squares_to_g() {
        let h = [0.4, 0.3, 0.1];
        let root = g_half(&h);
        let sq = firal_linalg::gemm(&root, &root);
        let g = gmat(&h);
        for i in 0..3 {
            for j in 0..3 {
                assert!((sq[(i, j)] - g[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn kron_apply_matches_dense_kronecker() {
        let h = [0.5, 0.2];
        let gh = g_half(&h);
        let x = [1.0, -2.0, 0.5];
        let a = Matrix::from_fn(6, 6, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let fast = kron_apply(&a, &gh, &x);
        // Dense: A · (G½ ⊗ x)
        let mut kron_mat = Matrix::zeros(6, 2);
        for l in 0..2 {
            for k in 0..2 {
                for p in 0..3 {
                    kron_mat[(k * 3 + p, l)] = gh[(k, l)] * x[p];
                }
            }
        }
        let slow = firal_linalg::gemm(&a, &kron_mat);
        for i in 0..6 {
            for j in 0..2 {
                assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn low_rank_factor_reconstructs_hessian() {
        // U₀ = (G½ ⊗ x) must satisfy U₀U₀ᵀ = G ⊗ xxᵀ = H.
        let h = [0.3, 0.25, 0.15];
        let x = [0.5, -1.0];
        let gh = g_half(&h);
        let identity = Matrix::<f64>::identity(6);
        let u0 = kron_apply(&identity, &gh, &x);
        let uut = firal_linalg::gemm_a_bt(&u0, &u0);
        let dense = dense_hessian(&x, &h);
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (uut[(i, j)] - dense[(i, j)]).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    uut[(i, j)],
                    dense[(i, j)]
                );
            }
        }
    }

    #[test]
    fn relax_objective_decreases() {
        let p = tiny_problem(1, 30, 3, 3);
        let (z, tel) = exact_relax(&p, 5, &MirrorDescentConfig::default());
        assert_eq!(z.len(), 30);
        // Weights are non-negative and sum to b.
        assert!(z.iter().all(|&v| v >= 0.0));
        let sum: f64 = z.iter().sum();
        assert!((sum - 5.0).abs() < 1e-9, "‖z⋄‖₁ = {sum}");
        // Objective history should show improvement overall.
        let first = tel.objective_history.first().unwrap();
        let last = tel.objective_history.last().unwrap();
        assert!(
            last <= first,
            "objective went up: {first} → {last} ({:?})",
            tel.objective_history
        );
    }

    #[test]
    fn round_selects_distinct_points() {
        let p = tiny_problem(2, 25, 3, 3);
        let (z, _) = exact_relax(&p, 4, &MirrorDescentConfig::default());
        let sel = exact_round(&p, &z, 4, 8.0 * (p.ehat() as f64).sqrt());
        assert_eq!(sel.len(), 4);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicate selections: {sel:?}");
    }

    #[test]
    fn round_beats_random_on_fisher_objective() {
        // The whole point of FIRAL: its selection should have a lower
        // Fisher-information ratio than a random subset of the same size.
        use crate::objective::selection_objective;
        let p = tiny_problem(3, 40, 3, 3);
        let b = 5;
        let (z, _) = exact_relax(&p, b, &MirrorDescentConfig::default());
        let sel = exact_round(&p, &z, b, 8.0 * (p.ehat() as f64).sqrt());
        let f_firal = selection_objective(&p, &sel);
        // Average a few random selections.
        let mut f_random_sum = 0.0;
        let trials = 8;
        let mut state = 12345u64;
        for _ in 0..trials {
            let mut pick = Vec::new();
            while pick.len() < b {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (state >> 33) as usize % 40;
                if !pick.contains(&idx) {
                    pick.push(idx);
                }
            }
            f_random_sum += selection_objective(&p, &pick);
        }
        let f_random = f_random_sum / trials as f64;
        assert!(
            f_firal < f_random * 1.05,
            "FIRAL f = {f_firal} vs mean random f = {f_random}"
        );
    }
}
