//! Diagonal ROUND solver (Algorithm 3) — serial entry points and the
//! shared per-iteration kernels.
//!
//! The FTRL iteration itself is implemented **once**, communicator-
//! generically, in [`crate::exec::Executor::round`]; [`diag_round`] and
//! friends instantiate it over [`firal_comm::SelfComm`] on the trivial full
//! shard. This module keeps the pieces both the serial wrappers and the
//! unified solver share:
//!
//! * the Eq. 17 rational score (`round_scores`) — the Sherman–Morrison
//!   identity of Lemma 3 applied to the per-candidate objective of Eq. 9
//!   (note: the published Eq. 17 prints `(Σ⋄)_k^{-1}` in the numerator; the
//!   derivation in Eqs. 18–20 shows the factor is `(Σ⋄)_k` — we implement
//!   the derived form and cross-check it against the dense trace objective
//!   in tests);
//! * the Line-9 eigensolver choice ([`EigSolver`]) with its Lanczos
//!   machinery (`WhitenedBlock`, `pad_spectrum`);
//! * the η-selection criterion of §IV-A ([`selection_min_eig`]).
//!
//! Storage is `O(n(d+c) + cd²)` and compute `O(bncd²)` (Table II).

use firal_comm::{CommScalar, SelfComm};
use firal_linalg::{BlockDiag, Cholesky, Matrix, Scalar};
use firal_solvers::LinearOperator;

use crate::exec::{Executor, ShardedProblem};
use crate::problem::SelectionProblem;
use crate::timing::PhaseTimer;

/// Which eigensolver backs Line 9 of Algorithm 3.
///
/// `Exact` is the paper's configuration (`cupy.linalg.eigvalsh` →
/// tridiagonal QL here). `Lanczos { steps }` is the §V future-work variant:
/// a matrix-free Krylov estimate of each block's spectrum in `steps ≪ d`
/// operator applications, density-padded to `d` values before the `ν`
/// bisection. The `ablation_lanczos` bench binary quantifies the fidelity/
/// cost trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigSolver {
    /// Dense tridiagonal-QL eigensolve per block (paper configuration).
    Exact,
    /// Lanczos Ritz-value estimate with the given Krylov dimension.
    Lanczos {
        /// Krylov steps per block (clamped to the block order).
        steps: usize,
    },
}

/// Stretch `k` Ritz values into a surrogate for a `d`-point spectrum by
/// proportional repetition (a piecewise-constant spectral density), so the
/// `Σ_j (ν+ηλ_j)^{-2} = 1` bisection sees the right measure.
pub(crate) fn pad_spectrum<T: Scalar>(ritz: &[T], d: usize) -> Vec<T> {
    assert!(!ritz.is_empty());
    (0..d).map(|i| ritz[i * ritz.len() / d]).collect()
}

/// Matrix-free whitened block operator `C = L⁻¹ H L⁻ᵀ` for Lanczos.
pub(crate) struct WhitenedBlock<'a, T: Scalar> {
    pub(crate) h: &'a Matrix<T>,
    pub(crate) chol: &'a Cholesky<T>,
}

impl<T: Scalar> LinearOperator<T> for WhitenedBlock<'_, T> {
    fn dim(&self) -> usize {
        self.h.rows()
    }
    fn apply(&self, x: &[T], y: &mut [T]) {
        let t = self.chol.solve_lt(x);
        let ht = self.h.matvec(&t);
        y.copy_from_slice(&self.chol.solve_l(&ht));
    }
}

/// Result of a diagonal ROUND solve.
#[derive(Debug, Clone)]
pub struct RoundOutput<T> {
    /// Selected pool indices (distinct, in selection order).
    pub selected: Vec<usize>,
    /// The η used (input or grid-selected).
    pub eta: T,
    /// Phase breakdown (objective / eig / other).
    pub timer: PhaseTimer,
}

/// Per-candidate scores for one ROUND iteration (Eq. 17, derived form):
/// `score_i = Σ_k g_ik · x_iᵀ B_k⁻¹ (Σ⋄)_k B_k⁻¹ x_i / (1 + η g_ik x_iᵀ B_k⁻¹ x_i)`
/// with `g_ik = h_ik(1-h_ik)`. Batched per block with two `n×d` GEMMs.
/// `pool_x`/`gik` may be one rank's shard — the kernel is purely local.
pub(crate) fn round_scores<T: Scalar>(
    pool_x: &Matrix<T>,
    gik: &Matrix<T>,
    b_inv: &BlockDiag<T>,
    sigma: &BlockDiag<T>,
    eta: T,
) -> Vec<T> {
    let n = pool_x.rows();
    let cm1 = b_inv.nblocks();
    let mut scores = vec![T::ZERO; n];
    for k in 0..cm1 {
        let m1 = b_inv.block(k);
        // M2 = B⁻¹ Σ⋄ B⁻¹ for this block.
        let m2 = firal_linalg::gemm(&firal_linalg::gemm(m1, sigma.block(k)), m1);
        // q1_i = x_iᵀ M1 x_i, q2_i = x_iᵀ M2 x_i (row-dot after one GEMM).
        let y1 = firal_linalg::gemm(pool_x, m1);
        let y2 = firal_linalg::gemm(pool_x, &m2);
        for i in 0..n {
            let xi = pool_x.row(i);
            let mut q1 = T::ZERO;
            let mut q2 = T::ZERO;
            for ((&a1, &a2), &xv) in y1.row(i).iter().zip(y2.row(i)).zip(xi.iter()) {
                q1 += a1 * xv;
                q2 += a2 * xv;
            }
            let g = gik[(i, k)];
            scores[i] += g * q2 / (T::ONE + eta * g * q1);
        }
    }
    scores
}

/// Run Algorithm 3 with a fixed η and the exact per-block eigensolver.
pub fn diag_round<T: CommScalar>(
    problem: &SelectionProblem<T>,
    z_diamond: &[T],
    budget: usize,
    eta: T,
) -> RoundOutput<T> {
    diag_round_with_eig(problem, z_diamond, budget, eta, EigSolver::Exact)
}

/// Run Algorithm 3 with a fixed η and a configurable Line-9 eigensolver.
pub fn diag_round_with_eig<T: CommScalar>(
    problem: &SelectionProblem<T>,
    z_diamond: &[T],
    budget: usize,
    eta: T,
    eig: EigSolver,
) -> RoundOutput<T> {
    assert_eq!(z_diamond.len(), problem.pool_size(), "z length mismatch");
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(problem);
    let run = Executor::serial(&comm, &shard).round(z_diamond, budget, eta, eig);
    RoundOutput {
        selected: run.selected,
        eta: run.eta,
        timer: run.timer,
    }
}

/// The paper's η-selection criterion (§IV-A): the smallest block eigenvalue
/// of the selected points' Hessian sum, `min_k λ_min(Σ_{i∈sel} g_ik x_ix_iᵀ)`
/// — the `p = 1` instantiation of [`Executor::selection_min_eig`].
pub fn selection_min_eig<T: CommScalar>(problem: &SelectionProblem<T>, selected: &[usize]) -> T {
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(problem);
    Executor::serial(&comm, &shard).selection_min_eig(selected)
}

/// Run ROUND for every η in `grid · √ê` and keep the run maximizing
/// [`selection_min_eig`] — "we execute the ROUND step with different η
/// values, and then select the one that maximizes min_k λ_min(H)_k" (§IV-A).
pub fn select_eta<T: CommScalar>(
    problem: &SelectionProblem<T>,
    z_diamond: &[T],
    budget: usize,
    grid: &[T],
) -> RoundOutput<T> {
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(problem);
    let run = Executor::serial(&comm, &shard).select_eta(z_diamond, budget, grid);
    RoundOutput {
        selected: run.selected,
        eta: run.eta,
        timer: run.timer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hessian::{dense_hessian, PoolHessian};

    fn tiny_problem(seed: u64, n: usize, d: usize, c: usize) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(c, d)
            .with_pool_size(n)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            c,
        )
    }

    #[test]
    fn selects_distinct_points_within_budget() {
        let p = tiny_problem(1, 50, 4, 3);
        let z = vec![6.0 / 50.0; 50];
        let out = diag_round(&p, &z, 6, 8.0 * (p.ehat() as f64).sqrt());
        assert_eq!(out.selected.len(), 6);
        let mut sorted = out.selected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(out.selected.iter().all(|&i| i < 50));
    }

    #[test]
    fn proposition_4_equivalence_with_dense_trace() {
        // The Eq. 17 score ordering must match the exact block-diagonal
        // trace objective r_i = Tr[(B_t + ηH_i^{bd})⁻¹ Σ⋄] at t = 1.
        let p = tiny_problem(2, 12, 3, 3);
        let n = p.pool_size();
        let cm1 = p.nblocks();
        let ehat = p.ehat();
        let eta = 4.0 * (ehat as f64).sqrt();
        let z = vec![3.0 / n as f64; n];

        let bho = PoolHessian::unweighted(&p.labeled_x, &p.labeled_h).block_diagonal();
        let mut sigma = PoolHessian::weighted(&p.pool_x, &p.pool_h, z.clone()).block_diagonal();
        sigma.add_scaled(1.0, &bho);
        // B₁ = √ê Σ⋄ + (η/3) H_o
        let mut b1 = sigma.clone();
        for k in 0..cm1 {
            b1.block_mut(k).scale_inplace((ehat as f64).sqrt());
            b1.block_mut(k).add_scaled(eta / 3.0, bho.block(k));
        }
        let b_inv = b1.inverse().unwrap();

        let mut gik = firal_linalg::Matrix::zeros(n, cm1);
        for i in 0..n {
            for k in 0..cm1 {
                let h = p.pool_h[(i, k)];
                gik[(i, k)] = h * (1.0 - h);
            }
        }
        let scores = round_scores(&p.pool_x, &gik, &b_inv, &sigma, eta);

        // Dense reference: r_i = Tr[(B₁ + η B(H_i))⁻¹ Σ⋄].
        let b1_dense = b1.to_dense();
        let sigma_dense = sigma.to_dense();
        for i in 0..n {
            let hi = dense_hessian(p.pool_x.row(i), p.pool_h.row(i));
            let hi_bd = firal_linalg::BlockDiag::from_dense(&hi, cm1).to_dense();
            let mut m = b1_dense.clone();
            m.add_scaled(eta, &hi_bd);
            let ch = firal_linalg::Cholesky::new(&m).unwrap();
            let r_i = ch.solve_mat(&sigma_dense).trace();
            // Eq. 20: r_i = Tr(B⁻¹Σ⋄) - η·score_i
            let base = firal_linalg::Cholesky::new(&b1_dense)
                .unwrap()
                .solve_mat(&sigma_dense)
                .trace();
            let expect_score = (base - r_i) / eta;
            assert!(
                (scores[i] - expect_score).abs() < 1e-6 * expect_score.abs().max(1.0),
                "point {i}: score {} vs derived {expect_score}",
                scores[i]
            );
        }
    }

    #[test]
    fn eta_grid_selection_returns_valid_run() {
        let p = tiny_problem(3, 40, 3, 3);
        let z = vec![4.0 / 40.0; 40];
        let out = select_eta(&p, &z, 4, &[1.0, 4.0, 16.0]);
        assert_eq!(out.selected.len(), 4);
        assert!(out.eta > 0.0);
    }

    #[test]
    fn selection_min_eig_grows_with_more_points() {
        let p = tiny_problem(4, 30, 3, 3);
        let z = vec![8.0 / 30.0; 30];
        let out = diag_round(&p, &z, 8, 8.0 * (p.ehat() as f64).sqrt());
        let m4 = selection_min_eig(&p, &out.selected[..4]);
        let m8 = selection_min_eig(&p, &out.selected);
        assert!(m8 >= m4 - 1e-12, "adding PSD terms cannot shrink λ_min");
    }

    #[test]
    fn round_covers_classes_reasonably() {
        // FIRAL's design goal: the selection should touch diverse regions.
        // With c classes and budget = c on a separated mixture, expect at
        // least half the classes represented.
        let ds = firal_data::SyntheticConfig::new(4, 6)
            .with_pool_size(80)
            .with_initial_per_class(2)
            .with_separation(6.0)
            .with_seed(5)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        let p = SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            4,
        );
        let relax = crate::relax::fast_relax(&p, 4, &crate::config::RelaxConfig::default());
        let out = diag_round(&p, &relax.z_diamond, 4, 8.0 * (p.ehat() as f64).sqrt());
        let classes: std::collections::BTreeSet<usize> =
            out.selected.iter().map(|&i| ds.pool_labels[i]).collect();
        assert!(
            classes.len() >= 2,
            "selection collapsed to classes {classes:?} via {:?}",
            out.selected
        );
    }

    #[test]
    fn lanczos_round_matches_exact_round_selection() {
        // Future-work variant (§V): with a generous Krylov dimension the
        // Lanczos-backed ROUND must reproduce the exact ROUND's selection.
        let p = tiny_problem(7, 40, 6, 3);
        let z = vec![5.0 / 40.0; 40];
        let eta = 4.0 * (p.ehat() as f64).sqrt();
        let exact = diag_round(&p, &z, 5, eta);
        let lanczos = diag_round_with_eig(&p, &z, 5, eta, EigSolver::Lanczos { steps: 6 });
        assert_eq!(exact.selected, lanczos.selected);
        // With an aggressive (tiny) Krylov dimension, selections may drift
        // but must remain a valid batch.
        let rough = diag_round_with_eig(&p, &z, 5, eta, EigSolver::Lanczos { steps: 2 });
        assert_eq!(rough.selected.len(), 5);
        let mut sorted = rough.selected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn pad_spectrum_preserves_range_and_length() {
        let ritz = vec![1.0f64, 5.0, 9.0];
        let padded = pad_spectrum(&ritz, 9);
        assert_eq!(padded.len(), 9);
        assert_eq!(padded[0], 1.0);
        assert_eq!(padded[8], 9.0);
        // Monotone non-decreasing.
        assert!(padded.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pad_spectrum_single_ritz_value_floods_the_spectrum() {
        // k = 1: the density surrogate is a point mass — every padded entry
        // is the lone Ritz value.
        let padded = pad_spectrum(&[2.5f64], 6);
        assert_eq!(padded, vec![2.5; 6]);
    }

    #[test]
    fn pad_spectrum_full_krylov_is_identity() {
        // k = d: proportional repetition reduces to the identity, so an
        // exact Krylov spectrum passes through untouched.
        let ritz = vec![0.5f64, 1.0, 2.0, 4.0];
        assert_eq!(pad_spectrum(&ritz, 4), ritz);
    }

    #[test]
    fn pad_spectrum_more_ritz_values_than_dims_subsamples_monotonically() {
        // k > d (possible when a caller does not clamp the Krylov
        // dimension): the padding must subsample without going out of
        // bounds, keep the extreme values' order, and stay monotone.
        let ritz = vec![1.0f64, 2.0, 3.0, 4.0, 5.0];
        let padded = pad_spectrum(&ritz, 3);
        assert_eq!(padded.len(), 3);
        assert_eq!(padded[0], ritz[0]);
        assert!(padded.windows(2).all(|w| w[0] <= w[1]));
        assert!(*padded.last().unwrap() <= *ritz.last().unwrap());
    }

    #[test]
    fn timer_covers_round_phases() {
        let p = tiny_problem(6, 20, 3, 3);
        let z = vec![2.0 / 20.0; 20];
        let out = diag_round(&p, &z, 2, 10.0);
        for phase in ["objective", "eig", "other"] {
            assert!(
                out.timer.phases().any(|(n, _)| n == phase),
                "missing {phase}"
            );
        }
    }
}
