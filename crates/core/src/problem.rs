//! The selection-problem context shared by every strategy.

use firal_linalg::{Matrix, Scalar};

/// Everything a batch selection step sees: the unlabeled pool, the current
/// labeled set, and the classifier's probability panels at the current
/// weights (the `h_i` of Eq. 2, truncated to `c-1` entries).
#[derive(Debug, Clone)]
pub struct SelectionProblem<T: Scalar> {
    /// Pool features (`n × d`).
    pub pool_x: Matrix<T>,
    /// Pool probabilities (`n × (c-1)`).
    pub pool_h: Matrix<T>,
    /// Labeled features (`m × d`).
    pub labeled_x: Matrix<T>,
    /// Labeled probabilities (`m × (c-1)`).
    pub labeled_h: Matrix<T>,
    /// Class count `c`.
    pub num_classes: usize,
}

impl<T: Scalar> SelectionProblem<T> {
    /// Construct and validate shapes.
    pub fn new(
        pool_x: Matrix<T>,
        pool_h: Matrix<T>,
        labeled_x: Matrix<T>,
        labeled_h: Matrix<T>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(pool_x.rows(), pool_h.rows(), "pool panels disagree");
        assert_eq!(
            labeled_x.rows(),
            labeled_h.rows(),
            "labeled panels disagree"
        );
        assert_eq!(pool_x.cols(), labeled_x.cols(), "feature dims disagree");
        assert_eq!(
            pool_h.cols(),
            num_classes - 1,
            "pool_h must have c-1 columns"
        );
        assert_eq!(
            labeled_h.cols(),
            num_classes - 1,
            "labeled_h must have c-1 columns"
        );
        Self {
            pool_x,
            pool_h,
            labeled_x,
            labeled_h,
            num_classes,
        }
    }

    /// Pool size `n`.
    pub fn pool_size(&self) -> usize {
        self.pool_x.rows()
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.pool_x.cols()
    }

    /// Number of Hessian blocks `c-1`.
    pub fn nblocks(&self) -> usize {
        self.num_classes - 1
    }

    /// Stacked operator order `ê = d(c-1)`.
    pub fn ehat(&self) -> usize {
        self.dim() * self.nblocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_derive_correctly() {
        let p = SelectionProblem::new(
            Matrix::<f64>::zeros(10, 4),
            Matrix::zeros(10, 2),
            Matrix::zeros(3, 4),
            Matrix::zeros(3, 2),
            3,
        );
        assert_eq!(p.pool_size(), 10);
        assert_eq!(p.dim(), 4);
        assert_eq!(p.nblocks(), 2);
        assert_eq!(p.ehat(), 8);
    }

    #[test]
    #[should_panic(expected = "pool_h must have c-1 columns")]
    fn wrong_h_width_panics() {
        let _ = SelectionProblem::new(
            Matrix::<f64>::zeros(10, 4),
            Matrix::zeros(10, 3),
            Matrix::zeros(3, 4),
            Matrix::zeros(3, 2),
            3,
        );
    }
}
