//! Fisher-information machinery: dense Hessians (Eq. 2), the matrix-free
//! fast matvec (Lemma 2), pooled operators (`H_p`, `H_z`, `Σ_z`), and the
//! block-diagonal extraction of Definition 1 (Eqs. 14–15).
//!
//! Conventions (see DESIGN.md): the classifier uses the `c-1` block
//! parameterization, so a "probability vector" `h ∈ R^{c-1}` holds the first
//! `c-1` softmax probabilities, `G(h) = diag(h) - hhᵀ` is `(c-1)×(c-1)` SPD,
//! and every Fisher-information matrix is `H = G(h) ⊗ (xxᵀ)` of order
//! `ê = d(c-1)`. Stacked vectors `v ∈ R^ê` are the column-stacking `vec(V)`
//! of `V ∈ R^{d×(c-1)}`, matching the paper's notation.

use firal_linalg::{
    gemm, gemm_at_b, gram_weighted_multi, kron, unvec, vec_of, BlockDiag, Matrix, Scalar,
};
use firal_solvers::{LinearOperator, Preconditioner};

/// `G(h) = diag(h) - hhᵀ` — the class-coupling factor of Eq. 2.
pub fn gmat<T: Scalar>(h: &[T]) -> Matrix<T> {
    let c = h.len();
    let mut g = Matrix::zeros(c, c);
    for k in 0..c {
        for l in 0..c {
            g[(k, l)] = if k == l {
                h[k] - h[k] * h[l]
            } else {
                -h[k] * h[l]
            };
        }
    }
    g
}

/// Dense Fisher-information matrix `H = G(h) ⊗ (xxᵀ)` (Eq. 2).
/// `O(d²c²)` storage — exact-FIRAL / test path only.
pub fn dense_hessian<T: Scalar>(x: &[T], h: &[T]) -> Matrix<T> {
    let d = x.len();
    let mut xxt = Matrix::zeros(d, d);
    for p in 0..d {
        for q in 0..d {
            xxt[(p, q)] = x[p] * x[q];
        }
    }
    kron(&gmat(h), &xxt)
}

/// Fast matrix-free matvec `H_i v` (Lemma 2): `γ ← Vᵀx`, `α ← γᵀh`,
/// `γ ← (γ - α) ⊙ h`, `H_i v = vec(γ ⊗ x)`. `O(dc)` instead of `O(d²c²)`.
pub fn fast_matvec<T: Scalar>(x: &[T], h: &[T], v: &[T]) -> Vec<T> {
    let d = x.len();
    let c = h.len();
    assert_eq!(v.len(), d * c, "fast_matvec: v must have length d(c-1)");
    firal_linalg::counters::add_flops(4 * d * c);

    // γ_k = block_kᵀ x  (block k of v is V[:,k])
    let mut gamma = vec![T::ZERO; c];
    for (k, g) in gamma.iter_mut().enumerate() {
        let block = &v[k * d..(k + 1) * d];
        let mut acc = T::ZERO;
        for (bv, &xv) in block.iter().zip(x.iter()) {
            acc += *bv * xv;
        }
        *g = acc;
    }
    // α = γᵀ h
    let mut alpha = T::ZERO;
    for (g, &hk) in gamma.iter().zip(h.iter()) {
        alpha += *g * hk;
    }
    // out block k = (γ_k - α) h_k · x
    let mut out = vec![T::ZERO; d * c];
    for k in 0..c {
        let coeff = (gamma[k] - alpha) * h[k];
        let block = &mut out[k * d..(k + 1) * d];
        for (o, &xv) in block.iter_mut().zip(x.iter()) {
            *o = coeff * xv;
        }
    }
    out
}

/// Quadratic form `vᵀ H_i w` via the factored Lemma-2 pieces — the inner
/// kernel of the Hutchinson gradient estimate (Algorithm 2, line 9):
/// `vᵀH_iw = Σ_k p_k (q_k - qᵀh) h_k` with `p = Vᵀx`, `q = Wᵀx`.
pub fn bilinear_form<T: Scalar>(x: &[T], h: &[T], v: &[T], w: &[T]) -> T {
    let d = x.len();
    let c = h.len();
    debug_assert_eq!(v.len(), d * c);
    debug_assert_eq!(w.len(), d * c);
    let mut qh = T::ZERO;
    let mut q = vec![T::ZERO; c];
    for k in 0..c {
        let block = &w[k * d..(k + 1) * d];
        let mut acc = T::ZERO;
        for (bv, &xv) in block.iter().zip(x.iter()) {
            acc += *bv * xv;
        }
        q[k] = acc;
        qh += acc * h[k];
    }
    let mut out = T::ZERO;
    for k in 0..c {
        let block = &v[k * d..(k + 1) * d];
        let mut p = T::ZERO;
        for (bv, &xv) in block.iter().zip(x.iter()) {
            p += *bv * xv;
        }
        out += p * (q[k] - qh) * h[k];
    }
    out
}

/// A weighted sum of per-point Fisher matrices over a point panel,
/// `H(z) = Σ_i z_i · G(h_i) ⊗ (x_i x_iᵀ)`, applied matrix-free.
///
/// With `z ≡ 1` this is `H_p` (or `H_o` over the labeled panel); with the
/// mirror-descent weights it is `H_z`. The panel application vectorizes
/// Lemma 2 across both points and probe columns into two tall-skinny GEMMs
/// (Eq. 13) — the kernel the paper maps onto `cupy.einsum`.
pub struct PoolHessian<'a, T: Scalar> {
    /// Point panel (`n × d`).
    x: &'a Matrix<T>,
    /// Probability panel (`n × (c-1)`).
    h: &'a Matrix<T>,
    /// Optional per-point weights (uniform 1 when `None`).
    z: Option<Vec<T>>,
}

impl<'a, T: Scalar> PoolHessian<'a, T> {
    /// Unweighted sum (`H_p` over the pool, `H_o` over the labeled panel).
    pub fn unweighted(x: &'a Matrix<T>, h: &'a Matrix<T>) -> Self {
        assert_eq!(x.rows(), h.rows(), "points/probabilities mismatch");
        Self { x, h, z: None }
    }

    /// Weighted sum `H_z` with mirror-descent weights.
    pub fn weighted(x: &'a Matrix<T>, h: &'a Matrix<T>, z: Vec<T>) -> Self {
        assert_eq!(x.rows(), h.rows(), "points/probabilities mismatch");
        assert_eq!(z.len(), x.rows(), "weights length mismatch");
        Self { x, h, z: Some(z) }
    }

    /// Number of points in the panel.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True when the panel is empty.
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// Number of blocks `c-1`.
    pub fn nblocks(&self) -> usize {
        self.h.cols()
    }

    /// Point dimension `d`.
    pub fn point_dim(&self) -> usize {
        self.x.cols()
    }

    /// Apply to an `ê × s` stacked panel with the two-GEMM formulation.
    /// `wide` layouts: incoming columns are reshaped `d×(c-1)` matrices.
    fn apply_wide(&self, v: &Matrix<T>) -> Matrix<T> {
        let d = self.point_dim();
        let c = self.nblocks();
        let s = v.cols();
        let n = self.len();
        debug_assert_eq!(v.rows(), d * c);

        // Rearrange the stacked panel into a d × (c·s) wide matrix whose
        // column (j*c + k) is V_j[:,k].
        let mut vwide = Matrix::zeros(d, c * s);
        for j in 0..s {
            for k in 0..c {
                for p in 0..d {
                    vwide[(p, j * c + k)] = v[(k * d + p, j)];
                }
            }
        }
        // Γ = X · Vwide  (n × c·s)
        let mut gamma = gemm(self.x, &vwide);
        // Per point & probe: α = Σ_k Γ_k h_k; Γ_k ← z (Γ_k - α) h_k
        for i in 0..n {
            let zi = self.z.as_ref().map_or(T::ONE, |z| z[i]);
            let hrow = self.h.row(i).to_vec();
            let grow = gamma.row_mut(i);
            for j in 0..s {
                let seg = &mut grow[j * c..(j + 1) * c];
                let mut alpha = T::ZERO;
                for (g, &hk) in seg.iter().zip(hrow.iter()) {
                    alpha += *g * hk;
                }
                for (g, &hk) in seg.iter_mut().zip(hrow.iter()) {
                    *g = zi * (*g - alpha) * hk;
                }
            }
        }
        // Out = Xᵀ · Γ  (d × c·s), then restack.
        let owide = gemm_at_b(self.x, &gamma);
        let mut out = Matrix::zeros(d * c, s);
        for j in 0..s {
            for k in 0..c {
                for p in 0..d {
                    out[(k * d + p, j)] = owide[(p, j * c + k)];
                }
            }
        }
        out
    }

    /// Block diagonal `B(H(z))` (Definition 1 / Eq. 15): block `k` is
    /// `Σ_i z_i h_ik (1-h_ik) x_i x_iᵀ`, built in one fused pass.
    pub fn block_diagonal(&self) -> BlockDiag<T> {
        let n = self.len();
        let c = self.nblocks();
        let mut w = Matrix::zeros(n, c);
        for i in 0..n {
            let zi = self.z.as_ref().map_or(T::ONE, |z| z[i]);
            let hrow = self.h.row(i);
            let wrow = w.row_mut(i);
            for k in 0..c {
                wrow[k] = zi * hrow[k] * (T::ONE - hrow[k]);
            }
        }
        BlockDiag::from_blocks(gram_weighted_multi(self.x, &w))
    }

    /// Assemble the dense `ê × ê` operator (test / exact-FIRAL path).
    pub fn to_dense(&self) -> Matrix<T> {
        let d = self.point_dim();
        let c = self.nblocks();
        let mut acc = Matrix::zeros(d * c, d * c);
        for i in 0..self.len() {
            let zi = self.z.as_ref().map_or(T::ONE, |z| z[i]);
            let hi = dense_hessian(self.x.row(i), self.h.row(i));
            acc.add_scaled(zi, &hi);
        }
        acc
    }
}

impl<T: Scalar> LinearOperator<T> for PoolHessian<'_, T> {
    fn dim(&self) -> usize {
        self.point_dim() * self.nblocks()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        let v = Matrix::from_vec(x.len(), 1, x.to_vec());
        let out = self.apply_wide(&v);
        y.copy_from_slice(out.as_slice());
    }

    fn apply_panel(&self, x: &Matrix<T>) -> Matrix<T> {
        self.apply_wide(x)
    }
}

/// The regularized information operator `Σ_z = H_o + H_z` (Eq. 7),
/// applied matrix-free as the sum of two [`PoolHessian`]s.
pub struct SigmaZ<'a, T: Scalar> {
    /// Labeled-set term `H_o`.
    pub ho: PoolHessian<'a, T>,
    /// Weighted pool term `H_z`.
    pub hz: PoolHessian<'a, T>,
}

impl<'a, T: Scalar> SigmaZ<'a, T> {
    /// Combine the two panels. Dimensions must agree.
    pub fn new(ho: PoolHessian<'a, T>, hz: PoolHessian<'a, T>) -> Self {
        assert_eq!(ho.point_dim(), hz.point_dim());
        assert_eq!(ho.nblocks(), hz.nblocks());
        Self { ho, hz }
    }

    /// Block diagonal `B(Σ_z) = B(H_o) + B(H_z)` (Algorithm 2 line 5).
    pub fn block_diagonal(&self) -> BlockDiag<T> {
        let mut b = self.ho.block_diagonal();
        b.add_scaled(T::ONE, &self.hz.block_diagonal());
        b
    }

    /// Dense assembly (test path).
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = self.ho.to_dense();
        m.add_scaled(T::ONE, &self.hz.to_dense());
        m
    }
}

impl<T: Scalar> LinearOperator<T> for SigmaZ<'_, T> {
    fn dim(&self) -> usize {
        self.ho.dim()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        self.ho.apply(x, y);
        let mut tmp = vec![T::ZERO; y.len()];
        self.hz.apply(x, &mut tmp);
        for (a, b) in y.iter_mut().zip(tmp.iter()) {
            *a += *b;
        }
    }

    fn apply_panel(&self, x: &Matrix<T>) -> Matrix<T> {
        let mut a = self.ho.apply_panel(x);
        let b = self.hz.apply_panel(x);
        a.add_scaled(T::ONE, &b);
        a
    }
}

/// Block-Jacobi preconditioner: per-block Cholesky solves with
/// `B(Σ_z)^{-1}` (the preconditioner of §III-A, Fig. 1).
pub struct BlockJacobi<T: Scalar> {
    factors: Vec<firal_linalg::Cholesky<T>>,
    dim: usize,
}

impl<T: Scalar> BlockJacobi<T> {
    /// Factor every block of `B(Σ_z)`. Fails if any block is not SPD.
    pub fn new(bd: &BlockDiag<T>) -> firal_linalg::Result<Self> {
        Ok(Self {
            factors: bd.cholesky()?,
            dim: bd.dim(),
        })
    }

    /// Factor with a diagonal ridge fallback for near-singular blocks.
    pub fn new_with_ridge(bd: &BlockDiag<T>, ridge: T) -> firal_linalg::Result<Self> {
        let factors: firal_linalg::Result<Vec<_>> = bd
            .blocks()
            .iter()
            .map(|b| firal_linalg::Cholesky::new_with_ridge(b, ridge))
            .collect();
        Ok(Self {
            factors: factors?,
            dim: bd.dim(),
        })
    }
}

impl<T: Scalar> Preconditioner<T> for BlockJacobi<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        let d = self.dim;
        debug_assert_eq!(r.len(), d * self.factors.len());
        for (k, ch) in self.factors.iter().enumerate() {
            let seg = &r[k * d..(k + 1) * d];
            let solved = ch.solve(seg);
            z[k * d..(k + 1) * d].copy_from_slice(&solved);
        }
    }
}

/// Convert between a stacked `ê`-vector and its `d × (c-1)` matrix form
/// (re-exported vec/unvec with the crate's block convention).
pub fn stack<T: Scalar>(v: &Matrix<T>) -> Vec<T> {
    vec_of(v)
}

/// Inverse of [`stack`].
pub fn unstack<T: Scalar>(v: &[T], d: usize, c: usize) -> Matrix<T> {
    unvec(v, d, c)
}

/// Rearrange an `ê × s` stacked panel into the `d × (c·s)` wide layout used
/// by the two-GEMM kernels: wide column `j·c + k` is probe `j`'s block `k`.
pub fn to_wide<T: Scalar>(panel: &Matrix<T>, d: usize, c: usize) -> Matrix<T> {
    let s = panel.cols();
    debug_assert_eq!(panel.rows(), d * c);
    let mut wide = Matrix::zeros(d, c * s);
    for j in 0..s {
        for k in 0..c {
            for p in 0..d {
                wide[(p, j * c + k)] = panel[(k * d + p, j)];
            }
        }
    }
    wide
}

/// Batched Hutchinson gradient kernel (Algorithm 2 line 9):
/// returns `g_i = (1/s) Σ_j v_jᵀ H_i w_j` for every pool point, evaluated
/// through two `n × (c·s)` GEMMs: `P = X·V_wide`, `Q = X·W_wide`, then
/// `v_jᵀH_iw_j = Σ_k P_{ijk} (Q_{ijk} - Q_{ij·}·h_i) h_{ik}` per point.
/// (The caller negates for the descent direction.)
pub fn hutchinson_gradients<T: Scalar>(
    x: &Matrix<T>,
    h: &Matrix<T>,
    v_panel: &Matrix<T>,
    w_panel: &Matrix<T>,
) -> Vec<T> {
    let n = x.rows();
    let d = x.cols();
    let c = h.cols();
    let s = v_panel.cols();
    assert_eq!(v_panel.rows(), d * c, "probe panel has wrong height");
    assert_eq!(w_panel.shape(), v_panel.shape(), "panels disagree");

    let p = gemm(x, &to_wide(v_panel, d, c));
    let q = gemm(x, &to_wide(w_panel, d, c));
    let inv_s = T::ONE / T::from_usize(s);

    let mut g = vec![T::ZERO; n];
    for i in 0..n {
        let hrow = h.row(i);
        let prow = p.row(i);
        let qrow = q.row(i);
        let mut acc = T::ZERO;
        for j in 0..s {
            let pseg = &prow[j * c..(j + 1) * c];
            let qseg = &qrow[j * c..(j + 1) * c];
            let mut qh = T::ZERO;
            for (qv, &hk) in qseg.iter().zip(hrow.iter()) {
                qh += *qv * hk;
            }
            for k in 0..c {
                acc += pseg[k] * (qseg[k] - qh) * hrow[k];
            }
        }
        g[i] = acc * inv_s;
    }
    firal_linalg::counters::add_flops(4 * n * c * s);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use firal_solvers::LinearOperator;

    fn test_pool(n: usize, d: usize, c: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let x = Matrix::from_fn(n, d, |_, _| next() - 1.0);
        // Probabilities: softmax-ish rows with sum < 1 (c-1 entries of a
        // c-class softmax).
        let h = {
            let mut h = Matrix::zeros(n, c - 1);
            for i in 0..n {
                let raw: Vec<f64> = (0..c).map(|_| next().exp()).collect();
                let total: f64 = raw.iter().sum();
                for k in 0..(c - 1) {
                    h[(i, k)] = raw[k] / total;
                }
            }
            h
        };
        (x, h)
    }

    #[test]
    fn gmat_is_spd_for_valid_probabilities() {
        let h = [0.3, 0.2, 0.1]; // sums to 0.6 < 1
        let g = gmat(&h);
        let eig = firal_linalg::eigvalsh(&g).unwrap();
        assert!(eig[0] > 0.0, "G should be SPD, min eig {}", eig[0]);
    }

    #[test]
    fn gmat_full_softmax_is_singular() {
        // With the FULL softmax (sums to 1) G is singular — this is the
        // reason the implementation uses c-1 blocks (see DESIGN.md).
        let h = [0.5, 0.3, 0.2];
        let g = gmat(&h);
        let eig = firal_linalg::eigvalsh(&g).unwrap();
        assert!(eig[0].abs() < 1e-12, "nullvector 1 should exist: {eig:?}");
    }

    #[test]
    fn fast_matvec_matches_dense_hessian() {
        let (x, h) = test_pool(5, 4, 4, 1);
        for i in 0..5 {
            let dense = dense_hessian(x.row(i), h.row(i));
            let v: Vec<f64> = (0..12).map(|j| (j as f64).sin()).collect();
            let fast = fast_matvec(x.row(i), h.row(i), &v);
            let slow = dense.matvec(&v);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bilinear_form_matches_dense() {
        let (x, h) = test_pool(3, 3, 3, 2);
        let v: Vec<f64> = (0..6).map(|j| (j as f64 * 0.7).cos()).collect();
        let w: Vec<f64> = (0..6).map(|j| (j as f64 * 1.3).sin()).collect();
        for i in 0..3 {
            let dense = dense_hessian(x.row(i), h.row(i));
            let expect = firal_linalg::dot(&v, &dense.matvec(&w));
            let got = bilinear_form(x.row(i), h.row(i), &v, &w);
            assert!((got - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn pool_hessian_apply_matches_dense_sum() {
        let (x, h) = test_pool(20, 3, 4, 3);
        let op = PoolHessian::unweighted(&x, &h);
        let dense = op.to_dense();
        let v: Vec<f64> = (0..9).map(|j| 0.5 - (j as f64 * 0.37).fract()).collect();
        let mut fast = vec![0.0; 9];
        op.apply(&v, &mut fast);
        let slow = dense.matvec(&v);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn weighted_pool_hessian_scales_contributions() {
        let (x, h) = test_pool(10, 3, 3, 4);
        let z: Vec<f64> = (0..10).map(|i| 0.1 * (i + 1) as f64).collect();
        let op = PoolHessian::weighted(&x, &h, z.clone());
        let dense = op.to_dense();
        // Reference: manual weighted sum.
        let mut reference = Matrix::zeros(6, 6);
        for i in 0..10 {
            reference.add_scaled(z[i], &dense_hessian(x.row(i), h.row(i)));
        }
        for i in 0..6 {
            for j in 0..6 {
                assert!((dense[(i, j)] - reference[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn panel_apply_matches_per_column() {
        let (x, h) = test_pool(15, 4, 3, 5);
        let op = PoolHessian::unweighted(&x, &h);
        let panel = Matrix::from_fn(8, 3, |i, j| ((i * 3 + j) as f64 * 0.21).sin());
        let out = op.apply_panel(&panel);
        for j in 0..3 {
            let mut col = vec![0.0; 8];
            op.apply(&panel.col(j), &mut col);
            for i in 0..8 {
                assert!((out[(i, j)] - col[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn block_diagonal_matches_dense_extraction() {
        let (x, h) = test_pool(12, 3, 4, 6);
        let z: Vec<f64> = (0..12).map(|i| 0.05 * (i + 1) as f64).collect();
        let op = PoolHessian::weighted(&x, &h, z);
        let bd = op.block_diagonal();
        let dense_bd = BlockDiag::from_dense(&op.to_dense(), 3);
        for k in 0..3 {
            for p in 0..3 {
                for q in 0..3 {
                    assert!(
                        (bd.block(k)[(p, q)] - dense_bd.block(k)[(p, q)]).abs() < 1e-10,
                        "block {k} ({p},{q})"
                    );
                }
            }
        }
    }

    #[test]
    fn sigma_z_is_sum_of_parts() {
        let (xo, ho) = test_pool(6, 3, 3, 7);
        let (xu, hu) = test_pool(14, 3, 3, 8);
        let z: Vec<f64> = vec![1.0 / 14.0; 14];
        let sigma = SigmaZ::new(
            PoolHessian::unweighted(&xo, &ho),
            PoolHessian::weighted(&xu, &hu, z),
        );
        let dense = sigma.to_dense();
        let v: Vec<f64> = (0..6).map(|j| (j as f64 - 2.5) * 0.4).collect();
        let mut fast = vec![0.0; 6];
        sigma.apply(&v, &mut fast);
        let slow = dense.matvec(&v);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn block_jacobi_preconditioner_is_exact_on_block_diagonal_operator() {
        let (x, h) = test_pool(30, 4, 3, 9);
        let op = PoolHessian::unweighted(&x, &h);
        let bd = op.block_diagonal();
        let prec = BlockJacobi::new(&bd).unwrap();
        // Applying the preconditioner to B(Σ)v must recover v.
        let v: Vec<f64> = (0..8).map(|j| (j as f64 * 0.9).cos()).collect();
        let bv = bd.matvec(&v);
        let mut z = vec![0.0; 8];
        Preconditioner::apply(&prec, &bv, &mut z);
        for (a, b) in z.iter().zip(v.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        let v = stack(&m);
        let back = unstack(&v, 3, 2);
        assert_eq!(m, back);
    }

    #[test]
    fn hutchinson_gradients_match_per_point_bilinear_forms() {
        let (x, h) = test_pool(9, 4, 3, 10);
        let ehat = 4 * 2;
        let s = 3;
        let v = Matrix::from_fn(ehat, s, |i, j| ((i * 5 + j * 11) % 7) as f64 - 3.0);
        let w = Matrix::from_fn(ehat, s, |i, j| ((i * 3 + j * 13) % 5) as f64 - 2.0);
        let g = hutchinson_gradients(&x, &h, &v, &w);
        for i in 0..9 {
            let mut expect = 0.0;
            for j in 0..s {
                expect += bilinear_form(x.row(i), h.row(i), &v.col(j), &w.col(j));
            }
            expect /= s as f64;
            assert!(
                (g[i] - expect).abs() < 1e-10,
                "point {i}: {} vs {expect}",
                g[i]
            );
        }
    }

    #[test]
    fn to_wide_layout() {
        // ê = d·c with d=2, c=2; probe panel with s=2 columns.
        let panel = Matrix::from_fn(4, 2, |i, j| (10 * j + i) as f64);
        let wide = to_wide(&panel, 2, 2);
        assert_eq!(wide.shape(), (2, 4));
        // wide[(p, j*c+k)] = panel[(k*d+p, j)]
        assert_eq!(wide[(0, 0)], 0.0); // j=0,k=0,p=0
        assert_eq!(wide[(1, 1)], 3.0); // j=0,k=1,p=1
        assert_eq!(wide[(0, 2)], 10.0); // j=1,k=0,p=0
        assert_eq!(wide[(1, 3)], 13.0); // j=1,k=1,p=1
    }
}
