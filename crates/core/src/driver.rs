//! Multi-round active-learning experiment driver.
//!
//! Implements the evaluation loop of §IV-A: starting from the initial
//! labeled set, each round (i) trains the logistic-regression classifier on
//! everything labeled so far, (ii) records pool accuracy (on `X_u`) and
//! evaluation accuracy, (iii) asks the strategy for `b` new points, and
//! (iv) buys their labels from the oracle. The per-round accuracy series is
//! exactly what Figs. 2–3 plot against "Number of Labeled Samples".

use firal_comm::{CommScalar, CommStats};
use firal_data::Dataset;
use firal_linalg::Scalar;
use firal_logreg::{LogisticRegression, TrainConfig};

use crate::problem::SelectionProblem;
use crate::strategies::{strategy_by_name, SelectError, Strategy};

/// One round's record.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Labeled-set size when the classifier was trained.
    pub num_labeled: usize,
    /// Accuracy on the unlabeled pool (paper: "pool accuracy").
    pub pool_accuracy: f64,
    /// Accuracy on the evaluation set.
    pub eval_accuracy: f64,
    /// Class-balanced evaluation accuracy (Fig. 3(B)).
    pub balanced_eval_accuracy: f64,
    /// Seconds spent in the selection call this round (0 for the final
    /// evaluation-only record).
    pub selection_seconds: f64,
    /// Collective calls/bytes/time the selection issued this round (zeros
    /// for strategies that never touch a communicator, and for the final
    /// evaluation-only record).
    pub selection_comm: CommStats,
}

/// Full experiment outcome.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Strategy name.
    pub strategy: String,
    /// Records per round, including a final train/eval after the last batch.
    pub rounds: Vec<RoundRecord>,
    /// All pool indices bought, in acquisition order.
    pub acquired: Vec<usize>,
}

impl ExperimentResult {
    /// Final evaluation accuracy (convenience).
    pub fn final_eval_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.eval_accuracy)
    }

    /// Final pool accuracy (convenience).
    pub fn final_pool_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.pool_accuracy)
    }
}

/// Run `rounds` rounds of batch active learning with batch size `budget`.
///
/// `seed` controls the stochastic strategies (and is varied across the
/// paper's 10 Random/K-Means trials). The classifier is retrained from
/// scratch each round with fixed hyperparameters, matching the paper
/// ("we keep the parameters fixed during active learning").
pub fn run_experiment<T: Scalar, S: Strategy<T> + ?Sized>(
    dataset: &Dataset<T>,
    strategy: &S,
    rounds: usize,
    budget: usize,
    seed: u64,
    train_config: &TrainConfig<T>,
) -> Result<ExperimentResult, SelectError> {
    let mut acquired: Vec<usize> = Vec::new();
    let mut records = Vec::with_capacity(rounds + 1);

    for round in 0..=rounds {
        // Train on X_o ∪ acquired.
        let (feats, labels) = dataset.labeled_union(&acquired);
        let model = LogisticRegression::fit(&feats, &labels, dataset.num_classes, train_config)
            .expect("classifier training failed");

        let pool_accuracy = model.accuracy(&dataset.pool_features, &dataset.pool_labels);
        let eval_accuracy = model.accuracy(&dataset.eval_features, &dataset.eval_labels);
        let balanced_eval_accuracy =
            model.balanced_accuracy(&dataset.eval_features, &dataset.eval_labels);

        let mut selection_seconds = 0.0;
        let mut selection_comm = CommStats::default();
        if round < rounds {
            // Build the selection problem on the not-yet-acquired pool.
            let remaining: Vec<usize> = (0..dataset.pool_size())
                .filter(|i| !acquired.contains(i))
                .collect();
            let sub_x = {
                let d = dataset.dim();
                let mut m = firal_linalg::Matrix::zeros(remaining.len(), d);
                for (row, &i) in remaining.iter().enumerate() {
                    m.row_mut(row).copy_from_slice(dataset.pool_features.row(i));
                }
                m
            };
            let problem = SelectionProblem::new(
                sub_x.clone(),
                model.class_probs_cm1(&sub_x),
                feats.clone(),
                model.class_probs_cm1(&feats),
                dataset.num_classes,
            );
            let t0 = std::time::Instant::now();
            let run =
                strategy.select_with_stats(&problem, budget, seed.wrapping_add(round as u64))?;
            selection_seconds = t0.elapsed().as_secs_f64();
            selection_comm = run.comm;
            // Map back to original pool indices.
            acquired.extend(run.selected.into_iter().map(|i| remaining[i]));
        }

        records.push(RoundRecord {
            num_labeled: labels.len(),
            pool_accuracy,
            eval_accuracy,
            balanced_eval_accuracy,
            selection_seconds,
            selection_comm,
        });
    }

    Ok(ExperimentResult {
        strategy: strategy.name().to_string(),
        rounds: records,
        acquired,
    })
}

/// [`run_experiment`] with the strategy resolved from the registry
/// ([`crate::strategies::strategy_by_name`], default configuration) — the
/// entry point the benches and CLI harnesses drive by name. Fails with
/// [`SelectError::UnknownStrategy`] for unregistered names.
pub fn run_experiment_named<T: CommScalar>(
    dataset: &Dataset<T>,
    strategy: &str,
    rounds: usize,
    budget: usize,
    seed: u64,
    train_config: &TrainConfig<T>,
) -> Result<ExperimentResult, SelectError> {
    let resolved = strategy_by_name::<T>(strategy).ok_or_else(|| SelectError::UnknownStrategy {
        name: strategy.to_string(),
    })?;
    run_experiment(
        dataset,
        resolved.as_ref(),
        rounds,
        budget,
        seed,
        train_config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{ApproxFiral, RandomStrategy};

    fn tiny_dataset(seed: u64) -> Dataset<f64> {
        firal_data::SyntheticConfig::new(3, 5)
            .with_pool_size(90)
            .with_initial_per_class(1)
            .with_eval_size(60)
            .with_separation(3.0)
            .with_seed(seed)
            .generate()
    }

    #[test]
    fn experiment_produces_rounds_plus_final() {
        let ds = tiny_dataset(1);
        let res = run_experiment(&ds, &RandomStrategy, 3, 5, 0, &TrainConfig::default()).unwrap();
        assert_eq!(res.rounds.len(), 4);
        assert_eq!(res.acquired.len(), 15);
        // Labeled count grows by the budget each round.
        assert_eq!(res.rounds[0].num_labeled, 3);
        assert_eq!(res.rounds[1].num_labeled, 8);
        assert_eq!(res.rounds[3].num_labeled, 18);
        // No index acquired twice.
        let mut sorted = res.acquired.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }

    #[test]
    fn active_learning_improves_accuracy() {
        let ds = tiny_dataset(2);
        let res = run_experiment(
            &ds,
            &ApproxFiral::default(),
            3,
            6,
            0,
            &TrainConfig::default(),
        )
        .unwrap();
        let first = res.rounds.first().unwrap().eval_accuracy;
        let last = res.final_eval_accuracy();
        assert!(
            last >= first,
            "accuracy should not degrade with more labels: {first} → {last}"
        );
    }

    #[test]
    fn named_experiment_resolves_registry_and_rejects_unknown() {
        let ds = tiny_dataset(4);
        let named = run_experiment_named(&ds, "random", 2, 4, 3, &TrainConfig::default()).unwrap();
        let direct =
            run_experiment(&ds, &RandomStrategy, 2, 4, 3, &TrainConfig::default()).unwrap();
        assert_eq!(named.acquired, direct.acquired);
        assert_eq!(named.strategy, "Random");
        let err = run_experiment_named(&ds, "nope", 2, 4, 3, &TrainConfig::default());
        assert!(matches!(err, Err(SelectError::UnknownStrategy { .. })));
    }

    #[test]
    fn comm_backed_strategies_populate_round_comm_stats() {
        let ds = tiny_dataset(5);
        let res =
            run_experiment_named(&ds, "bayes-batch", 2, 4, 0, &TrainConfig::default()).unwrap();
        // Selection rounds record collective traffic; the final
        // evaluation-only record stays zero.
        for r in &res.rounds[..2] {
            assert!(r.selection_comm.total_calls() > 0);
            assert!(r.selection_seconds > 0.0);
        }
        assert_eq!(res.rounds[2].selection_comm.total_calls(), 0);
        assert_eq!(res.rounds[2].selection_seconds, 0.0);
    }

    #[test]
    fn accuracies_are_probabilities() {
        let ds = tiny_dataset(3);
        let res = run_experiment(&ds, &RandomStrategy, 2, 4, 7, &TrainConfig::default()).unwrap();
        for r in &res.rounds {
            assert!((0.0..=1.0).contains(&r.pool_accuracy));
            assert!((0.0..=1.0).contains(&r.eval_accuracy));
            assert!((0.0..=1.0).contains(&r.balanced_eval_accuracy));
        }
    }
}
