//! The communicator-generic execution layer.
//!
//! RELAX (Algorithm 2) and ROUND (Algorithm 3) are written **once** here,
//! against the [`firal_comm::Communicator`] collectives. The paper's central
//! structural claim — Approx-FIRAL is *one* algorithm whose collectives
//! degenerate to no-ops at `p = 1` — is reflected directly in the code:
//!
//! * the serial solvers ([`crate::relax::fast_relax`],
//!   [`crate::round::diag_round`]) are thin wrappers instantiating this
//!   layer over [`firal_comm::SelfComm`] with the trivial shard
//!   (`offset = 0`, `local_n = n`);
//! * the SPMD entry points ([`crate::parallel`]) instantiate the same code
//!   over a real rank group — [`firal_comm::ThreadComm`] OS threads in one
//!   process, or [`firal_comm::SocketComm`] OS *processes* on a localhost
//!   TCP mesh (launched by `spmd_launch` in `firal-bench`, joined via
//!   `SocketComm::from_env`). All backends implement the identical
//!   rank-ordered deterministic reduction contract, so results are
//!   interchangeable down to the bit for f64.
//!
//! Collective placement follows §III-C operation-for-operation:
//!
//! * RELAX: the probe panel is **Bcast** from rank 0; `B(Σ_z)` partial
//!   block sums and the two-GEMM matvec partial results are **Allreduce**d
//!   (the matvec reduction lives in
//!   [`firal_solvers::AllreduceOperator`], so the CG solver itself is
//!   communicator-agnostic); gradients are purely local; the mirror-descent
//!   normalizer is a scalar Allreduce;
//! * ROUND: the Eq. 17 argmax is an **Allreduce (MAXLOC)**; the winning
//!   point's `(x, h)` is **Bcast** from its owner; the per-block
//!   eigenvalue solves are distributed over ranks and **Allgather**ed.
//!
//! An [`Executor`] owns the run-wide context: the communicator endpoint,
//! this rank's shard geometry, probe-RNG seeding, the [`PhaseTimer`] phase
//! breakdown, and per-run [`CommStats`] deltas.
//!
//! On top of the rank × thread tiers sits the **η-group tier**
//! ([`EtaGroupGeometry`], `p = p_shard × p_eta`): the §IV-A η grid — an
//! embarrassingly parallel sweep of independent ROUND runs — distributes
//! over sub-communicator groups carved out with
//! [`firal_comm::Communicator::split`]. Each group holds the full
//! `p_shard`-way pool partition, sweeps a contiguous slice of the grid via
//! [`Executor::select_eta_grouped`], and a single cross-group MAXLOC picks
//! the winning η — bitwise identical to the sequential sweep at every
//! layout (see `crate::parallel::parallel_approx_firal_grouped` for the
//! full-pipeline entry point).

use firal_comm::{
    comm_catch, shard_range, CommError, CommScalar, CommStats, Communicator, ReduceOp, SelfComm,
};
use firal_linalg::{eigvalsh, BlockDiag, Cholesky, Matrix, Scalar};
use firal_solvers::{
    cg_solve_panel, lanczos_spectrum, rademacher_panel, AllreduceOperator, CgConfig, CgTelemetry,
    LinearOperator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{FiralConfig, RelaxConfig};
use crate::exact::RelaxTelemetry;
use crate::hessian::{hutchinson_gradients, BlockJacobi, PoolHessian};
use crate::problem::SelectionProblem;
use crate::round::{pad_spectrum, round_scores, EigSolver, WhitenedBlock};
use crate::timing::PhaseTimer;

/// One rank's shard of a selection problem.
///
/// The pool (`x_i`, `h_i`) is sharded evenly across ranks
/// ([`firal_comm::shard_range`]); the labeled panel and all `O(cd²)`
/// block-diagonal state are replicated. On a single rank the shard is
/// trivial: `offset = 0`, `local_n = n` (see [`ShardedProblem::replicate`]).
#[derive(Debug, Clone)]
pub struct ShardedProblem<T: Scalar> {
    /// Local pool features (`n_local × d`).
    pub local_x: Matrix<T>,
    /// Local pool probabilities (`n_local × (c-1)`).
    pub local_h: Matrix<T>,
    /// Replicated labeled features.
    pub labeled_x: Matrix<T>,
    /// Replicated labeled probabilities.
    pub labeled_h: Matrix<T>,
    /// Class count.
    pub num_classes: usize,
    /// Global pool size `n`.
    pub global_n: usize,
    /// Global index of the first local point.
    pub offset: usize,
}

impl<T: Scalar> ShardedProblem<T> {
    /// Take this rank's shard of a full problem (the §III-C "evenly
    /// distributing h_i and x_i of n points" decomposition).
    pub fn shard(problem: &SelectionProblem<T>, rank: usize, size: usize) -> Self {
        if size == 1 {
            return Self::replicate(problem);
        }
        let n = problem.pool_size();
        let d = problem.dim();
        let cm1 = problem.nblocks();
        let range = shard_range(n, rank, size);
        let mut local_x = Matrix::zeros(range.len(), d);
        let mut local_h = Matrix::zeros(range.len(), cm1);
        for (row, i) in range.clone().enumerate() {
            local_x.row_mut(row).copy_from_slice(problem.pool_x.row(i));
            local_h.row_mut(row).copy_from_slice(problem.pool_h.row(i));
        }
        Self {
            local_x,
            local_h,
            labeled_x: problem.labeled_x.clone(),
            labeled_h: problem.labeled_h.clone(),
            num_classes: problem.num_classes,
            global_n: n,
            offset: range.start,
        }
    }

    /// The trivial single-rank shard: the whole pool, `offset = 0`.
    pub fn replicate(problem: &SelectionProblem<T>) -> Self {
        Self {
            local_x: problem.pool_x.clone(),
            local_h: problem.pool_h.clone(),
            labeled_x: problem.labeled_x.clone(),
            labeled_h: problem.labeled_h.clone(),
            num_classes: problem.num_classes,
            global_n: problem.pool_size(),
            offset: 0,
        }
    }

    /// Local pool size.
    pub fn local_n(&self) -> usize {
        self.local_x.rows()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.local_x.cols()
    }

    /// Block count `c-1`.
    pub fn nblocks(&self) -> usize {
        self.num_classes - 1
    }

    /// Stacked order `ê`.
    pub fn ehat(&self) -> usize {
        self.dim() * self.nblocks()
    }
}

/// Per-rank result of a RELAX solve through the unified layer.
#[derive(Debug, Clone)]
pub struct RelaxRun<T> {
    /// This rank's shard of `z⋄ = b·z` (aligned with its local pool rows).
    pub z_local: Vec<T>,
    /// The full `z⋄` assembled with Allgather (identical on all ranks).
    pub z_diamond: Vec<T>,
    /// Objective history / convergence record (identical on all ranks).
    pub telemetry: RelaxTelemetry<T>,
    /// CG telemetry of the first mirror-descent iteration's first solve
    /// (the residual curves plotted in Fig. 1).
    pub first_cg: Vec<CgTelemetry<T>>,
    /// Phase timings (precond / cg / matvec / gradient / other).
    pub timer: PhaseTimer,
    /// Total CG iterations across the whole solve.
    pub total_cg_iters: usize,
    /// Collective calls/bytes/time this rank spent inside the solve.
    pub comm_stats: CommStats,
}

/// Per-rank result of a ROUND solve through the unified layer.
#[derive(Debug, Clone)]
pub struct RoundRun<T> {
    /// Selected **global** pool indices, identical on all ranks.
    pub selected: Vec<usize>,
    /// η used.
    pub eta: T,
    /// The §IV-A grid criterion `min_k λ_min((H)_k)` of the selection —
    /// `Some` when this run came from an η grid sweep
    /// ([`Executor::select_eta`] / [`Executor::select_eta_grouped`]),
    /// `None` for a fixed-η [`Executor::round`].
    pub criterion: Option<T>,
    /// Phase timings (objective / eig / other).
    pub timer: PhaseTimer,
    /// Collective calls/bytes/time this rank spent inside the solve.
    pub comm_stats: CommStats,
}

/// The 2D rank geometry `p = p_shard × p_eta` that distributes the §IV-A η
/// grid over sub-communicator groups.
///
/// World rank `r` maps to **η-group** `r / p_shard` and **shard rank**
/// `r % p_shard`: ranks split into `p_eta` contiguous groups, each group
/// holding the full `p_shard`-way pool partition and sweeping its
/// contiguous slice of the η grid ([`firal_comm::shard_range`] over grid
/// indices). Contiguous-by-group assignment is load-bearing: the final
/// cross-group `allreduce_maxloc` breaks criterion ties towards the lower
/// group, which is then guaranteed to own the lower grid index — exactly
/// the first-maximum rule of the sequential sweep, so the grouped winner is
/// bitwise the sequential winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtaGroupGeometry {
    /// Ranks per η group (the intra-group pool-shard dimension).
    pub p_shard: usize,
    /// Number of η groups (the grid dimension).
    pub p_eta: usize,
}

impl EtaGroupGeometry {
    /// Geometry for a world of `world_size` ranks split into `eta_groups`
    /// groups (`eta_groups = 0` is accepted as "off" and means one group).
    /// The world must factor exactly: `world_size = p_shard · p_eta`.
    pub fn new(world_size: usize, eta_groups: usize) -> Self {
        let p_eta = eta_groups.max(1);
        assert!(
            world_size.is_multiple_of(p_eta),
            "η-group geometry needs p_eta ({p_eta}) to divide the world size ({world_size})"
        );
        Self {
            p_shard: world_size / p_eta,
            p_eta,
        }
    }

    /// Total world size `p = p_shard · p_eta`.
    pub fn world_size(&self) -> usize {
        self.p_shard * self.p_eta
    }

    /// η group of a world rank (the `split` color of the group communicator).
    pub fn group_of(&self, world_rank: usize) -> usize {
        world_rank / self.p_shard
    }

    /// Shard rank of a world rank within its group (the `split` color of
    /// the cross-group communicator).
    pub fn shard_rank_of(&self, world_rank: usize) -> usize {
        world_rank % self.p_shard
    }

    /// The contiguous slice of grid indices owned by `group` (empty when
    /// there are more groups than grid points).
    pub fn grid_slice(&self, group: usize, grid_len: usize) -> std::ops::Range<usize> {
        shard_range(grid_len, group, self.p_eta)
    }
}

/// η-independent per-`z⋄` ROUND state: `B(H_o)`, the assembled `Σ⋄` block
/// diagonal (one Allreduce), its per-block Cholesky factors, and the
/// `g_ik` panel. [`Executor::select_eta`] builds this **once** and shares
/// it across every η grid re-run instead of reassembling (and
/// re-communicating) it per value.
///
/// Since the streaming layer landed this state is **persistent**: it is
/// keyed by a pool `version` and [`crate::stream::StreamingState`] advances
/// it incrementally under point add/remove/label mutations (rank-one
/// Cholesky up/downdates plus a delta-Allreduce of changed partial sums)
/// instead of rebuilding it per round. See ARCHITECTURE.md § "Streaming
/// round state" for the ownership and invalidation rules.
pub struct RoundState<T: Scalar> {
    /// Pool version this state reflects (0 for a one-shot build; the
    /// streaming layer bumps it once per committed update batch).
    pub(crate) version: u64,
    pub(crate) bho: BlockDiag<T>,
    pub(crate) sigma: BlockDiag<T>,
    pub(crate) sigma_chol: Vec<Cholesky<T>>,
    pub(crate) gik: Matrix<T>,
}

impl<T: Scalar> RoundState<T> {
    /// The pool version this state was built at / advanced to.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The assembled `Σ⋄` block diagonal.
    pub fn sigma(&self) -> &BlockDiag<T> {
        &self.sigma
    }

    /// The labeled-set Hessian block diagonal `B(H_o)`.
    pub fn bho(&self) -> &BlockDiag<T> {
        &self.bho
    }
}

/// One rank's execution context: communicator endpoint + shard geometry +
/// optional intra-rank kernel pool.
///
/// All of Approx-FIRAL routes through here; `p = 1` callers use
/// [`Executor::serial`] and the collectives reduce to no-ops. With
/// [`Executor::with_threads`] the rank owns a private kernel sub-pool and
/// the dense kernels fan out on it — the ranks × threads hybrid tier
/// mirroring the paper's GPU-per-rank layout. Kernel results are bitwise
/// independent of the thread count (see `firal_linalg::gemm`), so the
/// SPMD consistency guarantees are unaffected by the pool size.
pub struct Executor<'a, T: CommScalar> {
    comm: &'a dyn Communicator,
    shard: &'a ShardedProblem<T>,
    pool: Option<rayon::ThreadPool>,
}

impl<'a, T: CommScalar> Executor<'a, T> {
    /// Context for one rank of an SPMD group.
    pub fn new(comm: &'a dyn Communicator, shard: &'a ShardedProblem<T>) -> Self {
        assert!(
            shard.offset + shard.local_n() <= shard.global_n,
            "shard exceeds the global pool"
        );
        Self {
            comm,
            shard,
            pool: None,
        }
    }

    /// Give this rank its own kernel sub-pool of `threads` workers; the
    /// dense kernels inside every solve dispatched through this executor
    /// fan out on it. `0` removes the sub-pool (ambient pool applies).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = (threads > 0).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build the rank kernel pool")
        });
        self
    }

    /// Intra-rank kernel threads solves on this executor will use.
    pub fn threads(&self) -> usize {
        self.pool
            .as_ref()
            // lint: allow(thread-count) telemetry-only accessor: the value feeds logs and Fig. 5/7 table columns, never a kernel shape (chunking is shape-only)
            .map_or_else(rayon::current_num_threads, rayon::ThreadPool::threads)
    }

    /// Run `f` with this rank's sub-pool installed (no-op without one).
    /// Crate-visible so the distributed strategies scope their dense
    /// kernels on the same per-rank pool the solvers use.
    pub(crate) fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }

    /// Serial context: the single-rank instantiation over a caller-owned
    /// [`SelfComm`] and the trivial full shard.
    pub fn serial(comm: &'a SelfComm, shard: &'a ShardedProblem<T>) -> Self {
        Self::new(comm, shard)
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Group size `p`.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The underlying communicator endpoint.
    pub fn comm(&self) -> &dyn Communicator {
        self.comm
    }

    /// This rank's shard.
    pub fn shard(&self) -> &ShardedProblem<T> {
        self.shard
    }

    /// Snapshot of this rank's cumulative communication statistics.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }

    /// Rank owning global pool index `i` under the even decomposition.
    pub(crate) fn owner_of(&self, i: usize) -> usize {
        (0..self.size())
            .find(|&r| shard_range(self.shard.global_n, r, self.size()).contains(&i))
            .expect("global index outside the pool")
    }

    /// Replicate the `(x, h)` rows of global pool index `i` on every rank:
    /// the owner fills the payload from its shard and broadcasts (the same
    /// Line-11 pattern ROUND uses). Returns `(x_i, h_i)` with the owner's
    /// exact bits on every rank.
    pub(crate) fn bcast_pool_point(&self, i: usize) -> (Vec<T>, Vec<T>) {
        let shard = self.shard;
        let d = shard.dim();
        let cm1 = shard.nblocks();
        let mut payload = vec![T::ZERO; d + cm1];
        let owner = self.owner_of(i);
        if let Some(l) = i.checked_sub(shard.offset).filter(|&l| l < shard.local_n()) {
            payload[..d].copy_from_slice(shard.local_x.row(l));
            payload[d..].copy_from_slice(shard.local_h.row(l));
        }
        T::bcast(self.comm, &mut payload, owner);
        let h = payload.split_off(d);
        (payload, h)
    }

    /// Allreduce-sum a block diagonal in place (the §III-C partial-sum
    /// pattern for `B(Σ_z)` and `(Σ⋄)_k`).
    fn allreduce_block_diag(&self, bd: &mut BlockDiag<T>) {
        let d = bd.dim();
        let cm1 = bd.nblocks();
        let mut flat: Vec<T> = Vec::with_capacity(cm1 * d * d);
        for k in 0..cm1 {
            flat.extend_from_slice(bd.block(k).as_slice());
        }
        T::allreduce(self.comm, &mut flat, ReduceOp::Sum);
        for k in 0..cm1 {
            bd.block_mut(k)
                .as_mut_slice()
                .copy_from_slice(&flat[k * d * d..(k + 1) * d * d]);
        }
    }

    /// Scalar allreduce through the f64 wire format.
    pub(crate) fn allreduce_scalar(&self, value: T, op: ReduceOp) -> T {
        let mut buf = [value.to_f64()];
        self.comm.allreduce_f64(&mut buf, op);
        T::from_f64(buf[0])
    }

    /// Algorithm 2 (RELAX), communicator-generic.
    ///
    /// Per mirror-descent iteration: Bcast a fresh `ê × s` Rademacher panel
    /// from rank 0; build and factor the block-Jacobi preconditioner
    /// `B(Σ_z)⁻¹` from Allreduced partial block sums; run batched
    /// preconditioned CG `W ← Σ_z⁻¹V`, `W ← H_pW`, `W ← Σ_z⁻¹W` with the
    /// matvec Allreduce inside [`AllreduceOperator`]; take purely local
    /// Hutchinson gradients; and close with the entropic mirror-descent
    /// update (global max-|g| and normalizer are scalar Allreduces). The
    /// objective estimate and its 1e-4 relative stopping rule are evaluated
    /// from replicated panels, so every rank decides identically.
    pub fn relax(&self, budget: usize, config: &RelaxConfig<T>) -> RelaxRun<T> {
        self.install(|| self.relax_impl(budget, config))
    }

    fn relax_impl(&self, budget: usize, config: &RelaxConfig<T>) -> RelaxRun<T> {
        let shard = self.shard;
        let n = shard.global_n;
        let ehat = shard.ehat();
        let b = T::from_usize(budget);
        let stats0 = self.comm.stats();
        let mut timer = PhaseTimer::new();

        let mut z_local = vec![T::ONE / T::from_usize(n); shard.local_n()];
        let cg_cfg = CgConfig {
            rel_tol: config.cg_tol,
            max_iter: config.cg_max_iter,
        };

        // B(H_o) is weight-independent: build once outside the loop. The
        // unweighted pool/labeled operators are also loop-invariant.
        let ho = PoolHessian::unweighted(&shard.labeled_x, &shard.labeled_h);
        let bho = timer.time("precond", || ho.block_diagonal());
        let hp_local = PoolHessian::unweighted(&shard.local_x, &shard.local_h);
        let hp = AllreduceOperator::new(self.comm, &hp_local, None);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut telemetry = RelaxTelemetry {
            objective_history: Vec::new(),
            iterations: 0,
            converged: false,
        };
        let mut first_cg: Vec<CgTelemetry<T>> = Vec::new();
        let mut total_cg_iters = 0usize;

        for t in 1..=config.md.max_iters {
            telemetry.iterations = t;

            // Line 4: probe panel drawn on rank 0, Bcast to the group.
            let mut v: Matrix<T> = if self.rank() == 0 {
                rademacher_panel(ehat, config.probes, &mut rng)
            } else {
                Matrix::zeros(ehat, config.probes)
            };
            T::bcast(self.comm, v.as_mut_slice(), 0);

            // Gradients are evaluated at the feasible point b·z of Eq. 5 (z
            // itself stays on the unit simplex for the multiplicative
            // update).
            let zb_local: Vec<T> = z_local.iter().map(|&v| v * b).collect();
            let local_hz = PoolHessian::weighted(&shard.local_x, &shard.local_h, zb_local);
            let sigma = AllreduceOperator::new(self.comm, &local_hz, Some(&ho));

            // Line 5: B(Σ_z) = B(H_o) + allreduce(B(H_{b·z})_local),
            // factored per block on every rank.
            let prec = timer.time("precond", || {
                let mut bsz = local_hz.block_diagonal();
                self.allreduce_block_diag(&mut bsz);
                bsz.add_scaled(T::ONE, &bho);
                if config.ridge > T::ZERO {
                    BlockJacobi::new_with_ridge(&bsz, config.ridge)
                } else {
                    BlockJacobi::new(&bsz).or_else(|_| {
                        // Lazy ridge fallback for numerically semidefinite
                        // blocks.
                        BlockJacobi::new_with_ridge(&bsz, T::from_f64(1e-8))
                    })
                }
                .expect("preconditioner factorization failed")
            });

            // Line 6: W ← Σ_z⁻¹ V.
            let (w1, tel1) = timer.time("cg", || cg_solve_panel(&sigma, &prec, &v, &cg_cfg));
            total_cg_iters += tel1.iter().map(|t| t.iterations).sum::<usize>();
            if t == 1 {
                first_cg = tel1;
            }

            // Line 7: W ← H_p W (plus H_p·V for the objective estimate).
            let w2 = timer.time("matvec", || hp.apply_panel(&w1));
            let hpv = timer.time("matvec", || hp.apply_panel(&v));

            // Line 8: W ← Σ_z⁻¹ W.
            let (w3, tel2) = timer.time("cg", || cg_solve_panel(&sigma, &prec, &w2, &cg_cfg));
            total_cg_iters += tel2.iter().map(|t| t.iterations).sum::<usize>();

            // Line 9: local Hutchinson gradients (no communication).
            let g = timer.time("gradient", || {
                hutchinson_gradients(&shard.local_x, &shard.local_h, &v, &w3)
            });

            // Lines 10–11: multiplicative update + simplex normalization,
            // with a √t-decaying magnitude-normalized step. The max |g| and
            // the normalizer are the two scalar collectives of the step.
            timer.time("other", || {
                let mut local_max = T::ZERO;
                for &gi in &g {
                    local_max = local_max.maxv(gi.abs());
                }
                let max_abs = self.allreduce_scalar(local_max, ReduceOp::Max);
                let beta =
                    config.md.beta0 / T::from_usize(t).sqrt() / max_abs.maxv(T::MIN_POSITIVE);
                let mut local_sum = T::ZERO;
                for (zi, &gi) in z_local.iter_mut().zip(g.iter()) {
                    // Gradients enter negated: g here is +(1/s)Σvᵀ H w, and
                    // the objective gradient is its negation, so ascent on g.
                    *zi *= (beta * gi).exp();
                    local_sum += *zi;
                }
                let total = self.allreduce_scalar(local_sum, ReduceOp::Sum);
                for zi in z_local.iter_mut() {
                    *zi /= total;
                }
            });

            // Objective estimate f ≈ (1/s) Σ_j (Σ⁻¹v_j)ᵀ(H_p v_j) from
            // replicated panels (identical on all ranks) and the stopping
            // rule on its relative change.
            let f_est = timer.time("other", || {
                let mut acc = T::ZERO;
                for j in 0..config.probes {
                    let mut col = T::ZERO;
                    for i in 0..ehat {
                        col += w1[(i, j)] * hpv[(i, j)];
                    }
                    acc += col;
                }
                acc / T::from_usize(config.probes)
            });
            if let Some(&prev) = telemetry.objective_history.last() {
                if ((f_est - prev) / prev.abs().maxv(T::MIN_POSITIVE)).abs() < config.md.obj_rel_tol
                {
                    telemetry.objective_history.push(f_est);
                    telemetry.converged = true;
                    break;
                }
            }
            telemetry.objective_history.push(f_est);
        }

        // Assemble the global z⋄ (Allgatherv in rank order = global order).
        let z_local: Vec<T> = z_local.iter().map(|&v| v * b).collect();
        let z_diamond = T::allgatherv(self.comm, &z_local);
        assert_eq!(z_diamond.len(), n, "allgathered z has wrong length");

        RelaxRun {
            z_local,
            z_diamond,
            telemetry,
            first_cg,
            timer,
            total_cg_iters,
            comm_stats: self.comm.stats().since(&stats0),
        }
    }

    /// Algorithm 3 (ROUND), communicator-generic.
    ///
    /// `z_local` is this rank's shard of `z⋄` (budget-scaled). Per
    /// selection: local Eq. 17 scores and a MAXLOC argmax; the owner Bcasts
    /// the winning `(x, h)`; the replicated FTRL state updates locally; the
    /// per-block generalized eigensolves (Line 9) are distributed over
    /// ranks and Allgathered before the `ν` bisection.
    pub fn round(&self, z_local: &[T], budget: usize, eta: T, eig: EigSolver) -> RoundRun<T> {
        self.install(|| {
            let stats0 = self.comm.stats();
            let mut timer = PhaseTimer::new();
            let scratch = self.round_scratch(z_local, &mut timer);
            self.round_body(&scratch, budget, eta, eig, timer, stats0)
        })
    }

    /// Build the η-independent ROUND state (Line 3 of Algorithm 3 plus the
    /// `g_ik` panel) from scratch: one Allreduce, one Cholesky sweep.
    /// The returned state carries pool version 0; streaming callers that
    /// maintain it incrementally should stamp their own version via
    /// `crate::stream`. This is the **from-scratch rebuild** the streaming
    /// refactor boundary is defined against: at a refactor the incremental
    /// state must equal this build bitwise.
    pub fn build_round_state(&self, z_local: &[T]) -> RoundState<T> {
        let mut timer = PhaseTimer::new();
        self.install(|| self.round_scratch(z_local, &mut timer))
    }

    /// Run the FTRL selection loop of Algorithm 3 over a prebuilt (possibly
    /// incrementally maintained) [`RoundState`] — the persistent-state
    /// counterpart of [`Executor::round`]. The state must describe the same
    /// pool this executor's shard was materialized from.
    pub fn round_with_state(
        &self,
        state: &RoundState<T>,
        budget: usize,
        eta: T,
        eig: EigSolver,
    ) -> RoundRun<T> {
        self.install(|| {
            let stats0 = self.comm.stats();
            let timer = PhaseTimer::new();
            self.round_body(state, budget, eta, eig, timer, stats0)
        })
    }

    fn round_scratch(&self, z_local: &[T], timer: &mut PhaseTimer) -> RoundState<T> {
        let shard = self.shard;
        let n_local = shard.local_n();
        let cm1 = shard.nblocks();
        assert_eq!(z_local.len(), n_local, "z shard length mismatch");

        // Line 3: block diagonals of Σ⋄ = H_o + H_{z⋄} (Allreduce of local
        // partial sums) and of H_o.
        let bho = PoolHessian::unweighted(&shard.labeled_x, &shard.labeled_h).block_diagonal();
        let mut sigma = timer.time("other", || {
            let mut local = PoolHessian::weighted(&shard.local_x, &shard.local_h, z_local.to_vec())
                .block_diagonal();
            self.allreduce_block_diag(&mut local);
            local
        });
        sigma.add_scaled(T::ONE, &bho);

        // Cholesky of each (Σ⋄)_k — reused for every generalized eigensolve.
        let sigma_chol: Vec<Cholesky<T>> = timer.time("other", || {
            sigma
                .blocks()
                .iter()
                .map(|blk| {
                    Cholesky::new(blk).or_else(|_| Cholesky::new_with_ridge(blk, T::from_f64(1e-8)))
                })
                .collect::<firal_linalg::Result<Vec<_>>>()
                .expect("Σ⋄ blocks must be SPD")
        });

        // g_ik = h_ik (1 - h_ik) for every local pool point.
        let gik = {
            let mut g = Matrix::zeros(n_local, cm1);
            for i in 0..n_local {
                let hrow = shard.local_h.row(i);
                let grow = g.row_mut(i);
                for k in 0..cm1 {
                    grow[k] = hrow[k] * (T::ONE - hrow[k]);
                }
            }
            g
        };

        RoundState {
            version: 0,
            bho,
            sigma,
            sigma_chol,
            gik,
        }
    }

    /// The FTRL selection loop of Algorithm 3 for one η, over prebuilt
    /// η-independent scratch.
    fn round_body(
        &self,
        scratch: &RoundState<T>,
        budget: usize,
        eta: T,
        eig: EigSolver,
        mut timer: PhaseTimer,
        stats0: CommStats,
    ) -> RoundRun<T> {
        let shard = self.shard;
        let d = shard.dim();
        let cm1 = shard.nblocks();
        let ehat = shard.ehat();
        let n_local = shard.local_n();
        assert!(
            budget <= shard.global_n,
            "cannot select more points than the pool holds"
        );
        let binv = T::ONE / T::from_usize(budget);
        let RoundState {
            bho,
            sigma,
            sigma_chol,
            gik,
            ..
        } = scratch;

        // Line 4: B₁ = √ê·Σ⋄ + (η/b)·H_o, inverted per block (replicated).
        let mut b_inv = timer.time("other", || {
            let mut b1 = sigma.clone();
            let sqrt_ehat = T::from_usize(ehat).sqrt();
            for k in 0..cm1 {
                b1.block_mut(k).scale_inplace(sqrt_ehat);
                b1.block_mut(k).add_scaled(eta * binv, bho.block(k));
            }
            b1.inverse().expect("B₁ blocks must be SPD")
        });

        // Line 5: (H)_k ← 0.
        let mut h_acc = BlockDiag::<T>::zeros(cm1, d);
        let mut taken_local = vec![false; n_local];
        let mut selected = Vec::with_capacity(budget);

        // Which blocks this rank owns for the distributed eigensolve.
        let my_blocks = shard_range(cm1, self.rank(), self.size());

        for _t in 0..budget {
            // Line 7: local Eq. 17 scores; global argmax via MAXLOC.
            let scores = timer.time("objective", || {
                round_scores(&shard.local_x, gik, &b_inv, sigma, eta)
            });
            let mut local_best = (f64::NEG_INFINITY, u64::MAX);
            for (i, &s) in scores.iter().enumerate() {
                if !taken_local[i] {
                    let sv = s.to_f64();
                    if sv > local_best.0 {
                        local_best = (sv, (shard.offset + i) as u64);
                    }
                }
            }
            let (_, global_idx) = self.comm.allreduce_maxloc(local_best.0, local_best.1);
            assert!(global_idx != u64::MAX, "ROUND ran out of candidates");
            let it = global_idx as usize;
            selected.push(it);

            // The owner broadcasts x_{i_t}, h_{i_t} (the Line-11 Bcast of
            // §III-C).
            if let Some(l) = it.checked_sub(shard.offset).filter(|&l| l < n_local) {
                taken_local[l] = true;
            }
            let (xit, hit) = self.bcast_pool_point(it);

            // Line 8: (H)_k += (1/b)(H_o)_k + g_{i_t,k} x_{i_t}x_{i_t}ᵀ
            // (replicated state, local arithmetic).
            timer.time("other", || {
                h_acc.add_scaled(binv, bho);
                let gammas: Vec<T> = hit.iter().map(|&h| h * (T::ONE - h)).collect();
                h_acc.rank_one_update(&gammas, &xit);
            });

            // Line 9: eigenvalues of (H̃)_k = (Σ⋄)_k^{-1/2}(H)_k(Σ⋄)_k^{-1/2}
            // via the cached Cholesky factors; each rank does its block
            // share, then Allgather.
            let lambdas = timer.time("eig", || {
                let mut local_vals = Vec::with_capacity(my_blocks.len() * d);
                for k in my_blocks.clone() {
                    let ch = &sigma_chol[k];
                    match eig {
                        EigSolver::Exact => {
                            // C = L⁻¹ (H)_k L⁻ᵀ: forward-substitute columns,
                            // then rows.
                            let hk = h_acc.block(k);
                            let mut y = Matrix::zeros(d, d);
                            for j in 0..d {
                                let col = ch.solve_l(&hk.col(j));
                                y.set_col(j, &col);
                            }
                            let mut c = Matrix::zeros(d, d);
                            for j in 0..d {
                                let col = ch.solve_l(y.row(j));
                                c.set_col(j, &col);
                            }
                            c.symmetrize();
                            local_vals.extend(eigvalsh(&c).expect("generalized eigensolve"));
                        }
                        EigSolver::Lanczos { steps } => {
                            let op = WhitenedBlock {
                                h: h_acc.block(k),
                                chol: ch,
                            };
                            // Seeded per (block, step) so the Ritz values are
                            // identical no matter which rank owns the block.
                            let mut rng =
                                StdRng::seed_from_u64((k as u64) << 32 | selected.len() as u64);
                            let ritz = lanczos_spectrum(&op, steps.min(d), &mut rng);
                            local_vals.extend(pad_spectrum(&ritz.ritz_values, d));
                        }
                    }
                }
                T::allgatherv(self.comm, &local_vals)
            });

            // Line 10: ν_{t+1} from Σ_{k,j}(ν + ηλ)^{-2} = 1.
            let nu = timer.time("other", || firal_solvers::solve_nu(&lambdas, eta));

            // Line 11: B_{t+1} = ν·Σ⋄ + η·(H) + (η/b)·H_o, inverted per
            // block. With an approximate (Lanczos) spectrum — or in f32 —
            // ν can come out too small for positive definiteness; back off
            // by growing ν geometrically: a conservative FTRL regularizer
            // is always admissible.
            b_inv = timer.time("other", || {
                let mut nu_eff = nu;
                let floor = T::from_usize(ehat).sqrt() * T::from_f64(1e-3);
                for _attempt in 0..60 {
                    let mut bt = sigma.clone();
                    for k in 0..cm1 {
                        bt.block_mut(k).scale_inplace(nu_eff);
                        bt.block_mut(k).add_scaled(eta, h_acc.block(k));
                        bt.block_mut(k).add_scaled(eta * binv, bho.block(k));
                    }
                    if let Ok(inv) = bt.inverse() {
                        return inv;
                    }
                    // Clamp to the floor, then keep doubling: the growth must
                    // engage even when the bisection result was at/below the
                    // floor, or the retry loop would spin on one value.
                    nu_eff = nu_eff.maxv(floor) * T::TWO;
                }
                panic!("B_{{t+1}} never became SPD (η = {eta}, ν = {nu})");
            });
        }

        RoundRun {
            selected,
            eta,
            criterion: None,
            timer,
            comm_stats: self.comm.stats().since(&stats0),
        }
    }

    /// The §IV-A η-selection criterion over a **global** selection:
    /// `min_k λ_min(Σ_{i∈sel} g_ik x_ix_iᵀ)`, assembled from local partial
    /// block sums with one Allreduce.
    pub fn selection_min_eig(&self, selected: &[usize]) -> T {
        let shard = self.shard;
        let d = shard.dim();
        let cm1 = shard.nblocks();
        let mut acc = BlockDiag::<T>::zeros(cm1, d);
        for &i in selected {
            if let Some(l) = i.checked_sub(shard.offset).filter(|&l| l < shard.local_n()) {
                let hrow = shard.local_h.row(l);
                let gammas: Vec<T> = (0..cm1).map(|k| hrow[k] * (T::ONE - hrow[k])).collect();
                acc.rank_one_update(&gammas, shard.local_x.row(l));
            }
        }
        self.allreduce_block_diag(&mut acc);
        self.install(|| acc.min_block_eigenvalue())
            .expect("eigenvalues of selection")
    }

    /// Run ROUND for every η in `grid · √ê` and keep the run maximizing
    /// [`Executor::selection_min_eig`] — "we execute the ROUND step with
    /// different η values, and then select the one that maximizes
    /// min_k λ_min(H)_k" (§IV-A). Every rank evaluates the identical
    /// criterion, so the grid choice is rank-invariant.
    pub fn select_eta(&self, z_local: &[T], budget: usize, grid: &[T]) -> RoundRun<T> {
        assert!(!grid.is_empty(), "η grid must be non-empty");
        self.install(|| {
            let scale = T::from_usize(self.shard.ehat()).sqrt();
            // The η-independent state (Σ⋄ Allreduce + Cholesky sweep + g_ik)
            // is built once and shared by every grid re-run; only the FTRL
            // loop itself runs per η. Each run still starts from a copy of
            // the scratch phase timings and merges the scratch comm delta,
            // so the returned run's accounting matches what a direct
            // [`Executor::round`] at the same η would report.
            let stats0 = self.comm.stats();
            let mut scratch_timer = PhaseTimer::new();
            let scratch = self.round_scratch(z_local, &mut scratch_timer);
            let scratch_stats = self.comm.stats().since(&stats0);
            let mut best: Option<(T, RoundRun<T>)> = None;
            for &mult in grid {
                let mut out = self.round_body(
                    &scratch,
                    budget,
                    mult * scale,
                    EigSolver::Exact,
                    scratch_timer.clone(),
                    self.comm.stats(),
                );
                out.comm_stats.merge(&scratch_stats);
                let crit = self.selection_min_eig(&out.selected);
                out.criterion = Some(crit);
                match &best {
                    Some((c, _)) if *c >= crit => {}
                    _ => best = Some((crit, out)),
                }
            }
            best.expect("grid produced no result").1
        })
    }

    /// [`Executor::select_eta`] distributed over η-group sub-communicators
    /// — the 2D tier `p = p_shard × p_eta` of [`EtaGroupGeometry`].
    ///
    /// `self` must be the **group-level** executor: its communicator is one
    /// η group of `p_shard` ranks (a [`firal_comm::Communicator::split`] by
    /// group color) and its shard is this rank's `p_shard`-way slice of the
    /// pool. `cross` is the perpendicular sub-communicator connecting the
    /// same shard rank across all `p_eta` groups (split by shard-rank
    /// color, keyed by world rank, so `cross.rank()` *is* the group id and
    /// cross ranks are ordered by group).
    ///
    /// The sweep:
    /// 1. **setup** — the group-0 copy of this shard's `z⋄` slice is
    ///    broadcast along `cross`, pinning every group to identical bits
    ///    (in-memory harnesses replicate `z⋄` anyway; a distributed-memory
    ///    caller gets the §III-C data distribution for free);
    /// 2. each group builds the η-independent ROUND scratch (Σ⋄ Allreduce +
    ///    Cholesky sweep + `g_ik`) **once** and
    ///    runs the FTRL loop only for its contiguous grid slice
    ///    ([`EtaGroupGeometry::grid_slice`]), scoring each selection with
    ///    [`Executor::selection_min_eig`] over the group communicator;
    /// 3. a single cross-group [`allreduce_maxloc`] with the grid index as
    ///    payload picks the winner. Ties go to the lower cross rank =
    ///    lower group = lower grid index — the sequential sweep's
    ///    first-maximum rule — so for any fixed `p_shard` the returned
    ///    (η★, selection, criterion) is **bitwise identical** to the
    ///    `p_eta = 1` sequential sweep on the same group size;
    /// 4. the winning group broadcasts its selection along `cross`; η★ is
    ///    recomputed locally from the winning index (same `T` arithmetic on
    ///    every rank, hence bit-identical).
    ///
    /// Unlike [`Executor::select_eta`] — which reports the *winning run's*
    /// timer/comm accounting — the returned `timer` and `comm_stats` cover
    /// **this rank's whole share of the sweep** (scratch, every slice η,
    /// criterion reductions, and the cross-group collectives): that is the
    /// quantity the scaling harnesses bill per group.
    ///
    /// [`allreduce_maxloc`]: firal_comm::Communicator::allreduce_maxloc
    pub fn select_eta_grouped(
        &self,
        z_local: &[T],
        budget: usize,
        grid: &[T],
        cross: &dyn Communicator,
    ) -> RoundRun<T> {
        assert!(!grid.is_empty(), "η grid must be non-empty");
        let geometry = EtaGroupGeometry {
            p_shard: self.size(),
            p_eta: cross.size(),
        };
        self.install(|| {
            let scale = T::from_usize(self.shard.ehat()).sqrt();
            let group_stats0 = self.comm.stats();
            let cross_stats0 = cross.stats();
            let mut sweep_timer = PhaseTimer::new();

            // Step 1: pin every group to the group-0 bits of this shard's
            // z⋄ slice.
            let mut z_group = z_local.to_vec();
            T::bcast(cross, &mut z_group, 0);

            // Step 2: η-independent scratch once, then only this group's
            // contiguous slice of the grid.
            let scratch = self.round_scratch(&z_group, &mut sweep_timer);
            let my_group = cross.rank();
            let mut best: Option<(T, usize, RoundRun<T>)> = None;
            for gi in geometry.grid_slice(my_group, grid.len()) {
                let out = self.round_body(
                    &scratch,
                    budget,
                    grid[gi] * scale,
                    EigSolver::Exact,
                    PhaseTimer::new(),
                    self.comm.stats(),
                );
                sweep_timer.merge(&out.timer);
                let crit = self.selection_min_eig(&out.selected);
                match &best {
                    Some((c, _, _)) if *c >= crit => {}
                    _ => best = Some((crit, gi, out)),
                }
            }

            // Step 3: cross-group argmax. A group with an empty slice
            // contributes the -inf sentinel; group 0's slice is never empty
            // for a non-empty grid, so a real winner always exists.
            let (local_val, local_idx) = match &best {
                Some((crit, gi, _)) => (crit.to_f64(), *gi as u64),
                None => (f64::NEG_INFINITY, u64::MAX),
            };
            let (best_val, best_idx) = cross.allreduce_maxloc(local_val, local_idx);
            assert!(best_idx != u64::MAX, "η grid produced no result");
            let win = best_idx as usize;
            let winner_group = (0..geometry.p_eta)
                .find(|&g| geometry.grid_slice(g, grid.len()).contains(&win))
                .expect("winning grid index outside every group's slice");

            // Step 4: the winner's selection travels along the cross
            // communicator (pool indices are exact in the f64 lane); η★ and
            // the criterion are reconstructed locally / from the MAXLOC.
            let mut sel_buf = vec![0.0f64; budget];
            if my_group == winner_group {
                let (_, _, run) = best.as_ref().expect("winner group lost its run");
                for (slot, &idx) in sel_buf.iter_mut().zip(&run.selected) {
                    *slot = idx as f64;
                }
            }
            cross.bcast_f64(&mut sel_buf, winner_group);
            let selected: Vec<usize> = sel_buf.iter().map(|&v| v as usize).collect();

            let mut comm_stats = self.comm.stats().since(&group_stats0);
            comm_stats.merge(&cross.stats().since(&cross_stats0));
            RoundRun {
                selected,
                eta: grid[win] * scale,
                criterion: Some(T::from_f64(best_val)),
                timer: sweep_timer,
                comm_stats,
            }
        })
    }

    /// Full Approx-FIRAL (RELAX then ROUND) under one configuration,
    /// including the η grid rule when `config.round.eta` is `None`.
    ///
    /// `config.threads > 0` gives the whole run a private kernel pool of
    /// that size (unless the executor already owns one via
    /// [`Executor::with_threads`], which takes precedence).
    pub fn approx_firal(
        &self,
        budget: usize,
        config: &FiralConfig<T>,
    ) -> (RelaxRun<T>, RoundRun<T>) {
        if self.pool.is_none() && config.threads > 0 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(config.threads)
                .build()
                .expect("failed to build the kernel pool");
            pool.install(|| self.approx_firal_impl(budget, config))
        } else {
            self.install(|| self.approx_firal_impl(budget, config))
        }
    }

    fn approx_firal_impl(
        &self,
        budget: usize,
        config: &FiralConfig<T>,
    ) -> (RelaxRun<T>, RoundRun<T>) {
        let relax = self.relax(budget, &config.relax);
        let round = match config.round.eta {
            Some(eta) => self.round(&relax.z_local, budget, eta, EigSolver::Exact),
            None => self.select_eta(&relax.z_local, budget, &config.round.eta_grid),
        };
        (relax, round)
    }

    // --- Fallible entry points -------------------------------------------
    //
    // The solver bodies call the infallible collectives: a communication
    // failure inside (peer death, deadline, remote abort — see
    // `firal_comm::error`) raises through the stack, and these wrappers
    // recover it as a structured `CommError` at the phase boundary — the
    // granularity at which a driver can actually react (rerun the phase on
    // a reformed group, or report and exit). The fault-free path through a
    // `try_` wrapper is the plain method; results are bitwise identical.

    /// Fallible [`Executor::relax`]: a communication failure inside the
    /// RELAX loop surfaces as the originating [`CommError`] instead of
    /// aborting the process.
    pub fn try_relax(
        &self,
        budget: usize,
        config: &RelaxConfig<T>,
    ) -> Result<RelaxRun<T>, CommError> {
        comm_catch(|| self.relax(budget, config))
    }

    /// Fallible [`Executor::round`].
    pub fn try_round(
        &self,
        z_local: &[T],
        budget: usize,
        eta: T,
        eig: EigSolver,
    ) -> Result<RoundRun<T>, CommError> {
        comm_catch(|| self.round(z_local, budget, eta, eig))
    }

    /// Fallible [`Executor::select_eta`].
    pub fn try_select_eta(
        &self,
        z_local: &[T],
        budget: usize,
        grid: &[T],
    ) -> Result<RoundRun<T>, CommError> {
        comm_catch(|| self.select_eta(z_local, budget, grid))
    }

    /// Fallible [`Executor::select_eta_grouped`].
    pub fn try_select_eta_grouped(
        &self,
        z_local: &[T],
        budget: usize,
        grid: &[T],
        cross: &dyn Communicator,
    ) -> Result<RoundRun<T>, CommError> {
        comm_catch(|| self.select_eta_grouped(z_local, budget, grid, cross))
    }

    /// Fallible [`Executor::approx_firal`]: the full pipeline with
    /// communication failures recovered as [`CommError`] at the outermost
    /// boundary.
    pub fn try_approx_firal(
        &self,
        budget: usize,
        config: &FiralConfig<T>,
    ) -> Result<(RelaxRun<T>, RoundRun<T>), CommError> {
        comm_catch(|| self.approx_firal(budget, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firal_comm::launch;

    fn tiny_problem(seed: u64, n: usize, d: usize, c: usize) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(c, d)
            .with_pool_size(n)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            c,
        )
    }

    #[test]
    fn sharding_partitions_the_pool() {
        let p = tiny_problem(1, 25, 3, 3);
        let mut total = 0;
        for r in 0..4 {
            let s = ShardedProblem::shard(&p, r, 4);
            total += s.local_n();
            assert_eq!(s.global_n, 25);
            // Shard rows match the global panel.
            for i in 0..s.local_n() {
                assert_eq!(s.local_x.row(i), p.pool_x.row(s.offset + i));
            }
        }
        assert_eq!(total, 25);
    }

    #[test]
    fn replicate_is_the_trivial_shard() {
        let p = tiny_problem(2, 17, 3, 3);
        let s = ShardedProblem::replicate(&p);
        assert_eq!(s.offset, 0);
        assert_eq!(s.local_n(), 17);
        assert_eq!(s.global_n, 17);
        let via_shard = ShardedProblem::shard(&p, 0, 1);
        assert_eq!(via_shard.local_x, s.local_x);
        assert_eq!(via_shard.offset, 0);
    }

    #[test]
    fn single_rank_executor_matches_serial_wrapper() {
        let p = tiny_problem(2, 40, 3, 3);
        let cfg = RelaxConfig {
            seed: 9,
            ..Default::default()
        };
        let serial = crate::relax::fast_relax(&p, 5, &cfg);
        let comm = SelfComm::new();
        let shard = ShardedProblem::replicate(&p);
        let run = Executor::serial(&comm, &shard).relax(5, &cfg);
        assert_eq!(run.z_diamond.len(), 40);
        // Bitwise identical: the wrapper IS this code path.
        assert_eq!(run.z_diamond, serial.z_diamond);
        assert_eq!(
            run.telemetry.objective_history,
            serial.telemetry.objective_history
        );
    }

    #[test]
    fn multi_rank_relax_agrees_with_serial() {
        let p = tiny_problem(3, 30, 3, 3);
        let cfg = RelaxConfig {
            seed: 4,
            cg_tol: 1e-8,
            probes: 20,
            ..Default::default()
        };
        let serial = crate::relax::fast_relax(&p, 4, &cfg);
        for procs in [2usize, 3] {
            let problem = p.clone();
            let config = cfg;
            let results = launch(procs, move |comm| {
                let shard = ShardedProblem::shard(&problem, comm.rank(), comm.size());
                Executor::new(comm, &shard).relax(4, &config).z_diamond
            });
            for z in &results {
                assert_eq!(z.len(), 30);
                for (a, b) in z.iter().zip(serial.z_diamond.iter()) {
                    assert!(
                        (a - b).abs() < 1e-6 * b.abs().max(1e-3),
                        "p={procs}: {a} vs serial {b}"
                    );
                }
            }
            // All ranks assembled the identical z.
            for z in &results[1..] {
                assert_eq!(z, &results[0]);
            }
        }
    }

    #[test]
    fn multi_rank_round_matches_serial_selection() {
        let p = tiny_problem(5, 24, 3, 3);
        let b = 4;
        let z: Vec<f64> = (0..24).map(|i| (1.0 + (i % 5) as f64) / 24.0).collect();
        let eta = 8.0 * (p.ehat() as f64).sqrt();
        let serial = crate::round::diag_round(&p, &z, b, eta);
        for procs in [1usize, 2, 3] {
            let problem = p.clone();
            let zc = z.clone();
            let results = launch(procs, move |comm| {
                let shard = ShardedProblem::shard(&problem, comm.rank(), comm.size());
                let local_z = zc[shard.offset..shard.offset + shard.local_n()].to_vec();
                Executor::new(comm, &shard)
                    .round(&local_z, b, eta, EigSolver::Exact)
                    .selected
            });
            for sel in &results {
                assert_eq!(
                    sel, &serial.selected,
                    "p={procs} selection diverged from serial"
                );
            }
        }
    }

    #[test]
    fn full_pipeline_selects_valid_batch_and_reports_comm() {
        let p = tiny_problem(6, 36, 4, 3);
        let eta = 8.0 * (p.ehat() as f64).sqrt();
        let results = launch(3, move |comm| {
            let shard = ShardedProblem::shard(&p, comm.rank(), comm.size());
            let exec = Executor::new(comm, &shard);
            let relax = exec.relax(6, &RelaxConfig::default());
            let round = exec.round(&relax.z_local, 6, eta, EigSolver::Exact);
            (round.selected, relax.comm_stats, round.comm_stats)
        });
        for (sel, relax_stats, round_stats) in &results {
            assert_eq!(sel.len(), 6);
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "duplicates: {sel:?}");
            // The per-run comm deltas must cover the §III-C collectives.
            assert!(relax_stats.allreduce_calls > 0);
            assert!(relax_stats.bcast_calls > 0);
            assert!(round_stats.allgather_calls > 0);
            assert!(round_stats.total_bytes() > 0);
        }
        // Rank-independent result.
        for (sel, _, _) in &results[1..] {
            assert_eq!(sel, &results[0].0);
        }
    }

    #[test]
    fn eta_group_geometry_maps_ranks_and_slices() {
        let g = EtaGroupGeometry::new(6, 3);
        assert_eq!((g.p_shard, g.p_eta), (2, 3));
        assert_eq!(g.world_size(), 6);
        let coords: Vec<(usize, usize)> = (0..6)
            .map(|r| (g.group_of(r), g.shard_rank_of(r)))
            .collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
        // Contiguous grid slices covering the grid in group order.
        assert_eq!(g.grid_slice(0, 4), 0..2);
        assert_eq!(g.grid_slice(1, 4), 2..3);
        assert_eq!(g.grid_slice(2, 4), 3..4);
        // More groups than grid points: trailing groups go idle.
        assert_eq!(g.grid_slice(2, 2), 2..2);
        // eta_groups = 0 means "off" = one group.
        assert_eq!(EtaGroupGeometry::new(4, 0).p_eta, 1);
    }

    #[test]
    #[should_panic(expected = "divide the world size")]
    fn eta_group_geometry_rejects_nondivisible_world() {
        let _ = EtaGroupGeometry::new(5, 2);
    }

    #[test]
    fn grouped_eta_sweep_matches_sequential_sweep_bitwise() {
        // (p_shard, p_eta) = (1, 2): two singleton groups each sweep half
        // the grid; the result must be bit-for-bit the serial sweep —
        // winner index, η★, selection, and criterion.
        let p = tiny_problem(8, 28, 3, 3);
        let b = 4;
        let z: Vec<f64> = (0..28).map(|i| (1.0 + (i % 3) as f64) / 28.0).collect();
        let grid = [2.0, 8.0];

        let comm = SelfComm::new();
        let shard = ShardedProblem::replicate(&p);
        let serial = Executor::serial(&comm, &shard).select_eta(&z, b, &grid);

        let results = launch(2, |comm| {
            let geo = EtaGroupGeometry::new(comm.size(), 2);
            let group_comm = comm.split(geo.group_of(comm.rank()), comm.rank());
            let cross_comm = comm.split(geo.shard_rank_of(comm.rank()), comm.rank());
            let shard = ShardedProblem::shard(&p, geo.shard_rank_of(comm.rank()), geo.p_shard);
            let exec = Executor::new(&*group_comm, &shard);
            let out = exec.select_eta_grouped(&z, b, &grid, &*cross_comm);
            (
                out.selected,
                out.eta.to_bits(),
                out.criterion.unwrap().to_bits(),
            )
        });
        for (sel, eta_bits, crit_bits) in &results {
            assert_eq!(sel, &serial.selected);
            assert_eq!(*eta_bits, serial.eta.to_bits());
            assert_eq!(*crit_bits, serial.criterion.unwrap().to_bits());
        }
    }

    #[test]
    fn grouped_sweep_with_more_groups_than_grid_points_leaves_groups_idle() {
        // 3 groups, 2 grid values: group 2's slice is empty and it must
        // still agree on the winner through the sentinel MAXLOC path.
        let p = tiny_problem(9, 24, 3, 3);
        let b = 3;
        let z: Vec<f64> = vec![b as f64 / 24.0; 24];
        let grid = [2.0, 8.0];

        let comm = SelfComm::new();
        let shard = ShardedProblem::replicate(&p);
        let serial = Executor::serial(&comm, &shard).select_eta(&z, b, &grid);

        let results = launch(3, |comm| {
            let geo = EtaGroupGeometry::new(comm.size(), 3);
            let group_comm = comm.split(geo.group_of(comm.rank()), comm.rank());
            let cross_comm = comm.split(geo.shard_rank_of(comm.rank()), comm.rank());
            let shard = ShardedProblem::shard(&p, geo.shard_rank_of(comm.rank()), geo.p_shard);
            let exec = Executor::new(&*group_comm, &shard);
            let out = exec.select_eta_grouped(&z, b, &grid, &*cross_comm);
            (out.selected, out.eta.to_bits())
        });
        for (sel, eta_bits) in &results {
            assert_eq!(sel, &serial.selected);
            assert_eq!(*eta_bits, serial.eta.to_bits());
        }
    }

    #[test]
    fn distributed_eta_grid_matches_serial_grid() {
        let p = tiny_problem(7, 30, 3, 3);
        let b = 4;
        let z: Vec<f64> = vec![b as f64 / 30.0; 30];
        let serial = crate::round::select_eta(&p, &z, b, &[2.0, 8.0]);
        let results = launch(2, move |comm| {
            let shard = ShardedProblem::shard(&p, comm.rank(), comm.size());
            let local_z = z[shard.offset..shard.offset + shard.local_n()].to_vec();
            let exec = Executor::new(comm, &shard);
            let out = exec.select_eta(&local_z, b, &[2.0, 8.0]);
            (out.selected, out.eta)
        });
        for (sel, eta) in &results {
            assert_eq!(sel, &serial.selected);
            assert_eq!(*eta, serial.eta);
        }
    }
}
