//! Fisher-information-ratio objective evaluation.
//!
//! `f(z) = Tr[(H_o + H_z)^{-1} H_p]` (Eq. 4–5). The dense evaluator is used
//! by the exact algorithm, by the Fig. 4 sensitivity study and by tests;
//! the estimated evaluator is the Hutchinson/CG version the fast RELAX
//! solver tracks for its stopping rule.

use firal_linalg::{Cholesky, Matrix, Scalar};
use firal_solvers::{cg_solve_panel, CgConfig, LinearOperator};

use crate::hessian::{BlockJacobi, PoolHessian, SigmaZ};
use crate::problem::SelectionProblem;

/// Exact objective `Tr(Σ_z^{-1} H_p)` with `Σ_z = H_o + H_z` assembled
/// densely. `z` are the (already `b`-scaled) pool weights. `O(ê³ + nê²)`.
pub fn exact_objective<T: Scalar>(problem: &SelectionProblem<T>, z: &[T]) -> T {
    assert_eq!(z.len(), problem.pool_size(), "weight length mismatch");
    let ho = PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h);
    let hz = PoolHessian::weighted(&problem.pool_x, &problem.pool_h, z.to_vec());
    let hp = PoolHessian::unweighted(&problem.pool_x, &problem.pool_h);

    let mut sigma = ho.to_dense();
    sigma.add_scaled(T::ONE, &hz.to_dense());
    let hp_dense = hp.to_dense();

    let ch = Cholesky::new(&sigma).expect("Σ_z must be SPD (is the pool degenerate?)");
    // Tr(Σ⁻¹ H_p) = Σ_j (Σ⁻¹ H_p)_{jj}: solve column-by-column.
    let solved = ch.solve_mat(&hp_dense);
    solved.trace()
}

/// Objective for a *discrete* selection: `f(selection) = Tr[(H_o +
/// Σ_{i∈sel} H_i)^{-1} H_p]` — the quantity Theorem 1 bounds.
///
/// Panics when `Σ` is singular, which happens whenever
/// `(|X_o| + b)(c-1) < ê` (too few points to span the space; the theory
/// regime requires `b ≫ ê`). Use [`selection_objective_ridged`] for small
/// selections.
pub fn selection_objective<T: Scalar>(problem: &SelectionProblem<T>, selected: &[usize]) -> T {
    let mut z = vec![T::ZERO; problem.pool_size()];
    for &i in selected {
        z[i] += T::ONE;
    }
    exact_objective(problem, &z)
}

/// Ridge-regularized selection objective `Tr[(H_o + H_sel + δI)^{-1} H_p]`
/// — well-defined for any batch size; used to compare selections whose
/// information matrices are rank-deficient.
pub fn selection_objective_ridged<T: Scalar>(
    problem: &SelectionProblem<T>,
    selected: &[usize],
    ridge: T,
) -> T {
    let mut z = vec![T::ZERO; problem.pool_size()];
    for &i in selected {
        z[i] += T::ONE;
    }
    let ho = PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h);
    let hz = PoolHessian::weighted(&problem.pool_x, &problem.pool_h, z);
    let hp = PoolHessian::unweighted(&problem.pool_x, &problem.pool_h);
    let mut sigma = ho.to_dense();
    sigma.add_scaled(T::ONE, &hz.to_dense());
    sigma.add_diag(ridge);
    let ch = Cholesky::new(&sigma).expect("ridged Σ must be SPD");
    ch.solve_mat(&hp.to_dense()).trace()
}

/// Hutchinson estimate of the objective:
/// `f ≈ (1/s) Σ_j v_jᵀ Σ_z^{-1} (H_p v_j)` with preconditioned-CG solves.
/// This is the cheap tracker the fast RELAX stopping rule uses.
pub fn estimated_objective<T: Scalar>(
    problem: &SelectionProblem<T>,
    z: &[T],
    probes: &Matrix<T>,
    cg_tol: T,
) -> T {
    let ho = PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h);
    let hz = PoolHessian::weighted(&problem.pool_x, &problem.pool_h, z.to_vec());
    let hp = PoolHessian::unweighted(&problem.pool_x, &problem.pool_h);
    let sigma = SigmaZ::new(ho, hz);

    let prec = BlockJacobi::new_with_ridge(&sigma.block_diagonal(), T::from_f64(1e-10))
        .expect("preconditioner blocks must factor");

    // Y = H_p V, then W = Σ^{-1} Y; f ≈ mean_j v_jᵀ w_j … careful: we want
    // vᵀΣ⁻¹(H_p v) = (Σ⁻¹v)ᵀ(H_p v); either grouping works because Σ is
    // symmetric. Solving against H_pV keeps one CG panel solve.
    let y = hp.apply_panel(probes);
    let (w, _tel) = cg_solve_panel(&sigma, &prec, &y, &CgConfig::with_tol(cg_tol));

    let s = probes.cols();
    let mut acc = T::ZERO;
    for j in 0..s {
        let mut colsum = T::ZERO;
        for i in 0..probes.rows() {
            colsum += probes[(i, j)] * w[(i, j)];
        }
        acc += colsum;
    }
    acc / T::from_usize(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firal_solvers::rademacher_panel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_problem(seed: u64) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(3, 4)
            .with_pool_size(40)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            3,
        )
    }

    #[test]
    fn objective_decreases_with_more_weight() {
        let p = tiny_problem(1);
        let n = p.pool_size();
        let f_small = exact_objective(&p, &vec![0.1; n]);
        let f_large = exact_objective(&p, &vec![10.0; n]);
        assert!(
            f_large < f_small,
            "more information must lower the ratio: {f_large} !< {f_small}"
        );
        assert!(f_small.is_finite() && f_large > 0.0);
    }

    #[test]
    fn selection_objective_matches_indicator_weights() {
        let p = tiny_problem(2);
        let sel = vec![0usize, 3, 7];
        let f1 = selection_objective(&p, &sel);
        let mut z = vec![0.0; p.pool_size()];
        for &i in &sel {
            z[i] = 1.0;
        }
        let f2 = exact_objective(&p, &z);
        assert!((f1 - f2).abs() < 1e-9);
    }

    #[test]
    fn estimate_tracks_exact_objective() {
        let p = tiny_problem(3);
        let n = p.pool_size();
        let z = vec![3.0 / n as f64; n];
        let exact = exact_objective(&p, &z);
        let mut rng = StdRng::seed_from_u64(7);
        // Plenty of probes and a tight CG for a statistical comparison.
        let probes = rademacher_panel(p.ehat(), 200, &mut rng);
        let est = estimated_objective(&p, &z, &probes, 1e-8);
        let rel = ((est - exact) / exact).abs();
        assert!(
            rel < 0.15,
            "estimate {est} vs exact {exact} (rel err {rel})"
        );
    }
}
