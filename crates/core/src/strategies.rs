//! Batch selection strategies behind two traits.
//!
//! [`Strategy`] is the serial surface the §IV-A experiment driver consumes:
//! `select(problem, budget, seed)` on a full [`SelectionProblem`].
//! [`DistStrategy`] is the *executor-generic* surface underneath it: the
//! strategy sees one rank's [`Executor`] (communicator endpoint + shard
//! geometry) and every cross-point reduction goes through the §III-C
//! collectives — so each strategy is written **once** and runs unchanged on
//! `SelfComm`, `ThreadComm` threads, or `SocketComm` processes, exactly
//! like the RELAX/ROUND solvers. Every serial `Strategy::select` here is
//! the `p = 1` instantiation of its own `select_dist` (a [`SelfComm`]
//! executor over the trivial shard); there is no second copy of any
//! selection rule.
//!
//! The roster (paper §IV-A plus the two PAPERS.md extensions):
//!
//! * [`RandomStrategy`], [`KMeansStrategy`], [`EntropyStrategy`] — the
//!   paper's baselines (setup items (1)–(3));
//! * [`ExactFiral`] (Algorithm 1) and [`ApproxFiral`] (Algorithms 2+3) —
//!   the NeurIPS'23 baseline and the paper's contribution;
//! * [`UpalStrategy`] — UPAL-style unbiased pool sampling with
//!   importance-weighted re-fits (Ganti & Gray, arXiv:1111.1784);
//! * [`BayesBatchStrategy`] — Bayesian batch selection as sparse subset
//!   approximation via Frank–Wolfe over Fisher embeddings (Pinsler et
//!   al., arXiv:1908.02144).
//!
//! [`strategy_by_name`] is the registry the drivers, benches and
//! `spmd_launch` workloads resolve CLI names through.
//!
//! ## Determinism contract
//!
//! At a fixed rank count every strategy is bitwise identical across the
//! three comm backends (the rank-ordered reduction contract of
//! `firal_comm`) and across kernel-thread counts (the `firal_linalg::gemm`
//! chunking contract). Across rank counts, Random / K-Means / Entropy /
//! Exact-FIRAL / UPAL make every decision from *replicated* state
//! (Allgather in rank order = global order, owner-Bcast exact rows), so
//! their selections are bitwise rank-count-invariant by construction;
//! Approx-FIRAL and BayesBatch reduce partial sums across shard
//! boundaries (Allreduce), so their floats can drift in the last ulp
//! across `p` while the selected indices stay identical — the same
//! contract the Approx-FIRAL consistency matrix has always pinned
//! (`tests/parallel_consistency.rs`).

use firal_cluster::{kmeans, nearest_to_centroids, KMeansConfig};
use firal_comm::{comm_catch, CommError, CommScalar, CommStats, Communicator, ReduceOp, SelfComm};
use firal_linalg::{gemm, gemm_at_b, Matrix, Scalar};
use firal_logreg::LogisticRegression;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{BayesBatchConfig, FiralConfig, MirrorDescentConfig, RoundConfig, UpalConfig};
use crate::exact::{exact_relax, exact_round};
use crate::exec::{Executor, ShardedProblem};
use crate::problem::SelectionProblem;

/// Selection failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// Budget exceeds pool size.
    BudgetTooLarge {
        /// Requested batch size.
        budget: usize,
        /// Available pool points.
        pool: usize,
    },
    /// The pool has no points to select from.
    EmptyPool,
    /// A batch of zero points was requested.
    ZeroBudget,
    /// No registered strategy answers to this name (see [`STRATEGY_NAMES`]).
    UnknownStrategy {
        /// The name that failed to resolve.
        name: String,
    },
    /// A collective failed underneath the selection (peer death, deadline,
    /// remote abort — see [`firal_comm::CommError`]). Surfaced by
    /// [`DistStrategy::try_select_dist`]; the infallible path aborts
    /// instead.
    Comm(CommError),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::BudgetTooLarge { budget, pool } => {
                write!(f, "budget {budget} exceeds pool size {pool}")
            }
            SelectError::EmptyPool => write!(f, "selection pool is empty"),
            SelectError::ZeroBudget => write!(f, "selection budget is zero"),
            SelectError::UnknownStrategy { name } => {
                write!(f, "unknown strategy {name:?} (known: {STRATEGY_NAMES:?})")
            }
            SelectError::Comm(e) => write!(f, "selection failed on a collective: {e}"),
        }
    }
}

impl std::error::Error for SelectError {}

/// A selection plus its execution metadata: what the strategy picked and
/// the collective traffic it issued doing so.
#[derive(Debug, Clone)]
pub struct SelectionRun {
    /// The selected pool indices (global, in acquisition order).
    pub selected: Vec<usize>,
    /// Collective calls/bytes/time the selection spent (zero for
    /// strategies that never touch a communicator).
    pub comm: CommStats,
}

/// A batch active-learning selection strategy (serial surface).
///
/// `problem` carries the pool/labeled panels and classifier probabilities;
/// `budget` is the batch size `b`; `seed` controls any internal randomness
/// (Random, K-Means and UPAL are the stochastic strategies the paper-style
/// harnesses average over trials; the others are deterministic given the
/// probe seed).
pub trait Strategy<T: Scalar> {
    /// Human-readable name (matches the paper's figure legends).
    fn name(&self) -> &'static str;

    /// Pick `budget` distinct pool indices.
    fn select(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError>;

    /// [`Strategy::select`] plus the communication record of the run.
    /// Strategies routed through the execution layer report real
    /// [`CommStats`]; the default reports zeros.
    fn select_with_stats(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        seed: u64,
    ) -> Result<SelectionRun, SelectError> {
        Ok(SelectionRun {
            selected: self.select(problem, budget, seed)?,
            comm: CommStats::default(),
        })
    }
}

/// A strategy written against the execution layer: one rank's view.
///
/// The contract mirrors [`Executor`]: every rank of the executor's
/// communicator calls `select_dist` collectively, each holding its
/// [`ShardedProblem`] slice (the `firal_comm::shard_range` decomposition of
/// one common problem — the trivial full shard at `p = 1`), and every rank
/// returns the identical `budget` **global** pool indices. All cross-point
/// reductions go through the communicator's collectives, so one
/// implementation serves the serial path and every SPMD backend.
pub trait DistStrategy<T: CommScalar>: Strategy<T> {
    /// Pick `budget` distinct global pool indices on one rank of an SPMD
    /// group (identical result on every rank).
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError>;

    /// [`DistStrategy::select_dist`] with communication failures recovered
    /// as [`SelectError::Comm`] instead of aborting the rank: the whole
    /// selection runs under a [`firal_comm::comm_catch`] boundary, so a
    /// peer death, deadline, or remote abort inside any collective comes
    /// back as a value a driver can react to. Fault-free selections are
    /// bitwise identical to the plain path.
    fn try_select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        match comm_catch(|| self.select_dist(exec, budget, seed)) {
            Ok(inner) => inner,
            Err(e) => Err(SelectError::Comm(e)),
        }
    }
}

/// Run a [`DistStrategy`] serially: the `p = 1` instantiation over a fresh
/// [`SelfComm`] and the trivial full shard, returning the selection plus
/// the (no-op but counted) collective record. Every serial
/// [`Strategy::select`] in this module routes through here.
pub fn select_serial<T: CommScalar, S: DistStrategy<T> + ?Sized>(
    strategy: &S,
    problem: &SelectionProblem<T>,
    budget: usize,
    seed: u64,
) -> Result<SelectionRun, SelectError> {
    let comm = SelfComm::new();
    let shard = ShardedProblem::replicate(problem);
    let exec = Executor::serial(&comm, &shard);
    let selected = strategy.select_dist(&exec, budget, seed)?;
    Ok(SelectionRun {
        selected,
        comm: comm.stats(),
    })
}

/// Implement the serial [`Strategy`] surface as the `p = 1` instantiation
/// of the type's [`DistStrategy`] implementation.
macro_rules! strategy_via_dist {
    ($ty:ty, $name:literal) => {
        impl<T: CommScalar> Strategy<T> for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn select(
                &self,
                problem: &SelectionProblem<T>,
                budget: usize,
                seed: u64,
            ) -> Result<Vec<usize>, SelectError> {
                Ok(self.select_with_stats(problem, budget, seed)?.selected)
            }

            fn select_with_stats(
                &self,
                problem: &SelectionProblem<T>,
                budget: usize,
                seed: u64,
            ) -> Result<SelectionRun, SelectError> {
                select_serial(self, problem, budget, seed)
            }
        }
    };
}

/// Shared budget validation: empty pools and zero budgets get their
/// dedicated errors instead of panicking (or looping) downstream.
fn check_budget(pool: usize, budget: usize) -> Result<(), SelectError> {
    if pool == 0 {
        return Err(SelectError::EmptyPool);
    }
    if budget == 0 {
        return Err(SelectError::ZeroBudget);
    }
    if budget > pool {
        return Err(SelectError::BudgetTooLarge { budget, pool });
    }
    Ok(())
}

/// Allgather a rank-local row panel into the replicated global panel
/// (rank order = global row order, so the result's bits equal the serial
/// panel's).
fn gather_rows<T: CommScalar>(
    exec: &Executor<'_, T>,
    local: &Matrix<T>,
    global_rows: usize,
) -> Matrix<T> {
    let data = T::allgatherv(exec.comm(), local.as_slice());
    assert_eq!(
        data.len(),
        global_rows * local.cols(),
        "gathered panel has wrong size"
    );
    Matrix::from_vec(global_rows, local.cols(), data)
}

/// Replicate the full selection problem on every rank (pool panels
/// Allgathered in global order; the labeled panels are replicated by
/// construction). The escape hatch for strategies whose inner solver is
/// inherently centralized (K-Means clustering, Exact-FIRAL's dense `ê × ê`
/// algebra) — communication `O(n(d + c))`, identical bits to the serial
/// problem.
fn replicate_problem<T: CommScalar>(exec: &Executor<'_, T>) -> SelectionProblem<T> {
    let shard = exec.shard();
    SelectionProblem::new(
        gather_rows(exec, &shard.local_x, shard.global_n),
        gather_rows(exec, &shard.local_h, shard.global_n),
        shard.labeled_x.clone(),
        shard.labeled_h.clone(),
        shard.num_classes,
    )
}

/// First-maximum pseudo-label of a truncated probability row: the argmax
/// over the full `c`-class distribution reconstructed from the `c-1` panel
/// (reference-class probability `1 - Σ h`), ties to the lower class index.
fn pseudo_label<T: Scalar>(h: &[T]) -> usize {
    let mut rest = T::ONE;
    let mut best = (T::from_f64(-1.0), 0usize);
    for (k, &p) in h.iter().enumerate() {
        rest -= p;
        if p > best.0 {
            best = (p, k);
        }
    }
    if rest > best.0 {
        best.1 = h.len();
    }
    best.1
}

/// Uniform random selection without replacement.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomStrategy;

strategy_via_dist!(RandomStrategy, "Random");

impl<T: CommScalar> DistStrategy<T> for RandomStrategy {
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        let n = exec.shard().global_n;
        check_budget(n, budget)?;
        // Purely replicated arithmetic: the draw depends only on (n, seed),
        // so every rank computes the identical batch with no communication.
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates over an index array.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..budget {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(budget);
        Ok(idx)
    }
}

/// K-Means baseline: cluster the pool with `k = b`, label the point nearest
/// each centroid (§IV-A setup item (2)).
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeansStrategy;

strategy_via_dist!(KMeansStrategy, "K-Means");

impl<T: CommScalar> DistStrategy<T> for KMeansStrategy {
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        let shard = exec.shard();
        check_budget(shard.global_n, budget)?;
        // Lloyd iterations are centroid-global: replicate the pool
        // (Allgather in global order) and run the seeded clustering
        // identically on every rank.
        let full_x = gather_rows(exec, &shard.local_x, shard.global_n);
        let result = exec.install(|| kmeans(&full_x, &KMeansConfig::new(budget).with_seed(seed)));
        Ok(nearest_to_centroids(&full_x, &result.centroids))
    }
}

/// Entropy baseline: top-`b` pool points by prediction entropy
/// (`-Σ_c p log p`, §IV-A setup item (3)).
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyStrategy;

impl EntropyStrategy {
    /// Entropy over the full `c`-class distribution reconstructed from the
    /// `c-1` panel (the reference-class probability is `1 - Σ h`).
    fn entropies<T: Scalar>(pool_h: &Matrix<T>) -> Vec<T> {
        (0..pool_h.rows())
            .map(|i| {
                let row = pool_h.row(i);
                let mut rest = T::ONE;
                let mut h = T::ZERO;
                for &p in row {
                    if p > T::ZERO {
                        h -= p * p.ln();
                    }
                    rest -= p;
                }
                if rest > T::ZERO {
                    h -= rest * rest.ln();
                }
                h
            })
            .collect()
    }
}

strategy_via_dist!(EntropyStrategy, "Entropy");

impl<T: CommScalar> DistStrategy<T> for EntropyStrategy {
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        _seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        let shard = exec.shard();
        check_budget(shard.global_n, budget)?;
        // Per-point entropies are row-local (shard-independent bits); the
        // Allgather assembles them in global order, so the replicated
        // top-b sort matches the serial one exactly.
        let local = Self::entropies(&shard.local_h);
        let ent = T::allgatherv(exec.comm(), &local);
        let mut idx: Vec<usize> = (0..shard.global_n).collect();
        idx.sort_by(|&a, &b| {
            ent[b]
                .partial_cmp(&ent[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(budget);
        Ok(idx)
    }
}

/// Exact-FIRAL (Algorithm 1) as a strategy. Small problems only (dense
/// `ê × ê` algebra; the distributed path replicates the pool).
#[derive(Debug, Clone)]
pub struct ExactFiral<T: Scalar> {
    /// Mirror-descent controls for the RELAX phase.
    pub md: MirrorDescentConfig<T>,
    /// ROUND learning rate (with the grid rule when `None`).
    pub round: RoundConfig<T>,
}

impl<T: Scalar> Default for ExactFiral<T> {
    fn default() -> Self {
        Self {
            md: MirrorDescentConfig::default(),
            round: RoundConfig::default(),
        }
    }
}

impl<T: CommScalar> ExactFiral<T> {
    /// The serial Algorithm-1 pipeline on a full (replicated) problem.
    fn exact_select(&self, problem: &SelectionProblem<T>, budget: usize) -> Vec<usize> {
        let (z, _) = exact_relax(problem, budget, &self.md);
        let scale = T::from_usize(problem.ehat()).sqrt();
        match self.round.eta {
            Some(eta) => exact_round(problem, &z, budget, eta),
            None => {
                // Grid rule on the exact ROUND, mirroring §IV-A.
                let mut best: Option<(T, Vec<usize>)> = None;
                for &mult in &self.round.eta_grid {
                    let sel = exact_round(problem, &z, budget, mult * scale);
                    let crit = crate::round::selection_min_eig(problem, &sel);
                    match &best {
                        Some((c, _)) if *c >= crit => {}
                        _ => best = Some((crit, sel)),
                    }
                }
                best.expect("non-empty η grid").1
            }
        }
    }
}

strategy_via_dist!(ExactFiral<T>, "Exact-FIRAL");

impl<T: CommScalar> DistStrategy<T> for ExactFiral<T> {
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        _seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(exec.shard().global_n, budget)?;
        // The dense ê × ê algebra is inherently centralized: replicate the
        // pool and run the identical serial pipeline on every rank.
        let problem = replicate_problem(exec);
        Ok(exec.install(|| self.exact_select(&problem, budget)))
    }
}

/// Approx-FIRAL (Algorithms 2+3) as a strategy — the paper's contribution.
#[derive(Debug, Clone, Default)]
pub struct ApproxFiral<T: Scalar> {
    /// RELAX + ROUND configuration.
    pub config: FiralConfig<T>,
}

impl<T: Scalar> ApproxFiral<T> {
    /// Strategy with explicit configuration.
    pub fn new(config: FiralConfig<T>) -> Self {
        Self { config }
    }
}

strategy_via_dist!(ApproxFiral<T>, "Approx-FIRAL");

impl<T: CommScalar> DistStrategy<T> for ApproxFiral<T> {
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(exec.shard().global_n, budget)?;
        // The genuinely distributed path: the unified RELAX/ROUND layer on
        // this rank's shard (at p = 1 the collectives are no-ops and this
        // is the historical serial strategy, same bits).
        let mut config = self.config.clone();
        config.relax.seed = config.relax.seed.wrapping_add(seed);
        let (_, round) = exec.approx_firal(budget, &config);
        Ok(round.selected)
    }
}

/// UPAL-style unbiased pool-based active learning (Ganti & Gray,
/// arXiv:1111.1784) on the executor.
///
/// Per acquisition step `t`:
///
/// 1. re-fit the classifier on the replicated weighted training set
///    (labeled panel + points bought so far) with
///    [`LogisticRegression::fit_weighted`];
/// 2. score every pool point by the re-fit model's prediction entropy
///    (row-local arithmetic on this rank's shard);
/// 3. Allgather the scores into the replicated global vector, form the
///    sampling distribution `p_t = (1-ε)·score/Σ + ε·uniform` over the
///    not-yet-selected points, accumulate each point's **cumulative
///    acceptance probability** `Q_i += p_t(i)`, and draw one point by
///    inverse CDF with a shared seeded uniform;
/// 4. the winner joins the training set with importance weight `1/Q_i`
///    (its rows replicated by an owner Bcast) — the Horvitz–Thompson
///    correction that keeps the weighted empirical risk an unbiased
///    estimate of the pool risk.
///
/// Labels are not visible to a selection strategy (the oracle is paid
/// *after* selection), so the re-fit trains on pseudo-labels — the argmax
/// of the current classifier's belief — which is the standard surrogate
/// for look-ahead style strategies in this setting.
///
/// Every decision is made from replicated state, so the selection is
/// bitwise identical across backends **and** rank counts.
#[derive(Debug, Clone, Default)]
pub struct UpalStrategy<T: Scalar> {
    /// Sampler + re-fit configuration.
    pub config: UpalConfig<T>,
}

impl<T: Scalar> UpalStrategy<T> {
    /// Strategy with explicit configuration.
    pub fn new(config: UpalConfig<T>) -> Self {
        Self { config }
    }
}

strategy_via_dist!(UpalStrategy<T>, "UPAL");

impl<T: CommScalar> UpalStrategy<T> {
    fn select_impl(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        let shard = exec.shard();
        let n = shard.global_n;
        let d = shard.dim();
        let c = shard.num_classes;
        let mut rng = StdRng::seed_from_u64(seed);

        // Replicated weighted training set, seeded from the labeled panel
        // (weight 1, pseudo-labels from the classifier's belief).
        let m = shard.labeled_x.rows();
        let mut train_rows: Vec<T> = shard.labeled_x.as_slice().to_vec();
        let mut labels: Vec<usize> = (0..m)
            .map(|i| pseudo_label(shard.labeled_h.row(i)))
            .collect();
        let mut weights: Vec<T> = vec![T::ONE; m];

        // Cumulative acceptance probabilities Q_i and the selection state —
        // all replicated (identical on every rank).
        let mut cumulative = vec![T::ZERO; n];
        let mut taken = vec![false; n];
        let mut selected = Vec::with_capacity(budget);

        for _t in 0..budget {
            // 1. Weighted re-fit on replicated data. A degenerate line
            // search (possible on adversarial weights) falls back to
            // uniform sampling for this step instead of failing the run.
            let train_x = Matrix::from_vec(labels.len(), d, train_rows.clone());
            let model = LogisticRegression::fit_weighted(
                &train_x,
                &labels,
                &weights,
                c,
                &self.config.train,
            )
            .ok();

            // 2. Local uncertainty scores: the re-fit model's prediction
            // entropy over this rank's shard rows.
            let local_scores: Vec<T> = match &model {
                Some(model) => {
                    let probs = model.predict_proba(&shard.local_x);
                    (0..shard.local_n())
                        .map(|i| {
                            let mut h = T::ZERO;
                            for &p in probs.row(i) {
                                if p > T::ZERO {
                                    h -= p * p.ln();
                                }
                            }
                            h
                        })
                        .collect()
                }
                None => vec![T::ZERO; shard.local_n()],
            };

            // 3. Replicated sampling distribution over the remaining pool.
            let scores = T::allgatherv(exec.comm(), &local_scores);
            debug_assert_eq!(scores.len(), n);
            let n_rem = n - selected.len();
            let mut total = T::ZERO;
            for (i, &s) in scores.iter().enumerate() {
                if !taken[i] && s > T::ZERO {
                    total += s;
                }
            }
            let mix = self.config.mix;
            let uniform = T::ONE / T::from_usize(n_rem);
            let u = T::from_f64(rng.gen::<f64>());
            let mut acc = T::ZERO;
            let mut pick = usize::MAX;
            let mut last_open = usize::MAX;
            for i in 0..n {
                if taken[i] {
                    continue;
                }
                let p_i = if total > T::ZERO {
                    (T::ONE - mix) * scores[i].maxv(T::ZERO) / total + mix * uniform
                } else {
                    uniform
                };
                cumulative[i] += p_i;
                last_open = i;
                if pick == usize::MAX {
                    acc += p_i;
                    if u < acc {
                        pick = i;
                    }
                }
            }
            if pick == usize::MAX {
                // Float undershoot (Σ p_i can land a few ulps below 1):
                // the draw falls in the tail, which belongs to the last
                // open point.
                pick = last_open;
            }
            taken[pick] = true;
            selected.push(pick);

            // 4. Importance weight from the cumulative acceptance
            // probability; the owner replicates the winner's rows.
            let w = (T::ONE / cumulative[pick]).minv(self.config.max_weight);
            let (x_row, h_row) = exec.bcast_pool_point(pick);
            train_rows.extend_from_slice(&x_row);
            labels.push(pseudo_label(&h_row));
            weights.push(w);
        }
        Ok(selected)
    }
}

impl<T: CommScalar> DistStrategy<T> for UpalStrategy<T> {
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(exec.shard().global_n, budget)?;
        exec.install(|| self.select_impl(exec, budget, seed))
    }
}

/// Bayesian batch selection as sparse subset approximation (Pinsler et
/// al., arXiv:1908.02144) on the executor.
///
/// Each pool point gets the Fisher embedding `ψ_i ∈ R^ê` whose block `k`
/// is `√(g_ik)·x_i` with `g_ik = h_ik(1-h_ik)` — so `ψ_i ψ_iᵀ` has exactly
/// the Definition-1 block diagonal `B(H_i)`, i.e. the embedding is the
/// square root of the point's block Fisher contribution, built from the
/// same probability machinery as RELAX/ROUND. The batch is chosen so the
/// weighted sum of selected embeddings approximates the full-pool
/// log-posterior update `t = Σ_i ψ_i`:
///
/// * **setup** — `t` assembles from one tall-skinny local GEMM per rank
///   plus the §III-C partial-sum Allreduce; the polytope scale
///   `σ̄ = Σ_i ‖ψ_i‖` is a scalar Allreduce;
/// * **iterate** `b` times (Frank–Wolfe): score every remaining local
///   point by `⟨ψ_i, t - a⟩/‖ψ_i‖` (one local GEMM), take the global
///   argmax with an Allreduce-MAXLOC (Line-7 pattern of Algorithm 3), the
///   owner Bcasts the winner's rows, and every rank takes the exact line
///   step `γ = ⟨d_f - a, t - a⟩ / ‖d_f - a‖²` (clamped to `[0, 1]`,
///   `d_f = (σ̄/σ_f)·ψ_f`) on replicated arithmetic.
///
/// Deterministic — the seed is ignored, like [`EntropyStrategy`].
#[derive(Debug, Clone, Default)]
pub struct BayesBatchStrategy<T: Scalar> {
    /// Numerical controls.
    pub config: BayesBatchConfig<T>,
}

impl<T: Scalar> BayesBatchStrategy<T> {
    /// Strategy with explicit configuration.
    pub fn new(config: BayesBatchConfig<T>) -> Self {
        Self { config }
    }
}

strategy_via_dist!(BayesBatchStrategy<T>, "Bayes-Batch");

impl<T: CommScalar> BayesBatchStrategy<T> {
    fn select_impl(&self, exec: &Executor<'_, T>, budget: usize) -> Vec<usize> {
        let shard = exec.shard();
        let n_local = shard.local_n();
        let d = shard.dim();
        let cm1 = shard.nblocks();
        let ehat = shard.ehat();

        // √g panel: s_ik = √(h_ik (1 - h_ik)) — row-local.
        let mut s = Matrix::zeros(n_local, cm1);
        for i in 0..n_local {
            let hrow = shard.local_h.row(i);
            let srow = s.row_mut(i);
            for k in 0..cm1 {
                srow[k] = (hrow[k] * (T::ONE - hrow[k])).sqrt();
            }
        }

        // Pool target t = Σ_i ψ_i: block k = Xᵀ s_{·k}, one tall-skinny
        // GEMM per rank + the partial-sum Allreduce.
        let tmat = gemm_at_b(&shard.local_x, &s);
        let mut t = vec![T::ZERO; ehat];
        for k in 0..cm1 {
            for p in 0..d {
                t[k * d + p] = tmat[(p, k)];
            }
        }
        T::allreduce(exec.comm(), &mut t, ReduceOp::Sum);

        // Embedding norms σ_i = ‖ψ_i‖ (local) and σ̄ = Σσ_i (Allreduce).
        let mut sigma = vec![T::ZERO; n_local];
        let mut sigma_sum = T::ZERO;
        for i in 0..n_local {
            let xrow = shard.local_x.row(i);
            let mut x2 = T::ZERO;
            for &x in xrow {
                x2 += x * x;
            }
            let mut g = T::ZERO;
            for &sv in s.row(i) {
                g += sv * sv;
            }
            sigma[i] = (x2 * g + self.config.norm_ridge).sqrt();
            sigma_sum += sigma[i];
        }
        let sigma_bar = exec.allreduce_scalar(sigma_sum, ReduceOp::Sum);

        let mut a = vec![T::ZERO; ehat];
        let mut taken_local = vec![false; n_local];
        let mut selected = Vec::with_capacity(budget);

        for _t in 0..budget {
            // Residual r = t - a (replicated bits on every rank).
            let mut rmat = Matrix::zeros(d, cm1);
            for k in 0..cm1 {
                for p in 0..d {
                    rmat[(p, k)] = t[k * d + p] - a[k * d + p];
                }
            }
            // Local scores ⟨ψ_i, r⟩/σ_i via one GEMM: P = X·R, then
            // score_i = Σ_k s_ik P_ik / σ_i.
            let p = gemm(&shard.local_x, &rmat);
            let mut best = (f64::NEG_INFINITY, u64::MAX);
            for i in 0..n_local {
                if taken_local[i] || sigma[i] <= T::ZERO {
                    continue;
                }
                let mut acc = T::ZERO;
                for k in 0..cm1 {
                    acc += s[(i, k)] * p[(i, k)];
                }
                let score = (acc / sigma[i]).to_f64();
                if score > best.0 {
                    best = (score, (shard.offset + i) as u64);
                }
            }
            let (_, gidx) = exec.comm().allreduce_maxloc(best.0, best.1);
            let f = if gidx == u64::MAX {
                // Degenerate pool (every remaining embedding has zero
                // norm): fall back to the lowest unselected index —
                // replicated state, so still rank-invariant.
                (0..shard.global_n)
                    .find(|i| !selected.contains(i))
                    .expect("budget exceeds pool")
            } else {
                gidx as usize
            };
            if let Some(l) = f.checked_sub(shard.offset).filter(|&l| l < n_local) {
                taken_local[l] = true;
            }
            selected.push(f);

            // The owner replicates the winner's rows; every rank rebuilds
            // ψ_f and takes the exact Frank–Wolfe step on replicated
            // arithmetic.
            let (x_f, h_f) = exec.bcast_pool_point(f);
            let mut psi_f = vec![T::ZERO; ehat];
            let mut x2 = T::ZERO;
            for &x in &x_f {
                x2 += x * x;
            }
            // g accumulates as (√g)² — the same expression the scoring
            // pass uses for σ_i, so σ_f carries identical bits to the σ
            // that ranked the point.
            let mut g_sum = T::ZERO;
            for (k, &h) in h_f.iter().enumerate() {
                let sk = (h * (T::ONE - h)).sqrt();
                g_sum += sk * sk;
                for (p, &x) in x_f.iter().enumerate() {
                    psi_f[k * d + p] = sk * x;
                }
            }
            let sigma_f = (x2 * g_sum + self.config.norm_ridge).sqrt();
            if sigma_f > T::ZERO && sigma_bar > T::ZERO {
                let scale = sigma_bar / sigma_f;
                let mut num = T::ZERO;
                let mut den = T::ZERO;
                for j in 0..ehat {
                    let diff = scale * psi_f[j] - a[j];
                    num += diff * (t[j] - a[j]);
                    den += diff * diff;
                }
                if den > T::ZERO {
                    let gamma = (num / den).maxv(T::ZERO).minv(T::ONE);
                    for (aj, &pj) in a.iter_mut().zip(psi_f.iter()) {
                        *aj = (T::ONE - gamma) * *aj + gamma * scale * pj;
                    }
                }
            }
        }
        selected
    }
}

impl<T: CommScalar> DistStrategy<T> for BayesBatchStrategy<T> {
    fn select_dist(
        &self,
        exec: &Executor<'_, T>,
        budget: usize,
        _seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(exec.shard().global_n, budget)?;
        Ok(exec.install(|| self.select_impl(exec, budget)))
    }
}

/// The names [`strategy_by_name`] resolves (kebab-case, the stable CLI /
/// config surface of the benches, `spmd_launch` workloads and
/// [`crate::driver::run_experiment_named`]).
pub const STRATEGY_NAMES: [&str; 7] = [
    "random",
    "kmeans",
    "entropy",
    "exact-firal",
    "approx-firal",
    "upal",
    "bayes-batch",
];

/// Resolve a registered strategy (default configuration) by name. Every
/// returned strategy implements both the serial and the distributed
/// surface. `None` for names outside [`STRATEGY_NAMES`].
pub fn strategy_by_name<T: CommScalar>(name: &str) -> Option<Box<dyn DistStrategy<T>>> {
    match name {
        "random" => Some(Box::new(RandomStrategy)),
        "kmeans" | "k-means" => Some(Box::new(KMeansStrategy)),
        "entropy" => Some(Box::new(EntropyStrategy)),
        "exact-firal" => Some(Box::new(ExactFiral::default())),
        "approx-firal" => Some(Box::new(ApproxFiral::default())),
        "upal" => Some(Box::new(UpalStrategy::default())),
        "bayes-batch" => Some(Box::new(BayesBatchStrategy::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firal_comm::launch;

    fn tiny_problem(seed: u64) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(3, 4)
            .with_pool_size(60)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            3,
        )
    }

    fn assert_valid_selection(sel: &[usize], budget: usize, pool: usize) {
        assert_eq!(sel.len(), budget);
        let mut sorted = sel.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), budget, "duplicates in {sel:?}");
        assert!(sel.iter().all(|&i| i < pool));
    }

    fn all_strategies() -> Vec<Box<dyn DistStrategy<f64>>> {
        STRATEGY_NAMES
            .iter()
            .map(|name| strategy_by_name::<f64>(name).unwrap())
            .collect()
    }

    #[test]
    fn all_strategies_return_valid_selections() {
        let p = tiny_problem(1);
        for s in &all_strategies() {
            let sel = s
                .select(&p, 5, 42)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert_valid_selection(&sel, 5, 60);
        }
    }

    #[test]
    fn budget_too_large_is_rejected() {
        let p = tiny_problem(2);
        let err = Strategy::<f64>::select(&RandomStrategy, &p, 100, 0);
        assert!(matches!(
            err,
            Err(SelectError::BudgetTooLarge {
                budget: 100,
                pool: 60
            })
        ));
    }

    #[test]
    fn zero_budget_and_empty_pool_are_rejected_by_every_strategy() {
        let p = tiny_problem(6);
        let empty = SelectionProblem::new(
            Matrix::<f64>::zeros(0, 4),
            Matrix::zeros(0, 2),
            p.labeled_x.clone(),
            p.labeled_h.clone(),
            3,
        );
        for s in &all_strategies() {
            assert_eq!(
                s.select(&p, 0, 1),
                Err(SelectError::ZeroBudget),
                "{}: zero budget must be rejected",
                s.name()
            );
            assert_eq!(
                s.select(&empty, 3, 1),
                Err(SelectError::EmptyPool),
                "{}: empty pool must be rejected",
                s.name()
            );
            // Empty pool wins over zero budget: there is nothing to select
            // from either way, and the pool error is the more fundamental.
            assert_eq!(s.select(&empty, 0, 1), Err(SelectError::EmptyPool));
        }
    }

    #[test]
    fn random_depends_on_seed_entropy_does_not() {
        let p = tiny_problem(3);
        let r1 = Strategy::<f64>::select(&RandomStrategy, &p, 5, 1).unwrap();
        let r2 = Strategy::<f64>::select(&RandomStrategy, &p, 5, 2).unwrap();
        assert_ne!(r1, r2, "different seeds should differ (w.h.p.)");
        let e1 = Strategy::<f64>::select(&EntropyStrategy, &p, 5, 1).unwrap();
        let e2 = Strategy::<f64>::select(&EntropyStrategy, &p, 5, 2).unwrap();
        assert_eq!(e1, e2, "entropy is deterministic");
    }

    #[test]
    fn entropy_selects_most_uncertain() {
        let p = tiny_problem(4);
        let sel = Strategy::<f64>::select(&EntropyStrategy, &p, 3, 0).unwrap();
        let ents = EntropyStrategy::entropies(&p.pool_h);
        let min_selected = sel.iter().map(|&i| ents[i]).fold(f64::INFINITY, f64::min);
        let max_unselected = (0..p.pool_size())
            .filter(|i| !sel.contains(i))
            .map(|i| ents[i])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_selected >= max_unselected - 1e-12);
    }

    #[test]
    fn approx_firal_on_fisher_objective_beats_random() {
        use crate::objective::selection_objective;
        let p = tiny_problem(5);
        let firal_sel = Strategy::<f64>::select(&ApproxFiral::default(), &p, 6, 0).unwrap();
        let f_firal = selection_objective(&p, &firal_sel);
        let mut rand_sum = 0.0;
        for s in 0..6 {
            let sel = Strategy::<f64>::select(&RandomStrategy, &p, 6, s).unwrap();
            rand_sum += selection_objective(&p, &sel);
        }
        let f_rand = rand_sum / 6.0;
        assert!(
            f_firal < f_rand * 1.05,
            "Approx-FIRAL f = {f_firal} vs mean random f = {f_rand}"
        );
    }

    #[test]
    fn serial_select_reports_collective_traffic() {
        // The SelfComm instantiation still counts its (no-op) collectives:
        // the strategies genuinely route through the comm layer.
        let p = tiny_problem(7);
        for name in ["entropy", "upal", "bayes-batch"] {
            let s = strategy_by_name::<f64>(name).unwrap();
            let run = s.select_with_stats(&p, 4, 0).unwrap();
            assert_eq!(run.selected.len(), 4);
            assert!(
                run.comm.total_calls() > 0,
                "{name}: expected collective calls on the serial path"
            );
        }
    }

    #[test]
    fn upal_seed_varies_and_weights_stay_bounded() {
        let p = tiny_problem(8);
        let s = UpalStrategy::<f64>::default();
        let a = Strategy::<f64>::select(&s, &p, 6, 1).unwrap();
        let b = Strategy::<f64>::select(&s, &p, 6, 2).unwrap();
        assert_valid_selection(&a, 6, 60);
        assert_valid_selection(&b, 6, 60);
        assert_ne!(a, b, "different seeds should move the sampler (w.h.p.)");
        // And the same seed reproduces the identical batch.
        let a2 = Strategy::<f64>::select(&s, &p, 6, 1).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn bayes_batch_is_deterministic_and_spreads_over_classes() {
        let p = tiny_problem(9);
        let s = BayesBatchStrategy::<f64>::default();
        let a = Strategy::<f64>::select(&s, &p, 6, 1).unwrap();
        let b = Strategy::<f64>::select(&s, &p, 6, 99).unwrap();
        assert_valid_selection(&a, 6, 60);
        assert_eq!(a, b, "Bayes-Batch ignores the seed");
    }

    #[test]
    fn bayes_batch_first_pick_maximizes_alignment_with_pool_target() {
        // With a = 0 the first FW score is ⟨ψ_i, t⟩/σ_i; verify the pick
        // against a dense recomputation of the embeddings.
        let p = tiny_problem(10);
        let sel = Strategy::<f64>::select(&BayesBatchStrategy::default(), &p, 1, 0).unwrap();
        let n = p.pool_size();
        let d = p.dim();
        let cm1 = p.nblocks();
        let psi = |i: usize| -> Vec<f64> {
            let mut v = vec![0.0; d * cm1];
            for k in 0..cm1 {
                let h = p.pool_h[(i, k)];
                let sk = (h * (1.0 - h)).sqrt();
                for q in 0..d {
                    v[k * d + q] = sk * p.pool_x[(i, q)];
                }
            }
            v
        };
        let mut t = vec![0.0; d * cm1];
        for i in 0..n {
            for (tj, pj) in t.iter_mut().zip(psi(i)) {
                *tj += pj;
            }
        }
        let score = |i: usize| -> f64 {
            let v = psi(i);
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            v.iter().zip(&t).map(|(a, b)| a * b).sum::<f64>() / norm
        };
        let best = (0..n)
            .max_by(|&a, &b| score(a).partial_cmp(&score(b)).unwrap())
            .unwrap();
        assert_eq!(sel, vec![best]);
    }

    #[test]
    fn registry_resolves_every_name_and_rejects_unknown() {
        for name in STRATEGY_NAMES {
            let s = strategy_by_name::<f64>(name).unwrap();
            assert!(!Strategy::<f64>::name(s.as_ref()).is_empty());
            assert!(strategy_by_name::<f32>(name).is_some(), "{name} in f32");
        }
        assert!(strategy_by_name::<f64>("no-such-strategy").is_none());
    }

    #[test]
    fn dist_strategies_match_serial_on_thread_ranks() {
        // Every registered strategy: the 2-rank ThreadComm selection must
        // equal the serial SelfComm selection (the full backend × rank
        // matrix for the new strategies lives in
        // tests/parallel_consistency.rs).
        let p = tiny_problem(11);
        for name in STRATEGY_NAMES {
            let serial = strategy_by_name::<f64>(name)
                .unwrap()
                .select(&p, 4, 5)
                .unwrap();
            let results = launch(2, |comm| {
                let shard = ShardedProblem::shard(&p, comm.rank(), comm.size());
                let exec = Executor::new(comm, &shard);
                strategy_by_name::<f64>(name)
                    .unwrap()
                    .select_dist(&exec, 4, 5)
                    .unwrap()
            });
            for sel in &results {
                assert_eq!(sel, &serial, "{name}: p=2 diverged from serial");
            }
        }
    }

    #[test]
    fn pseudo_label_reconstructs_reference_class() {
        // h = (0.2, 0.1) over c = 3 → reference class prob 0.7 wins.
        assert_eq!(pseudo_label(&[0.2, 0.1]), 2);
        // h = (0.6, 0.1) → class 0 wins.
        assert_eq!(pseudo_label(&[0.6, 0.1]), 0);
        // Tie between class 0 and the reference: first maximum (class 0).
        assert_eq!(pseudo_label(&[0.5, 0.0]), 0);
    }
}
