//! The five selection strategies of §IV-A behind one trait:
//! Random, K-Means (k = b), Entropy, Exact-FIRAL and Approx-FIRAL.

use firal_cluster::{kmeans, nearest_to_centroids, KMeansConfig};
use firal_comm::{CommScalar, SelfComm};
use firal_linalg::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{FiralConfig, MirrorDescentConfig, RoundConfig};
use crate::exact::{exact_relax, exact_round};
use crate::exec::{Executor, ShardedProblem};
use crate::problem::SelectionProblem;

/// Selection failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// Budget exceeds pool size.
    BudgetTooLarge {
        /// Requested batch size.
        budget: usize,
        /// Available pool points.
        pool: usize,
    },
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::BudgetTooLarge { budget, pool } => {
                write!(f, "budget {budget} exceeds pool size {pool}")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// A batch active-learning selection strategy.
///
/// `problem` carries the pool/labeled panels and classifier probabilities;
/// `budget` is the batch size `b`; `seed` controls any internal randomness
/// (Random and K-Means are the stochastic baselines the paper averages over
/// 10 trials; the FIRAL variants are deterministic given the probe seed).
pub trait Strategy<T: Scalar> {
    /// Human-readable name (matches the paper's figure legends).
    fn name(&self) -> &'static str;

    /// Pick `budget` distinct pool indices.
    fn select(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError>;
}

fn check_budget<T: Scalar>(
    problem: &SelectionProblem<T>,
    budget: usize,
) -> Result<(), SelectError> {
    if budget > problem.pool_size() {
        Err(SelectError::BudgetTooLarge {
            budget,
            pool: problem.pool_size(),
        })
    } else {
        Ok(())
    }
}

/// Uniform random selection without replacement.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomStrategy;

impl<T: Scalar> Strategy<T> for RandomStrategy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn select(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(problem, budget)?;
        let n = problem.pool_size();
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates over an index array.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..budget {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(budget);
        Ok(idx)
    }
}

/// K-Means baseline: cluster the pool with `k = b`, label the point nearest
/// each centroid (§IV-A setup item (2)).
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeansStrategy;

impl<T: Scalar> Strategy<T> for KMeansStrategy {
    fn name(&self) -> &'static str {
        "K-Means"
    }

    fn select(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(problem, budget)?;
        let result = kmeans(&problem.pool_x, &KMeansConfig::new(budget).with_seed(seed));
        Ok(nearest_to_centroids(&problem.pool_x, &result.centroids))
    }
}

/// Entropy baseline: top-`b` pool points by prediction entropy
/// (`-Σ_c p log p`, §IV-A setup item (3)).
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyStrategy;

impl EntropyStrategy {
    /// Entropy over the full `c`-class distribution reconstructed from the
    /// `c-1` panel (the reference-class probability is `1 - Σ h`).
    fn entropies<T: Scalar>(pool_h: &Matrix<T>) -> Vec<T> {
        (0..pool_h.rows())
            .map(|i| {
                let row = pool_h.row(i);
                let mut rest = T::ONE;
                let mut h = T::ZERO;
                for &p in row {
                    if p > T::ZERO {
                        h -= p * p.ln();
                    }
                    rest -= p;
                }
                if rest > T::ZERO {
                    h -= rest * rest.ln();
                }
                h
            })
            .collect()
    }
}

impl<T: Scalar> Strategy<T> for EntropyStrategy {
    fn name(&self) -> &'static str {
        "Entropy"
    }

    fn select(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        _seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(problem, budget)?;
        let ent = Self::entropies(&problem.pool_h);
        let mut idx: Vec<usize> = (0..problem.pool_size()).collect();
        idx.sort_by(|&a, &b| {
            ent[b]
                .partial_cmp(&ent[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(budget);
        Ok(idx)
    }
}

/// Exact-FIRAL (Algorithm 1) as a strategy. Small problems only (dense
/// `ê × ê` algebra).
#[derive(Debug, Clone)]
pub struct ExactFiral<T: Scalar> {
    /// Mirror-descent controls for the RELAX phase.
    pub md: MirrorDescentConfig<T>,
    /// ROUND learning rate (with the grid rule when `None`).
    pub round: RoundConfig<T>,
}

impl<T: Scalar> Default for ExactFiral<T> {
    fn default() -> Self {
        Self {
            md: MirrorDescentConfig::default(),
            round: RoundConfig::default(),
        }
    }
}

impl<T: CommScalar> Strategy<T> for ExactFiral<T> {
    fn name(&self) -> &'static str {
        "Exact-FIRAL"
    }

    fn select(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        _seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(problem, budget)?;
        let (z, _) = exact_relax(problem, budget, &self.md);
        let scale = T::from_usize(problem.ehat()).sqrt();
        let selected = match self.round.eta {
            Some(eta) => exact_round(problem, &z, budget, eta),
            None => {
                // Grid rule on the exact ROUND, mirroring §IV-A.
                let mut best: Option<(T, Vec<usize>)> = None;
                for &mult in &self.round.eta_grid {
                    let sel = exact_round(problem, &z, budget, mult * scale);
                    let crit = crate::round::selection_min_eig(problem, &sel);
                    match &best {
                        Some((c, _)) if *c >= crit => {}
                        _ => best = Some((crit, sel)),
                    }
                }
                best.expect("non-empty η grid").1
            }
        };
        Ok(selected)
    }
}

/// Approx-FIRAL (Algorithms 2+3) as a strategy — the paper's contribution.
#[derive(Debug, Clone, Default)]
pub struct ApproxFiral<T: Scalar> {
    /// RELAX + ROUND configuration.
    pub config: FiralConfig<T>,
}

impl<T: Scalar> ApproxFiral<T> {
    /// Strategy with explicit configuration.
    pub fn new(config: FiralConfig<T>) -> Self {
        Self { config }
    }
}

impl<T: CommScalar> Strategy<T> for ApproxFiral<T> {
    fn name(&self) -> &'static str {
        "Approx-FIRAL"
    }

    fn select(
        &self,
        problem: &SelectionProblem<T>,
        budget: usize,
        seed: u64,
    ) -> Result<Vec<usize>, SelectError> {
        check_budget(problem, budget)?;
        // The serial strategy is the p = 1 instantiation of the unified
        // execution layer: SelfComm collectives are no-ops and the shard is
        // the whole pool.
        let mut config = self.config.clone();
        config.relax.seed = config.relax.seed.wrapping_add(seed);
        let comm = SelfComm::new();
        let shard = ShardedProblem::replicate(problem);
        let (_, round) = Executor::serial(&comm, &shard).approx_firal(budget, &config);
        Ok(round.selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problem(seed: u64) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(3, 4)
            .with_pool_size(60)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            3,
        )
    }

    fn assert_valid_selection(sel: &[usize], budget: usize, pool: usize) {
        assert_eq!(sel.len(), budget);
        let mut sorted = sel.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), budget, "duplicates in {sel:?}");
        assert!(sel.iter().all(|&i| i < pool));
    }

    #[test]
    fn all_strategies_return_valid_selections() {
        let p = tiny_problem(1);
        let strategies: Vec<Box<dyn Strategy<f64>>> = vec![
            Box::new(RandomStrategy),
            Box::new(KMeansStrategy),
            Box::new(EntropyStrategy),
            Box::new(ApproxFiral::default()),
            Box::new(ExactFiral::default()),
        ];
        for s in &strategies {
            let sel = s
                .select(&p, 5, 42)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert_valid_selection(&sel, 5, 60);
        }
    }

    #[test]
    fn budget_too_large_is_rejected() {
        let p = tiny_problem(2);
        let err = Strategy::<f64>::select(&RandomStrategy, &p, 100, 0);
        assert!(matches!(
            err,
            Err(SelectError::BudgetTooLarge {
                budget: 100,
                pool: 60
            })
        ));
    }

    #[test]
    fn random_depends_on_seed_entropy_does_not() {
        let p = tiny_problem(3);
        let r1 = Strategy::<f64>::select(&RandomStrategy, &p, 5, 1).unwrap();
        let r2 = Strategy::<f64>::select(&RandomStrategy, &p, 5, 2).unwrap();
        assert_ne!(r1, r2, "different seeds should differ (w.h.p.)");
        let e1 = Strategy::<f64>::select(&EntropyStrategy, &p, 5, 1).unwrap();
        let e2 = Strategy::<f64>::select(&EntropyStrategy, &p, 5, 2).unwrap();
        assert_eq!(e1, e2, "entropy is deterministic");
    }

    #[test]
    fn entropy_selects_most_uncertain() {
        let p = tiny_problem(4);
        let sel = Strategy::<f64>::select(&EntropyStrategy, &p, 3, 0).unwrap();
        let ents = EntropyStrategy::entropies(&p.pool_h);
        let min_selected = sel.iter().map(|&i| ents[i]).fold(f64::INFINITY, f64::min);
        let max_unselected = (0..p.pool_size())
            .filter(|i| !sel.contains(i))
            .map(|i| ents[i])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_selected >= max_unselected - 1e-12);
    }

    #[test]
    fn approx_firal_on_fisher_objective_beats_random() {
        use crate::objective::selection_objective;
        let p = tiny_problem(5);
        let firal_sel = Strategy::<f64>::select(&ApproxFiral::default(), &p, 6, 0).unwrap();
        let f_firal = selection_objective(&p, &firal_sel);
        let mut rand_sum = 0.0;
        for s in 0..6 {
            let sel = Strategy::<f64>::select(&RandomStrategy, &p, 6, s).unwrap();
            rand_sum += selection_objective(&p, &sel);
        }
        let f_rand = rand_sum / 6.0;
        assert!(
            f_firal < f_rand * 1.05,
            "Approx-FIRAL f = {f_firal} vs mean random f = {f_rand}"
        );
    }
}
