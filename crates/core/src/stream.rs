//! Streaming round state: incremental maintenance of the ROUND state under
//! pool mutations.
//!
//! Every batch selection round historically rebuilt `Σ⋄`, its Cholesky
//! sweep, and the `g_ik` panel from scratch — `O(n·c·d²)` work and a full
//! block-diagonal Allreduce even when the pool changed by a handful of
//! points. [`StreamingState`] closes that gap (ROADMAP item 2): it owns a
//! **persistent** [`RoundState`](crate::RoundState) keyed by a pool
//! version and advances it under [`PoolUpdate`] batches in `O(Δpool)`:
//!
//! - the dense `Σ⋄` block diagonal advances by a **delta-Allreduce** of
//!   changed partial sums ([`firal_solvers::delta_allreduce_blocks`], the
//!   streaming counterpart of the
//!   [`AllreduceOperator`](firal_solvers::AllreduceOperator) full-sum
//!   seam): each rank contributes the delta blocks of the batch entries it
//!   owns, and only globally changed blocks travel;
//! - the per-block Cholesky factors advance by rank-one
//!   [`Cholesky::update`]/[`Cholesky::downdate`] sweeps applied by every
//!   rank in canonical batch order. A downdate that destroys positive
//!   definiteness triggers the documented **ridge-refactor fallback**: the
//!   block is refactored from the current dense `Σ⋄` with a `1e-8` ridge;
//! - the per-point Fisher coefficients `g_ik = h_ik(1−h_ik)` are cached on
//!   each registry point and invalidated (recomputed) only when the point's
//!   probabilities change — adds compute them once, removals drop them,
//!   labels move them into the `B(H_o)` term.
//!
//! # State ownership and replication
//!
//! The point registry (features, probabilities, weights, Fisher caches) is
//! **replicated** on every rank — exactly like the serve layer, where every
//! rank decodes the uploaded pool. Compute stays sharded: selections shard
//! the live registry contiguously ([`firal_comm::shard_range`] over the
//! live insertion order) and the delta partial sums partition each update
//! batch round-robin by batch index. Because the registry is replicated,
//! `Remove`/`Label` mutations need no data movement at all.
//!
//! # Determinism contract
//!
//! `commit` is **collective**: every rank must call it with the identical
//! update batch (the serve layer guarantees this by shipping mutations in
//! rank-0-ordered round frames; tests pass identical literal batches).
//! Under that contract, for a fixed rank count the advanced state is
//! bitwise identical across ranks, backends (thread vs. socket), and
//! kernel thread counts: the delta-Allreduce inherits the rank-ordered
//! deterministic reduction, and the factor sweeps are sequential canonical
//! order on every rank. Across *different* rank counts the usual shard
//! convention applies: selections agree while partial-sum bits may differ
//! at shard boundaries (`tests/parallel_consistency.rs` pins the row).
//!
//! # Drift and the refactor boundary
//!
//! Incremental factors drift from `chol(Σ⋄)` by accumulated rounding.
//! Every [`FiralConfig::refactor_interval`] commits the state is rebuilt
//! from scratch through the exact same code one-shot callers use
//! ([`Executor::build_round_state`]), so at a refactor boundary the
//! streaming state is **bitwise equal to a from-scratch rebuild** by
//! construction — `tests/stream_soak.rs` asserts it over a 4-process mesh
//! and the drift test in this module bounds the divergence between
//! boundaries.

use firal_comm::{shard_range, CommScalar, Communicator};
use firal_linalg::{BlockDiag, Cholesky, Matrix, Scalar};
use firal_solvers::delta_allreduce_blocks;

use crate::config::FiralConfig;
use crate::exec::{Executor, RoundRun, RoundState, ShardedProblem};
use crate::problem::SelectionProblem;
use crate::round::EigSolver;

/// Default refactor cadence when `FiralConfig::refactor_interval == 0`.
const DEFAULT_REFACTOR_INTERVAL: usize = 64;
/// Ridge used by the downdate-failure refactor fallback.
const FALLBACK_RIDGE: f64 = 1e-8;

/// One pool mutation. Batches of these advance a [`StreamingState`]
/// through [`StreamingState::commit`].
#[derive(Debug, Clone, PartialEq)]
pub enum PoolUpdate<T: Scalar> {
    /// Append an unlabeled candidate to the pool with RELAX weight
    /// `weight` (its `z⋄` entry; `0` for a point not yet weighted).
    Add {
        /// Feature row (`d` entries).
        x: Vec<T>,
        /// Class-probability row (`c−1` entries).
        h: Vec<T>,
        /// `z⋄` weight of the point inside `Σ⋄`.
        weight: T,
    },
    /// Drop a live pool point by its stable id.
    Remove {
        /// Id assigned by the `Add` that created the point.
        id: u64,
    },
    /// Move a live pool point into the labeled set: its Fisher term leaves
    /// `H_{z⋄}` (weight `w`) and joins `H_o` (weight `1`).
    Label {
        /// Id assigned by the `Add` that created the point.
        id: u64,
    },
}

/// One replicated registry point with its cached Fisher coefficients.
#[derive(Debug, Clone)]
struct StreamPoint<T: Scalar> {
    id: u64,
    x: Vec<T>,
    h: Vec<T>,
    weight: T,
    /// Cached `g_ik = h_ik(1−h_ik)` row — invalidated only when `h`
    /// changes (never, for now: labels keep the probabilities).
    g: Vec<T>,
}

/// Summary of one committed update batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCommit {
    /// Pool version after the batch.
    pub version: u64,
    /// Updates applied.
    pub applied: usize,
    /// Whether the commit ended on a refactor boundary (state rebuilt from
    /// scratch, drift reset to zero).
    pub refactored: bool,
    /// Downdates that destroyed positive definiteness and fell back to a
    /// ridge refactor of their block.
    pub downdate_fallbacks: usize,
}

/// Persistent streaming round state (see the module docs for the full
/// ownership/determinism/drift contract).
#[derive(Debug, Clone)]
pub struct StreamingState<T: CommScalar> {
    points: Vec<StreamPoint<T>>,
    labeled_x: Matrix<T>,
    labeled_h: Matrix<T>,
    num_classes: usize,
    dim: usize,
    version: u64,
    next_id: u64,
    commits_since_refactor: usize,
    refactor_interval: usize,
    bho: BlockDiag<T>,
    sigma: BlockDiag<T>,
    sigma_chol: Vec<Cholesky<T>>,
}

impl<T: CommScalar> StreamingState<T> {
    /// Seed a streaming state from a full problem and its per-point `z⋄`
    /// weights (one per pool row, e.g. `RelaxRun::z_diamond`). Collective:
    /// the initial state is built through [`Executor::build_round_state`]
    /// on every rank.
    pub fn new(
        comm: &dyn Communicator,
        problem: &SelectionProblem<T>,
        weights: &[T],
        config: &FiralConfig<T>,
    ) -> Self {
        assert_eq!(
            weights.len(),
            problem.pool_size(),
            "one z⋄ weight per pool point"
        );
        let cm1 = problem.nblocks();
        let d = problem.dim();
        let points = (0..problem.pool_size())
            .map(|i| {
                let h = problem.pool_h.row(i).to_vec();
                let g = fisher_row(&h);
                StreamPoint {
                    id: i as u64,
                    x: problem.pool_x.row(i).to_vec(),
                    h,
                    weight: weights[i],
                    g,
                }
            })
            .collect();
        let mut state = Self {
            points,
            labeled_x: problem.labeled_x.clone(),
            labeled_h: problem.labeled_h.clone(),
            num_classes: problem.num_classes,
            dim: d,
            version: 0,
            next_id: problem.pool_size() as u64,
            commits_since_refactor: 0,
            refactor_interval: match config.refactor_interval {
                0 => DEFAULT_REFACTOR_INTERVAL,
                k => k,
            },
            bho: BlockDiag::zeros(cm1, d),
            sigma: BlockDiag::zeros(cm1, d),
            sigma_chol: Vec::new(),
        };
        state.rebuild(comm);
        state
    }

    /// Live pool size.
    pub fn live(&self) -> usize {
        self.points.len()
    }

    /// Labeled-set size.
    pub fn labeled(&self) -> usize {
        self.labeled_x.rows()
    }

    /// Current pool version (one bump per committed batch).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stable ids of the live points in insertion order.
    pub fn ids(&self) -> Vec<u64> {
        self.points.iter().map(|p| p.id).collect()
    }

    /// Apply one update batch — collective; every rank must pass the
    /// identical batch (see the module determinism contract). Returns the
    /// commit summary, including whether this commit hit the refactor
    /// boundary.
    pub fn commit(&mut self, comm: &dyn Communicator, updates: &[PoolUpdate<T>]) -> StreamCommit {
        let cm1 = self.nblocks();
        let d = self.dim;
        let size = comm.size();
        let rank = comm.rank();

        // Phase 1 — delta partial sums for the dense Σ⋄: this rank owns the
        // batch entries with index ≡ rank (mod size).
        let mut delta = BlockDiag::<T>::zeros(cm1, d);
        let mut changed = vec![false; cm1];
        for (u, upd) in updates.iter().enumerate() {
            let (x, g, coeff) = self.update_term(upd);
            if u % size == rank {
                let gammas: Vec<T> = g.iter().map(|&gk| coeff * gk).collect();
                delta.rank_one_update(&gammas, &x);
            }
            for (k, &gk) in g.iter().enumerate() {
                changed[k] |= coeff * gk != T::ZERO;
            }
        }

        // Phase 2 — ship only the changed partial sums (the streaming
        // Allreduce seam) and fold them into the replicated Σ⋄.
        delta_allreduce_blocks(comm, &mut delta, &mut changed);
        for k in 0..cm1 {
            if changed[k] {
                let blk = delta.block(k).clone();
                self.sigma.block_mut(k).add_scaled(T::ONE, &blk);
            }
        }

        // Phase 3 — advance the Cholesky factors by canonical rank-one
        // sweeps (every rank, identical order), then mutate the registry.
        let mut fallbacks = 0usize;
        for upd in updates {
            let (x, g, coeff) = self.update_term(upd);
            let magnitude = coeff.abs();
            for k in 0..cm1 {
                let scale = (magnitude * g[k]).sqrt();
                if scale == T::ZERO {
                    continue;
                }
                let v: Vec<T> = x.iter().map(|&xi| scale * xi).collect();
                if coeff > T::ZERO {
                    self.sigma_chol[k].update(&v);
                } else if self.sigma_chol[k].downdate(&v).is_err() {
                    // Documented fallback: the downdate destroyed positive
                    // definiteness, so refactor this block from the current
                    // dense Σ⋄ with a ridge instead of trusting the
                    // poisoned factor.
                    fallbacks += 1;
                    self.sigma_chol[k] =
                        Cholesky::new_with_ridge(self.sigma.block(k), T::from_f64(FALLBACK_RIDGE))
                            .expect("ridge refactor of a Σ⋄ block");
                }
            }
            self.apply_to_registry(upd);
        }

        self.version += 1;
        self.commits_since_refactor += 1;
        let refactored = self.commits_since_refactor >= self.refactor_interval;
        if refactored {
            self.rebuild(comm);
        }
        StreamCommit {
            version: self.version,
            applied: updates.len(),
            refactored,
            downdate_fallbacks: fallbacks,
        }
    }

    /// Force the from-scratch rebuild this state's refactor boundary is
    /// defined against (collective). After this call the state is bitwise
    /// identical to what [`Executor::build_round_state`] produces for the
    /// current registry on this rank count.
    pub fn refactor(&mut self, comm: &dyn Communicator) {
        self.rebuild(comm);
    }

    /// Run one FTRL selection round over the current streaming state —
    /// the `O(Δpool)`-maintained counterpart of [`Executor::round`].
    /// Returns the selected **registry positions** (indices into the live
    /// insertion order; map through [`StreamingState::ids`] for stable
    /// ids).
    pub fn select(
        &self,
        comm: &dyn Communicator,
        budget: usize,
        eta: T,
        eig: EigSolver,
    ) -> RoundRun<T> {
        let shard = self.materialize_shard(comm.rank(), comm.size());
        let state = self.round_state(comm.rank(), comm.size());
        let exec = Executor::new(comm, &shard);
        exec.round_with_state(&state, budget, eta, eig)
    }

    /// Materialize this rank's [`RoundState`] view: the replicated block
    /// state plus the local slice of the cached Fisher panel.
    pub fn round_state(&self, rank: usize, size: usize) -> RoundState<T> {
        let range = shard_range(self.live(), rank, size);
        let cm1 = self.nblocks();
        let mut gik = Matrix::zeros(range.len(), cm1);
        for (row, i) in range.enumerate() {
            gik.row_mut(row).copy_from_slice(&self.points[i].g);
        }
        RoundState {
            version: self.version,
            bho: self.bho.clone(),
            sigma: self.sigma.clone(),
            sigma_chol: self.sigma_chol.clone(),
            gik,
        }
    }

    /// Materialize this rank's contiguous shard of the live registry (the
    /// same [`firal_comm::shard_range`] decomposition batch callers use).
    pub fn materialize_shard(&self, rank: usize, size: usize) -> ShardedProblem<T> {
        let range = shard_range(self.live(), rank, size);
        let d = self.dim;
        let cm1 = self.nblocks();
        let mut local_x = Matrix::zeros(range.len(), d);
        let mut local_h = Matrix::zeros(range.len(), cm1);
        for (row, i) in range.clone().enumerate() {
            local_x.row_mut(row).copy_from_slice(&self.points[i].x);
            local_h.row_mut(row).copy_from_slice(&self.points[i].h);
        }
        ShardedProblem {
            local_x,
            local_h,
            labeled_x: self.labeled_x.clone(),
            labeled_h: self.labeled_h.clone(),
            num_classes: self.num_classes,
            global_n: self.live(),
            offset: range.start,
        }
    }

    /// Bit-exact fingerprint of the replicated state (`Σ⋄`, `B(H_o)`, and
    /// every factor), for cross-rank / cross-backend / soak assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0xcbf29ce484222325;
        let mut eat = |bits: u64| {
            acc ^= bits;
            acc = acc.wrapping_mul(0x100000001b3);
        };
        eat(self.version);
        eat(self.live() as u64);
        eat(self.labeled() as u64);
        for k in 0..self.nblocks() {
            for &v in self.sigma.block(k).as_slice() {
                eat(v.to_f64().to_bits());
            }
            for &v in self.bho.block(k).as_slice() {
                eat(v.to_f64().to_bits());
            }
            for &v in self.sigma_chol[k].l().as_slice() {
                eat(v.to_f64().to_bits());
            }
        }
        acc
    }

    /// Worst-block relative drift of the incremental factors against the
    /// dense `Σ⋄` they track: `max_k ‖L_kL_kᵀ − (Σ⋄)_k‖_F / ‖(Σ⋄)_k‖_F`.
    /// The drift test pins this against the refactor contract.
    pub fn factor_drift(&self) -> f64 {
        let mut worst = 0.0f64;
        for k in 0..self.nblocks() {
            let l = self.sigma_chol[k].l();
            let recon = firal_linalg::gemm_a_bt(l, l);
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            let sig = self.sigma.block(k);
            for i in 0..recon.rows() {
                for j in 0..recon.cols() {
                    let diff = (recon[(i, j)] - sig[(i, j)]).to_f64();
                    num += diff * diff;
                    den += sig[(i, j)].to_f64().powi(2);
                }
            }
            worst = worst.max((num / den.max(1e-300)).sqrt());
        }
        worst
    }

    fn nblocks(&self) -> usize {
        self.num_classes - 1
    }

    /// `(x, g, coeff)` of one update's Σ⋄ contribution: the point's
    /// features, Fisher row, and the signed weight its rank-one term
    /// carries (`+w` add, `−w` remove, `1−w` label).
    fn update_term(&self, upd: &PoolUpdate<T>) -> (Vec<T>, Vec<T>, T) {
        match upd {
            PoolUpdate::Add { x, h, weight } => {
                assert_eq!(x.len(), self.dim, "Add: feature dim mismatch");
                assert_eq!(h.len(), self.nblocks(), "Add: probability dim mismatch");
                (x.clone(), fisher_row(h), *weight)
            }
            PoolUpdate::Remove { id } => {
                let p = self.lookup(*id);
                (p.x.clone(), p.g.clone(), T::ZERO - p.weight)
            }
            PoolUpdate::Label { id } => {
                let p = self.lookup(*id);
                (p.x.clone(), p.g.clone(), T::ONE - p.weight)
            }
        }
    }

    fn lookup(&self, id: u64) -> &StreamPoint<T> {
        self.points
            .iter()
            .find(|p| p.id == id)
            .unwrap_or_else(|| panic!("unknown or dead pool point id {id}"))
    }

    fn position(&self, id: u64) -> usize {
        self.points
            .iter()
            .position(|p| p.id == id)
            .unwrap_or_else(|| panic!("unknown or dead pool point id {id}"))
    }

    fn apply_to_registry(&mut self, upd: &PoolUpdate<T>) {
        match upd {
            PoolUpdate::Add { x, h, weight } => {
                let g = fisher_row(h);
                self.points.push(StreamPoint {
                    id: self.next_id,
                    x: x.clone(),
                    h: h.clone(),
                    weight: *weight,
                    g,
                });
                self.next_id += 1;
            }
            PoolUpdate::Remove { id } => {
                let pos = self.position(*id);
                self.points.remove(pos);
            }
            PoolUpdate::Label { id } => {
                let pos = self.position(*id);
                let p = self.points.remove(pos);
                // The point's Fisher term joins B(H_o): replicated rank-one
                // on every rank, canonical order, no communication.
                self.bho.rank_one_update(&p.g, &p.x);
                self.labeled_x = append_row(&self.labeled_x, &p.x);
                self.labeled_h = append_row(&self.labeled_h, &p.h);
            }
        }
    }

    /// From-scratch rebuild through the exact one-shot build path
    /// (collective): materialize this rank's shard + weight slice and run
    /// [`Executor::build_round_state`], then adopt its blocks.
    fn rebuild(&mut self, comm: &dyn Communicator) {
        let shard = self.materialize_shard(comm.rank(), comm.size());
        let range = shard_range(self.live(), comm.rank(), comm.size());
        let z_local: Vec<T> = range.map(|i| self.points[i].weight).collect();
        let exec = Executor::new(comm, &shard);
        let built = exec.build_round_state(&z_local);
        self.bho = built.bho;
        self.sigma = built.sigma;
        self.sigma_chol = built.sigma_chol;
        self.commits_since_refactor = 0;
    }
}

/// `g_k = h_k (1 − h_k)` for one probability row.
fn fisher_row<T: Scalar>(h: &[T]) -> Vec<T> {
    h.iter().map(|&hk| hk * (T::ONE - hk)).collect()
}

/// Append one row to a row-major matrix (the labeled panel grows by one
/// point per label).
fn append_row<T: Scalar>(m: &Matrix<T>, row: &[T]) -> Matrix<T> {
    assert_eq!(m.cols(), row.len(), "append_row width mismatch");
    let mut data = m.as_slice().to_vec();
    data.extend_from_slice(row);
    Matrix::from_vec(m.rows() + 1, m.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelaxConfig;
    use firal_comm::SelfComm;
    use firal_data::SyntheticConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn tiny(seed: u64, n: usize, d: usize, c: usize) -> (SelectionProblem<f64>, Vec<f64>) {
        let ds = SyntheticConfig::new(c, d)
            .with_pool_size(n)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        let problem = SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            c,
        );
        // Plausible z⋄-style weights: positive, O(b/n)-scaled.
        let weights: Vec<f64> = (0..n).map(|i| 0.05 + 0.01 * (i % 7) as f64).collect();
        (problem, weights)
    }

    fn cfg_interval(k: usize) -> FiralConfig<f64> {
        FiralConfig {
            relax: RelaxConfig::default(),
            refactor_interval: k,
            ..Default::default()
        }
    }

    fn random_update(
        rng: &mut StdRng,
        state: &StreamingState<f64>,
        d: usize,
        cm1: usize,
    ) -> PoolUpdate<f64> {
        let ids = state.ids();
        // Keep the pool from draining: removals/labels only when enough
        // points are live.
        if ids.len() > 8 && rng.gen::<bool>() {
            let id = ids[rng.gen_range(0..ids.len())];
            if rng.gen::<bool>() {
                PoolUpdate::Remove { id }
            } else {
                PoolUpdate::Label { id }
            }
        } else {
            PoolUpdate::Add {
                x: (0..d).map(|_| 2.0 * rng.gen::<f64>() - 1.0).collect(),
                h: (0..cm1)
                    .map(|_| 0.1 + 0.6 * rng.gen::<f64>() / cm1 as f64)
                    .collect(),
                weight: 0.02 + 0.1 * rng.gen::<f64>(),
            }
        }
    }

    /// The incremental state must track the from-scratch rebuild closely
    /// between refactor boundaries (interval high enough never to trigger),
    /// and snap to it bitwise at a forced refactor.
    #[test]
    fn drift_is_bounded_and_refactor_snaps_bitwise() {
        let comm = SelfComm::new();
        let (problem, weights) = tiny(3, 24, 4, 3);
        let mut st = StreamingState::new(&comm, &problem, &weights, &cfg_interval(usize::MAX));
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..40 {
            let batch: Vec<_> = (0..3).map(|_| random_update(&mut rng, &st, 4, 2)).collect();
            let commit = st.commit(&comm, &batch);
            assert!(!commit.refactored, "interval MAX must never refactor");
            assert_eq!(commit.version, round + 1);
        }
        let drift = st.factor_drift();
        assert!(
            drift < 1e-10,
            "incremental factors drifted too far from Σ⋄: {drift}"
        );

        // Refactor boundary: bitwise equal to the one-shot build.
        let mut refreshed = st.clone();
        refreshed.refactor(&comm);
        let shard = st.materialize_shard(0, 1);
        let z: Vec<f64> = (0..st.live()).map(|i| st.points[i].weight).collect();
        let exec = Executor::new(&comm, &shard);
        let built = exec.build_round_state(&z);
        for k in 0..st.nblocks() {
            assert_eq!(
                refreshed.sigma.block(k).as_slice(),
                built.sigma.block(k).as_slice(),
                "refactored Σ⋄ block {k} must be bitwise the one-shot build"
            );
            assert_eq!(
                refreshed.sigma_chol[k].l().as_slice(),
                built.sigma_chol[k].l().as_slice(),
                "refactored factor {k} must be bitwise the one-shot build"
            );
        }
        // ... and close to (but not necessarily bitwise) the incremental state.
        assert!(refreshed.factor_drift() < 1e-13);
    }

    /// Add → Remove of the same point restores Σ⋄ (up to rounding) and the
    /// registry exactly.
    #[test]
    fn add_then_remove_round_trips() {
        let comm = SelfComm::new();
        let (problem, weights) = tiny(5, 16, 3, 3);
        let mut st = StreamingState::new(&comm, &problem, &weights, &cfg_interval(usize::MAX));
        let before = st.fingerprint();
        let live0 = st.live();
        st.commit(
            &comm,
            &[PoolUpdate::Add {
                x: vec![0.4, -0.2, 0.9],
                h: vec![0.3, 0.25],
                weight: 0.125,
            }],
        );
        assert_eq!(st.live(), live0 + 1);
        let id = *st.ids().last().unwrap();
        st.commit(&comm, &[PoolUpdate::Remove { id }]);
        assert_eq!(st.live(), live0);
        assert_ne!(st.fingerprint(), before, "version advanced");
        assert!(st.factor_drift() < 1e-12);
        // The dense Σ⋄ returns to the original values up to rounding.
        st.refactor(&comm);
        let (problem2, _) = tiny(5, 16, 3, 3);
        assert_eq!(st.live(), problem2.pool_size());
    }

    /// Labeling moves a point's Fisher term from H_z⋄ to H_o: the labeled
    /// count grows, bho gains the term, and Σ⋄ stays consistent.
    #[test]
    fn label_moves_mass_into_bho() {
        let comm = SelfComm::new();
        let (problem, weights) = tiny(7, 16, 3, 3);
        let mut st = StreamingState::new(&comm, &problem, &weights, &cfg_interval(usize::MAX));
        let labeled0 = st.labeled();
        let bho_before = st.bho.block(0).trace();
        let id = st.ids()[4];
        let commit = st.commit(&comm, &[PoolUpdate::Label { id }]);
        assert_eq!(commit.applied, 1);
        assert_eq!(st.labeled(), labeled0 + 1);
        assert_eq!(st.live(), 15);
        assert!(st.bho.block(0).trace() >= bho_before);
        assert!(st.factor_drift() < 1e-12);
    }

    /// The commit-then-select path must agree with a one-shot executor
    /// round over the equivalent static problem (selection equality — the
    /// weaker cross-path contract; bitwise is pinned within one path by
    /// the consistency row).
    #[test]
    fn streaming_select_matches_one_shot_round_after_refactor() {
        let comm = SelfComm::new();
        let (problem, weights) = tiny(11, 30, 4, 3);
        let mut st = StreamingState::new(&comm, &problem, &weights, &cfg_interval(usize::MAX));
        // Mutate: drop two points, add one.
        let ids = st.ids();
        st.commit(
            &comm,
            &[
                PoolUpdate::Remove { id: ids[3] },
                PoolUpdate::Remove { id: ids[17] },
                PoolUpdate::Add {
                    x: vec![0.3, -0.4, 0.1, 0.6],
                    h: vec![0.2, 0.3],
                    weight: 0.07,
                },
            ],
        );
        st.refactor(&comm);
        let eta = 6.0 * (st.materialize_shard(0, 1).ehat() as f64).sqrt();
        let run = st.select(&comm, 4, eta, EigSolver::Exact);

        // One-shot reference: the same mutated pool as a static problem.
        let shard = st.materialize_shard(0, 1);
        let z: Vec<f64> = (0..st.live()).map(|i| st.points[i].weight).collect();
        let exec = Executor::new(&comm, &shard);
        let reference = exec.round(&z, 4, eta, EigSolver::Exact);
        assert_eq!(run.selected, reference.selected);
    }

    /// A downdate that kills positive definiteness must take the ridge
    /// fallback, not panic, and leave a usable factor.
    #[test]
    fn downdate_failure_takes_the_ridge_fallback() {
        let comm = SelfComm::new();
        let (problem, _) = tiny(13, 12, 3, 3);
        // Huge weights make removal catastrophic for the factor.
        let weights = vec![1.0; 12];
        let cfg = cfg_interval(usize::MAX);
        let mut st = StreamingState::new(&comm, &problem, &weights, &cfg);
        // Remove many heavy points in one batch; at least one downdate is
        // likely to trip. Whether or not it does, the state must stay
        // finite and consistent.
        let ids = st.ids();
        let batch: Vec<_> = ids[..9]
            .iter()
            .map(|&id| PoolUpdate::Remove { id })
            .collect();
        let commit = st.commit(&comm, &batch);
        assert_eq!(st.live(), 3);
        assert!(st.factor_drift() < 1e-6, "drift {}", st.factor_drift());
        // The summary reports the fallbacks it took (possibly zero on this
        // data, but the path is exercised by the linalg error test too).
        let _ = commit.downdate_fallbacks;
    }
}
