//! SPMD entry points for Approx-FIRAL (§III-C) — thin wrappers.
//!
//! The distributed RELAX/ROUND math lives in [`crate::exec`]; this module
//! keeps the historical free-function API for callers that hold a
//! communicator and drive ranks directly (bench harnesses, examples,
//! integration tests). Each function constructs an [`Executor`] for the
//! calling rank and delegates — there is no second copy of the algorithms
//! here.
//!
//! These entry points are transport-agnostic: the communicator may be a
//! `SelfComm`, a `ThreadComm` thread endpoint, or a `SocketComm` process
//! endpoint (`firal_comm::socket_launch` in-process, or one OS process per
//! rank via the `spmd_launch` binary, which sets the `FIRAL_SPMD_*` env
//! vars and joins ranks with `SocketComm::from_env`).

use firal_comm::{CommScalar, CommStats, Communicator};

use crate::config::{FiralConfig, RelaxConfig};
use crate::exec::{EtaGroupGeometry, Executor, RelaxRun, RoundRun};
use crate::problem::SelectionProblem;
use crate::round::EigSolver;
use crate::strategies::{strategy_by_name, DistStrategy, SelectError};

pub use crate::exec::ShardedProblem;

/// Output of the distributed RELAX solve (per rank).
pub type ParallelRelaxOutput<T> = RelaxRun<T>;

/// Output of the distributed ROUND solve (per rank).
pub type ParallelRoundOutput<T> = RoundRun<T>;

/// Distributed Algorithm 2 on one rank of an SPMD group.
pub fn parallel_relax<T: CommScalar>(
    comm: &dyn Communicator,
    shard: &ShardedProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
) -> ParallelRelaxOutput<T> {
    Executor::new(comm, shard).relax(budget, config)
}

/// Distributed Algorithm 3 on one rank of an SPMD group (exact Line-9
/// eigensolver; use [`Executor::round`] directly for the Lanczos variant).
pub fn parallel_round<T: CommScalar>(
    comm: &dyn Communicator,
    shard: &ShardedProblem<T>,
    z_local: &[T],
    budget: usize,
    eta: T,
) -> ParallelRoundOutput<T> {
    Executor::new(comm, shard).round(z_local, budget, eta, EigSolver::Exact)
}

/// Convenience: run the full distributed Approx-FIRAL (RELAX then ROUND)
/// on one rank of an SPMD group, given the *full* problem (each rank shards
/// it internally). Returns the selected global indices (identical on all
/// ranks).
pub fn parallel_approx_firal<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
    eta: T,
) -> Vec<usize> {
    parallel_approx_firal_threads(comm, problem, budget, config, eta, 0)
}

/// [`parallel_approx_firal`] with an explicit intra-rank kernel pool: this
/// rank's dense kernels fan out on `threads` workers of its own sub-pool
/// (the ranks × threads hybrid tier; `0` inherits the ambient pool).
/// Results are bitwise identical at every `threads` setting.
pub fn parallel_approx_firal_threads<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
    eta: T,
    threads: usize,
) -> Vec<usize> {
    let shard = ShardedProblem::shard(problem, comm.rank(), comm.size());
    let exec = Executor::new(comm, &shard).with_threads(threads);
    let relax = exec.relax(budget, config);
    exec.round(&relax.z_local, budget, eta, EigSolver::Exact)
        .selected
}

/// Per-rank result of [`parallel_select`]: the selection plus this rank's
/// collective record and wall-clock, so the scaling harnesses can print a
/// per-strategy row without re-instrumenting.
#[derive(Debug, Clone)]
pub struct ParallelSelectRun {
    /// Selected **global** pool indices, identical on all ranks.
    pub selected: Vec<usize>,
    /// Seconds this rank spent inside the selection.
    pub seconds: f64,
    /// Collectives this rank issued during the selection.
    pub comm_stats: CommStats,
}

/// Run any [`DistStrategy`] on one rank of an SPMD group, given the *full*
/// problem (each rank shards it internally, mirroring
/// [`parallel_approx_firal`]). `threads` sizes this rank's private kernel
/// sub-pool (`0` inherits the ambient pool). Every rank returns the
/// identical selection.
pub fn parallel_select<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    strategy: &dyn DistStrategy<T>,
    budget: usize,
    seed: u64,
    threads: usize,
) -> Result<ParallelSelectRun, SelectError> {
    let shard = ShardedProblem::shard(problem, comm.rank(), comm.size());
    let exec = Executor::new(comm, &shard).with_threads(threads);
    let stats0 = comm.stats();
    let t0 = std::time::Instant::now();
    let selected = strategy.select_dist(&exec, budget, seed)?;
    Ok(ParallelSelectRun {
        selected,
        seconds: t0.elapsed().as_secs_f64(),
        comm_stats: comm.stats().since(&stats0),
    })
}

/// [`parallel_select`] with the strategy resolved from the registry
/// ([`strategy_by_name`], default configuration). Fails with
/// [`SelectError::UnknownStrategy`] for unregistered names.
pub fn parallel_select_by_name<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    strategy: &str,
    budget: usize,
    seed: u64,
    threads: usize,
) -> Result<ParallelSelectRun, SelectError> {
    let resolved = strategy_by_name::<T>(strategy).ok_or_else(|| SelectError::UnknownStrategy {
        name: strategy.to_string(),
    })?;
    parallel_select(comm, problem, resolved.as_ref(), budget, seed, threads)
}

/// Per-rank result of [`parallel_approx_firal_grouped`]: the RELAX and
/// ROUND runs plus this rank's coordinates in the 2D geometry and the
/// per-sub-communicator traffic, so harnesses can bill communication to
/// the group and cross axes separately.
#[derive(Debug, Clone)]
pub struct GroupedFiralRun<T> {
    /// The RELAX solve over this rank's η-group communicator.
    pub relax: RelaxRun<T>,
    /// The winning ROUND run of the distributed η sweep (selection, η★,
    /// criterion identical on every rank).
    pub round: RoundRun<T>,
    /// The geometry the world was split into.
    pub geometry: EtaGroupGeometry,
    /// This rank's η group (= its contiguous grid-slice owner id).
    pub group: usize,
    /// Collectives this rank issued on the group communicator.
    pub group_stats: CommStats,
    /// Collectives this rank issued on the cross-group communicator.
    pub cross_stats: CommStats,
}

/// Full Approx-FIRAL over the 2D rank geometry `p = p_shard × p_eta`
/// (`config.eta_groups`; see [`EtaGroupGeometry`]) on one rank of an SPMD
/// group.
///
/// The world communicator splits into `p_eta` η-group communicators (color
/// = group) and `p_shard` cross-group communicators (color = shard rank);
/// RELAX runs inside each group on the group's `p_shard`-way pool partition
/// (every group computes bit-identical `z⋄` — the probe panels are seeded,
/// and group collectives reduce in rank order), then
/// [`Executor::select_eta_grouped`] distributes the η grid across the
/// groups. With `eta_groups ≤ 1` this degenerates to the sequential grid
/// sweep of [`Executor::select_eta`] on the whole world — same bits, one
/// code path.
///
/// A fixed `config.round.eta` skips the grid, making η groups pure
/// redundancy; this entry point therefore ignores `config.round.eta` and
/// always runs the §IV-A grid rule over `config.round.eta_grid`.
pub fn parallel_approx_firal_grouped<T: CommScalar>(
    world: &dyn Communicator,
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &FiralConfig<T>,
) -> GroupedFiralRun<T> {
    let geometry = EtaGroupGeometry::new(world.size(), config.eta_groups);
    let group = geometry.group_of(world.rank());
    let shard_rank = geometry.shard_rank_of(world.rank());
    // Key = world rank: group ranks keep world order (shard r of the group
    // is world rank g·p_shard + r) and cross ranks are exactly the group
    // ids — the ordering select_eta_grouped's tie-breaking relies on.
    let group_comm = world.split(group, world.rank());
    let cross_comm = world.split(shard_rank, world.rank());

    let shard = ShardedProblem::shard(problem, shard_rank, geometry.p_shard);
    let exec = Executor::new(&*group_comm, &shard).with_threads(config.threads);
    let relax = exec.relax(budget, &config.relax);
    let round =
        exec.select_eta_grouped(&relax.z_local, budget, &config.round.eta_grid, &*cross_comm);
    GroupedFiralRun {
        relax,
        round,
        geometry,
        group,
        group_stats: group_comm.stats(),
        cross_stats: cross_comm.stats(),
    }
}
