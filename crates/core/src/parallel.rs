//! SPMD entry points for Approx-FIRAL (§III-C) — thin wrappers.
//!
//! The distributed RELAX/ROUND math lives in [`crate::exec`]; this module
//! keeps the historical free-function API for callers that hold a
//! communicator and drive ranks directly (bench harnesses, examples,
//! integration tests). Each function constructs an [`Executor`] for the
//! calling rank and delegates — there is no second copy of the algorithms
//! here.
//!
//! These entry points are transport-agnostic: the communicator may be a
//! `SelfComm`, a `ThreadComm` thread endpoint, or a `SocketComm` process
//! endpoint (`firal_comm::socket_launch` in-process, or one OS process per
//! rank via the `spmd_launch` binary, which sets the `FIRAL_SPMD_*` env
//! vars and joins ranks with `SocketComm::from_env`).

use firal_comm::{CommScalar, Communicator};

use crate::config::RelaxConfig;
use crate::exec::{Executor, RelaxRun, RoundRun};
use crate::problem::SelectionProblem;
use crate::round::EigSolver;

pub use crate::exec::ShardedProblem;

/// Output of the distributed RELAX solve (per rank).
pub type ParallelRelaxOutput<T> = RelaxRun<T>;

/// Output of the distributed ROUND solve (per rank).
pub type ParallelRoundOutput<T> = RoundRun<T>;

/// Distributed Algorithm 2 on one rank of an SPMD group.
pub fn parallel_relax<T: CommScalar>(
    comm: &dyn Communicator,
    shard: &ShardedProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
) -> ParallelRelaxOutput<T> {
    Executor::new(comm, shard).relax(budget, config)
}

/// Distributed Algorithm 3 on one rank of an SPMD group (exact Line-9
/// eigensolver; use [`Executor::round`] directly for the Lanczos variant).
pub fn parallel_round<T: CommScalar>(
    comm: &dyn Communicator,
    shard: &ShardedProblem<T>,
    z_local: &[T],
    budget: usize,
    eta: T,
) -> ParallelRoundOutput<T> {
    Executor::new(comm, shard).round(z_local, budget, eta, EigSolver::Exact)
}

/// Convenience: run the full distributed Approx-FIRAL (RELAX then ROUND)
/// on one rank of an SPMD group, given the *full* problem (each rank shards
/// it internally). Returns the selected global indices (identical on all
/// ranks).
pub fn parallel_approx_firal<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
    eta: T,
) -> Vec<usize> {
    parallel_approx_firal_threads(comm, problem, budget, config, eta, 0)
}

/// [`parallel_approx_firal`] with an explicit intra-rank kernel pool: this
/// rank's dense kernels fan out on `threads` workers of its own sub-pool
/// (the ranks × threads hybrid tier; `0` inherits the ambient pool).
/// Results are bitwise identical at every `threads` setting.
pub fn parallel_approx_firal_threads<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
    eta: T,
    threads: usize,
) -> Vec<usize> {
    let shard = ShardedProblem::shard(problem, comm.rank(), comm.size());
    let exec = Executor::new(comm, &shard).with_threads(threads);
    let relax = exec.relax(budget, config);
    exec.round(&relax.z_local, budget, eta, EigSolver::Exact)
        .selected
}
