//! SPMD Approx-FIRAL over a [`firal_comm::Communicator`] (§III-C).
//!
//! Data decomposition and collective placement follow the paper
//! operation-for-operation:
//!
//! * the pool (`x_i`, `h_i`) is sharded evenly across ranks
//!   ([`firal_comm::shard_range`]); the labeled panel and all `O(cd²)`
//!   block-diagonal state are replicated;
//! * RELAX: the probe panel is **Bcast** from rank 0; `B(Σ_z)` partial
//!   block sums and the two-GEMM matvec partial results are **Allreduce**d;
//!   gradients are purely local; the mirror-descent normalizer is a scalar
//!   Allreduce;
//! * ROUND: the Eq. 17 argmax is an **Allreduce (MAXLOC)**; the winning
//!   point's `(x, h)` is **Bcast** from its owner; the per-block
//!   eigenvalue solves are distributed over ranks and **Allgather**ed.
//!
//! With `p = 1` the collectives degenerate to no-ops and the arithmetic is
//! identical to the serial solvers.

use firal_comm::{shard_range, CommScalar, Communicator, ReduceOp};
use firal_linalg::{eigvalsh, BlockDiag, Cholesky, Matrix, Scalar};
use firal_solvers::{cg_solve_panel, rademacher_panel, CgConfig, LinearOperator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::RelaxConfig;
use crate::hessian::{hutchinson_gradients, BlockJacobi, PoolHessian};
use crate::problem::SelectionProblem;
use crate::round::round_scores;
use crate::timing::PhaseTimer;

/// One rank's shard of a selection problem.
#[derive(Debug, Clone)]
pub struct ShardedProblem<T: Scalar> {
    /// Local pool features (`n_local × d`).
    pub local_x: Matrix<T>,
    /// Local pool probabilities (`n_local × (c-1)`).
    pub local_h: Matrix<T>,
    /// Replicated labeled features.
    pub labeled_x: Matrix<T>,
    /// Replicated labeled probabilities.
    pub labeled_h: Matrix<T>,
    /// Class count.
    pub num_classes: usize,
    /// Global pool size `n`.
    pub global_n: usize,
    /// Global index of the first local point.
    pub offset: usize,
}

impl<T: Scalar> ShardedProblem<T> {
    /// Take this rank's shard of a full problem (the §III-C "evenly
    /// distributing h_i and x_i of n points" decomposition).
    pub fn shard(problem: &SelectionProblem<T>, rank: usize, size: usize) -> Self {
        let n = problem.pool_size();
        let d = problem.dim();
        let cm1 = problem.nblocks();
        let range = shard_range(n, rank, size);
        let mut local_x = Matrix::zeros(range.len(), d);
        let mut local_h = Matrix::zeros(range.len(), cm1);
        for (row, i) in range.clone().enumerate() {
            local_x.row_mut(row).copy_from_slice(problem.pool_x.row(i));
            local_h.row_mut(row).copy_from_slice(problem.pool_h.row(i));
        }
        Self {
            local_x,
            local_h,
            labeled_x: problem.labeled_x.clone(),
            labeled_h: problem.labeled_h.clone(),
            num_classes: problem.num_classes,
            global_n: n,
            offset: range.start,
        }
    }

    /// Local pool size.
    pub fn local_n(&self) -> usize {
        self.local_x.rows()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.local_x.cols()
    }

    /// Block count `c-1`.
    pub fn nblocks(&self) -> usize {
        self.num_classes - 1
    }

    /// Stacked order `ê`.
    pub fn ehat(&self) -> usize {
        self.dim() * self.nblocks()
    }
}

/// Distributed `Σ_z` operator: local two-GEMM partial matvec + Allreduce,
/// plus the replicated labeled term.
struct DistributedSigma<'a, T: Scalar> {
    local_hz: PoolHessian<'a, T>,
    ho: PoolHessian<'a, T>,
    comm: &'a dyn Communicator,
}

impl<T: CommScalar> LinearOperator<T> for DistributedSigma<'_, T> {
    fn dim(&self) -> usize {
        self.ho.dim()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        self.local_hz.apply(x, y);
        T::allreduce(self.comm, y, ReduceOp::Sum);
        let mut tmp = vec![T::ZERO; y.len()];
        self.ho.apply(x, &mut tmp);
        for (a, b) in y.iter_mut().zip(tmp.iter()) {
            *a += *b;
        }
    }

    fn apply_panel(&self, x: &Matrix<T>) -> Matrix<T> {
        let mut local = self.local_hz.apply_panel(x);
        T::allreduce(self.comm, local.as_mut_slice(), ReduceOp::Sum);
        let ho_part = self.ho.apply_panel(x);
        local.add_scaled(T::ONE, &ho_part);
        local
    }
}

/// Output of the distributed RELAX solve (per rank).
#[derive(Debug, Clone)]
pub struct ParallelRelaxOutput<T> {
    /// This rank's shard of `z⋄` (aligned with its local pool rows).
    pub z_local: Vec<T>,
    /// The full `z⋄` assembled with Allgather (identical on all ranks).
    pub z_diamond: Vec<T>,
    /// Mirror-descent iterations executed.
    pub iterations: usize,
    /// Phase timings (precond / cg / matvec / gradient / other).
    pub timer: PhaseTimer,
    /// Total CG iterations.
    pub total_cg_iters: usize,
}

/// Distributed Algorithm 2.
pub fn parallel_relax<T: CommScalar>(
    comm: &dyn Communicator,
    shard: &ShardedProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
) -> ParallelRelaxOutput<T> {
    let n = shard.global_n;
    let ehat = shard.ehat();
    let b = T::from_usize(budget);
    let mut timer = PhaseTimer::new();

    let mut z_local = vec![T::ONE / T::from_usize(n); shard.local_n()];
    let cg_cfg = CgConfig {
        rel_tol: config.cg_tol,
        max_iter: config.cg_max_iter,
    };

    let ho = PoolHessian::unweighted(&shard.labeled_x, &shard.labeled_h);
    let bho = timer.time("precond", || ho.block_diagonal());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut total_cg_iters = 0usize;
    let mut prev_obj: Option<T> = None;
    let mut iterations = 0usize;

    for t in 1..=config.md.max_iters {
        iterations = t;

        // Probe panel: drawn on rank 0, Bcast to the group (§III-C).
        let mut v: Matrix<T> = if comm.rank() == 0 {
            rademacher_panel(ehat, config.probes, &mut rng)
        } else {
            Matrix::zeros(ehat, config.probes)
        };
        T::bcast(comm, v.as_mut_slice(), 0);

        // Gradients evaluate at the feasible point b·z of Eq. 5, matching
        // the serial solver.
        let zb_local: Vec<T> = z_local.iter().map(|&v| v * b).collect();
        let local_hz = PoolHessian::weighted(&shard.local_x, &shard.local_h, zb_local.clone());
        let sigma = DistributedSigma {
            local_hz,
            ho: PoolHessian::unweighted(&shard.labeled_x, &shard.labeled_h),
            comm,
        };

        // Preconditioner: local block partial sums + Allreduce + local
        // factorization (every rank factors all c-1 blocks).
        let prec = timer.time("precond", || {
            let local_hz =
                PoolHessian::weighted(&shard.local_x, &shard.local_h, zb_local.clone());
            let mut bsz = local_hz.block_diagonal();
            {
                // Allreduce the concatenated block entries.
                let dim = bsz.dim();
                let cm1 = bsz.nblocks();
                let mut flat: Vec<T> = Vec::with_capacity(cm1 * dim * dim);
                for k in 0..cm1 {
                    flat.extend_from_slice(bsz.block(k).as_slice());
                }
                T::allreduce(comm, &mut flat, ReduceOp::Sum);
                for k in 0..cm1 {
                    bsz.block_mut(k)
                        .as_mut_slice()
                        .copy_from_slice(&flat[k * dim * dim..(k + 1) * dim * dim]);
                }
            }
            bsz.add_scaled(T::ONE, &bho);
            BlockJacobi::new(&bsz)
                .or_else(|_| BlockJacobi::new_with_ridge(&bsz, T::from_f64(1e-8)))
                .expect("preconditioner factorization failed")
        });

        // W ← Σ⁻¹V ; W ← H_pW ; W ← Σ⁻¹W (H_p = Σ with z ≡ 1 pool weights).
        let (w1, tel1) = timer.time("cg", || cg_solve_panel(&sigma, &prec, &v, &cg_cfg));
        total_cg_iters += tel1.iter().map(|t| t.iterations).sum::<usize>();

        let hp_local = PoolHessian::unweighted(&shard.local_x, &shard.local_h);
        let apply_hp = |panel: &Matrix<T>| -> Matrix<T> {
            let mut out = hp_local.apply_panel(panel);
            T::allreduce(comm, out.as_mut_slice(), ReduceOp::Sum);
            out
        };
        let w2 = timer.time("matvec", || apply_hp(&w1));
        let hpv = timer.time("matvec", || apply_hp(&v));

        let (w3, tel2) = timer.time("cg", || cg_solve_panel(&sigma, &prec, &w2, &cg_cfg));
        total_cg_iters += tel2.iter().map(|t| t.iterations).sum::<usize>();

        // Local gradients (no communication).
        let g = timer.time("gradient", || {
            hutchinson_gradients(&shard.local_x, &shard.local_h, &v, &w3)
        });

        // Mirror-descent update: global max |g| and global normalizer.
        timer.time("other", || {
            let mut local_max = T::ZERO;
            for &gi in &g {
                local_max = local_max.maxv(gi.abs());
            }
            let mut buf = [local_max.to_f64()];
            comm.allreduce_f64(&mut buf, ReduceOp::Max);
            let max_abs = T::from_f64(buf[0]);

            let beta = config.md.beta0 / T::from_usize(t).sqrt() / max_abs.maxv(T::MIN_POSITIVE);
            let mut local_sum = T::ZERO;
            for (zi, &gi) in z_local.iter_mut().zip(g.iter()) {
                *zi *= (beta * gi).exp();
                local_sum += *zi;
            }
            let mut sum_buf = [local_sum.to_f64()];
            comm.allreduce_f64(&mut sum_buf, ReduceOp::Sum);
            let total = T::from_f64(sum_buf[0]);
            for zi in z_local.iter_mut() {
                *zi /= total;
            }
        });

        // Objective estimate (replicated panels ⇒ identical on all ranks).
        let f_est = {
            let mut acc = T::ZERO;
            for j in 0..config.probes {
                let mut col = T::ZERO;
                for i in 0..ehat {
                    col += w1[(i, j)] * hpv[(i, j)];
                }
                acc += col;
            }
            acc / T::from_usize(config.probes)
        };
        if let Some(prev) = prev_obj {
            if ((f_est - prev) / prev.abs().maxv(T::MIN_POSITIVE)).abs() < config.md.obj_rel_tol {
                break;
            }
        }
        prev_obj = Some(f_est);
    }

    // Assemble the global z⋄ (Allgatherv in rank order = global order).
    let scaled: Vec<T> = z_local.iter().map(|&v| v * b).collect();
    let z_diamond = T::allgatherv(comm, &scaled);
    assert_eq!(z_diamond.len(), n, "allgathered z has wrong length");

    ParallelRelaxOutput {
        z_local: scaled,
        z_diamond,
        iterations,
        timer,
        total_cg_iters,
    }
}

/// Output of the distributed ROUND solve (per rank).
#[derive(Debug, Clone)]
pub struct ParallelRoundOutput<T> {
    /// Selected **global** pool indices, identical on all ranks.
    pub selected: Vec<usize>,
    /// η used.
    pub eta: T,
    /// Phase timings (objective / eig / other).
    pub timer: PhaseTimer,
}

/// Distributed Algorithm 3.
pub fn parallel_round<T: CommScalar>(
    comm: &dyn Communicator,
    shard: &ShardedProblem<T>,
    z_local: &[T],
    budget: usize,
    eta: T,
) -> ParallelRoundOutput<T> {
    let d = shard.dim();
    let cm1 = shard.nblocks();
    let ehat = shard.ehat();
    let rank = comm.rank();
    let size = comm.size();
    let binv = T::ONE / T::from_usize(budget);
    let mut timer = PhaseTimer::new();

    // Block diagonals of Σ⋄ (Allreduce of local partial sums) and H_o.
    let bho = PoolHessian::unweighted(&shard.labeled_x, &shard.labeled_h).block_diagonal();
    let mut sigma = timer.time("other", || {
        let local =
            PoolHessian::weighted(&shard.local_x, &shard.local_h, z_local.to_vec())
                .block_diagonal();
        let mut flat: Vec<T> = Vec::with_capacity(cm1 * d * d);
        for k in 0..cm1 {
            flat.extend_from_slice(local.block(k).as_slice());
        }
        T::allreduce(comm, &mut flat, ReduceOp::Sum);
        let blocks: Vec<Matrix<T>> = (0..cm1)
            .map(|k| Matrix::from_vec(d, d, flat[k * d * d..(k + 1) * d * d].to_vec()))
            .collect();
        BlockDiag::from_blocks(blocks)
    });
    sigma.add_scaled(T::ONE, &bho);

    let sigma_chol: Vec<Cholesky<T>> = sigma
        .blocks()
        .iter()
        .map(|blk| Cholesky::new(blk).or_else(|_| Cholesky::new_with_ridge(blk, T::from_f64(1e-8))))
        .collect::<firal_linalg::Result<Vec<_>>>()
        .expect("Σ⋄ blocks must be SPD");

    // B₁⁻¹ (replicated).
    let mut b_inv = timer.time("other", || {
        let mut b1 = sigma.clone();
        let sqrt_ehat = T::from_usize(ehat).sqrt();
        for k in 0..cm1 {
            b1.block_mut(k).scale_inplace(sqrt_ehat);
            b1.block_mut(k).add_scaled(eta * binv, bho.block(k));
        }
        b1.inverse().expect("B₁ blocks must be SPD")
    });

    // Local g_ik table.
    let n_local = shard.local_n();
    let gik = {
        let mut g = Matrix::zeros(n_local, cm1);
        for i in 0..n_local {
            let hrow = shard.local_h.row(i);
            let grow = g.row_mut(i);
            for k in 0..cm1 {
                grow[k] = hrow[k] * (T::ONE - hrow[k]);
            }
        }
        g
    };

    let mut h_acc = BlockDiag::<T>::zeros(cm1, d);
    let mut taken_local = vec![false; n_local];
    let mut selected = Vec::with_capacity(budget);

    // Which blocks this rank owns for the distributed eigensolve.
    let my_blocks = shard_range(cm1, rank, size);

    for _t in 0..budget {
        // Local Eq. 17 scores; global argmax via Allreduce MAXLOC.
        let scores = timer.time("objective", || {
            round_scores(&shard.local_x, &gik, &b_inv, &sigma, eta)
        });
        let mut local_best = (f64::NEG_INFINITY, u64::MAX);
        for (i, &s) in scores.iter().enumerate() {
            if !taken_local[i] {
                let sv = s.to_f64();
                if sv > local_best.0 {
                    local_best = (sv, (shard.offset + i) as u64);
                }
            }
        }
        let (_, global_idx) = comm.allreduce_maxloc(local_best.0, local_best.1);
        let it = global_idx as usize;
        assert!(it != u64::MAX as usize, "ROUND ran out of candidates");
        selected.push(it);

        // Owner broadcasts x_{i_t}, h_{i_t} (the Line-11 Bcast of §III-C).
        let owner_local = it.checked_sub(shard.offset).filter(|&l| l < n_local);
        let mut payload = vec![T::ZERO; d + cm1];
        let owner_rank = {
            // Determine owner rank from the global index.
            let mut owner = 0usize;
            for r in 0..size {
                let range = shard_range(shard.global_n, r, size);
                if range.contains(&it) {
                    owner = r;
                    break;
                }
            }
            owner
        };
        if let Some(l) = owner_local {
            taken_local[l] = true;
            payload[..d].copy_from_slice(shard.local_x.row(l));
            payload[d..].copy_from_slice(shard.local_h.row(l));
        }
        T::bcast(comm, &mut payload, owner_rank);
        let (xit, hit) = payload.split_at(d);

        // (H)_k update (replicated state, local arithmetic).
        timer.time("other", || {
            h_acc.add_scaled(binv, &bho);
            let gammas: Vec<T> = hit.iter().map(|&h| h * (T::ONE - h)).collect();
            h_acc.rank_one_update(&gammas, xit);
        });

        // Distributed eigensolve: each rank does its block share, then
        // Allgather (§III-C Line 9).
        let lambdas = timer.time("eig", || {
            let mut local_vals = Vec::with_capacity(my_blocks.len() * d);
            for k in my_blocks.clone() {
                let ch = &sigma_chol[k];
                let hk = h_acc.block(k);
                let mut y = Matrix::zeros(d, d);
                for j in 0..d {
                    let col = ch.solve_l(&hk.col(j));
                    y.set_col(j, &col);
                }
                let mut c = Matrix::zeros(d, d);
                for j in 0..d {
                    let col = ch.solve_l(&y.row(j).to_vec());
                    c.set_col(j, &col);
                }
                c.symmetrize();
                local_vals.extend(eigvalsh(&c).expect("generalized eigensolve"));
            }
            T::allgatherv(comm, &local_vals)
        });

        let nu = timer.time("other", || firal_solvers::solve_nu(&lambdas, eta));

        // Same ν-backoff as the serial solver (protects the f32 path).
        b_inv = timer.time("other", || {
            let mut nu_eff = nu;
            let floor = T::from_usize(ehat).sqrt() * T::from_f64(1e-3);
            for _attempt in 0..60 {
                let mut bt = sigma.clone();
                for k in 0..cm1 {
                    bt.block_mut(k).scale_inplace(nu_eff);
                    bt.block_mut(k).add_scaled(eta, h_acc.block(k));
                    bt.block_mut(k).add_scaled(eta * binv, bho.block(k));
                }
                if let Ok(inv) = bt.inverse() {
                    return inv;
                }
                nu_eff = if nu_eff <= floor { floor } else { nu_eff * T::TWO };
            }
            panic!("B_{{t+1}} never became SPD (η = {eta}, ν = {nu})");
        });
    }

    ParallelRoundOutput {
        selected,
        eta,
        timer,
    }
}

/// Convenience: run the full distributed Approx-FIRAL (RELAX then ROUND)
/// on one rank of an SPMD group, given the *full* problem (each rank shards
/// it internally). Returns the selected global indices (identical on all
/// ranks).
pub fn parallel_approx_firal<T: CommScalar>(
    comm: &dyn Communicator,
    problem: &SelectionProblem<T>,
    budget: usize,
    config: &RelaxConfig<T>,
    eta: T,
) -> Vec<usize> {
    let shard = ShardedProblem::shard(problem, comm.rank(), comm.size());
    let relax = parallel_relax(comm, &shard, budget, config);
    let round = parallel_round(comm, &shard, &relax.z_local, budget, eta);
    round.selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use firal_comm::{launch, SelfComm};

    fn tiny_problem(seed: u64, n: usize, d: usize, c: usize) -> SelectionProblem<f64> {
        let ds = firal_data::SyntheticConfig::new(c, d)
            .with_pool_size(n)
            .with_initial_per_class(2)
            .with_seed(seed)
            .generate::<f64>();
        let model =
            firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
                .unwrap();
        SelectionProblem::new(
            ds.pool_features.clone(),
            model.class_probs_cm1(&ds.pool_features),
            ds.initial_features.clone(),
            model.class_probs_cm1(&ds.initial_features),
            c,
        )
    }

    #[test]
    fn sharding_partitions_the_pool() {
        let p = tiny_problem(1, 25, 3, 3);
        let mut total = 0;
        for r in 0..4 {
            let s = ShardedProblem::shard(&p, r, 4);
            total += s.local_n();
            assert_eq!(s.global_n, 25);
            // Shard rows match the global panel.
            for i in 0..s.local_n() {
                assert_eq!(s.local_x.row(i), p.pool_x.row(s.offset + i));
            }
        }
        assert_eq!(total, 25);
    }

    #[test]
    fn single_rank_matches_serial_relax() {
        let p = tiny_problem(2, 40, 3, 3);
        let cfg = RelaxConfig {
            seed: 9,
            ..Default::default()
        };
        let serial = crate::relax::fast_relax(&p, 5, &cfg);
        let comm = SelfComm::new();
        let shard = ShardedProblem::shard(&p, 0, 1);
        let par = parallel_relax(&comm, &shard, 5, &cfg);
        assert_eq!(par.z_diamond.len(), 40);
        for (a, b) in par.z_diamond.iter().zip(serial.z_diamond.iter()) {
            assert!(
                (a - b).abs() < 1e-10,
                "p=1 parallel should match serial: {a} vs {b}"
            );
        }
    }

    #[test]
    fn multi_rank_relax_agrees_with_serial() {
        let p = tiny_problem(3, 30, 3, 3);
        let cfg = RelaxConfig {
            seed: 4,
            cg_tol: 1e-8,
            probes: 20,
            ..Default::default()
        };
        let serial = crate::relax::fast_relax(&p, 4, &cfg);
        for procs in [2usize, 3] {
            let problem = p.clone();
            let config = cfg;
            let results = launch(procs, move |comm| {
                let shard = ShardedProblem::shard(&problem, comm.rank(), comm.size());
                parallel_relax(comm, &shard, 4, &config).z_diamond
            });
            for z in &results {
                assert_eq!(z.len(), 30);
                for (a, b) in z.iter().zip(serial.z_diamond.iter()) {
                    assert!(
                        (a - b).abs() < 1e-6 * b.abs().max(1e-3),
                        "p={procs}: {a} vs serial {b}"
                    );
                }
            }
            // All ranks assembled the identical z.
            for z in &results[1..] {
                assert_eq!(z, &results[0]);
            }
        }
    }

    #[test]
    fn multi_rank_round_matches_serial_selection() {
        let p = tiny_problem(5, 24, 3, 3);
        let b = 4;
        let z: Vec<f64> = (0..24).map(|i| (1.0 + (i % 5) as f64) / 24.0).collect();
        let eta = 8.0 * (p.ehat() as f64).sqrt();
        let serial = crate::round::diag_round(&p, &z, b, eta);
        for procs in [1usize, 2, 3] {
            let problem = p.clone();
            let zc = z.clone();
            let results = launch(procs, move |comm| {
                let shard = ShardedProblem::shard(&problem, comm.rank(), comm.size());
                let local_z =
                    zc[shard.offset..shard.offset + shard.local_n()].to_vec();
                parallel_round(comm, &shard, &local_z, b, eta).selected
            });
            for sel in &results {
                assert_eq!(
                    sel, &serial.selected,
                    "p={procs} selection diverged from serial"
                );
            }
        }
    }

    #[test]
    fn full_parallel_pipeline_selects_valid_batch() {
        let p = tiny_problem(6, 36, 4, 3);
        let eta = 8.0 * (p.ehat() as f64).sqrt();
        let results = launch(3, move |comm| {
            parallel_approx_firal(comm, &p, 6, &RelaxConfig::default(), eta)
        });
        for sel in &results {
            assert_eq!(sel.len(), 6);
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "duplicates: {sel:?}");
        }
        // Rank-independent result.
        for sel in &results[1..] {
            assert_eq!(sel, &results[0]);
        }
    }
}
