//! Named phase timers matching the paper's breakdown categories.
//!
//! Fig. 5–6 break the RELAX step into *Setup B(Σz)⁻¹*, *CG*, *gradient*,
//! *MPI communication* and *other*; Fig. 5/7 break the ROUND step into
//! *compute eigenvalues*, *objective function* and *other*. Solvers
//! accumulate into these timers so the figure harnesses can print the same
//! stacked series.

use std::time::{Duration, Instant};

/// Accumulating phase timer.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    entries: Vec<(&'static str, Duration)>,
}

impl PhaseTimer {
    /// Empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under `name`, accumulating across calls.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(name, t0.elapsed());
        r
    }

    /// Add a pre-measured duration to `name`.
    pub fn add(&mut self, name: &'static str, duration: Duration) {
        for (n, d) in self.entries.iter_mut() {
            if *n == name {
                *d += duration;
                return;
            }
        }
        self.entries.push((name, duration));
    }

    /// Accumulated duration for a phase (zero if never recorded).
    pub fn get(&self, name: &str) -> Duration {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Phases in first-recorded order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.entries.iter().copied()
    }

    /// Merge another timer's accumulations into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (n, d) in &other.entries {
            self.add(n, *d);
        }
    }
}

impl std::fmt::Display for PhaseTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, d) in &self.entries {
            writeln!(f, "  {name:<24} {:>10.4}s", d.as_secs_f64())?;
        }
        write!(f, "  {:<24} {:>10.4}s", "total", self.total().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_same_phase() {
        let mut t = PhaseTimer::new();
        t.add("cg", Duration::from_millis(10));
        t.add("cg", Duration::from_millis(5));
        t.add("precond", Duration::from_millis(1));
        assert_eq!(t.get("cg"), Duration::from_millis(15));
        assert_eq!(t.total(), Duration::from_millis(16));
        assert_eq!(t.get("missing"), Duration::ZERO);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = PhaseTimer::new();
        let v = t.time("phase", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.get("phase") > Duration::ZERO || t.get("phase") == Duration::ZERO);
        assert_eq!(t.phases().count(), 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = PhaseTimer::new();
        a.add("x", Duration::from_millis(3));
        let mut b = PhaseTimer::new();
        b.add("x", Duration::from_millis(4));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(7));
        assert_eq!(a.get("y"), Duration::from_millis(1));
    }
}
