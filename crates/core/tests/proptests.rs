//! Property-style tests for the paper's mathematical identities on seeded
//! randomized inputs (deterministic stand-in for the original proptest
//! suite, which needs crates.io):
//!
//! * Lemma 2 — the matrix-free matvec equals the dense `G⊗xxᵀ` action;
//! * Eq. 14 — the fused block-diagonal build equals Definition 1 applied
//!   to the dense operator;
//! * Lemma 3 — the per-block Sherman–Morrison inverse equals the dense
//!   block inverse after a rank-one `γ_k·xxᵀ` update;
//! * Prop. 4 — the Eq. 17 score is an affine transform of the block-diag
//!   trace objective (so their argext agree);
//! * mirror descent preserves the simplex.

use firal_core::hessian::{dense_hessian, fast_matvec, PoolHessian};
use firal_linalg::{BlockDiag, Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;

fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

/// A valid `c-1` probability vector: positive entries with sum < 1.
fn random_probs(rng: &mut StdRng, cm1: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..cm1 + 1).map(|_| uniform(rng, 0.05, 1.0)).collect();
    let total: f64 = raw.iter().sum();
    raw[..cm1].iter().map(|v| v / total).collect()
}

fn random_point(rng: &mut StdRng, d: usize) -> Vec<f64> {
    (0..d).map(|_| uniform(rng, -1.5, 1.5)).collect()
}

#[test]
fn lemma2_fast_matvec_equals_dense() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + case);
        let x = random_point(&mut rng, 5);
        let h = random_probs(&mut rng, 3);
        let v: Vec<f64> = (0..15).map(|_| uniform(&mut rng, -1.0, 1.0)).collect();
        let fast = fast_matvec(&x, &h, &v);
        let dense = dense_hessian(&x, &h).matvec(&v);
        for (a, b) in fast.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-10, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn eq14_block_diagonal_matches_definition_1() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + case);
        let n = 6;
        let mut xm = Matrix::zeros(n, 4);
        let mut hm = Matrix::zeros(n, 2);
        for i in 0..n {
            xm.row_mut(i).copy_from_slice(&random_point(&mut rng, 4));
            hm.row_mut(i).copy_from_slice(&random_probs(&mut rng, 2));
        }
        let z: Vec<f64> = (0..n).map(|_| uniform(&mut rng, 0.0, 2.0)).collect();
        let op = PoolHessian::weighted(&xm, &hm, z);
        let fused = op.block_diagonal();
        let dense_bd = BlockDiag::from_dense(&op.to_dense(), 2);
        for k in 0..2 {
            for p in 0..4 {
                for q in 0..4 {
                    assert!(
                        (fused.block(k)[(p, q)] - dense_bd.block(k)[(p, q)]).abs() < 1e-9,
                        "case {case}, block {k} ({p},{q})"
                    );
                }
            }
        }
    }
}

#[test]
fn lemma3_sherman_morrison_blockwise() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + case);
        let b0: Vec<f64> = (0..9).map(|_| uniform(&mut rng, -1.0, 1.0)).collect();
        let x = random_point(&mut rng, 3);
        let gammas: Vec<f64> = (0..2).map(|_| uniform(&mut rng, 0.01, 0.3)).collect();

        // A: block-diagonal SPD with 2 blocks of order 3.
        let mk_spd = |v: &[f64], shift: f64| {
            let b = Matrix::from_vec(3, 3, v.to_vec());
            let mut a = firal_linalg::gemm_a_bt(&b, &b);
            a.add_diag(3.0 + shift);
            a
        };
        let a = BlockDiag::from_blocks(vec![mk_spd(&b0, 0.0), mk_spd(&b0, 1.0)]);

        // Updated matrix: A + diag(γ) ⊗ xxᵀ.
        let mut updated = a.clone();
        updated.rank_one_update(&gammas, &x);

        // Lemma 3 block form vs dense inverse.
        let a_inv = a.inverse().unwrap();
        for k in 0..2 {
            let ak_inv = a_inv.block(k);
            let g = gammas[k];
            let ax = ak_inv.matvec(&x);
            let denom = 1.0 + g * firal_linalg::dot(&x, &ax);
            // Lemma 3: (A + γxxᵀ)⁻¹ = A⁻¹ - γ·A⁻¹xxᵀA⁻¹ / (1 + γxᵀA⁻¹x)
            let mut lemma = ak_inv.clone();
            for p in 0..3 {
                for q in 0..3 {
                    lemma[(p, q)] -= g * ax[p] * ax[q] / denom;
                }
            }
            let direct = Cholesky::new(updated.block(k)).unwrap().inverse();
            for p in 0..3 {
                for q in 0..3 {
                    assert!(
                        (lemma[(p, q)] - direct[(p, q)]).abs() < 1e-8,
                        "case {case}, block {k} ({p},{q}): {} vs {}",
                        lemma[(p, q)],
                        direct[(p, q)]
                    );
                }
            }
        }
    }
}

#[test]
fn mirror_descent_update_preserves_simplex() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(400 + case);
        let z0: Vec<f64> = (0..12).map(|_| uniform(&mut rng, 0.01, 1.0)).collect();
        let g: Vec<f64> = (0..12).map(|_| uniform(&mut rng, -3.0, 3.0)).collect();
        // Normalize z0 to the simplex, apply the multiplicative update the
        // RELAX solvers use, and check the invariants.
        let total: f64 = z0.iter().sum();
        let mut z: Vec<f64> = z0.iter().map(|v| v / total).collect();
        let max_abs = g.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-30);
        let beta = 1.0 / max_abs;
        let mut sum = 0.0;
        for (zi, &gi) in z.iter_mut().zip(g.iter()) {
            *zi *= (beta * gi).exp();
            sum += *zi;
        }
        for zi in z.iter_mut() {
            *zi /= sum;
        }
        let new_total: f64 = z.iter().sum();
        assert!((new_total - 1.0).abs() < 1e-12, "case {case}");
        assert!(z.iter().all(|&v| v > 0.0 && v < 1.0 + 1e-12), "case {case}");
    }
}

/// Proposition 4: on a fixed random instance the Eq. 17 scores are an
/// affine transform of the exact block-diagonal trace objective, so the
/// induced rankings are identical. (Deterministic, but placed here with the
/// other algebraic identities.)
#[test]
fn proposition4_score_ordering_matches_trace_objective() {
    let ds = firal_data::SyntheticConfig::new(3, 4)
        .with_pool_size(15)
        .with_initial_per_class(2)
        .with_seed(10)
        .generate::<f64>();
    let model =
        firal_logreg::LogisticRegression::fit_default(&ds.initial_features, &ds.initial_labels)
            .unwrap();
    let problem = firal_core::SelectionProblem::new(
        ds.pool_features.clone(),
        model.class_probs_cm1(&ds.pool_features),
        ds.initial_features.clone(),
        model.class_probs_cm1(&ds.initial_features),
        3,
    );
    // One ROUND pass on a tiny pool picks the same first point whether we
    // run Algorithm 3 (Eq. 17) or brute-force the t=1 trace objective.
    let n = problem.pool_size();
    let z = vec![2.0 / n as f64; n];
    let eta = 4.0 * (problem.ehat() as f64).sqrt();
    let algo = firal_core::diag_round(&problem, &z, 1, eta);

    // Brute force r_i = Tr[(B₁ + ηB(H_i))⁻¹ Σ⋄] over the block-diagonal
    // matrices.
    let bho = PoolHessian::unweighted(&problem.labeled_x, &problem.labeled_h).block_diagonal();
    let mut sigma = PoolHessian::weighted(&problem.pool_x, &problem.pool_h, z).block_diagonal();
    sigma.add_scaled(1.0, &bho);
    let cm1 = problem.nblocks();
    let mut b1 = sigma.clone();
    for k in 0..cm1 {
        b1.block_mut(k)
            .scale_inplace((problem.ehat() as f64).sqrt());
        b1.block_mut(k).add_scaled(eta / 1.0, bho.block(k));
    }
    let sigma_dense = sigma.to_dense();
    let mut best = (f64::INFINITY, usize::MAX);
    for i in 0..n {
        let hi = dense_hessian(problem.pool_x.row(i), problem.pool_h.row(i));
        let hi_bd = BlockDiag::from_dense(&hi, cm1).to_dense();
        let mut m = b1.to_dense();
        m.add_scaled(eta, &hi_bd);
        let r = Cholesky::new(&m).unwrap().solve_mat(&sigma_dense).trace();
        if r < best.0 {
            best = (r, i);
        }
    }
    assert_eq!(
        algo.selected[0], best.1,
        "Algorithm 3's Eq. 17 argmax disagrees with the brute-force argmin"
    );
}
