//! k-means clustering: k-means++ seeding plus Lloyd iterations.
//!
//! This is the substrate behind the paper's **K-Means baseline** (§IV-A,
//! experimental setup item (2)): each active-learning round clusters the
//! pool with `k = b` and labels the point nearest each centroid. The
//! assignment step is rayon-parallel over pool points, mirroring how
//! "scalable and easy to implement" the paper calls this family of methods.

use firal_linalg::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult<T: Scalar> {
    /// Cluster centroids (`k × d`).
    pub centroids: Matrix<T>,
    /// Per-point cluster assignment.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares (the k-means energy).
    pub inertia: T,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// k-means hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Stop when relative inertia improvement falls below this.
    pub tol: f64,
    /// RNG seed for the k-means++ seeding.
    pub seed: u64,
}

impl KMeansConfig {
    /// Config with `k` clusters and sensible defaults.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 50,
            tol: 1e-6,
            seed: 0,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[inline]
fn sq_dist<T: Scalar>(a: &[T], b: &[T]) -> T {
    let mut acc = T::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = *x - *y;
        acc += d * d;
    }
    acc
}

/// k-means++ seeding: first centroid uniform, then each next centroid drawn
/// with probability proportional to the squared distance to the nearest
/// chosen centroid (Arthur & Vassilvitskii 2007).
fn kmeanspp_seed<T: Scalar>(points: &Matrix<T>, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = points.rows();
    assert!(k <= n, "k-means++ needs k ≤ n");
    let mut chosen = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    chosen.push(first);

    let mut d2: Vec<f64> = (0..n)
        .map(|i| sq_dist(points.row(i), points.row(first)).to_f64())
        .collect();

    while chosen.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        chosen.push(next);
        for i in 0..n {
            let nd = sq_dist(points.row(i), points.row(next)).to_f64();
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }
    chosen
}

/// Run k-means (k-means++ then Lloyd) on the row-point panel `points`.
pub fn kmeans<T: Scalar>(points: &Matrix<T>, config: &KMeansConfig) -> KMeansResult<T> {
    let (n, d) = points.shape();
    let k = config.k;
    assert!(k >= 1 && k <= n, "invalid k = {k} for n = {n}");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let seeds = kmeanspp_seed(points, k, &mut rng);
    let mut centroids = Matrix::zeros(k, d);
    for (c, &i) in seeds.iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(points.row(i));
    }

    let mut assignments = vec![0usize; n];
    let mut inertia = T::INFINITY;
    let mut iterations = 0usize;

    for it in 0..config.max_iter {
        iterations = it + 1;
        // Assignment step (parallel over points).
        let new: Vec<(usize, T)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let xi = points.row(i);
                let mut best = (T::INFINITY, 0usize);
                for c in 0..k {
                    let dist = sq_dist(xi, centroids.row(c));
                    if dist < best.0 {
                        best = (dist, c);
                    }
                }
                (best.1, best.0)
            })
            .collect();
        let mut new_inertia = T::ZERO;
        for (i, (a, dist)) in new.into_iter().enumerate() {
            assignments[i] = a;
            new_inertia += dist;
        }

        // Update step.
        let mut sums = Matrix::<T>::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            let row = sums.row_mut(c);
            for (s, &x) in row.iter_mut().zip(points.row(i)) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed at the point farthest from its
                // centroid to keep k clusters alive.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(points.row(a), centroids.row(assignments[a]));
                        let db = sq_dist(points.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                centroids.row_mut(c).copy_from_slice(points.row(far));
                continue;
            }
            let inv = T::ONE / T::from_usize(counts[c]);
            let sum_row = sums.row(c).to_vec();
            let crow = centroids.row_mut(c);
            for (cv, sv) in crow.iter_mut().zip(sum_row.iter()) {
                *cv = *sv * inv;
            }
        }

        // Convergence on relative inertia improvement.
        let old = inertia.to_f64();
        let newv = new_inertia.to_f64();
        inertia = new_inertia;
        if old.is_finite() && (old - newv).abs() <= config.tol * old.abs().max(1e-30) {
            break;
        }
    }

    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// For each centroid, the index of the pool point nearest to it — the
/// K-Means active-learning baseline labels exactly these points. Returned
/// indices are distinct (each point claimed by at most one centroid; claimed
/// points are excluded from later centroids' searches).
pub fn nearest_to_centroids<T: Scalar>(points: &Matrix<T>, centroids: &Matrix<T>) -> Vec<usize> {
    let n = points.rows();
    let k = centroids.rows();
    assert!(k <= n, "more centroids than points");
    let mut taken = vec![false; n];
    let mut out = Vec::with_capacity(k);
    for c in 0..k {
        let crow = centroids.row(c);
        let mut best = (T::INFINITY, usize::MAX);
        for i in 0..n {
            if taken[i] {
                continue;
            }
            let dist = sq_dist(points.row(i), crow);
            if dist < best.0 {
                best = (dist, i);
            }
        }
        let pick = best.1;
        taken[pick] = true;
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs of 20 points each.
    fn blobs() -> (Matrix<f64>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut pts = Matrix::zeros(60, 2);
        let mut labels = Vec::new();
        let mut state = 12345u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.5
        };
        for i in 0..60 {
            let k = i / 20;
            pts[(i, 0)] = centers[k].0 + noise();
            pts[(i, 1)] = centers[k].1 + noise();
            labels.push(k);
        }
        (pts, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (pts, labels) = blobs();
        let res = kmeans(&pts, &KMeansConfig::new(3).with_seed(1));
        // All points in a blob share an assignment, and blobs get distinct
        // clusters.
        for k in 0..3 {
            let a0 = res.assignments[k * 20];
            for i in 0..20 {
                assert_eq!(res.assignments[k * 20 + i], a0, "blob {k} split");
            }
        }
        let mut seen = [false; 3];
        for k in 0..3 {
            seen[res.assignments[k * 20]] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "blobs merged: {:?}",
            res.assignments
        );
        let _ = labels;
    }

    #[test]
    fn inertia_nonincreasing_with_more_clusters() {
        let (pts, _) = blobs();
        let i2 = kmeans(&pts, &KMeansConfig::new(2).with_seed(3)).inertia;
        let i3 = kmeans(&pts, &KMeansConfig::new(3).with_seed(3)).inertia;
        let i6 = kmeans(&pts, &KMeansConfig::new(6).with_seed(3)).inertia;
        assert!(i3 <= i2 + 1e-9);
        assert!(i6 <= i3 + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, _) = blobs();
        let a = kmeans(&pts, &KMeansConfig::new(3).with_seed(7));
        let b = kmeans(&pts, &KMeansConfig::new(3).with_seed(7));
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn nearest_to_centroids_returns_distinct_points() {
        let (pts, _) = blobs();
        let res = kmeans(&pts, &KMeansConfig::new(5).with_seed(2));
        let picks = nearest_to_centroids(&pts, &res.centroids);
        assert_eq!(picks.len(), 5);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "duplicate picks: {picks:?}");
    }

    #[test]
    fn k_equals_n_assigns_each_point_its_own_cluster() {
        let pts = Matrix::from_fn(4, 1, |i, _| i as f64 * 10.0);
        let res = kmeans(&pts, &KMeansConfig::new(4).with_seed(4));
        let mut assignments = res.assignments.clone();
        assignments.sort_unstable();
        assignments.dedup();
        assert_eq!(assignments.len(), 4);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = Matrix::from_fn(5, 2, |i, j| (i + j) as f64);
        let res = kmeans(&pts, &KMeansConfig::new(1).with_seed(5));
        assert!((res.centroids[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((res.centroids[(0, 1)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn f32_runs() {
        let (pts, _) = blobs();
        let pts32: Matrix<f32> = pts.cast();
        let res = kmeans(&pts32, &KMeansConfig::new(3).with_seed(6));
        assert_eq!(res.assignments.len(), 60);
    }
}
