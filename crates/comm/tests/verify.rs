//! Integration tests for the debug-mode collective-order verifier
//! (`firal_comm::verify`): deliberately skewed SPMD schedules must abort
//! with the fingerprint diagnostic — not hang, and not desync silently —
//! while verified happy-path schedules stay bitwise identical across
//! backends.
//!
//! Every test in this binary pins the verifier ON via the test override, so
//! the skew tests are meaningful in release builds too (where the default
//! is off). The override is process-global; this binary is its only user.

use std::panic::{catch_unwind, AssertUnwindSafe};

use firal_comm::{launch, socket_launch, CommError, Communicator, ReduceOp};

fn force_verify_on() {
    firal_comm::verify::set_verify_override(Some(true));
}

/// Run `f`, returning the panic message if it panicked.
fn panic_message_of<F: FnOnce()>(f: F) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "(non-string panic payload)".to_string()),
        ),
    }
}

#[test]
fn thread_kind_skew_aborts_with_fingerprint_diagnostic() {
    force_verify_on();
    // Rank 0 issues an allreduce while rank 1 issues a bcast: without the
    // verifier this skew reaches the data phase with mismatched slot state
    // (or deadlocks on transports with kind-dependent flow). With it, both
    // ranks must abort at the fingerprint exchange with the diagnostic.
    let messages = launch(2, |comm| {
        panic_message_of(|| {
            let mut buf = vec![1.0];
            if comm.rank() == 0 {
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            } else {
                comm.bcast_f64(&mut buf, 0);
            }
        })
    });
    for (rank, msg) in messages.iter().enumerate() {
        let msg = msg
            .as_deref()
            .unwrap_or_else(|| panic!("rank {rank} did not abort on a skewed schedule"));
        assert!(
            msg.contains("collective schedule mismatch"),
            "rank {rank} diagnostic: {msg}"
        );
        assert!(msg.contains("allreduce(sum)"), "rank {rank}: {msg}");
        assert!(msg.contains("bcast"), "rank {rank}: {msg}");
        assert!(
            msg.contains("last collectives on this rank"),
            "rank {rank} missing trace: {msg}"
        );
    }
}

#[test]
fn thread_count_skew_aborts_before_the_data_phase() {
    force_verify_on();
    // Same collective, different element counts: the count lane must catch
    // it at the fingerprint exchange, with both ranks' counts named.
    let messages = launch(2, |comm| {
        panic_message_of(|| {
            let mut buf = vec![0.0; 1 + comm.rank()];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
        })
    });
    for (rank, msg) in messages.iter().enumerate() {
        let msg = msg.as_deref().expect("count skew must abort");
        assert!(
            msg.contains("collective schedule mismatch"),
            "rank {rank}: {msg}"
        );
        assert!(msg.contains("count=1"), "rank {rank}: {msg}");
        assert!(msg.contains("count=2"), "rank {rank}: {msg}");
    }
}

#[test]
fn socket_kind_skew_aborts_with_fingerprint_diagnostic() {
    force_verify_on();
    // On SocketComm this exact skew (rank 1 in bcast-from-0 waits to read
    // from rank 0; rank 0 in allreduce-as-hub waits to read from rank 1)
    // would deadlock the data phase. The fingerprint preamble always flows
    // member → hub first, so the hub detects the mismatch and aborts; the
    // peer then fails loudly on the closed link, trace attached.
    let messages = socket_launch(2, |comm| {
        panic_message_of(|| {
            let mut buf = vec![1.0];
            if comm.rank() == 0 {
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            } else {
                comm.bcast_f64(&mut buf, 0);
            }
        })
    });
    let hub = messages[0].as_deref().expect("hub rank must abort");
    assert!(
        hub.contains("collective schedule mismatch"),
        "hub diagnostic: {hub}"
    );
    assert!(
        hub.contains("allreduce(sum)") && hub.contains("bcast"),
        "{hub}"
    );
    let peer = messages[1]
        .as_deref()
        .expect("peer rank must abort, not hang");
    // The peer either saw the mismatch itself or died on the hub's closed
    // link — both abort paths must carry the per-rank trace.
    assert!(
        peer.contains("last collectives on this rank"),
        "peer diagnostic missing trace: {peer}"
    );
}

#[test]
fn socket_split_scope_skew_is_diagnosed() {
    force_verify_on();
    // Rank 0 issues a *parent* collective while rank 1 issues the same
    // operation on a sub-communicator: same kind, same count, different
    // scope. Only the fingerprint's scope lane (or the frame scope tag)
    // can tell them apart.
    let messages = socket_launch(2, |comm| {
        panic_message_of(|| {
            let mut buf = vec![1.0];
            if comm.rank() == 0 {
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            } else {
                let sub = comm.split(0, 0);
                sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            }
        })
    });
    // The hub (rank 0, in the parent collective) sees rank 1's fingerprint
    // from a different schedule point and aborts with the full diagnostic.
    let hub = messages[0].as_deref().expect("hub must abort, not hang");
    assert!(
        hub.contains("schedule mismatch") || hub.contains("scope mismatch"),
        "hub: {hub}"
    );
    // The peer aborts too — either on its own mismatch/scope check or on
    // the hub's closed link — and always carries its per-rank trace.
    let peer = messages[1].as_deref().expect("peer must abort, not hang");
    assert!(
        peer.contains("schedule mismatch")
            || peer.contains("scope mismatch")
            || peer.contains("last collectives on this rank"),
        "peer: {peer}"
    );
}

#[test]
fn verifier_abort_path_survives_real_peer_disconnect() {
    force_verify_on();
    // Rank 1 disconnects for real (endpoint dropped, sockets closed) after
    // the first collective. The survivors' next schedule point — the
    // verifier's own fingerprint exchange included — hits the dead link
    // and must come back as a structured `CommError` carrying the per-rank
    // trace: not a deadlock, and not a bare panic out of the verifier.
    let results = socket_launch(3, |comm| {
        let mut warm = vec![comm.rank() as f64];
        comm.allreduce_f64(&mut warm, ReduceOp::Sum); // seed the trace
        if comm.rank() == 1 {
            return None;
        }
        let err = comm
            .try_allreduce_f64(&mut warm, ReduceOp::Sum)
            .expect_err("a peer died; the schedule cannot continue");
        Some(err)
    });
    for (rank, r) in results.into_iter().enumerate() {
        if rank == 1 {
            continue;
        }
        let err = r.expect("survivor result");
        assert_eq!(err.seq(), 1, "failure at the second schedule point");
        match &err {
            CommError::PeerDeath { detail, .. } => {
                assert!(detail.contains("last collectives on this rank"), "{detail}");
            }
            CommError::RemoteAbort { reason, .. } => {
                assert!(reason.contains("last collectives on this rank"), "{reason}");
            }
            other => panic!("rank {rank}: unexpected error class: {other}"),
        }
    }
}

#[test]
fn verified_happy_path_is_bitwise_identical_across_backends() {
    force_verify_on();
    // The full backend matrix with verification pinned on: non-commuting
    // contributions must still reduce to the same bits on every backend,
    // and legitimately rank-dependent allgatherv lengths must not trip the
    // verifier.
    let contribution = |rank: usize| vec![[1.0e16, 1.0, -1.0e16][rank % 3]];
    let run = |comm: &dyn Communicator| {
        let mut buf = contribution(comm.rank());
        comm.allreduce_f64(&mut buf, ReduceOp::Sum);
        let gathered = comm.allgatherv_f64(&vec![buf[0]; comm.rank() + 1]);
        let mut top = vec![gathered.iter().sum::<f64>()];
        comm.bcast_f64(&mut top, 0);
        comm.barrier();
        let (v, p) = comm.allreduce_maxloc(buf[0], comm.rank() as u64);
        (buf[0].to_bits(), top[0].to_bits(), v.to_bits(), p)
    };
    let selfc = {
        let c = firal_comm::SelfComm::new();
        run(&c)
    };
    let threads = launch(4, |comm| run(comm));
    let sockets = socket_launch(4, |comm| run(comm));
    assert!(threads.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(threads, sockets);
    // p = 1 world agrees with itself under verification too.
    let _ = selfc;
}

#[test]
fn disjoint_sub_groups_may_run_different_schedules() {
    force_verify_on();
    // Two split pairs running *different* collective sequences is a legal
    // schedule: the verifier must only compare within a group.
    let results = launch(4, |comm| {
        let pair = comm.split(comm.rank() / 2, comm.rank());
        let mut buf = vec![pair.rank() as f64 + 1.0];
        if comm.rank() / 2 == 0 {
            pair.allreduce_f64(&mut buf, ReduceOp::Sum);
            pair.barrier();
        } else {
            pair.bcast_f64(&mut buf, 1);
            let _ = pair.allgatherv_f64(&buf);
        }
        buf[0]
    });
    assert_eq!(results, vec![3.0, 3.0, 2.0, 2.0]);
}
