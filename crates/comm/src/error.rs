//! Structured failure surface for the collective layer.
//!
//! Every `try_`-collective on [`crate::Communicator`] returns
//! `Result<_, CommError>`; the infallible methods are thin wrappers that
//! [`raise`] the error as a diagnosed panic. Callers that want to survive a
//! peer failure wrap the calling code in [`comm_catch`], which converts the
//! raised panic back into the original [`CommError`] at the boundary — so
//! the interior of the execution layer keeps its infallible shape while the
//! outermost entry points observe structured errors.
//!
//! The error taxonomy, the abort-frame protocol that propagates failures
//! across a mesh, and the fault-injection grammar used to test all of it
//! are documented in the repo-root `ARCHITECTURE.md` ("Failure model").

use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable holding the per-frame communication deadline in
/// milliseconds. Unset or `0` means no deadline (reads block forever, the
/// pre-fault-tolerance behavior). When set, every socket frame read/write
/// must make progress within the deadline or the collective fails with
/// [`CommError::DeadlineExceeded`].
pub const COMM_TIMEOUT_ENV: &str = "FIRAL_COMM_TIMEOUT";

/// The process-wide communication deadline parsed from
/// [`COMM_TIMEOUT_ENV`], cached on first use.
pub fn comm_timeout() -> Option<Duration> {
    static TIMEOUT: OnceLock<Option<Duration>> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        let raw = std::env::var(COMM_TIMEOUT_ENV).ok()?;
        let ms: u64 = raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{COMM_TIMEOUT_ENV} must be an integer (ms), got {raw:?}"));
        (ms > 0).then(|| Duration::from_millis(ms))
    })
}

/// A structured collective failure, carrying enough context (rank, world
/// size, operation, per-rank collective sequence number) to place the
/// failure in the schedule without a debugger.
///
/// All variants are `Clone + Eq` so errors can be stashed, compared in
/// tests, and replayed to every subsequent collective on a poisoned
/// endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer's connection died (EOF, reset, refused mid-collective).
    PeerDeath {
        /// Group rank of the endpoint observing the failure.
        rank: usize,
        /// Group size.
        size: usize,
        /// The collective that was in flight.
        op: &'static str,
        /// Per-rank collective sequence number at the failure point.
        seq: u64,
        /// Underlying I/O diagnosis (and the recent-collective trace when
        /// the schedule verifier is enabled).
        detail: String,
    },
    /// A frame read or write exceeded the configured deadline
    /// ([`COMM_TIMEOUT_ENV`]).
    DeadlineExceeded {
        /// Group rank of the endpoint observing the failure.
        rank: usize,
        /// Group size.
        size: usize,
        /// The collective that was in flight.
        op: &'static str,
        /// Per-rank collective sequence number at the failure point.
        seq: u64,
        /// The deadline that was exceeded.
        after: Duration,
    },
    /// The bytes on the wire were not the expected protocol (bad scope tag,
    /// oversized count, garbage frame).
    Protocol {
        /// Group rank of the endpoint observing the failure.
        rank: usize,
        /// Group size.
        size: usize,
        /// The collective that was in flight.
        op: &'static str,
        /// Per-rank collective sequence number at the failure point.
        seq: u64,
        /// What was malformed.
        detail: String,
    },
    /// Another rank failed first and broadcast an abort frame; this
    /// endpoint is structurally fine but the collective cannot complete.
    RemoteAbort {
        /// Group rank of the endpoint observing the failure.
        rank: usize,
        /// Group size.
        size: usize,
        /// The collective that was in flight.
        op: &'static str,
        /// Per-rank collective sequence number at the failure point.
        seq: u64,
        /// World rank of the rank that originated the abort.
        origin: usize,
        /// The originating rank's diagnostic.
        reason: String,
    },
}

impl CommError {
    /// The collective that was in flight when the failure was observed.
    pub fn op(&self) -> &'static str {
        match self {
            CommError::PeerDeath { op, .. }
            | CommError::DeadlineExceeded { op, .. }
            | CommError::Protocol { op, .. }
            | CommError::RemoteAbort { op, .. } => op,
        }
    }

    /// Per-rank collective sequence number at the failure point.
    pub fn seq(&self) -> u64 {
        match self {
            CommError::PeerDeath { seq, .. }
            | CommError::DeadlineExceeded { seq, .. }
            | CommError::Protocol { seq, .. }
            | CommError::RemoteAbort { seq, .. } => *seq,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerDeath {
                rank,
                size,
                op,
                seq,
                detail,
            } => write!(
                f,
                "comm failure on rank {rank}/{size}: {op} (collective #{seq}) failed: {detail}"
            ),
            CommError::DeadlineExceeded {
                rank,
                size,
                op,
                seq,
                after,
            } => write!(
                f,
                "comm deadline exceeded on rank {rank}/{size}: {op} (collective #{seq}) \
                 made no progress within {after:?}"
            ),
            CommError::Protocol {
                rank,
                size,
                op,
                seq,
                detail,
            } => write!(
                f,
                "comm protocol error on rank {rank}/{size}: {op} (collective #{seq}): {detail}"
            ),
            CommError::RemoteAbort {
                rank,
                size,
                op,
                seq,
                origin,
                reason,
            } => write!(
                f,
                "comm collective aborted on rank {rank}/{size}: {op} (collective #{seq}) \
                 aborted by rank {origin}: {reason}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

thread_local! {
    /// The [`CommError`] behind an in-flight [`raise`] unwind, recovered by
    /// [`comm_catch`] at the fallible boundary.
    static RAISED: RefCell<Option<CommError>> = const { RefCell::new(None) };
}

/// Abort the current collective with `err` as a diagnosed panic.
///
/// This is how the infallible [`crate::Communicator`] wrappers surface a
/// [`CommError`]: the panic message is the error's `Display` text (so bare
/// call sites die with a full diagnosis instead of deadlocking), and the
/// structured error is stashed thread-locally so an enclosing
/// [`comm_catch`] can recover it losslessly.
pub fn raise(err: CommError) -> ! {
    let msg = err.to_string();
    RAISED.with(|r| *r.borrow_mut() = Some(err));
    panic!("{msg}");
}

/// Run `f`, converting a [`raise`]d [`CommError`] back into `Err`.
///
/// Panics that did not originate from [`raise`] are propagated unchanged
/// (the schedule verifier's mismatch abort, assertion failures, and
/// arbitrary bugs still unwind). This is the boundary the execution layer
/// uses to expose `try_`-variants without threading `Result` through every
/// reduction loop.
pub fn comm_catch<R>(f: impl FnOnce() -> R) -> Result<R, CommError> {
    RAISED.with(|r| *r.borrow_mut() = None);
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match RAISED.with(|r| r.borrow_mut().take()) {
            Some(err) => Err(err),
            None => resume_unwind(payload),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_rank_op_and_sequence_context() {
        let e = CommError::PeerDeath {
            rank: 2,
            size: 4,
            op: "allreduce_f64",
            seq: 17,
            detail: "connection reset by peer".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 2/4"), "{msg}");
        assert!(msg.contains("allreduce_f64"), "{msg}");
        assert!(msg.contains("#17"), "{msg}");
        assert!(msg.contains("connection reset"), "{msg}");

        let e = CommError::RemoteAbort {
            rank: 0,
            size: 4,
            op: "barrier",
            seq: 3,
            origin: 2,
            reason: "rank 2 panicked: boom".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("aborted by rank 2"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert_eq!(e.op(), "barrier");
        assert_eq!(e.seq(), 3);
    }

    #[test]
    fn comm_catch_recovers_raised_errors_structurally() {
        let err = CommError::DeadlineExceeded {
            rank: 1,
            size: 2,
            op: "bcast_f64",
            seq: 9,
            after: Duration::from_millis(250),
        };
        let want = err.clone();
        let got = comm_catch(|| -> usize { raise(err) });
        assert_eq!(got, Err(want));
    }

    #[test]
    fn comm_catch_passes_values_and_foreign_panics_through() {
        assert_eq!(comm_catch(|| 41 + 1), Ok(42));
        let foreign = catch_unwind(AssertUnwindSafe(|| {
            let _ = comm_catch(|| -> usize { panic!("not a comm error") });
        }));
        let payload = foreign.expect_err("foreign panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("not a comm error"), "{msg}");
    }

    #[test]
    fn nested_comm_catch_does_not_leak_across_boundaries() {
        // An inner recovered error must not make an outer catch misreport a
        // later foreign panic as that stale error.
        let outer = comm_catch(|| {
            let inner = comm_catch(|| -> usize {
                raise(CommError::Protocol {
                    rank: 0,
                    size: 1,
                    op: "split",
                    seq: 0,
                    detail: "x".into(),
                })
            });
            assert!(inner.is_err());
            7usize
        });
        assert_eq!(outer, Ok(7));
    }
}
