//! Latency–bandwidth–compute cost model for collectives and kernels.
//!
//! §III-C of the paper adopts the Thakur–Rabenseifner–Gropp model: sending
//! an `m`-byte message costs `ts + m·tw`; local reduction costs `tc` per
//! byte. The three collectives then cost
//!
//! * `MPI_Allreduce` (recursive doubling): `log₂p · (ts + m(tw + tc))`
//! * `MPI_Allgather` (recursive doubling): `log₂p · ts + ((p-1)/p)·m·tw`
//! * `MPI_Bcast` (binomial tree): `log₂p · (ts + m·tw)`
//!
//! and computation is `flops / peak`. The paper instantiates `ts = 1e-4 s`,
//! `1/tw = 2e10 B/s`, `tc = 1e-10 s/B`, `peak = 19.5 TFLOP/s` (A100 fp32);
//! [`CostModel::paper_a100`] reproduces those constants and
//! [`CostModel::calibrated`] lets harnesses plug host-measured peaks so the
//! theoretical bars of Figs. 5–7 are meaningful on any machine.

use crate::communicator::CommStats;

/// Performance-model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Message latency (seconds).
    pub ts: f64,
    /// Transfer time per byte (seconds/byte).
    pub tw: f64,
    /// Local reduction compute time per byte (seconds/byte).
    pub tc: f64,
    /// Peak floating-point rate (FLOP/s).
    pub peak_flops: f64,
}

impl CostModel {
    /// The constants the paper uses for its theoretical estimates (§IV-C):
    /// IB HDR latency/bandwidth and A100 fp32 peak.
    pub fn paper_a100() -> Self {
        Self {
            ts: 1.0e-4,
            tw: 1.0 / 2.0e10,
            tc: 1.0e-10,
            peak_flops: 19.5e12,
        }
    }

    /// A model with a host-calibrated compute peak (e.g. from a GEMM probe)
    /// and shared-memory-ish transport constants.
    pub fn calibrated(peak_flops: f64) -> Self {
        Self {
            ts: 2.0e-6,       // thread-barrier scale latency
            tw: 1.0 / 1.0e10, // ~10 GB/s effective shared-memory bandwidth
            tc: 1.0e-10,
            peak_flops,
        }
    }

    fn log2p(p: usize) -> f64 {
        (p.max(1) as f64).log2().max(0.0)
    }

    /// Recursive-doubling allreduce time for an `m`-byte payload on `p` ranks.
    pub fn allreduce_time(&self, m_bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        Self::log2p(p) * (self.ts + m_bytes as f64 * (self.tw + self.tc))
    }

    /// Recursive-doubling allgather time for an `m`-byte total payload.
    pub fn allgather_time(&self, m_bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        Self::log2p(p) * self.ts + ((p - 1) as f64 / p as f64) * m_bytes as f64 * self.tw
    }

    /// Binomial-tree broadcast time for an `m`-byte payload.
    pub fn bcast_time(&self, m_bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        Self::log2p(p) * (self.ts + m_bytes as f64 * self.tw)
    }

    /// Ideal compute time for a flop count.
    pub fn flop_time(&self, flops: u64) -> f64 {
        flops as f64 / self.peak_flops
    }

    /// Predicted total communication time for a recorded set of collective
    /// calls (treats every call at its average payload; exact per-call replay
    /// is available to harnesses that need it).
    pub fn predict_comm(&self, stats: &CommStats, p: usize) -> f64 {
        let avg =
            |bytes: u64, calls: u64| -> usize { bytes.checked_div(calls).unwrap_or(0) as usize };
        let ar = self.allreduce_time(avg(stats.allreduce_bytes, stats.allreduce_calls), p)
            * stats.allreduce_calls as f64;
        let bc = self.bcast_time(avg(stats.bcast_bytes, stats.bcast_calls), p)
            * stats.bcast_calls as f64;
        let ag = self.allgather_time(avg(stats.allgather_bytes, stats.allgather_calls), p)
            * stats.allgather_calls as f64;
        ar + bc + ag
    }

    /// Measure a crude GEMM roofline on this host and return a calibrated
    /// model. `n` is the probe GEMM order (a few hundred is plenty).
    pub fn calibrate_on_host(n: usize) -> Self {
        use firal_linalg::{gemm, Matrix};
        let a = Matrix::<f32>::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 13) as f32 * 0.1);
        let b = Matrix::<f32>::from_fn(n, n, |i, j| ((i * 17 + j * 3) % 11) as f32 * 0.1);
        // Warm up, then measure the best of three.
        let _ = gemm(&a, &b);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            let c = gemm(&a, &b);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&c);
            best = best.min(dt);
        }
        let flops = 2.0 * (n as f64).powi(3);
        Self::calibrated(flops / best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = CostModel::paper_a100();
        assert_eq!(m.ts, 1.0e-4);
        assert!((1.0 / m.tw - 2.0e10).abs() < 1.0);
        assert_eq!(m.peak_flops, 19.5e12);
    }

    #[test]
    fn single_rank_communication_is_free() {
        let m = CostModel::paper_a100();
        assert_eq!(m.allreduce_time(1 << 20, 1), 0.0);
        assert_eq!(m.allgather_time(1 << 20, 1), 0.0);
        assert_eq!(m.bcast_time(1 << 20, 1), 0.0);
    }

    #[test]
    fn allreduce_scales_log_p() {
        let m = CostModel::paper_a100();
        let t2 = m.allreduce_time(1 << 20, 2);
        let t8 = m.allreduce_time(1 << 20, 8);
        assert!(
            (t8 / t2 - 3.0).abs() < 1e-9,
            "log₂8/log₂2 = 3, got {}",
            t8 / t2
        );
    }

    #[test]
    fn allgather_bandwidth_term_saturates() {
        let m = CostModel::paper_a100();
        // (p-1)/p → 1: bandwidth term roughly stops growing with p.
        let t2 = m.allgather_time(1 << 24, 2) - 1.0 * m.ts;
        let t16 = m.allgather_time(1 << 24, 16) - 4.0 * m.ts;
        assert!(t16 / t2 < 2.0);
    }

    #[test]
    fn flop_time_inverse_to_peak() {
        let m = CostModel::paper_a100();
        assert!((m.flop_time(19_500_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predict_comm_combines_all_collectives() {
        let m = CostModel::paper_a100();
        let stats = CommStats {
            allreduce_calls: 10,
            allreduce_bytes: 10 * 4096,
            bcast_calls: 5,
            bcast_bytes: 5 * 1024,
            allgather_calls: 2,
            allgather_bytes: 2 * 2048,
            time: std::time::Duration::ZERO,
        };
        let t = m.predict_comm(&stats, 4);
        let expect = 10.0 * m.allreduce_time(4096, 4)
            + 5.0 * m.bcast_time(1024, 4)
            + 2.0 * m.allgather_time(2048, 4);
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn host_calibration_returns_positive_peak() {
        let m = CostModel::calibrate_on_host(96);
        assert!(m.peak_flops > 1e6, "unreasonable peak {}", m.peak_flops);
    }
}
