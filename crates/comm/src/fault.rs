//! Deterministic fault injection for chaos-testing the collective layer.
//!
//! A `FaultPlan` (crate-internal) is parsed once per process from [`FAULT_ENV`]
//! (`FIRAL_FAULT`) and consulted by every backend at two hook points: the
//! top of each collective (keyed off the per-rank collective sequence
//! number the schedule verifier tracks, so an injection lands at exactly
//! the same schedule point on every run) and during socket rendezvous.
//!
//! Grammar — `;`-separated specs, each `action:key=value,...`:
//!
//! ```text
//! kill:rank=2,op=14        exit/panic on rank 2 at collective #14
//! stall:rank=1,op=7,ms=500 sleep 500 ms on rank 1 at collective #7
//! drop-conn:rank=3,op=9    sever rank 3's mesh links at collective #9
//! kill:rank=0              op omitted: fire during rendezvous
//! ```
//!
//! Each spec fires at most once per process. `kill` exits with status
//! [`KILL_EXIT_CODE`] in SPMD child processes (so the parent's exit report
//! can attribute it) and panics in thread-backend ranks; `stall` sleeps —
//! the failure only materializes if the stall outlives the configured
//! communication deadline; `drop-conn` is returned to the backend, which
//! severs its own transport. The grammar and the survivability matrix are
//! documented in `ARCHITECTURE.md` ("Failure model").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable holding the fault plan. Unset means no injection;
/// a malformed plan is a loud startup panic, never a silently ignored one.
pub const FAULT_ENV: &str = "FIRAL_FAULT";

/// Exit status used by an injected `kill` in an SPMD child process, chosen
/// to be distinguishable from both success and a raised-`CommError` exit
/// in the fault matrix's per-rank exit report.
pub const KILL_EXIT_CODE: i32 = 113;

/// A fault action a backend must carry out itself (in contrast to `kill`
/// and `stall`, which the plan executes internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injected {
    /// Sever every transport link of this endpoint, then continue into the
    /// collective so the failure is observed as a structured error.
    DropConn,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Kill,
    Stall,
    DropConn,
}

#[derive(Debug)]
struct FaultSpec {
    action: Action,
    rank: usize,
    /// Collective sequence number to fire at; `None` fires at rendezvous.
    op: Option<u64>,
    /// Stall duration (ms); only meaningful for [`Action::Stall`].
    ms: u64,
    fired: AtomicBool,
}

/// The parsed, process-wide fault plan.
#[derive(Debug, Default)]
pub(crate) struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parse a plan from the [`FAULT_ENV`] grammar.
    fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        for spec in text.split(';') {
            let spec = spec.trim();
            if spec.is_empty() {
                continue;
            }
            let (action, args) = spec
                .split_once(':')
                .ok_or_else(|| format!("fault spec {spec:?} has no `action:` prefix"))?;
            let action = match action.trim() {
                "kill" => Action::Kill,
                "stall" => Action::Stall,
                "drop-conn" => Action::DropConn,
                other => {
                    return Err(format!(
                        "unknown fault action {other:?} (expected kill, stall, or drop-conn)"
                    ))
                }
            };
            let mut rank = None;
            let mut op = None;
            let mut ms = None;
            for kv in args.split(',') {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("fault arg {kv:?} is not key=value"))?;
                let value: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault arg {kv:?} has a non-integer value"))?;
                match key.trim() {
                    "rank" => rank = Some(value as usize),
                    "op" => op = Some(value),
                    "ms" => ms = Some(value),
                    other => return Err(format!("unknown fault arg key {other:?}")),
                }
            }
            let rank = rank.ok_or_else(|| format!("fault spec {spec:?} is missing rank="))?;
            if action == Action::Stall && ms.is_none() {
                return Err(format!("stall spec {spec:?} is missing ms="));
            }
            specs.push(FaultSpec {
                action,
                rank,
                op,
                ms: ms.unwrap_or(0),
                fired: AtomicBool::new(false),
            });
        }
        Ok(FaultPlan { specs })
    }

    /// The process-wide plan from [`FAULT_ENV`]; empty when unset.
    pub(crate) fn from_env() -> &'static FaultPlan {
        static PLAN: OnceLock<FaultPlan> = OnceLock::new();
        PLAN.get_or_init(|| match std::env::var(FAULT_ENV) {
            Ok(text) => FaultPlan::parse(&text)
                .unwrap_or_else(|e| panic!("{FAULT_ENV}={text:?} did not parse: {e}")),
            Err(_) => FaultPlan::default(),
        })
    }

    /// Fire any spec matching `(rank, seq)` at a collective hook point.
    /// `kill` and `stall` are executed here; an action the backend must
    /// perform itself is returned.
    pub(crate) fn at_collective(&self, rank: usize, seq: u64) -> Option<Injected> {
        self.fire(rank, Some(seq))
    }

    /// Fire any op-less spec matching `rank` during rendezvous.
    pub(crate) fn at_rendezvous(&self, rank: usize) -> Option<Injected> {
        self.fire(rank, None)
    }

    fn fire(&self, rank: usize, seq: Option<u64>) -> Option<Injected> {
        let mut injected = None;
        for spec in &self.specs {
            if spec.rank != rank || spec.op != seq {
                continue;
            }
            if spec.fired.swap(true, Ordering::Relaxed) {
                continue;
            }
            match spec.action {
                Action::Kill => {
                    let at = match seq {
                        Some(op) => format!("collective #{op}"),
                        None => "rendezvous".to_string(),
                    };
                    // In a real SPMD child the injected death must look like
                    // a crashed process, not an unwound thread.
                    if std::env::var(crate::socket_comm::ENV_RANK).is_ok() {
                        eprintln!("{FAULT_ENV}: injected kill on rank {rank} at {at}");
                        std::process::exit(KILL_EXIT_CODE);
                    }
                    panic!("{FAULT_ENV}: injected kill on rank {rank} at {at}");
                }
                Action::Stall => std::thread::sleep(Duration::from_millis(spec.ms)),
                Action::DropConn => injected = Some(Injected::DropConn),
            }
        }
        injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let plan = FaultPlan::parse("kill:rank=2,op=14; stall:rank=1,op=7,ms=500;drop-conn:rank=3")
            .expect("valid plan");
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(plan.specs[0].action, Action::Kill);
        assert_eq!(plan.specs[0].rank, 2);
        assert_eq!(plan.specs[0].op, Some(14));
        assert_eq!(plan.specs[1].action, Action::Stall);
        assert_eq!(plan.specs[1].ms, 500);
        assert_eq!(plan.specs[2].action, Action::DropConn);
        assert_eq!(plan.specs[2].op, None, "op-less specs fire at rendezvous");
    }

    #[test]
    fn malformed_plans_are_loud() {
        for bad in [
            "explode:rank=1",
            "kill:op=3",
            "stall:rank=1,op=2",
            "kill:rank=x",
            "kill:rank",
            "kill:rank=1,color=2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert!(FaultPlan::parse("")
            .expect("empty is fine")
            .specs
            .is_empty());
    }

    #[test]
    fn specs_fire_once_at_their_exact_schedule_point() {
        let plan = FaultPlan::parse("drop-conn:rank=3,op=9").expect("valid");
        assert_eq!(plan.at_collective(3, 8), None, "wrong seq");
        assert_eq!(plan.at_collective(2, 9), None, "wrong rank");
        assert_eq!(plan.at_rendezvous(3), None, "op'd spec skips rendezvous");
        assert_eq!(plan.at_collective(3, 9), Some(Injected::DropConn));
        assert_eq!(plan.at_collective(3, 9), None, "fires at most once");
    }

    #[test]
    fn stall_executes_inline_and_rendezvous_specs_match_oplessly() {
        let plan = FaultPlan::parse("stall:rank=0,op=1,ms=1; drop-conn:rank=1").expect("valid");
        // A fired stall returns no backend action.
        assert_eq!(plan.at_collective(0, 1), None);
        assert_eq!(plan.at_rendezvous(1), Some(Injected::DropConn));
    }
}
