//! The wire format shared by the real transports.
//!
//! Everything a [`crate::Communicator`] puts on a wire
//! is defined here exactly once, so every backend ([`crate::ThreadComm`]'s
//! shared-memory slots, [`crate::SocketComm`]'s TCP frames, and any future
//! process transport) agrees bit-for-bit:
//!
//! * integers are little-endian `u64`;
//! * `f64` buffers travel as a `u64` element-count prefix followed by the
//!   raw little-endian IEEE-754 bytes;
//! * MAXLOC contributions are a [`MaxLoc`] record — the `f64` value and the
//!   `u64` payload in **separate lanes**. The payload is never bit-punned
//!   through a float: copying a `u64` through an `f64` register can
//!   canonicalize NaN bit patterns on some targets (e.g. when a payload
//!   happens to alias a signaling-NaN encoding), silently corrupting the
//!   index it carries;
//! * the MAXLOC reduction itself is [`MaxLoc::reduce_rank_ordered`], the
//!   single definition of the tie/sentinel semantics every backend must
//!   implement;
//! * every collective frame is prefixed by a **scope tag** ([`ROOT_SCOPE`],
//!   [`derive_scope`], [`expect_scope`]): sub-communicators produced by
//!   `Communicator::split` stamp their frames with a scope derived from the
//!   parent's, so a collective issued on one sub-group can never be consumed
//!   by a collective of a different (sub-)group sharing the same mesh links
//!   — a mismatched program order fails loudly instead of silently
//!   desynchronizing the stream.

use std::io::{self, Read, Write};

/// Sanity magic exchanged during the [`crate::SocketComm`] rendezvous so a
/// stray connection (or a rank built from an incompatible protocol
/// revision) fails loudly instead of desynchronizing the mesh.
pub const MAGIC: u64 = 0xF1AA_1C0D_E550_0001;

/// Scope tag of the root (un-split) communicator: the frame prefix every
/// collective on the full group carries. Sub-communicators derive their own
/// tags from this via [`derive_scope`].
pub const ROOT_SCOPE: u64 = 0xF1AA_5C0B_E000_0000;

/// Reserved frame prefix of an **abort frame**: a rank that fails (peer
/// death, deadline, panic) writes this tag — followed by its world rank and
/// a reason string — on every mesh link, so survivors blocked in
/// [`expect_scope`] observe a structured [`AbortMsg`] within one deadline
/// instead of deadlocking. `derive_scope` output colliding with this value
/// is as likely as any other 64-bit collision; [`expect_scope`] treats the
/// tag as reserved unconditionally.
pub const ABORT_TAG: u64 = 0xF1AA_DEAD_AB0A_7000;

/// The payload of an [`ABORT_TAG`] frame: which world rank failed first,
/// and its diagnostic. Carried to callers inside an
/// [`io::ErrorKind::ConnectionAborted`] error (downcast via
/// [`io::Error::get_ref`]), so every existing `io::Result` path propagates
/// it without new plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortMsg {
    /// World rank of the endpoint that originated the abort.
    pub origin: usize,
    /// The originating rank's diagnostic.
    pub reason: String,
}

impl std::fmt::Display for AbortMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "abort frame from rank {}: {}", self.origin, self.reason)
    }
}

impl std::error::Error for AbortMsg {}

/// Write an abort frame (tag, origin rank, reason). Reasons longer than the
/// wire's string cap are truncated at a char boundary rather than rejected —
/// an abort must never fail to encode.
pub fn write_abort(w: &mut impl Write, origin: usize, reason: &str) -> io::Result<()> {
    let mut end = reason.len().min(MAX_WIRE_STR);
    while !reason.is_char_boundary(end) {
        end -= 1;
    }
    write_u64(w, ABORT_TAG)?;
    write_u64(w, origin as u64)?;
    write_str(w, &reason[..end])?;
    w.flush()
}

/// Derive a sub-communicator's scope tag from its parent's scope, the
/// parent's running split counter, and the split `color`.
///
/// Every member of one sub-group computes the identical tag (the inputs are
/// replicated by the split's membership exchange), while different groups —
/// and different split generations — get distinct tags with overwhelming
/// probability (SplitMix64 finalizer over the packed inputs).
pub fn derive_scope(parent: u64, seq: u64, color: u64) -> u64 {
    let mut z = parent
        .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(color.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Write a scope tag ahead of a collective frame.
pub fn write_scope(w: &mut impl Write, scope: u64) -> io::Result<()> {
    write_u64(w, scope)
}

/// Read and verify the scope tag ahead of a collective frame. A mismatch
/// means the peer issued a collective on a *different* (sub-)communicator
/// sharing the same link — the cross-talk hazard `Communicator::split`
/// framing exists to catch. An [`ABORT_TAG`] in the scope position instead
/// decodes the peer's abort frame and surfaces it as a
/// [`io::ErrorKind::ConnectionAborted`] error wrapping the [`AbortMsg`].
pub fn expect_scope(r: &mut impl Read, scope: u64) -> io::Result<()> {
    let got = read_u64(r)?;
    if got == ABORT_TAG {
        let origin = read_u64(r)? as usize;
        let reason = read_str(r).unwrap_or_else(|e| format!("(unreadable abort reason: {e})"));
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            AbortMsg { origin, reason },
        ));
    }
    if got != scope {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "collective scope mismatch on the wire: got {got:#018x}, expected \
                 {scope:#018x} (sub-group collectives issued in different orders \
                 on the two ends of this link?)"
            ),
        ));
    }
    Ok(())
}

/// One rank's MAXLOC contribution: a value and the opaque payload that
/// travels with it (for Approx-FIRAL, the global pool index of the
/// candidate point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxLoc {
    /// The quantity being maximized.
    pub value: f64,
    /// Payload attached to the value; all 64 bits are preserved.
    pub payload: u64,
}

impl MaxLoc {
    /// Encoded size on the wire: `value` lane + `payload` lane.
    pub const WIRE_BYTES: usize = 16;

    /// Encode as two little-endian 8-byte lanes.
    pub fn encode(&self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        out[..8].copy_from_slice(&self.value.to_bits().to_le_bytes());
        out[8..].copy_from_slice(&self.payload.to_le_bytes());
        out
    }

    /// Decode the two lanes written by [`MaxLoc::encode`].
    pub fn decode(bytes: &[u8; Self::WIRE_BYTES]) -> Self {
        let value = f64::from_bits(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
        let payload = u64::from_le_bytes(bytes[8..].try_into().unwrap());
        Self { value, payload }
    }

    /// MPI `MAXLOC` over contributions listed **in rank order**: the result
    /// is seeded from the first (lowest-rank) record and replaced only on a
    /// strictly greater value, so ties keep the lowest rank and the
    /// degenerate all-`-inf` case propagates rank 0's sentinel payload
    /// instead of fabricating one.
    pub fn reduce_rank_ordered(contribs: impl IntoIterator<Item = MaxLoc>) -> MaxLoc {
        let mut it = contribs.into_iter();
        let mut best = it.next().expect("MAXLOC needs at least one contribution");
        for c in it {
            if c.value > best.value {
                best = c;
            }
        }
        best
    }
}

/// Write one little-endian `u64`.
pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read one little-endian `u64`.
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut bytes = [0u8; 8];
    r.read_exact(&mut bytes)?;
    Ok(u64::from_le_bytes(bytes))
}

/// Ceiling on the element count of a single wire frame (2 GiB of `f64`s).
/// A stream that desyncs mid-frame yields a garbage length; failing with
/// `InvalidData` beats aborting the rank with an OOM.
pub const MAX_WIRE_ELEMS: usize = 1 << 28;

/// Write a length-prefixed `f64` buffer, staging through a small stack
/// chunk (no per-call heap allocation on the hot path).
pub fn write_f64s(w: &mut impl Write, data: &[f64]) -> io::Result<()> {
    write_u64(w, data.len() as u64)?;
    let mut chunk = [0u8; 4096];
    for block in data.chunks(chunk.len() / 8) {
        let mut used = 0;
        for v in block {
            chunk[used..used + 8].copy_from_slice(&v.to_le_bytes());
            used += 8;
        }
        w.write_all(&chunk[..used])?;
    }
    Ok(())
}

/// Read a length-prefixed `f64` buffer into `out`, failing if the sender's
/// length disagrees (the "length mismatch across ranks" contract check).
pub fn read_f64s_into(r: &mut impl Read, out: &mut [f64]) -> io::Result<()> {
    let n = read_u64(r)? as usize;
    if n != out.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "collective length mismatch across ranks: got {n}, expected {}",
                out.len()
            ),
        ));
    }
    read_f64_payload(r, out)
}

/// Read a length-prefixed `f64` buffer of sender-determined length
/// (bounded by [`MAX_WIRE_ELEMS`] so a desynchronized stream fails loudly).
pub fn read_f64s(r: &mut impl Read) -> io::Result<Vec<f64>> {
    let n = read_u64(r)? as usize;
    if n > MAX_WIRE_ELEMS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unreasonable frame length {n} on the wire (stream desync?)"),
        ));
    }
    let mut out = vec![0.0; n];
    read_f64_payload(r, &mut out)?;
    Ok(out)
}

fn read_f64_payload(r: &mut impl Read, out: &mut [f64]) -> io::Result<()> {
    // Decode through the same fixed stack chunk as the write path — no
    // frame-sized heap allocation per read.
    let mut chunk = [0u8; 4096];
    for block in out.chunks_mut(chunk.len() / 8) {
        let bytes = &mut chunk[..block.len() * 8];
        r.read_exact(bytes)?;
        for (v, b) in block.iter_mut().zip(bytes.chunks_exact(8)) {
            *v = f64::from_le_bytes(b.try_into().unwrap());
        }
    }
    Ok(())
}

/// Ceiling on the byte length of a raw byte frame ([`write_bytes`]):
/// 1 GiB. Byte frames carry serving-layer payloads (serialized requests,
/// uploaded pools, responses); a desynchronized stream yields a garbage
/// length prefix, and rejecting it beats aborting the process with an OOM.
pub const MAX_WIRE_BYTES: usize = 1 << 30;

/// Write a length-prefixed raw byte buffer. The byte-frame lane is the
/// substrate of the serving layer's point-to-point control plane
/// (schedules, pool uploads, per-request results) — opaque to the
/// collective machinery, never fingerprinted by the schedule verifier.
pub fn write_bytes(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    write_u64(w, data.len() as u64)?;
    w.write_all(data)
}

/// Read a length-prefixed raw byte buffer written by [`write_bytes`],
/// bounded by [`MAX_WIRE_BYTES`] so a desynced stream fails loudly.
pub fn read_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let n = read_u64(r)? as usize;
    if n > MAX_WIRE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unreasonable byte-frame length {n} on the wire (stream desync?)"),
        ));
    }
    let mut out = vec![0u8; n];
    r.read_exact(&mut out)?;
    Ok(out)
}

/// Ceiling on the byte length of a wire string (rendezvous addresses,
/// abort reasons). A desynced stream yields a garbage length; rejecting it
/// beats a giant allocation.
pub const MAX_WIRE_STR: usize = 4096;

/// Write a length-prefixed UTF-8 string (rendezvous addresses).
pub fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str(r: &mut impl Read) -> io::Result<String> {
    let n = read_u64(r)? as usize;
    if n > MAX_WIRE_STR {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unreasonable string length on the wire",
        ));
    }
    let mut bytes = vec![0u8; n];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxloc_roundtrips_all_payload_bits() {
        for payload in [0u64, 1, u64::MAX, u64::MAX - 12345, 0x7FF8_0000_0000_0001] {
            let m = MaxLoc {
                value: -3.25,
                payload,
            };
            assert_eq!(MaxLoc::decode(&m.encode()), m);
        }
    }

    #[test]
    fn maxloc_roundtrips_nan_aliasing_payloads() {
        // Payloads that alias NaN encodings in the value lane must survive
        // untouched because they travel in the integer lane.
        let nan_bits = f64::NAN.to_bits();
        let m = MaxLoc {
            value: 1.0,
            payload: nan_bits,
        };
        assert_eq!(MaxLoc::decode(&m.encode()).payload, nan_bits);
    }

    #[test]
    fn reduce_keeps_lowest_rank_on_ties() {
        let r = MaxLoc::reduce_rank_ordered((0..4).map(|rank| MaxLoc {
            value: 7.0,
            payload: rank,
        }));
        assert_eq!(r.payload, 0);
    }

    #[test]
    fn reduce_propagates_rank0_sentinel_when_all_neg_inf() {
        let r = MaxLoc::reduce_rank_ordered([
            MaxLoc {
                value: f64::NEG_INFINITY,
                payload: u64::MAX,
            },
            MaxLoc {
                value: f64::NEG_INFINITY,
                payload: 17,
            },
        ]);
        assert_eq!(r.value, f64::NEG_INFINITY);
        assert_eq!(r.payload, u64::MAX);
    }

    #[test]
    fn reduce_picks_strict_maximum() {
        let r = MaxLoc::reduce_rank_ordered([
            MaxLoc {
                value: 1.0,
                payload: 10,
            },
            MaxLoc {
                value: 5.0,
                payload: 11,
            },
            MaxLoc {
                value: 2.0,
                payload: 12,
            },
        ]);
        assert_eq!((r.value, r.payload), (5.0, 11));
    }

    #[test]
    fn f64_frames_roundtrip() {
        let data = vec![1.5, -2.0, f64::INFINITY, 0.0];
        let mut buf = Vec::new();
        write_f64s(&mut buf, &data).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_f64s(&mut cursor).unwrap(), data);

        let mut cursor = &buf[..];
        let mut out = vec![0.0; 4];
        read_f64s_into(&mut cursor, &mut out).unwrap();
        assert_eq!(out, data);

        let mut cursor = &buf[..];
        let mut short = vec![0.0; 3];
        assert!(read_f64s_into(&mut cursor, &mut short).is_err());
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, (MAX_WIRE_ELEMS as u64) + 1).unwrap();
        let mut cursor = &buf[..];
        assert!(read_f64s(&mut cursor).is_err());
    }

    #[test]
    fn scope_tags_roundtrip_and_mismatch_fails() {
        let scope = derive_scope(ROOT_SCOPE, 0, 3);
        let mut buf = Vec::new();
        write_scope(&mut buf, scope).unwrap();
        let mut cursor = &buf[..];
        assert!(expect_scope(&mut cursor, scope).is_ok());
        let mut cursor = &buf[..];
        let err = expect_scope(&mut cursor, ROOT_SCOPE).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn derived_scopes_are_distinct_per_color_seq_and_parent() {
        // Same inputs ⇒ same tag (all members of a group must agree)...
        assert_eq!(
            derive_scope(ROOT_SCOPE, 1, 2),
            derive_scope(ROOT_SCOPE, 1, 2)
        );
        // ...while varying any input separates the groups.
        let tags = [
            ROOT_SCOPE,
            derive_scope(ROOT_SCOPE, 0, 0),
            derive_scope(ROOT_SCOPE, 0, 1),
            derive_scope(ROOT_SCOPE, 1, 0),
            derive_scope(derive_scope(ROOT_SCOPE, 0, 0), 0, 0),
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b, "scope collision between derivations");
            }
        }
    }

    #[test]
    fn abort_frames_preempt_the_scope_check() {
        let mut buf = Vec::new();
        write_abort(&mut buf, 2, "rank 2 panicked: boom").unwrap();
        let mut cursor = &buf[..];
        let err = expect_scope(&mut cursor, ROOT_SCOPE).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        let abort = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<AbortMsg>())
            .expect("abort frame must decode to AbortMsg");
        assert_eq!(abort.origin, 2);
        assert!(abort.reason.contains("boom"), "{abort:?}");
    }

    #[test]
    fn abort_reasons_are_truncated_not_rejected() {
        let long = "x".repeat(MAX_WIRE_STR + 100);
        let mut buf = Vec::new();
        write_abort(&mut buf, 0, &long).unwrap();
        let mut cursor = &buf[..];
        let err = expect_scope(&mut cursor, ROOT_SCOPE).unwrap_err();
        let abort = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<AbortMsg>())
            .expect("truncated abort must still decode");
        assert_eq!(abort.reason.len(), MAX_WIRE_STR);
    }

    #[test]
    fn byte_frames_roundtrip_including_empty() {
        for data in [&b""[..], b"\x00\x01\xFF", b"serve request"] {
            let mut buf = Vec::new();
            write_bytes(&mut buf, data).unwrap();
            let mut cursor = &buf[..];
            assert_eq!(read_bytes(&mut cursor).unwrap(), data);
        }
    }

    #[test]
    fn oversized_byte_frame_length_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, (MAX_WIRE_BYTES as u64) + 1).unwrap();
        let mut cursor = &buf[..];
        let err = read_bytes(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_byte_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100).unwrap();
        buf.extend_from_slice(&[7u8; 10]);
        let mut cursor = &buf[..];
        assert!(read_bytes(&mut cursor).is_err());
    }

    #[test]
    fn strings_roundtrip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "127.0.0.1:12345").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_str(&mut cursor).unwrap(), "127.0.0.1:12345");
    }
}
