//! Shared-memory multi-rank communicator.
//!
//! [`launch(p, f)`](launch) runs an SPMD closure on `p` OS threads, each
//! holding a [`ThreadComm`] endpoint. Collectives are deposit/combine over
//! shared slots:
//!
//! 1. every rank publishes its contribution to its own cache-padded slot,
//! 2. barrier,
//! 3. every rank reads all slots and reduces **in rank order** (so the
//!    floating-point result is identical on every rank — the property MPI
//!    guarantees for deterministic reduction orders),
//! 4. barrier (so slots can be safely reused by the next collective).
//!
//! This gives the exact synchronization and data semantics of the paper's
//! `MPI_Allreduce`/`MPI_Bcast`/`MPI_Allgather` usage; transport cost is
//! modelled analytically by [`crate::CostModel`].
//!
//! # Failure behaviour
//!
//! The group barrier is *abortable*: a rank that panics out of [`launch`]'s
//! closure (or is killed by the fault plan, [`crate::fault`]) poisons the
//! root group's barrier, so every surviving rank blocked in a collective
//! returns [`CommError::RemoteAbort`] instead of deadlocking; with
//! `FIRAL_COMM_TIMEOUT` set, a rank stuck at a barrier gives up after the
//! deadline with [`CommError::DeadlineExceeded`] and poisons the barrier on
//! the way out. Known limitation: poisoning covers the group whose barrier
//! the panicking rank's endpoint was built on — sub-communicators created by
//! `split` have their own barriers and are only poisoned if the failure
//! happens while their members are inside a sub-group collective.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

use crate::communicator::{split_membership, CommStats, Communicator, ReduceOp};
use crate::error::{comm_catch, comm_timeout, CommError};
use crate::fault::{FaultPlan, Injected};
use crate::verify::{CollectiveKind, Dtype, Fingerprint, Verifier};
use crate::wire::{self, MaxLoc};

/// Pad each slot to its own cache line so rank publications don't false-share.
#[repr(align(128))]
struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    fn new(value: T) -> Self {
        Self(value)
    }
}

/// Why an [`AbortableBarrier::wait`] did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BarrierError {
    /// A rank failed and poisoned the group: `(origin rank, its diagnostic)`.
    Poisoned(usize, String),
    /// This rank exceeded the configured deadline waiting for its peers.
    Deadline(Duration),
}

/// A counting barrier (std's [`std::sync::Barrier`] semantics) that can be
/// **poisoned**: once any rank marks the group failed, every current and
/// future waiter returns [`BarrierError::Poisoned`] immediately instead of
/// blocking for peers that will never arrive. An optional per-wait deadline
/// turns an indefinite stall into [`BarrierError::Deadline`] — and poisons
/// the barrier on the way out, so the *other* ranks stuck at the same
/// barrier observe the failure within their own deadline.
struct AbortableBarrier {
    size: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    poison: Option<(usize, String)>,
}

impl AbortableBarrier {
    fn new(size: usize) -> Self {
        Self {
            size,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                poison: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until all `size` ranks arrive, the barrier is poisoned, or
    /// `deadline` elapses. `rank` names this endpoint in the poison record
    /// it leaves behind on a deadline.
    fn wait(&self, rank: usize, deadline: Option<Duration>) -> Result<(), BarrierError> {
        let mut s = self.state.lock().expect("barrier mutex poisoned");
        if let Some((origin, reason)) = s.poison.clone() {
            return Err(BarrierError::Poisoned(origin, reason));
        }
        let gen = s.generation;
        s.count += 1;
        if s.count == self.size {
            s.count = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let until = deadline.map(|d| (Instant::now() + d, d));
        loop {
            s = match until {
                None => self.cv.wait(s).expect("barrier mutex poisoned"),
                Some((until, total)) => {
                    let now = Instant::now();
                    if now >= until {
                        // Give up — and poison, so peers parked at this
                        // same barrier unblock with a diagnosis instead of
                        // timing out one by one.
                        if s.poison.is_none() {
                            s.poison = Some((
                                rank,
                                format!("rank {rank} exceeded the {total:?} barrier deadline"),
                            ));
                        }
                        self.cv.notify_all();
                        return Err(BarrierError::Deadline(total));
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(s, until - now)
                        .expect("barrier mutex poisoned");
                    guard
                }
            };
            if let Some((origin, reason)) = s.poison.clone() {
                return Err(BarrierError::Poisoned(origin, reason));
            }
            if s.generation != gen {
                return Ok(());
            }
        }
    }

    /// Mark the group failed (first writer wins) and wake every waiter.
    fn poison(&self, origin: usize, reason: String) {
        let mut s = self.state.lock().expect("barrier mutex poisoned");
        if s.poison.is_none() {
            s.poison = Some((origin, reason));
        }
        self.cv.notify_all();
    }
}

/// One rank's deposit: the float buffer plus a separate integer lane for
/// the MAXLOC payload. Keeping the payload out of the `f64` buffer matches
/// the shared wire format ([`crate::wire::MaxLoc`]) and avoids bit-punning
/// indices through floats, which can canonicalize NaN-aliasing patterns on
/// some targets.
#[derive(Default)]
struct Slot {
    data: Vec<f64>,
    payload: u64,
}

struct Shared {
    size: usize,
    slots: Vec<CachePadded<RwLock<Slot>>>,
    barrier: AbortableBarrier,
    /// Rendezvous table for [`Communicator::split`]: each sub-group's
    /// leader (new rank 0) deposits the freshly built sub-[`Shared`] under
    /// `(split sequence number, color)`; the other members pick it up
    /// between two parent barriers. Entries are removed once claimed, so
    /// the map stays empty outside an in-flight split.
    ///
    /// Determinism audit: the table is only ever accessed by exact key —
    /// `insert`, `get`, `remove` — never iterated, so no container ordering
    /// can reach a reduction. It is a `BTreeMap` anyway (the keys are
    /// `Ord`), making the no-iteration-order property structural rather
    /// than a usage convention (`firal-lint` rule `hash-order`).
    splits: Mutex<BTreeMap<(u64, u64), Arc<Shared>>>,
    /// Fingerprint table for the debug-mode collective-order verifier
    /// ([`crate::verify`]): when verification is on, every rank publishes
    /// the fingerprint of the collective it is entering here, and every
    /// rank cross-checks all entries between two barriers *before* the
    /// collective's data phase runs.
    fps: Vec<CachePadded<RwLock<Option<Fingerprint>>>>,
}

impl Shared {
    fn new(size: usize) -> Self {
        Self {
            size,
            slots: (0..size)
                .map(|_| CachePadded::new(RwLock::new(Slot::default())))
                .collect(),
            barrier: AbortableBarrier::new(size),
            splits: Mutex::new(BTreeMap::new()),
            fps: (0..size)
                .map(|_| CachePadded::new(RwLock::new(None)))
                .collect(),
        }
    }

    fn read_slot(&self, rank: usize) -> RwLockReadGuard<'_, Slot> {
        self.slots[rank].0.read().expect("slot lock poisoned")
    }
}

/// One rank's endpoint of a shared-memory process group.
pub struct ThreadComm {
    rank: usize,
    shared: Arc<Shared>,
    /// Per-endpoint split counter; members of one group call `split`
    /// collectively, so their counters advance in lock-step and uniquely
    /// name each split generation in the shared rendezvous table.
    split_seq: Cell<u64>,
    stats: RefCell<CommStats>,
    /// Collective-order verifier state ([`crate::verify`]); scope tags are
    /// derived exactly like [`crate::SocketComm`]'s frame scopes so the
    /// diagnostics name the same group identities across backends.
    verify: Verifier,
    /// First [`CommError`] observed on this endpoint; replayed by every
    /// subsequent collective so a failed group can never half-proceed.
    failed: RefCell<Option<CommError>>,
}

impl ThreadComm {
    fn new(rank: usize, shared: Arc<Shared>, scope: u64) -> Self {
        Self {
            rank,
            shared,
            split_seq: Cell::new(0),
            stats: RefCell::new(CommStats::default()),
            verify: Verifier::new(scope),
            failed: RefCell::new(None),
        }
    }

    /// Replay the stashed error on a poisoned endpoint.
    fn check_failed(&self) -> Result<(), CommError> {
        match &*self.failed.borrow() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Stash `result`'s error (first failure wins) and pass it through.
    fn seal<T>(&self, result: Result<T, CommError>) -> Result<T, CommError> {
        if let Err(e) = &result {
            let mut failed = self.failed.borrow_mut();
            if failed.is_none() {
                *failed = Some(e.clone());
            }
        }
        result
    }

    /// Consult the process-wide fault plan at this endpoint's next schedule
    /// point. An injected connection drop poisons the group barrier — the
    /// closest shared-memory analogue to severing a socket mesh.
    fn fault_hook(&self, seq: u64) {
        if FaultPlan::from_env().at_collective(self.rank, seq) == Some(Injected::DropConn) {
            self.shared.barrier.poison(
                self.rank,
                format!(
                    "{}: injected connection drop on rank {}",
                    crate::fault::FAULT_ENV,
                    self.rank
                ),
            );
        }
    }

    /// One abortable barrier round, with failures lifted to [`CommError`]
    /// carrying this collective's identity.
    fn bwait(&self, op: &'static str, seq: u64) -> Result<(), CommError> {
        match self.shared.barrier.wait(self.rank, comm_timeout()) {
            Ok(()) => Ok(()),
            Err(BarrierError::Deadline(after)) => Err(CommError::DeadlineExceeded {
                rank: self.rank,
                size: self.shared.size,
                op,
                seq,
                after,
            }),
            Err(BarrierError::Poisoned(origin, reason)) => Err(CommError::RemoteAbort {
                rank: self.rank,
                size: self.shared.size,
                op,
                seq,
                origin,
                reason,
            }),
        }
    }

    /// Debug-mode schedule check run at the top of every collective: stamp
    /// the fingerprint, publish it to the shared table, and cross-check all
    /// ranks' entries between two barriers. A mismatch aborts with the
    /// per-rank diagnostic trace instead of letting the data phase deadlock
    /// on skewed barrier counts or combine mismatched slots. No-op (beyond
    /// the schedule counter) unless verification is enabled
    /// ([`crate::verify::verify_enabled`]); a poisoned or timed-out barrier
    /// surfaces as `Err` like any data-phase failure.
    fn verify_collective(
        &self,
        kind: CollectiveKind,
        dtype: Dtype,
        param: u32,
        count: u64,
        op: &'static str,
        seq: u64,
    ) -> Result<(), CommError> {
        let Some(own) = self.verify.stamp(kind, dtype, param, count) else {
            return Ok(());
        };
        if self.shared.size == 1 {
            return Ok(());
        }
        *self.shared.fps[self.rank]
            .0
            .write()
            .expect("fingerprint lock poisoned") = Some(own);
        self.bwait(op, seq)?;
        for r in 0..self.shared.size {
            let theirs = *self.shared.fps[r]
                .0
                .read()
                .expect("fingerprint lock poisoned");
            match theirs {
                Some(fp) if own.matches(&fp) => {}
                _ => self
                    .verify
                    .mismatch_panic(self.rank, self.shared.size, own, r, theirs),
            }
        }
        self.bwait(op, seq)
    }

    fn publish(&self, data: &[f64]) {
        self.publish_with_payload(data, 0);
    }

    fn publish_with_payload(&self, data: &[f64], payload: u64) {
        let mut slot = self.shared.slots[self.rank]
            .0
            .write()
            .expect("slot lock poisoned");
        slot.data.clear();
        slot.data.extend_from_slice(data);
        slot.payload = payload;
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn try_barrier(&self) -> Result<(), CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(CollectiveKind::Barrier, Dtype::None, 0, 0, "barrier", seq)?;
            self.bwait("barrier", seq)
        })();
        self.seal(result)
    }

    fn try_allreduce_f64(&self, buf: &mut [f64], op: ReduceOp) -> Result<(), CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::allreduce(op),
                Dtype::F64,
                0,
                buf.len() as u64,
                "allreduce_f64",
                seq,
            )?;
            let t0 = Instant::now();
            self.publish(buf);
            self.bwait("allreduce_f64", seq)?;
            {
                let s0 = self.shared.read_slot(0);
                assert_eq!(
                    s0.data.len(),
                    buf.len(),
                    "allreduce length mismatch across ranks"
                );
                buf.copy_from_slice(&s0.data);
            }
            for r in 1..self.shared.size {
                let s = self.shared.read_slot(r);
                for (b, v) in buf.iter_mut().zip(s.data.iter()) {
                    *b = op.combine(*b, *v);
                }
            }
            self.bwait("allreduce_f64", seq)?;
            let mut st = self.stats.borrow_mut();
            st.allreduce_calls += 1;
            st.allreduce_bytes += (buf.len() * 8) as u64;
            st.time += t0.elapsed();
            Ok(())
        })();
        self.seal(result)
    }

    fn try_bcast_f64(&self, buf: &mut [f64], root: usize) -> Result<(), CommError> {
        assert!(root < self.shared.size, "bcast root out of range");
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::Bcast,
                Dtype::F64,
                root as u32,
                buf.len() as u64,
                "bcast_f64",
                seq,
            )?;
            let t0 = Instant::now();
            if self.rank == root {
                self.publish(buf);
            }
            self.bwait("bcast_f64", seq)?;
            if self.rank != root {
                let s = self.shared.read_slot(root);
                assert_eq!(
                    s.data.len(),
                    buf.len(),
                    "bcast length mismatch across ranks"
                );
                buf.copy_from_slice(&s.data);
            }
            self.bwait("bcast_f64", seq)?;
            let mut st = self.stats.borrow_mut();
            st.bcast_calls += 1;
            st.bcast_bytes += (buf.len() * 8) as u64;
            st.time += t0.elapsed();
            Ok(())
        })();
        self.seal(result)
    }

    fn try_allgatherv_f64(&self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::Allgatherv,
                Dtype::F64,
                0,
                local.len() as u64,
                "allgatherv_f64",
                seq,
            )?;
            let t0 = Instant::now();
            self.publish(local);
            self.bwait("allgatherv_f64", seq)?;
            let mut out = Vec::new();
            for r in 0..self.shared.size {
                let s = self.shared.read_slot(r);
                out.extend_from_slice(&s.data);
            }
            self.bwait("allgatherv_f64", seq)?;
            let mut st = self.stats.borrow_mut();
            st.allgather_calls += 1;
            st.allgather_bytes += (local.len() * 8) as u64;
            st.time += t0.elapsed();
            Ok(out)
        })();
        self.seal(result)
    }

    fn try_split(&self, color: usize, key: usize) -> Result<Box<dyn Communicator>, CommError> {
        self.check_failed()?;
        let seq_pt = self.verify.next_seq();
        self.fault_hook(seq_pt);
        let result = (|| {
            // Fingerprint the split itself before the membership exchange:
            // color/key are legitimately rank-dependent, but *that* every
            // rank is splitting here is part of the schedule contract.
            self.verify_collective(CollectiveKind::Split, Dtype::None, 0, 0, "split", seq_pt)?;
            // 1. Shared membership exchange over the parent collectives
            //    (every member of one color group computes the identical
            //    roster). The exchange runs on the infallible wrappers —
            //    re-enter the fallible world at this boundary.
            let (members, my_pos) = comm_catch(|| split_membership(self, color, key))?;
            let seq = self.split_seq.get();
            self.split_seq.set(seq + 1);

            // 2. The sub-group leader builds the group's Shared and
            //    deposits it in the parent's rendezvous table; a parent
            //    barrier publishes all leaders' deposits at once.
            if my_pos == 0 {
                let sub = Arc::new(Shared::new(members.len()));
                self.shared
                    .splits
                    .lock()
                    .expect("split table poisoned")
                    .insert((seq, color as u64), sub);
            }
            self.bwait("split", seq_pt)?;

            // 3. Every member claims its group's Shared; a second parent
            //    barrier lets the leaders retire their entries afterwards.
            let sub = Arc::clone(
                self.shared
                    .splits
                    .lock()
                    .expect("split table poisoned")
                    .get(&(seq, color as u64))
                    .expect("sub-group leader never deposited its Shared"),
            );
            self.bwait("split", seq_pt)?;
            if my_pos == 0 {
                self.shared
                    .splits
                    .lock()
                    .expect("split table poisoned")
                    .remove(&(seq, color as u64));
            }
            // Same scope derivation as SocketComm sub-groups: every member
            // of one color group computes the identical tag.
            let scope = wire::derive_scope(self.verify.scope(), seq, color as u64);
            Ok(Box::new(ThreadComm::new(my_pos, sub, scope)) as Box<dyn Communicator>)
        })();
        self.seal(result)
    }

    fn try_allreduce_maxloc(&self, value: f64, payload: u64) -> Result<(f64, u64), CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::Maxloc,
                Dtype::MaxLocRec,
                0,
                1,
                "allreduce_maxloc",
                seq,
            )?;
            let t0 = Instant::now();
            // The payload rides the slot's integer lane — never through the
            // f64 buffer (see [`crate::wire::MaxLoc`]).
            self.publish_with_payload(&[value], payload);
            self.bwait("allreduce_maxloc", seq)?;
            // Rank-ordered MAXLOC semantics (tie → lowest rank, all-(-inf)
            // → rank 0's sentinel) come from the single shared definition.
            let best = MaxLoc::reduce_rank_ordered((0..self.shared.size).map(|r| {
                let s = self.shared.read_slot(r);
                MaxLoc {
                    value: s.data[0],
                    payload: s.payload,
                }
            }));
            self.bwait("allreduce_maxloc", seq)?;
            let mut st = self.stats.borrow_mut();
            st.allreduce_calls += 1;
            st.allreduce_bytes += MaxLoc::WIRE_BYTES as u64;
            st.time += t0.elapsed();
            Ok((best.value, best.payload))
        })();
        self.seal(result)
    }

    fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

/// Run an SPMD closure on `p` ranks and collect the per-rank results in
/// rank order. The closure runs once per rank on its own OS thread.
///
/// ```
/// let sums = firal_comm::launch(3, |comm| {
///     use firal_comm::{Communicator, ReduceOp};
///     let mut x = vec![(comm.rank() + 1) as f64];
///     comm.allreduce_f64(&mut x, ReduceOp::Sum);
///     x[0]
/// });
/// assert_eq!(sums, vec![6.0, 6.0, 6.0]);
/// ```
pub fn launch<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ThreadComm) -> R + Sync,
{
    assert!(p > 0, "launch needs at least one rank");
    let shared = Arc::new(Shared::new(p));

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                let f = &f;
                scope.spawn(move || {
                    let comm = ThreadComm::new(rank, Arc::clone(&shared), wire::ROOT_SCOPE);
                    match catch_unwind(AssertUnwindSafe(|| f(&comm))) {
                        Ok(v) => v,
                        Err(payload) => {
                            // A rank that unwinds out of its closure will
                            // never reach another barrier: poison the root
                            // group so its peers fail fast instead of
                            // deadlocking, then keep unwinding.
                            shared.barrier.poison(
                                rank,
                                format!("rank {rank} panicked: {}", panic_text(&*payload)),
                            );
                            resume_unwind(payload)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD rank panicked"))
            .collect()
    })
}

/// Best-effort rendering of a panic payload for abort diagnostics.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "(non-string panic payload)".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sum_all_ranks_agree() {
        for p in [1usize, 2, 3, 5] {
            let results = launch(p, |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0, 10.0 * (comm.rank() as f64 + 1.0)];
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
                buf
            });
            let expected0: f64 = (1..=p).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r[0], expected0);
                assert_eq!(r[1], 10.0 * expected0);
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let results = launch(4, |comm| {
            let mut mx = vec![comm.rank() as f64];
            comm.allreduce_f64(&mut mx, ReduceOp::Max);
            let mut mn = vec![comm.rank() as f64];
            comm.allreduce_f64(&mut mn, ReduceOp::Min);
            (mx[0], mn[0])
        });
        for (mx, mn) in results {
            assert_eq!(mx, 3.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..3 {
            let results = launch(3, move |comm| {
                let mut buf = if comm.rank() == root {
                    vec![42.0, 7.0]
                } else {
                    vec![0.0, 0.0]
                };
                comm.bcast_f64(&mut buf, root);
                buf
            });
            for r in results {
                assert_eq!(r, vec![42.0, 7.0]);
            }
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let results = launch(3, |comm| {
            // Variable lengths: rank r contributes r+1 values of value r.
            let local = vec![comm.rank() as f64; comm.rank() + 1];
            comm.allgatherv_f64(&local)
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn maxloc_finds_global_argmax_with_payload() {
        let results = launch(4, |comm| {
            let value = if comm.rank() == 2 {
                100.0
            } else {
                comm.rank() as f64
            };
            let payload = 1000 + comm.rank() as u64;
            comm.allreduce_maxloc(value, payload)
        });
        for (v, p) in results {
            assert_eq!(v, 100.0);
            assert_eq!(p, 1002);
        }
    }

    #[test]
    fn maxloc_tie_prefers_lowest_rank() {
        let results = launch(3, |comm| comm.allreduce_maxloc(1.0, comm.rank() as u64));
        for (_, p) in results {
            assert_eq!(p, 0);
        }
    }

    #[test]
    fn maxloc_all_neg_infinity_propagates_rank0_sentinel() {
        // Degenerate case: no rank has a candidate. The sentinel payload
        // must survive the reduction (matching SelfComm) so callers can
        // detect exhaustion instead of receiving a fabricated index 0.
        let results = launch(3, |comm| comm.allreduce_maxloc(f64::NEG_INFINITY, u64::MAX));
        for (v, p) in results {
            assert_eq!(v, f64::NEG_INFINITY);
            assert_eq!(p, u64::MAX);
        }
    }

    #[test]
    fn maxloc_preserves_full_payload_bits() {
        let big = u64::MAX - 12345;
        let results = launch(2, move |comm| {
            let value = comm.rank() as f64;
            comm.allreduce_maxloc(value, big)
        });
        for (_, p) in results {
            assert_eq!(p, big);
        }
    }

    #[test]
    fn maxloc_payload_survives_nan_aliasing_bit_patterns() {
        // A payload that aliases a signaling-NaN f64 encoding must come
        // back bit-exact — the hazard the separate integer lane removes.
        let snan_bits = 0x7FF0_0000_0000_0001u64;
        let results = launch(3, move |comm| {
            let value = if comm.rank() == 1 { 5.0 } else { 0.0 };
            let payload = if comm.rank() == 1 { snan_bits } else { 7 };
            comm.allreduce_maxloc(value, payload)
        });
        for (v, p) in results {
            assert_eq!(v, 5.0);
            assert_eq!(p, snan_bits);
        }
    }

    #[test]
    fn repeated_collectives_do_not_interfere() {
        let results = launch(3, |comm| {
            let mut acc = 0.0;
            for round in 0..10 {
                let mut buf = vec![(comm.rank() * round) as f64];
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
                acc += buf[0];
            }
            acc
        });
        // Σ_round (0+1+2)*round = 3 * 45 = 135
        for r in results {
            assert_eq!(r, 135.0);
        }
    }

    #[test]
    fn stats_are_tracked_per_rank() {
        let results = launch(2, |comm| {
            let mut buf = vec![0.0; 4];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            comm.bcast_f64(&mut buf, 0);
            let _ = comm.allgatherv_f64(&buf);
            comm.stats()
        });
        for s in results {
            assert_eq!(s.allreduce_calls, 1);
            assert_eq!(s.allreduce_bytes, 32);
            assert_eq!(s.bcast_calls, 1);
            assert_eq!(s.allgather_calls, 1);
        }
    }

    #[test]
    fn split_disjoint_colors_form_independent_groups() {
        // 6 ranks → colors {0, 1, 2} of sizes {3, 2, 1}; each sub-group's
        // allreduce must see only its own members' contributions.
        let results = launch(6, |comm| {
            let color = comm.rank() % 3;
            let sub = comm.split(color, comm.rank());
            let mut buf = vec![comm.rank() as f64];
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            (color, sub.rank(), sub.size(), buf[0])
        });
        // color 0 ⇒ ranks {0, 3} sum 3; color 1 ⇒ {1, 4} sum 5;
        // color 2 ⇒ {2, 5} sum 7.
        for (rank, (color, sub_rank, sub_size, sum)) in results.into_iter().enumerate() {
            assert_eq!(sub_size, 2);
            assert_eq!(sub_rank, rank / 3, "key=parent rank keeps parent order");
            assert_eq!(sum, [3.0, 5.0, 7.0][color]);
        }
    }

    #[test]
    fn split_singleton_groups_are_selfcomm_like() {
        let results = launch(4, |comm| {
            let sub = comm.split(comm.rank(), 0);
            let mut buf = vec![42.0 + comm.rank() as f64];
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            sub.bcast_f64(&mut buf, 0);
            (sub.rank(), sub.size(), buf[0], sub.allreduce_maxloc(1.0, 9))
        });
        for (rank, (sub_rank, sub_size, v, maxloc)) in results.into_iter().enumerate() {
            assert_eq!((sub_rank, sub_size), (0, 1));
            assert_eq!(v, 42.0 + rank as f64);
            assert_eq!(maxloc, (1.0, 9));
        }
    }

    #[test]
    fn split_key_reorders_sub_group_ranks() {
        // One group, keys descending with parent rank ⇒ new ranks reversed.
        let results = launch(4, |comm| {
            let sub = comm.split(0, 100 - comm.rank());
            // bcast from new rank 0 = old rank 3.
            let mut buf = vec![comm.rank() as f64];
            sub.bcast_f64(&mut buf, 0);
            (sub.rank(), buf[0])
        });
        for (rank, (sub_rank, v)) in results.into_iter().enumerate() {
            assert_eq!(sub_rank, 3 - rank);
            assert_eq!(v, 3.0, "root of the reordered group is old rank 3");
        }
    }

    #[test]
    fn split_nested_and_interleaved_with_parent_collectives() {
        // Split 4 → two pairs, split each pair → singletons, and interleave
        // collectives on all three levels to prove the slots/barriers of
        // different generations don't interfere.
        let results = launch(4, |comm| {
            let pair = comm.split(comm.rank() / 2, comm.rank());
            let single = pair.split(pair.rank(), 0);
            let mut a = vec![1.0];
            comm.allreduce_f64(&mut a, ReduceOp::Sum); // world: 4
            let mut b = vec![1.0];
            pair.allreduce_f64(&mut b, ReduceOp::Sum); // pair: 2
            let mut c = vec![1.0];
            single.allreduce_f64(&mut c, ReduceOp::Sum); // self: 1
            let mut d = vec![comm.rank() as f64];
            comm.allreduce_f64(&mut d, ReduceOp::Max); // world again: 3
            (a[0], b[0], c[0], d[0])
        });
        for r in results {
            assert_eq!(r, (4.0, 2.0, 1.0, 3.0));
        }
    }

    #[test]
    fn split_sub_group_reduction_matches_root_group_bitwise() {
        // A sub-group of size 2 must reduce exactly like a root group of
        // size 2 over the same contributions (the determinism contract
        // split guarantees to the execution layer).
        let contribution = |new_rank: usize| vec![[1.0e16, 1.0][new_rank]];
        let root: Vec<u64> = launch(2, |comm| {
            let mut buf = contribution(comm.rank());
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            buf[0].to_bits()
        });
        let split: Vec<(usize, u64)> = launch(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank());
            let mut buf = contribution(sub.rank());
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            (comm.rank(), buf[0].to_bits())
        });
        for (_, bits) in split {
            assert_eq!(bits, root[0]);
        }
    }

    #[test]
    fn split_sub_comm_starts_fresh_stats() {
        let results = launch(2, |comm| {
            let mut buf = vec![0.0];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            let sub = comm.split(0, comm.rank());
            let before = sub.stats();
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            (before, sub.stats().allreduce_calls, comm.stats())
        });
        for (before, sub_calls, parent) in results {
            assert_eq!(before, CommStats::default());
            assert_eq!(sub_calls, 1);
            // The parent counted its own allreduce plus the membership
            // allgather of split, but none of the sub-group's traffic.
            assert_eq!(parent.allreduce_calls, 1);
            assert_eq!(parent.allgather_calls, 1);
        }
    }

    #[test]
    fn abortable_barrier_deadline_poisons_the_group() {
        let b = AbortableBarrier::new(2);
        // Only one rank arrives; with a deadline it must give up and poison.
        let err = b.wait(0, Some(Duration::from_millis(20))).unwrap_err();
        assert!(matches!(err, BarrierError::Deadline(_)), "{err:?}");
        // The other rank observes the poison instantly, even deadline-free.
        match b.wait(1, None).unwrap_err() {
            BarrierError::Poisoned(origin, reason) => {
                assert_eq!(origin, 0);
                assert!(reason.contains("deadline"), "{reason}");
            }
            other => panic!("expected poison, got {other:?}"),
        }
    }

    #[test]
    fn abortable_barrier_completes_many_rounds() {
        let b = AbortableBarrier::new(3);
        std::thread::scope(|s| {
            for r in 0..3 {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..200 {
                        b.wait(r, Some(Duration::from_secs(10))).expect("round");
                    }
                });
            }
        });
    }

    #[test]
    fn panicking_rank_poisons_peers_with_remote_abort() {
        // Rank 1 dies before its first collective; the survivors must get a
        // structured RemoteAbort naming it (not deadlock, not a panic), and
        // the poisoned endpoints must replay the same error forever after.
        let seen: Mutex<Vec<CommError>> = Mutex::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            launch(3, |comm| {
                if comm.rank() == 1 {
                    panic!("boom on rank 1");
                }
                let e = comm.try_barrier().expect_err("survivors must fail");
                let replay = comm.try_barrier().expect_err("poisoned endpoint replays");
                assert_eq!(e, replay);
                seen.lock().expect("seen lock").push(e);
            })
        }));
        assert!(result.is_err(), "the panicking rank propagates its panic");
        let seen = seen.into_inner().expect("seen lock");
        assert_eq!(seen.len(), 2, "both survivors observed the failure");
        for e in &seen {
            match e {
                CommError::RemoteAbort { origin, reason, .. } => {
                    assert_eq!(*origin, 1);
                    assert!(reason.contains("boom on rank 1"), "{reason}");
                }
                other => panic!("expected RemoteAbort, got {other}"),
            }
        }
    }

    #[test]
    fn deterministic_reduction_across_ranks() {
        // Rank-ordered reduction ⇒ bitwise identical sums on every rank even
        // with values that do not commute exactly in floating point.
        let results = launch(4, |comm| {
            let mut buf = vec![1.0e16, 1.0, -1.0e16][comm.rank() % 3..][..1].to_vec();
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            buf[0].to_bits()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }
}
