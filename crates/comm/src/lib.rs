//! Message-passing substrate: simulated *and* real transports.
//!
//! The paper's implementation distributes the unlabeled pool across GPUs and
//! uses three MPI collectives (§III-C): `MPI_Allreduce` (preconditioner and
//! matvec partial sums, global argmax in the ROUND objective),
//! `MPI_Allgather` (eigenvalue collection), and `MPI_Bcast` (probe panels
//! and the selected point's `x, h`). This crate reproduces that layer on a
//! single host:
//!
//! * [`Communicator`] — the collective interface the SPMD algorithms in
//!   `firal-core::parallel` are written against;
//! * [`SelfComm`] — the trivial single-rank implementation;
//! * [`ThreadComm`]/[`launch`] — `p` OS threads with shared-memory
//!   collectives (deposit/combine with deterministic rank-ordered
//!   reduction, so every rank computes bitwise identical results);
//! * [`SocketComm`]/[`socket_launch`]/[`fork_self`] — the **process-level
//!   backend**: a full TCP (localhost) socket mesh with a rank-0
//!   rendezvous, the same rank-ordered reduction contract, and real wire
//!   time in [`CommStats::time`]. `spmd_launch` (in `firal-bench`) forks
//!   `p` processes of itself and joins them via [`SocketComm::from_env`];
//! * [`wire`] — the framing, MAXLOC encoding, and split-scope tags every
//!   real transport shares, defined once;
//! * [`verify`] — the debug-mode collective-order verifier: under
//!   `FIRAL_COMM_VERIFY=1` (and by default in debug builds) every
//!   collective cross-checks a schedule fingerprint across ranks, so a
//!   skewed SPMD schedule aborts with a per-rank diagnostic trace instead
//!   of deadlocking;
//! * [`CostModel`] — the latency/bandwidth/compute model of Thakur,
//!   Rabenseifner & Gropp that the paper uses for its theoretical
//!   performance bars (recursive-doubling allreduce/allgather, binomial-tree
//!   bcast), with the paper's own constants as a preset;
//! * per-rank [`CommStats`] — call/byte/second counters per collective, the
//!   measured "MPI communication" series of Figs. 6–7.
//!
//! Substitution note: all backends implement the same rank-ordered
//! deterministic reduction (the property MPI guarantees for deterministic
//! reduction orders), so algorithm behaviour — including the data
//! decomposition — is identical to the paper's across [`SelfComm`],
//! [`ThreadComm`], and [`SocketComm`]; only the transport differs.
//!
//! All three backends also implement [`Communicator::split`] (MPI's
//! `MPI_Comm_split`): a collective that partitions a group into disjoint
//! sub-groups, each a full `Communicator` satisfying the same deterministic
//! reduction contract as a root group of the same size. This is what the
//! execution layer's 2D rank geometry (`p = p_shard × p_eta`, see
//! `firal_core::exec::EtaGroupGeometry`) is built on: η-grid groups and the
//! cross-group picker are sub-communicators, not a second code path. On
//! [`SocketComm`] every sub-group stamps its frames with a scope tag
//! ([`wire::derive_scope`]) so collectives of different groups sharing mesh
//! links cannot cross-talk.
//!
//! # Failure model
//!
//! The collectives are *fallible*: every operation has a `try_`-variant
//! returning [`CommError`] (peer death, deadline exceeded, protocol error,
//! remote abort — each carrying rank/op/sequence context), with the
//! infallible methods as thin wrappers that abort with the diagnosis (see
//! [`error`]). [`SocketComm`] applies the `FIRAL_COMM_TIMEOUT` deadline to
//! every frame, broadcasts an **abort frame** ([`wire::ABORT_TAG`]) when a
//! rank fails so survivors return [`CommError::RemoteAbort`] within one
//! deadline instead of deadlocking, and [`fault`] injects deterministic
//! failures (`FIRAL_FAULT`) keyed off the per-rank collective sequence
//! number for reproducible chaos tests. The full taxonomy — what is and
//! isn't survivable, the abort-frame protocol, and the fault grammar — is
//! documented in the repo-root `ARCHITECTURE.md` ("Failure model").
//!
//! The repo-root `ARCHITECTURE.md` maps this crate's pieces to §III-C of
//! the paper and spells out the determinism contracts in one place.

#![deny(missing_docs)]

pub mod communicator;
pub mod cost;
pub mod error;
pub mod fault;
pub mod socket_comm;
pub mod thread_comm;
pub mod verify;
pub mod wire;

pub use communicator::{CommScalar, CommStats, Communicator, ReduceOp, SelfComm};
pub use cost::CostModel;
pub use error::{comm_catch, comm_timeout, CommError, COMM_TIMEOUT_ENV};
pub use fault::FAULT_ENV;
pub use socket_comm::{
    fork_self, fork_self_report, free_rendezvous_addr, poll_accept, socket_launch, RankExit,
    SocketComm, RENDEZVOUS_TIMEOUT_ENV,
};
pub use thread_comm::{launch, ThreadComm};
pub use verify::{verify_enabled, CollectiveKind, Dtype, Fingerprint, VERIFY_ENV};

/// Which multi-rank transport a harness should launch ranks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Shared-memory [`ThreadComm`] ranks (OS threads, no wire).
    #[default]
    Thread,
    /// [`SocketComm`] ranks over real localhost TCP.
    Socket,
}

impl Backend {
    /// Lower-case tag used in table columns and CLI flags.
    pub fn tag(self) -> &'static str {
        match self {
            Backend::Thread => "thread",
            Backend::Socket => "socket",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "thread" => Ok(Backend::Thread),
            "socket" => Ok(Backend::Socket),
            other => Err(format!("unknown backend {other:?} (thread|socket)")),
        }
    }
}

/// Run an SPMD closure on `p` ranks over the chosen [`Backend`], erasing
/// the concrete communicator type. Both transports satisfy the same
/// deterministic reduction contract, so results are interchangeable.
pub fn launch_backend<R, F>(backend: Backend, p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&dyn Communicator) -> R + Sync,
{
    match backend {
        Backend::Thread => launch(p, |comm| f(comm)),
        Backend::Socket => socket_launch(p, |comm| f(comm)),
    }
}

/// Evenly shard `n` items across `size` ranks; returns the index range owned
/// by `rank` (first `n % size` ranks get one extra item). This is the pool
/// decomposition of §III-C ("evenly distributing h_i and x_i of n points").
pub fn shard_range(n: usize, rank: usize, size: usize) -> std::ops::Range<usize> {
    assert!(rank < size, "rank {rank} out of {size}");
    let base = n / size;
    let extra = n % size;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..(start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_everything_without_overlap() {
        for n in [0usize, 1, 7, 100, 101] {
            for p in [1usize, 2, 3, 5, 12] {
                let mut covered = Vec::new();
                for r in 0..p {
                    covered.extend(shard_range(n, r, p));
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn shards_are_balanced() {
        for n in [10usize, 11, 12] {
            let lens: Vec<usize> = (0..4).map(|r| shard_range(n, r, 4).len()).collect();
            let max = *lens.iter().max().unwrap();
            let min = *lens.iter().min().unwrap();
            assert!(max - min <= 1, "n={n}: {lens:?}");
        }
    }

    #[test]
    fn backend_tags_roundtrip() {
        for b in [Backend::Thread, Backend::Socket] {
            assert_eq!(b.tag().parse::<Backend>().unwrap(), b);
        }
        assert!("mpi".parse::<Backend>().is_err());
    }

    #[test]
    fn launch_backend_runs_either_transport() {
        for backend in [Backend::Thread, Backend::Socket] {
            let sums = launch_backend(backend, 3, |comm| {
                let mut x = vec![(comm.rank() + 1) as f64];
                comm.allreduce_f64(&mut x, ReduceOp::Sum);
                x[0]
            });
            assert_eq!(sums, vec![6.0, 6.0, 6.0], "{backend:?}");
        }
    }
}
