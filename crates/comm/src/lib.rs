//! Simulated message-passing substrate.
//!
//! The paper's implementation distributes the unlabeled pool across GPUs and
//! uses three MPI collectives (§III-C): `MPI_Allreduce` (preconditioner and
//! matvec partial sums, global argmax in the ROUND objective),
//! `MPI_Allgather` (eigenvalue collection), and `MPI_Bcast` (probe panels
//! and the selected point's `x, h`). This crate reproduces that layer on a
//! single host:
//!
//! * [`Communicator`] — the collective interface the SPMD algorithms in
//!   `firal-core::parallel` are written against;
//! * [`SelfComm`] — the trivial single-rank implementation;
//! * [`ThreadComm`]/[`launch`] — a real multi-rank implementation: `p` OS
//!   threads with shared-memory collectives (deposit/combine with
//!   deterministic rank-ordered reduction, so every rank computes bitwise
//!   identical results);
//! * [`CostModel`] — the latency/bandwidth/compute model of Thakur,
//!   Rabenseifner & Gropp that the paper uses for its theoretical
//!   performance bars (recursive-doubling allreduce/allgather, binomial-tree
//!   bcast), with the paper's own constants as a preset;
//! * per-rank [`CommStats`] — call/byte/second counters per collective, the
//!   measured "MPI communication" series of Figs. 6–7.
//!
//! Substitution note: a shared-memory deposit/combine collective has the
//! same semantics as its MPI counterpart (same reduction order on every
//! rank, same synchronization points), so algorithm behaviour — including
//! the data decomposition — is identical to the paper's; only the transport
//! differs, which the cost model covers analytically.

pub mod communicator;
pub mod cost;
pub mod thread_comm;

pub use communicator::{CommScalar, CommStats, Communicator, ReduceOp, SelfComm};
pub use cost::CostModel;
pub use thread_comm::{launch, ThreadComm};

/// Evenly shard `n` items across `size` ranks; returns the index range owned
/// by `rank` (first `n % size` ranks get one extra item). This is the pool
/// decomposition of §III-C ("evenly distributing h_i and x_i of n points").
pub fn shard_range(n: usize, rank: usize, size: usize) -> std::ops::Range<usize> {
    assert!(rank < size, "rank {rank} out of {size}");
    let base = n / size;
    let extra = n % size;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..(start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_everything_without_overlap() {
        for n in [0usize, 1, 7, 100, 101] {
            for p in [1usize, 2, 3, 5, 12] {
                let mut covered = Vec::new();
                for r in 0..p {
                    covered.extend(shard_range(n, r, p));
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn shards_are_balanced() {
        for n in [10usize, 11, 12] {
            let lens: Vec<usize> = (0..4).map(|r| shard_range(n, r, 4).len()).collect();
            let max = *lens.iter().max().unwrap();
            let min = *lens.iter().min().unwrap();
            assert!(max - min <= 1, "n={n}: {lens:?}");
        }
    }
}
