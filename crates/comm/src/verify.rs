//! Debug-mode collective-order verifier.
//!
//! The classic SPMD bug — two ranks issuing *different* collectives (or the
//! same collective with different shapes) at the same point of the program —
//! deadlocks or silently desynchronizes most transports. MPI ships external
//! tools (MUST, Marmot) to catch it; this module builds the equivalent check
//! directly into every [`crate::Communicator`] backend:
//!
//! * every collective call stamps a [`Fingerprint`] — `(seq, op-kind, dtype,
//!   element-count, scope-tag)` — into a per-endpoint ring buffer (the last
//!   [`TRACE_LEN`] collectives each rank saw);
//! * when verification is enabled, ranks exchange fingerprints *before* the
//!   collective's data phase and cross-check them: piggybacked as
//!   scope-tagged preamble frames on [`crate::SocketComm`]'s existing mesh
//!   links, via a shared fingerprint table in [`crate::ThreadComm`], and
//!   trivially (trace only) in [`crate::SelfComm`];
//! * a mismatch aborts the rank with a diagnostic naming both fingerprints
//!   and dumping the rank's recent collective trace — instead of the
//!   deadlock/desync the skew would otherwise cause.
//!
//! The fingerprint exchange always runs hub-style in the same direction
//! regardless of the collective's own data flow, so even kind mismatches
//! that would deadlock the data phase (e.g. one rank in `bcast`, its peer in
//! `allreduce`) are diagnosed before any data frame moves.
//!
//! # Enabling
//!
//! Controlled by the [`VERIFY_ENV`] environment variable (`FIRAL_COMM_VERIFY`):
//! `1`/`true`/`on`/`yes` force it on, anything else set forces it off, and
//! when unset it defaults to **on in debug builds** (`cfg(debug_assertions)`,
//! so every `cargo test` run verifies schedules) and off in release builds.
//! The exchange never touches collective payloads or [`crate::CommStats`],
//! so enabling it is bit- and stats-neutral on the happy path.
//!
//! See `ARCHITECTURE.md` ("Determinism contracts and how they are
//! enforced") for how this runtime check pairs with the static `firal-lint`
//! pass.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::communicator::ReduceOp;
use crate::wire;

/// Environment variable controlling the verifier: `1`/`true`/`on`/`yes`
/// enable it, any other value disables it, unset falls back to the build
/// profile default (on under `debug_assertions`, off in release).
pub const VERIFY_ENV: &str = "FIRAL_COMM_VERIFY";

/// How many recent collectives each endpoint keeps for the diagnostic trace.
pub const TRACE_LEN: usize = 16;

/// The operation lane of a [`Fingerprint`]: which collective a rank issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CollectiveKind {
    /// [`crate::Communicator::barrier`].
    Barrier = 0,
    /// [`crate::Communicator::allreduce_f64`] with [`ReduceOp::Sum`].
    AllreduceSum = 1,
    /// [`crate::Communicator::allreduce_f64`] with [`ReduceOp::Max`].
    AllreduceMax = 2,
    /// [`crate::Communicator::allreduce_f64`] with [`ReduceOp::Min`].
    AllreduceMin = 3,
    /// [`crate::Communicator::bcast_f64`] (the root rides the param lane).
    Bcast = 4,
    /// [`crate::Communicator::allgatherv_f64`] (contribution lengths are
    /// legitimately rank-dependent, so the count lane is not cross-checked).
    Allgatherv = 5,
    /// [`crate::Communicator::allreduce_maxloc`].
    Maxloc = 6,
    /// [`crate::Communicator::split`] (color/key are legitimately
    /// rank-dependent and stay out of the fingerprint; the schedule *point*
    /// is what must agree).
    Split = 7,
}

impl CollectiveKind {
    /// The allreduce kind for a concrete reduction operator.
    pub fn allreduce(op: ReduceOp) -> Self {
        match op {
            ReduceOp::Sum => CollectiveKind::AllreduceSum,
            ReduceOp::Max => CollectiveKind::AllreduceMax,
            ReduceOp::Min => CollectiveKind::AllreduceMin,
        }
    }

    /// Human-readable name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::AllreduceSum => "allreduce(sum)",
            CollectiveKind::AllreduceMax => "allreduce(max)",
            CollectiveKind::AllreduceMin => "allreduce(min)",
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Allgatherv => "allgatherv",
            CollectiveKind::Maxloc => "allreduce_maxloc",
            CollectiveKind::Split => "split",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => CollectiveKind::Barrier,
            1 => CollectiveKind::AllreduceSum,
            2 => CollectiveKind::AllreduceMax,
            3 => CollectiveKind::AllreduceMin,
            4 => CollectiveKind::Bcast,
            5 => CollectiveKind::Allgatherv,
            6 => CollectiveKind::Maxloc,
            7 => CollectiveKind::Split,
            _ => return None,
        })
    }
}

/// The element-type lane of a [`Fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Dtype {
    /// No payload travels (barrier, split).
    None = 0,
    /// Little-endian IEEE-754 `f64` elements (the shared wire type).
    F64 = 1,
    /// A [`wire::MaxLoc`] record (separate `f64` value and `u64` payload
    /// lanes).
    MaxLocRec = 2,
}

impl Dtype {
    /// Human-readable name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::None => "none",
            Dtype::F64 => "f64",
            Dtype::MaxLocRec => "maxloc",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Dtype::None,
            1 => Dtype::F64,
            2 => Dtype::MaxLocRec,
            _ => return None,
        })
    }
}

/// One collective call's identity in the group schedule: the per-endpoint
/// sequence number, the operation and element type, an op parameter (the
/// bcast root), the element count, and the group's scope tag.
///
/// Two ranks of one group are *schedule-consistent* at a point when their
/// fingerprints [`matches`](Fingerprint::matches): everything must agree
/// except the count lane of [`CollectiveKind::Allgatherv`], whose per-rank
/// contribution lengths are legitimately unequal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// Position in this endpoint's collective schedule (0-based; every
    /// group member's n-th collective must be the same operation).
    pub seq: u64,
    /// Which collective was issued.
    pub kind: CollectiveKind,
    /// Element type of the payload.
    pub dtype: Dtype,
    /// Operation parameter: the root for [`CollectiveKind::Bcast`], 0
    /// otherwise.
    pub param: u32,
    /// Element count of this rank's contribution.
    pub count: u64,
    /// Scope tag of the (sub-)communicator the collective ran on (see
    /// [`wire::derive_scope`]).
    pub scope: u64,
}

impl Fingerprint {
    /// Encoded size of a fingerprint preamble frame: four little-endian
    /// `u64` words (`seq`, packed `kind`/`dtype`/`param`, `count`, `scope`).
    pub const WIRE_BYTES: usize = 32;

    /// Encode for the [`crate::SocketComm`] preamble frame.
    pub fn encode(&self) -> [u8; Self::WIRE_BYTES] {
        let packed = (self.kind as u64) | ((self.dtype as u64) << 8) | ((self.param as u64) << 32);
        let mut out = [0u8; Self::WIRE_BYTES];
        out[..8].copy_from_slice(&self.seq.to_le_bytes());
        out[8..16].copy_from_slice(&packed.to_le_bytes());
        out[16..24].copy_from_slice(&self.count.to_le_bytes());
        out[24..].copy_from_slice(&self.scope.to_le_bytes());
        out
    }

    /// Decode a frame written by [`Fingerprint::encode`]. `None` when the
    /// kind/dtype lanes hold values this build does not know (a protocol
    /// mismatch — treated as a schedule mismatch by the caller).
    pub fn decode(bytes: &[u8; Self::WIRE_BYTES]) -> Option<Self> {
        let seq = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let packed = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let count = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let scope = u64::from_le_bytes(bytes[24..].try_into().unwrap());
        Some(Self {
            seq,
            kind: CollectiveKind::from_u8(packed as u8)?,
            dtype: Dtype::from_u8((packed >> 8) as u8)?,
            param: (packed >> 32) as u32,
            count,
            scope,
        })
    }

    /// Schedule consistency: all lanes must agree, except that the count
    /// lane of an allgatherv is legitimately rank-dependent.
    pub fn matches(&self, other: &Fingerprint) -> bool {
        self.seq == other.seq
            && self.kind == other.kind
            && self.dtype == other.dtype
            && self.param == other.param
            && self.scope == other.scope
            && (self.kind == CollectiveKind::Allgatherv || self.count == other.count)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}", self.seq, self.kind.name())?;
        if self.kind == CollectiveKind::Bcast {
            write!(f, " root={}", self.param)?;
        }
        write!(
            f,
            " dtype={} count={} scope={:#018x}",
            self.dtype.name(),
            self.count,
            self.scope
        )
    }
}

/// Override lane for tests that must pin the verifier regardless of the
/// build profile: 0 = defer to env/profile, 1 = force on, 2 = force off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Test hook: force the verifier on/off process-wide (`None` restores the
/// [`VERIFY_ENV`]/build-profile default). Endpoints capture the setting at
/// construction, so flip it *before* building communicators — never while
/// another group is mid-construction on other threads.
#[doc(hidden)]
pub fn set_verify_override(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether collective-order verification is active for newly constructed
/// endpoints (see [`VERIFY_ENV`] for the resolution rules).
pub fn verify_enabled() -> bool {
    match OVERRIDE.load(Ordering::SeqCst) {
        1 => return true,
        2 => return false,
        _ => {}
    }
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var(VERIFY_ENV) {
        Ok(v) => matches!(v.as_str(), "1" | "true" | "on" | "yes"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Per-endpoint verifier state: the enable flag captured at construction,
/// the group scope, the running collective sequence number, and the ring
/// buffer of recent fingerprints backing the mismatch diagnostic.
#[derive(Debug)]
pub(crate) struct Verifier {
    enabled: bool,
    scope: u64,
    seq: Cell<u64>,
    trace: RefCell<VecDeque<Fingerprint>>,
}

impl Default for Verifier {
    fn default() -> Self {
        Self::new(wire::ROOT_SCOPE)
    }
}

impl Verifier {
    /// A verifier for a (sub-)communicator whose frames carry `scope`.
    pub fn new(scope: u64) -> Self {
        Self {
            enabled: verify_enabled(),
            scope,
            seq: Cell::new(0),
            trace: RefCell::new(VecDeque::with_capacity(TRACE_LEN)),
        }
    }

    /// Whether this endpoint exchanges fingerprints.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The scope tag this verifier stamps on fingerprints.
    pub fn scope(&self) -> u64 {
        self.scope
    }

    /// The sequence number the *next* collective on this endpoint will get
    /// (equivalently: how many collectives have run). Advanced by every
    /// [`Verifier::stamp`] regardless of the enable flag, so deterministic
    /// fault injection ([`crate::fault`]) can key off schedule points even
    /// with verification off.
    pub fn next_seq(&self) -> u64 {
        self.seq.get()
    }

    /// Record one collective call: advance the schedule counter, push the
    /// fingerprint onto the trace, and return it for the exchange. `None`
    /// when verification is disabled (the collective proceeds untouched —
    /// but the sequence counter still advances, so schedule points stay
    /// addressable by the fault-injection plan).
    pub fn stamp(
        &self,
        kind: CollectiveKind,
        dtype: Dtype,
        param: u32,
        count: u64,
    ) -> Option<Fingerprint> {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        if !self.enabled {
            return None;
        }
        let fp = Fingerprint {
            seq,
            kind,
            dtype,
            param,
            count,
            scope: self.scope,
        };
        let mut trace = self.trace.borrow_mut();
        if trace.len() == TRACE_LEN {
            trace.pop_front();
        }
        trace.push_back(fp);
        Some(fp)
    }

    /// The recent-collectives trace, rendered one fingerprint per line
    /// (oldest first) for inclusion in abort diagnostics.
    pub fn trace_dump(&self) -> String {
        let trace = self.trace.borrow();
        if trace.is_empty() {
            return "    (no collectives recorded on this endpoint)".to_string();
        }
        trace
            .iter()
            .map(|fp| format!("    {fp}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Abort this rank with the full schedule-mismatch diagnostic: both
    /// fingerprints plus the last [`TRACE_LEN`] collectives this endpoint
    /// issued.
    pub fn mismatch_panic(
        &self,
        group_rank: usize,
        group_size: usize,
        own: Fingerprint,
        peer_rank: usize,
        theirs: Option<Fingerprint>,
    ) -> ! {
        let theirs = match theirs {
            Some(fp) => fp.to_string(),
            None => "(undecodable fingerprint frame: protocol mismatch?)".to_string(),
        };
        panic!(
            "FIRAL_COMM_VERIFY: collective schedule mismatch on rank {group_rank}/{group_size} \
             (scope {:#018x}):\n  this rank issued:  {own}\n  rank {peer_rank} issued:  {theirs}\n  \
             last collectives on this rank (oldest first):\n{}",
            self.scope,
            self.trace_dump(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_roundtrip_the_wire_encoding() {
        let fp = Fingerprint {
            seq: 42,
            kind: CollectiveKind::Bcast,
            dtype: Dtype::F64,
            param: 3,
            count: 12345,
            scope: wire::derive_scope(wire::ROOT_SCOPE, 1, 2),
        };
        assert_eq!(Fingerprint::decode(&fp.encode()), Some(fp));
    }

    #[test]
    fn undecodable_kind_lane_is_rejected() {
        let fp = Fingerprint {
            seq: 0,
            kind: CollectiveKind::Barrier,
            dtype: Dtype::None,
            param: 0,
            count: 0,
            scope: wire::ROOT_SCOPE,
        };
        let mut bytes = fp.encode();
        bytes[8] = 0xFF; // clobber the kind lane
        assert_eq!(Fingerprint::decode(&bytes), None);
    }

    #[test]
    fn matches_ignores_count_only_for_allgatherv() {
        let base = Fingerprint {
            seq: 7,
            kind: CollectiveKind::Allgatherv,
            dtype: Dtype::F64,
            param: 0,
            count: 10,
            scope: wire::ROOT_SCOPE,
        };
        let other = Fingerprint { count: 99, ..base };
        assert!(base.matches(&other), "allgatherv counts are per-rank");
        let sum = Fingerprint {
            kind: CollectiveKind::AllreduceSum,
            ..base
        };
        let sum_other = Fingerprint { count: 99, ..sum };
        assert!(!sum.matches(&sum_other), "allreduce counts must agree");
        let skew = Fingerprint { seq: 8, ..base };
        assert!(!base.matches(&skew), "sequence numbers must agree");
    }

    #[test]
    fn stamp_advances_seq_and_bounds_the_trace() {
        let v = Verifier {
            enabled: true,
            scope: wire::ROOT_SCOPE,
            seq: Cell::new(0),
            trace: RefCell::new(VecDeque::new()),
        };
        for i in 0..(TRACE_LEN as u64 + 5) {
            let fp = v
                .stamp(CollectiveKind::Barrier, Dtype::None, 0, 0)
                .expect("enabled verifier must stamp");
            assert_eq!(fp.seq, i);
        }
        assert_eq!(v.trace.borrow().len(), TRACE_LEN);
        // The oldest retained entry is the (len - TRACE_LEN)-th stamp.
        assert_eq!(v.trace.borrow().front().unwrap().seq, 5);
        assert!(v.trace_dump().contains("barrier"));
    }

    #[test]
    fn disabled_verifier_still_counts_schedule_points() {
        let v = Verifier {
            enabled: false,
            scope: wire::ROOT_SCOPE,
            seq: Cell::new(0),
            trace: RefCell::new(VecDeque::new()),
        };
        assert_eq!(v.stamp(CollectiveKind::Barrier, Dtype::None, 0, 0), None);
        // No fingerprint and no trace entry — but the sequence counter must
        // advance so fault injection can address schedule points with the
        // verifier off.
        assert!(v.trace.borrow().is_empty());
        assert_eq!(v.next_seq(), 1);
    }

    #[test]
    fn display_names_the_operation_and_root() {
        let fp = Fingerprint {
            seq: 3,
            kind: CollectiveKind::Bcast,
            dtype: Dtype::F64,
            param: 2,
            count: 8,
            scope: wire::ROOT_SCOPE,
        };
        let s = fp.to_string();
        assert!(s.contains("#3"), "{s}");
        assert!(s.contains("bcast root=2"), "{s}");
        assert!(s.contains("count=8"), "{s}");
    }
}
