//! The collective-communication interface and the single-rank implementation.

use std::cell::RefCell;
use std::time::Duration;

use crate::error::{raise, CommError};
use crate::verify::{CollectiveKind, Dtype, Verifier};

/// Reduction operators supported by [`Communicator::allreduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    pub(crate) fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Per-collective call/byte/time counters (one instance per rank).
///
/// These drive the measured "MPI communication" bars of Figs. 6–7 and feed
/// the theoretical [`crate::CostModel`] with the actual message sizes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Number of allreduce calls.
    pub allreduce_calls: u64,
    /// Total bytes contributed to allreduces.
    pub allreduce_bytes: u64,
    /// Number of bcast calls.
    pub bcast_calls: u64,
    /// Total bytes broadcast.
    pub bcast_bytes: u64,
    /// Number of allgather calls.
    pub allgather_calls: u64,
    /// Total bytes gathered (own contribution).
    pub allgather_bytes: u64,
    /// Wall-clock time spent inside collectives.
    pub time: Duration,
}

impl CommStats {
    /// Counters accumulated since an earlier snapshot of the same rank
    /// (pairs with [`Communicator::stats`] to attribute communication to one
    /// phase of a run without resetting the global counters).
    ///
    /// Subtraction saturates: if [`Communicator::reset_stats`] ran between
    /// the snapshot and now, the earlier snapshot can exceed the current
    /// counters, and a phase delta of zero is the honest answer — not a
    /// debug-build panic or a release-build wraparound.
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            allreduce_calls: self.allreduce_calls.saturating_sub(earlier.allreduce_calls),
            allreduce_bytes: self.allreduce_bytes.saturating_sub(earlier.allreduce_bytes),
            bcast_calls: self.bcast_calls.saturating_sub(earlier.bcast_calls),
            bcast_bytes: self.bcast_bytes.saturating_sub(earlier.bcast_bytes),
            allgather_calls: self.allgather_calls.saturating_sub(earlier.allgather_calls),
            allgather_bytes: self.allgather_bytes.saturating_sub(earlier.allgather_bytes),
            time: self.time.saturating_sub(earlier.time),
        }
    }

    /// Total bytes contributed across all collective kinds.
    pub fn total_bytes(&self) -> u64 {
        self.allreduce_bytes + self.bcast_bytes + self.allgather_bytes
    }

    /// Total collective calls across all kinds.
    pub fn total_calls(&self) -> u64 {
        self.allreduce_calls + self.bcast_calls + self.allgather_calls
    }

    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.allreduce_calls += other.allreduce_calls;
        self.allreduce_bytes += other.allreduce_bytes;
        self.bcast_calls += other.bcast_calls;
        self.bcast_bytes += other.bcast_bytes;
        self.allgather_calls += other.allgather_calls;
        self.allgather_bytes += other.allgather_bytes;
        self.time += other.time;
    }
}

/// Collective communication across an SPMD process group.
///
/// All buffers are `f64`; generic algorithms go through [`CommScalar`]
/// which widens `f32` losslessly on the wire. Semantics match the MPI
/// collectives the paper uses:
///
/// * `allreduce_f64` — every rank ends with the identical reduction of all
///   contributions (reduction is performed in rank order on every rank, so
///   results are bitwise reproducible and rank-independent);
/// * `bcast_f64` — `root`'s buffer overwrites everyone's;
/// * `allgatherv_f64` — concatenation of every rank's (variable-length)
///   contribution in rank order;
/// * `allreduce_maxloc` — MPI's `MAXLOC`: the global maximum value together
///   with its payload (lowest rank wins ties), used to pick the argmax
///   point in the ROUND objective (Line 7 of Algorithm 3);
/// * `split` — MPI's `MPI_Comm_split`: a **collective** that partitions the
///   group into disjoint sub-groups by `color`, ordering each sub-group's
///   new ranks by `(key, parent rank)`. Sub-communicators satisfy the same
///   deterministic rank-ordered reduction contract as their parent, so a
///   sub-group run of `p'` ranks is bitwise identical to a root run of the
///   same `p'` ranks.
///
/// The fallible `try_`-collectives are the canonical surface a backend
/// implements; the infallible methods are provided wrappers that
/// [`raise`] a [`CommError`] as a diagnosed abort, so legacy call sites
/// keep working while outer layers migrate to the fallible path (see
/// [`crate::comm_catch`] and the "Failure model" section of the repo-root
/// `ARCHITECTURE.md`).
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of ranks in the group.
    fn size(&self) -> usize;
    /// Fallible synchronization barrier.
    ///
    /// Determinism: no data moves, so nothing can perturb reproducibility —
    /// but a barrier is still a schedule point every rank must reach, and
    /// the debug-mode verifier ([`crate::verify`]) cross-checks it like any
    /// other collective. On `Err` the endpoint is poisoned: this rank's
    /// result bits never depend on *how far* a failed collective got.
    fn try_barrier(&self) -> Result<(), CommError>;
    /// Fallible in-place allreduce: every rank's `buf` is overwritten with
    /// the reduction of all contributions (same length on every rank).
    ///
    /// Determinism: the reduction is evaluated **in rank order** on every
    /// backend, so the result is bitwise identical on every rank and across
    /// backends — floating-point non-associativity never leaks schedule or
    /// transport details into the bits. On `Err`, `buf` may hold partial
    /// garbage and must not be consumed.
    fn try_allreduce_f64(&self, buf: &mut [f64], op: ReduceOp) -> Result<(), CommError>;
    /// Fallible broadcast from `root`: `root`'s buffer overwrites
    /// everyone's (same length on every rank).
    ///
    /// Determinism: a pure byte copy of the root's buffer — receivers end
    /// with exactly the root's bits, no arithmetic involved. On `Err`,
    /// `buf` may hold partial garbage and must not be consumed.
    fn try_bcast_f64(&self, buf: &mut [f64], root: usize) -> Result<(), CommError>;
    /// Fallible variable-length allgather; returns all contributions
    /// concatenated in rank order.
    ///
    /// Determinism: the concatenation order is the group's rank order on
    /// every backend, and each contribution is copied bit-exactly, so every
    /// rank receives the identical vector.
    fn try_allgatherv_f64(&self, local: &[f64]) -> Result<Vec<f64>, CommError>;
    /// Fallible global max with payload (ties broken towards the lower
    /// rank).
    ///
    /// Determinism: implemented everywhere via the single rank-ordered
    /// scan [`crate::wire::MaxLoc::reduce_rank_ordered`] — ties always
    /// resolve to the lowest rank and the all-`-inf` sentinel case always
    /// propagates rank 0's payload, identically on every backend.
    fn try_allreduce_maxloc(&self, value: f64, payload: u64) -> Result<(f64, u64), CommError>;
    /// Fallible collective partition of this group into disjoint
    /// sub-groups (see [`Communicator::split`] for the full semantics).
    ///
    /// Determinism: membership and new-rank order are computed from the
    /// deterministic membership exchange, and every sub-communicator
    /// satisfies the same rank-ordered reduction contract as its parent —
    /// a sub-group of `p'` ranks reduces bitwise identically to a root
    /// group of the same `p'` ranks.
    fn try_split(&self, color: usize, key: usize) -> Result<Box<dyn Communicator>, CommError>;
    /// Synchronization barrier.
    ///
    /// Determinism: identical to [`Communicator::try_barrier`]; on failure
    /// this wrapper aborts with the full [`CommError`] diagnosis instead of
    /// returning it.
    fn barrier(&self) {
        if let Err(e) = self.try_barrier() {
            raise(e)
        }
    }
    /// In-place allreduce: every rank's `buf` is overwritten with the
    /// reduction of all contributions (same length on every rank).
    ///
    /// Determinism: identical to [`Communicator::try_allreduce_f64`] —
    /// rank-ordered reduction, bitwise reproducible; on failure this
    /// wrapper aborts with the full [`CommError`] diagnosis.
    fn allreduce_f64(&self, buf: &mut [f64], op: ReduceOp) {
        if let Err(e) = self.try_allreduce_f64(buf, op) {
            raise(e)
        }
    }
    /// Broadcast from `root`: `root`'s buffer overwrites everyone's (same
    /// length on every rank).
    ///
    /// Determinism: identical to [`Communicator::try_bcast_f64`] — a pure
    /// byte copy of the root's buffer; on failure this wrapper aborts with
    /// the full [`CommError`] diagnosis.
    fn bcast_f64(&self, buf: &mut [f64], root: usize) {
        if let Err(e) = self.try_bcast_f64(buf, root) {
            raise(e)
        }
    }
    /// Variable-length allgather; returns all contributions concatenated in
    /// rank order.
    ///
    /// Determinism: identical to [`Communicator::try_allgatherv_f64`] —
    /// rank-ordered concatenation, bit-exact; on failure this wrapper
    /// aborts with the full [`CommError`] diagnosis.
    fn allgatherv_f64(&self, local: &[f64]) -> Vec<f64> {
        match self.try_allgatherv_f64(local) {
            Ok(v) => v,
            Err(e) => raise(e),
        }
    }
    /// Global max with payload (ties broken towards the lower rank).
    ///
    /// Determinism: identical to [`Communicator::try_allreduce_maxloc`] —
    /// the single rank-ordered MAXLOC scan; on failure this wrapper aborts
    /// with the full [`CommError`] diagnosis.
    fn allreduce_maxloc(&self, value: f64, payload: u64) -> (f64, u64) {
        match self.try_allreduce_maxloc(value, payload) {
            Ok(v) => v,
            Err(e) => raise(e),
        }
    }
    /// Collectively partition this group into disjoint sub-groups: ranks
    /// passing the same `color` land in the same sub-communicator, with new
    /// ranks assigned by ascending `(key, parent rank)` (MPI's
    /// `MPI_Comm_split` semantics, minus the "undefined color" escape —
    /// every rank joins exactly one sub-group, possibly a singleton).
    ///
    /// **Every rank of this communicator must call `split` (it is a
    /// collective)**, and the returned endpoint starts a fresh
    /// [`CommStats`] record, so per-sub-group communication can be
    /// attributed independently of the parent's counters.
    ///
    /// Determinism: identical to [`Communicator::try_split`] — membership
    /// and new-rank order come from the deterministic membership exchange;
    /// on failure this wrapper aborts with the full [`CommError`]
    /// diagnosis.
    fn split(&self, color: usize, key: usize) -> Box<dyn Communicator> {
        match self.try_split(color, key) {
            Ok(c) => c,
            Err(e) => raise(e),
        }
    }
    /// Snapshot of this rank's communication statistics.
    fn stats(&self) -> CommStats;
    /// Reset this rank's statistics.
    fn reset_stats(&self);
}

/// Membership bookkeeping shared by every [`Communicator::split`]
/// implementation: allgather each rank's `(color, key)` over the parent
/// group, then order my color-mates by `(key, parent rank)`.
///
/// Returns the parent ranks of my sub-group in **new-rank order** plus my
/// own position (= my new rank). Identical on every member of the group —
/// the contributions travel through the parent's deterministic collectives.
pub(crate) fn split_membership(
    comm: &dyn Communicator,
    color: usize,
    key: usize,
) -> (Vec<usize>, usize) {
    // usize → f64 is exact for the rank/color/key magnitudes a group can
    // hold (collectives address ranks, so values stay far below 2^53).
    let all = comm.allgatherv_f64(&[color as f64, key as f64]);
    assert_eq!(all.len(), 2 * comm.size(), "split membership exchange");
    let mut mates: Vec<(usize, usize)> = (0..comm.size())
        .filter(|&r| all[2 * r] == color as f64)
        .map(|r| (all[2 * r + 1] as usize, r))
        .collect();
    mates.sort_unstable();
    let members: Vec<usize> = mates.into_iter().map(|(_, r)| r).collect();
    let my_pos = members
        .iter()
        .position(|&r| r == comm.rank())
        .expect("calling rank missing from its own color group");
    (members, my_pos)
}

/// Single-rank communicator: all collectives are identities. The `p = 1`
/// fast path, and what the serial algorithms run on.
///
/// The collective-order verifier ([`crate::verify`]) degenerates here to
/// trace recording: there is no peer to disagree with, but the fingerprint
/// trace still documents the schedule this endpoint ran.
#[derive(Debug, Default)]
pub struct SelfComm {
    stats: RefCell<CommStats>,
    verify: Verifier,
}

impl SelfComm {
    /// Create a fresh single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consult the process-wide fault plan at this endpoint's next schedule
    /// point. `kill`/`stall` execute inside the plan; a connection drop is
    /// meaningless with no transport and is ignored.
    fn fault_hook(&self) {
        let _ = crate::fault::FaultPlan::from_env().at_collective(0, self.verify.next_seq());
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn try_barrier(&self) -> Result<(), CommError> {
        self.fault_hook();
        self.verify
            .stamp(CollectiveKind::Barrier, Dtype::None, 0, 0);
        Ok(())
    }
    fn try_allreduce_f64(&self, buf: &mut [f64], op: ReduceOp) -> Result<(), CommError> {
        self.fault_hook();
        self.verify.stamp(
            CollectiveKind::allreduce(op),
            Dtype::F64,
            0,
            buf.len() as u64,
        );
        let mut s = self.stats.borrow_mut();
        s.allreduce_calls += 1;
        s.allreduce_bytes += (buf.len() * 8) as u64;
        Ok(())
    }
    fn try_bcast_f64(&self, buf: &mut [f64], root: usize) -> Result<(), CommError> {
        assert_eq!(root, 0, "SelfComm only has rank 0");
        self.fault_hook();
        self.verify
            .stamp(CollectiveKind::Bcast, Dtype::F64, 0, buf.len() as u64);
        let mut s = self.stats.borrow_mut();
        s.bcast_calls += 1;
        s.bcast_bytes += (buf.len() * 8) as u64;
        Ok(())
    }
    fn try_allgatherv_f64(&self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        self.fault_hook();
        self.verify.stamp(
            CollectiveKind::Allgatherv,
            Dtype::F64,
            0,
            local.len() as u64,
        );
        let mut s = self.stats.borrow_mut();
        s.allgather_calls += 1;
        s.allgather_bytes += (local.len() * 8) as u64;
        Ok(local.to_vec())
    }
    fn try_allreduce_maxloc(&self, value: f64, payload: u64) -> Result<(f64, u64), CommError> {
        self.fault_hook();
        self.verify
            .stamp(CollectiveKind::Maxloc, Dtype::MaxLocRec, 0, 1);
        let mut s = self.stats.borrow_mut();
        s.allreduce_calls += 1;
        s.allreduce_bytes += 16;
        Ok((value, payload))
    }
    fn try_split(&self, color: usize, key: usize) -> Result<Box<dyn Communicator>, CommError> {
        // A single rank always splits into the singleton group containing
        // itself; the shared membership exchange degenerates but still
        // counts as a collective on this endpoint.
        self.fault_hook();
        self.verify.stamp(CollectiveKind::Split, Dtype::None, 0, 0);
        let (members, my_pos) = split_membership(self, color, key);
        debug_assert_eq!((members, my_pos), (vec![0], 0));
        Ok(Box::new(SelfComm::new()))
    }
    fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }
    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

/// Scalar types that can travel through a [`Communicator`].
///
/// `f32` widens to `f64` on the wire (lossless) and narrows on receipt;
/// the generic SPMD algorithms in `firal-core` use these helpers so the
/// same code runs in either precision.
pub trait CommScalar: firal_linalg::Scalar {
    /// In-place allreduce of a typed buffer.
    fn allreduce(comm: &dyn Communicator, buf: &mut [Self], op: ReduceOp);
    /// Broadcast of a typed buffer.
    fn bcast(comm: &dyn Communicator, buf: &mut [Self], root: usize);
    /// Variable-length allgather of a typed buffer.
    fn allgatherv(comm: &dyn Communicator, local: &[Self]) -> Vec<Self>;
    /// Fallible in-place allreduce of a typed buffer.
    fn try_allreduce(
        comm: &dyn Communicator,
        buf: &mut [Self],
        op: ReduceOp,
    ) -> Result<(), CommError>;
    /// Fallible broadcast of a typed buffer.
    fn try_bcast(comm: &dyn Communicator, buf: &mut [Self], root: usize) -> Result<(), CommError>;
    /// Fallible variable-length allgather of a typed buffer.
    fn try_allgatherv(comm: &dyn Communicator, local: &[Self]) -> Result<Vec<Self>, CommError>;
}

/// `f32` widens through a temporary `f64` staging buffer.
impl CommScalar for f32 {
    fn allreduce(comm: &dyn Communicator, buf: &mut [Self], op: ReduceOp) {
        let mut wide: Vec<f64> = buf.iter().map(|&v| v as f64).collect();
        comm.allreduce_f64(&mut wide, op);
        for (b, w) in buf.iter_mut().zip(wide.iter()) {
            *b = *w as f32;
        }
    }
    fn bcast(comm: &dyn Communicator, buf: &mut [Self], root: usize) {
        let mut wide: Vec<f64> = buf.iter().map(|&v| v as f64).collect();
        comm.bcast_f64(&mut wide, root);
        for (b, w) in buf.iter_mut().zip(wide.iter()) {
            *b = *w as f32;
        }
    }
    fn allgatherv(comm: &dyn Communicator, local: &[Self]) -> Vec<Self> {
        let wide: Vec<f64> = local.iter().map(|&v| v as f64).collect();
        comm.allgatherv_f64(&wide)
            .into_iter()
            .map(|v| v as f32)
            .collect()
    }
    fn try_allreduce(
        comm: &dyn Communicator,
        buf: &mut [Self],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let mut wide: Vec<f64> = buf.iter().map(|&v| v as f64).collect();
        comm.try_allreduce_f64(&mut wide, op)?;
        for (b, w) in buf.iter_mut().zip(wide.iter()) {
            *b = *w as f32;
        }
        Ok(())
    }
    fn try_bcast(comm: &dyn Communicator, buf: &mut [Self], root: usize) -> Result<(), CommError> {
        let mut wide: Vec<f64> = buf.iter().map(|&v| v as f64).collect();
        comm.try_bcast_f64(&mut wide, root)?;
        for (b, w) in buf.iter_mut().zip(wide.iter()) {
            *b = *w as f32;
        }
        Ok(())
    }
    fn try_allgatherv(comm: &dyn Communicator, local: &[Self]) -> Result<Vec<Self>, CommError> {
        let wide: Vec<f64> = local.iter().map(|&v| v as f64).collect();
        Ok(comm
            .try_allgatherv_f64(&wide)?
            .into_iter()
            .map(|v| v as f32)
            .collect())
    }
}

/// `f64` already is the wire type: call straight through, no staging
/// allocation on the hot path.
impl CommScalar for f64 {
    fn allreduce(comm: &dyn Communicator, buf: &mut [Self], op: ReduceOp) {
        comm.allreduce_f64(buf, op);
    }
    fn bcast(comm: &dyn Communicator, buf: &mut [Self], root: usize) {
        comm.bcast_f64(buf, root);
    }
    fn allgatherv(comm: &dyn Communicator, local: &[Self]) -> Vec<Self> {
        comm.allgatherv_f64(local)
    }
    fn try_allreduce(
        comm: &dyn Communicator,
        buf: &mut [Self],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        comm.try_allreduce_f64(buf, op)
    }
    fn try_bcast(comm: &dyn Communicator, buf: &mut [Self], root: usize) -> Result<(), CommError> {
        comm.try_bcast_f64(buf, root)
    }
    fn try_allgatherv(comm: &dyn Communicator, local: &[Self]) -> Result<Vec<Self>, CommError> {
        comm.try_allgatherv_f64(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selfcomm_allreduce_is_identity() {
        let c = SelfComm::new();
        let mut buf = vec![1.0, 2.0, 3.0];
        c.allreduce_f64(&mut buf, ReduceOp::Sum);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.stats().allreduce_calls, 1);
        assert_eq!(c.stats().allreduce_bytes, 24);
    }

    #[test]
    fn selfcomm_gather_and_maxloc() {
        let c = SelfComm::new();
        assert_eq!(c.allgatherv_f64(&[5.0, 6.0]), vec![5.0, 6.0]);
        assert_eq!(c.allreduce_maxloc(3.5, 42), (3.5, 42));
    }

    #[test]
    fn comm_scalar_f32_roundtrip() {
        let c = SelfComm::new();
        let mut buf = vec![1.5f32, -2.25];
        <f32 as CommScalar>::allreduce(&c, &mut buf, ReduceOp::Sum);
        assert_eq!(buf, vec![1.5, -2.25]);
    }

    #[test]
    fn reduce_ops_combine() {
        assert_eq!(ReduceOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.combine(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.combine(2.0, 3.0), 2.0);
    }

    #[test]
    fn comm_scalar_f64_is_passthrough() {
        let c = SelfComm::new();
        let mut buf = vec![1.5f64, -2.25];
        <f64 as CommScalar>::allreduce(&c, &mut buf, ReduceOp::Sum);
        <f64 as CommScalar>::bcast(&c, &mut buf, 0);
        assert_eq!(<f64 as CommScalar>::allgatherv(&c, &buf), vec![1.5, -2.25]);
        // All three routed to the raw collectives (and were counted there).
        let s = c.stats();
        assert_eq!(
            (s.allreduce_calls, s.bcast_calls, s.allgather_calls),
            (1, 1, 1)
        );
    }

    #[test]
    fn selfcomm_try_surface_is_infallible() {
        let c = SelfComm::new();
        assert!(c.try_barrier().is_ok());
        let mut buf = vec![1.0];
        assert!(c.try_allreduce_f64(&mut buf, ReduceOp::Sum).is_ok());
        assert!(c.try_bcast_f64(&mut buf, 0).is_ok());
        assert_eq!(c.try_allgatherv_f64(&buf).unwrap(), vec![1.0]);
        assert_eq!(c.try_allreduce_maxloc(1.0, 7).unwrap(), (1.0, 7));
        let sub = c.try_split(0, 0).expect("singleton split");
        assert_eq!((sub.rank(), sub.size()), (0, 1));
        let mut f32buf = vec![1.5f32];
        <f32 as CommScalar>::try_allreduce(&c, &mut f32buf, ReduceOp::Sum).unwrap();
        assert_eq!(f32buf, vec![1.5]);
        assert_eq!(
            <f64 as CommScalar>::try_allgatherv(&c, &buf).unwrap(),
            vec![1.0]
        );
    }

    #[test]
    fn stats_since_saturates_after_reset() {
        // Snapshot, reset, one more call: the "since snapshot" delta must
        // clamp at zero for the counters that went backwards, not panic.
        let c = SelfComm::new();
        let mut buf = vec![0.0; 8];
        c.allreduce_f64(&mut buf, ReduceOp::Sum);
        c.allreduce_f64(&mut buf, ReduceOp::Sum);
        let snapshot = c.stats();
        c.reset_stats();
        c.allreduce_f64(&mut buf, ReduceOp::Sum);
        let delta = c.stats().since(&snapshot);
        assert_eq!(delta.allreduce_calls, 0);
        assert_eq!(delta.allreduce_bytes, 0);
        assert_eq!(delta.time, Duration::ZERO);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = CommStats::default();
        let b = CommStats {
            allreduce_calls: 2,
            allreduce_bytes: 100,
            time: Duration::from_millis(5),
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.allreduce_calls, 4);
        assert_eq!(a.allreduce_bytes, 200);
        assert_eq!(a.time, Duration::from_millis(10));
    }
}
