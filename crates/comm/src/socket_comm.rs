//! Inter-process communicator over a localhost TCP socket mesh.
//!
//! [`SocketComm`] is the first *process-level* transport behind
//! [`Communicator`]: every algorithm, bench, and test written against the
//! trait runs over real wire I/O unchanged, with measured socket time
//! flowing into [`CommStats::time`].
//!
//! # Rendezvous protocol
//!
//! A group of `p` processes (or threads — see [`socket_launch`]) wires
//! itself into a full mesh in three steps, all framed by [`crate::wire`]
//! (little-endian `u64`s, length-prefixed buffers, [`wire::MAGIC`] sanity
//! words):
//!
//! 1. **Rendezvous.** Rank 0 listens on the agreed address (from
//!    [`ENV_ADDR`] or a caller argument). Every other rank binds its own
//!    ephemeral *mesh listener*, connects to rank 0, and sends
//!    `MAGIC, rank, mesh-listener-address`. These rendezvous connections
//!    double as the rank-0 ↔ rank-r mesh links.
//! 2. **Address table.** Once all `p - 1` ranks have checked in, rank 0
//!    replies on each link with `MAGIC, p, addr(1), …, addr(p-1)`.
//! 3. **Mesh completion.** Each rank `r > 0` connects to the mesh listener
//!    of every rank `1 ≤ i < r` (announcing itself with `MAGIC, r`) and
//!    accepts one connection from every rank `j > r`. A closing barrier
//!    through rank 0 makes construction a synchronization point, like
//!    `MPI_Init`.
//!
//! Every step is bounded by the rendezvous deadline
//! ([`RENDEZVOUS_TIMEOUT_ENV`], default 30 s): connect and bind retries
//! back off exponentially against it, accept loops poll nonblockingly
//! against it, and check-in reads inherit the remaining budget. A stray
//! connection that fails its check-in (bad magic, invalid or duplicate
//! rank, or silence) is dropped without consuming a rendezvous slot.
//!
//! # Collectives
//!
//! Data collectives run hub-style through rank 0, which performs the
//! reduction **in rank order** — the same deterministic contract as
//! [`crate::ThreadComm`], so both backends produce bitwise-identical
//! results — and returns the result on every link. `bcast` uses the direct
//! root → peer mesh links. MAXLOC carries its payload in the separate
//! integer lane of [`wire::MaxLoc`] and reduces via the shared
//! [`wire::MaxLoc::reduce_rank_ordered`] semantics.
//!
//! # Failure behaviour
//!
//! The collectives are fallible ([`Communicator::try_barrier`] and
//! friends). Once the mesh is wired, every frame read and write honours
//! the `FIRAL_COMM_TIMEOUT` deadline ([`crate::comm_timeout`]); EOF,
//! resets, and garbage frames are diagnosed as [`CommError`]s carrying
//! rank/op/sequence context. A rank that observes an *original* failure
//! (not a received abort) broadcasts a [`wire::ABORT_TAG`] frame on the
//! raw, unbuffered clones of its **group's** mesh links, so each group
//! survivor fails its next frame read with [`CommError::RemoteAbort`]
//! within one deadline instead of hanging; received aborts are not
//! re-broadcast, so abort storms terminate. The blast radius is the
//! failing (sub-)group, not the whole mesh: disjoint sibling groups made
//! by `split` (e.g. concurrent serving requests) keep running, and ranks
//! outside the group observe the failure only at their next collective
//! that includes a member of it. On a root communicator the group *is*
//! the mesh, so pre-split behaviour is unchanged. A failed endpoint stays poisoned — every later
//! collective replays the first error. [`SocketComm::install_panic_abort`]
//! extends the same courtesy to panics (e.g. the schedule verifier's
//! mismatch abort): SPMD launchers install it once per rank so a panic
//! broadcasts its diagnostic before the process dies. Deterministic fault
//! injection ([`crate::fault`], `FIRAL_FAULT`) hooks the rendezvous and
//! the top of every collective, keyed off the verifier's per-rank
//! collective sequence number ([`SocketComm::collective_seq`]).
//!
//! # Launching
//!
//! * Multi-process: the `spmd_launch` binary (`crates/bench`) re-executes
//!   itself `p` times via [`fork_self`], with [`ENV_RANK`]/[`ENV_SIZE`]/
//!   [`ENV_ADDR`] telling each child who it is; children join the group
//!   with [`SocketComm::from_env`]. The parent supervises: after a first
//!   failure the surviving ranks get a grace period to exit with their own
//!   diagnosis, then stragglers are killed and reaped ([`fork_self_report`]
//!   returns the per-rank exit table), so no orphans outlive the launcher.
//! * In-process: [`socket_launch`]`(p, f)` runs the closure on `p` OS
//!   threads whose endpoints still talk over real localhost TCP — the
//!   test/bench harness for the socket path.

use std::cell::{Cell, RefCell, RefMut};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::{Child, Command};
use std::rc::Rc;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::communicator::{split_membership, CommStats, Communicator, ReduceOp};
use crate::error::{comm_catch, comm_timeout, CommError};
use crate::fault::{FaultPlan, Injected, KILL_EXIT_CODE};
use crate::verify::{CollectiveKind, Dtype, Fingerprint, Verifier};
use crate::wire::{self, AbortMsg, MaxLoc, MAGIC};

/// Env var carrying this process's rank (set by the launcher).
pub const ENV_RANK: &str = "FIRAL_SPMD_RANK";
/// Env var carrying the group size.
pub const ENV_SIZE: &str = "FIRAL_SPMD_SIZE";
/// Env var carrying the rank-0 rendezvous address (`host:port`).
pub const ENV_ADDR: &str = "FIRAL_SPMD_ADDR";

/// Env var overriding the total rendezvous deadline in milliseconds
/// (default 30 000). Every connect retry, bind retry, accept loop, and
/// check-in read during mesh construction is bounded by this budget, so a
/// rank that dies before the mesh is wired cannot hang the survivors.
pub const RENDEZVOUS_TIMEOUT_ENV: &str = "FIRAL_RENDEZVOUS_TIMEOUT";

/// Default rendezvous deadline when [`RENDEZVOUS_TIMEOUT_ENV`] is unset.
const DEFAULT_RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(30);
/// Initial retry pause; doubles per attempt up to [`RETRY_PAUSE_CAP`].
const RETRY_PAUSE: Duration = Duration::from_millis(20);
const RETRY_PAUSE_CAP: Duration = Duration::from_millis(500);

/// The process-wide rendezvous deadline from [`RENDEZVOUS_TIMEOUT_ENV`],
/// cached on first use.
fn rendezvous_timeout() -> Duration {
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| match std::env::var(RENDEZVOUS_TIMEOUT_ENV) {
        Ok(raw) => {
            let ms: u64 = raw.trim().parse().unwrap_or_else(|_| {
                panic!("{RENDEZVOUS_TIMEOUT_ENV} must be an integer (ms), got {raw:?}")
            });
            if ms == 0 {
                DEFAULT_RENDEZVOUS_TIMEOUT
            } else {
                Duration::from_millis(ms)
            }
        }
        Err(_) => DEFAULT_RENDEZVOUS_TIMEOUT,
    })
}

/// Time left until `deadline`, floored so it is always a valid socket
/// timeout (`set_read_timeout(Some(0))` is an error).
fn remaining(deadline: Instant) -> Duration {
    deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10))
}

/// Buffered duplex view of one mesh link, plus a raw (unbuffered) clone of
/// the stream for out-of-band abort frames and deadline flips.
struct Peer {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    raw: TcpStream,
}

impl Peer {
    fn new(stream: TcpStream, timeout: Option<Duration>) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let raw = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            raw,
        })
    }

    /// Flip the socket deadlines (shared by every clone of the stream)
    /// from the rendezvous budget to the steady-state comm deadline.
    fn set_deadline(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.raw.set_read_timeout(timeout)?;
        self.raw.set_write_timeout(timeout)
    }
}

fn expect_magic(r: &mut impl Read) -> io::Result<()> {
    if wire::read_u64(r)? != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic on the SPMD wire (stray connection or protocol mismatch)",
        ));
    }
    Ok(())
}

/// Retry `TcpStream::connect` with exponential backoff until the
/// rendezvous deadline expires (rank 0 may still be starting, or its port
/// may be briefly unavailable).
fn connect_retry(addr: &str) -> io::Result<TcpStream> {
    let deadline = Instant::now() + rendezvous_timeout();
    let mut pause = RETRY_PAUSE;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(pause);
                pause = (pause * 2).min(RETRY_PAUSE_CAP);
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!(
                        "rendezvous with rank 0 at {addr} timed out after {:?}: {e}",
                        rendezvous_timeout()
                    ),
                ))
            }
        }
    }
}

/// Retry `TcpListener::bind` with exponential backoff until the rendezvous
/// deadline expires (the previous owner of a reused port may still be
/// releasing it).
fn bind_retry(addr: &str) -> io::Result<TcpListener> {
    let deadline = Instant::now() + rendezvous_timeout();
    let mut pause = RETRY_PAUSE;
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(pause);
                pause = (pause * 2).min(RETRY_PAUSE_CAP);
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!(
                        "could not bind the rendezvous address {addr} within {:?}: {e}",
                        rendezvous_timeout()
                    ),
                ))
            }
        }
    }
}

/// Accept one connection, polling nonblockingly against `deadline` so a
/// rank that dies before checking in cannot hang the acceptor forever.
fn accept_within(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                listener.set_nonblocking(false)?;
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "rendezvous deadline ({:?}) expired while waiting for peers \
                             to check in (a rank likely died before connecting)",
                            rendezvous_timeout()
                        ),
                    ));
                }
                std::thread::sleep(RETRY_PAUSE);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Poll `listener` for one pending connection without blocking — the
/// serving-side accept primitive: a server that owns rank 0 of a warm mesh
/// interleaves this with its scheduling loop, so accepting clients never
/// stalls the SPMD control plane. Returns `Ok(None)` when no connection is
/// pending. The listener is left in nonblocking mode between calls; an
/// accepted stream is switched back to blocking before it is returned.
pub fn poll_accept(listener: &TcpListener) -> io::Result<Option<TcpStream>> {
    listener.set_nonblocking(true)?;
    match listener.accept() {
        Ok((stream, _)) => {
            stream.set_nonblocking(false)?;
            Ok(Some(stream))
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
            ) =>
        {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// One rank's endpoint of a TCP process group (see the module docs for the
/// rendezvous protocol and collective algorithms).
///
/// A `SocketComm` is either the **root** group built by [`SocketComm::connect`]
/// (members = all mesh ranks, frames tagged with [`wire::ROOT_SCOPE`]) or a
/// **sub-group** produced by [`Communicator::split`]: the same mesh links
/// (shared via `Rc` — a rank's endpoints all live on one thread), a subset
/// of members in new-rank order, and a split-derived scope tag stamped on
/// every frame so collectives of different sub-groups sharing a link can
/// never consume each other's traffic.
pub struct SocketComm {
    /// This endpoint's rank in the *root* mesh (stable across splits; the
    /// index into `peers`).
    world_rank: usize,
    /// Mesh links indexed by **world rank**; `None` at our own slot (and at
    /// every slot when the root group has a single rank).
    peers: Rc<Vec<Option<RefCell<Peer>>>>,
    /// Raw (unbuffered) clones of the mesh streams, indexed like `peers`.
    /// Abort frames are written here so a failure diagnosis never contends
    /// with the `RefCell` borrows of an in-flight collective.
    abort_streams: Rc<Vec<Option<TcpStream>>>,
    /// World ranks of this group's members, in group-rank order.
    members: Vec<usize>,
    /// My position in `members` (= my rank in this group).
    my_pos: usize,
    /// Scope tag prefixed to every collective frame of this group.
    scope: u64,
    /// Split generations issued from this endpoint (names sub-group scopes).
    split_seq: Cell<u64>,
    stats: RefCell<CommStats>,
    /// First [`CommError`] observed on this endpoint; replayed to every
    /// subsequent collective so a failed group cannot half-proceed.
    failed: RefCell<Option<CommError>>,
    /// Collective-order verifier state ([`crate::verify`]): when enabled,
    /// every collective is preceded by a hub-style fingerprint exchange on
    /// the same scope-tagged links, so a skewed schedule aborts with a
    /// diagnostic before the data phase can deadlock. Its sequence counter
    /// advances even when verification is off — it is the schedule
    /// coordinate fault injection keys on.
    verify: Verifier,
    /// Self-addressed point-to-point frames ([`SocketComm::try_send_bytes`]
    /// to our own rank): queued here instead of touching a socket, so the
    /// serving layer's control plane treats rank 0 → rank 0 traffic
    /// uniformly with every other lane.
    loopback: RefCell<VecDeque<Vec<u8>>>,
}

/// Seed salt distinguishing a group's point-to-point lane tag from every
/// [`wire::derive_scope`] sub-group tag (those use small split counters as
/// the `seq` input; this constant is far outside that range).
const P2P_LANE_SALT: u64 = 0xF1AA_9292_0000_0001;

/// Registry behind [`SocketComm::install_panic_abort`]: (origin world
/// rank, raw mesh stream) pairs the process-wide panic hook writes abort
/// frames to. Kept outside the endpoint so the hook never touches a
/// `RefCell` that may be borrowed at panic time.
static PANIC_ABORT_LINKS: Mutex<Vec<(usize, TcpStream)>> = Mutex::new(Vec::new());

impl SocketComm {
    /// Join a `size`-rank group as `rank`, rendezvousing at `rendezvous`
    /// (rank 0 binds it; everyone else connects). Blocks until the whole
    /// mesh is wired or the rendezvous deadline expires.
    pub fn connect(rank: usize, size: usize, rendezvous: &str) -> io::Result<Self> {
        Self::connect_inner(rank, size, rendezvous, None)
    }

    /// Join a group using env-var coordinates ([`ENV_RANK`], [`ENV_SIZE`],
    /// [`ENV_ADDR`]); `None` when [`ENV_RANK`] is unset, i.e. the process
    /// was not started by an SPMD launcher.
    pub fn from_env() -> Option<io::Result<Self>> {
        let rank_var = std::env::var(ENV_RANK).ok()?;
        let parse = move || -> io::Result<Self> {
            let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidInput, what.to_string());
            let rank: usize = rank_var
                .parse()
                .map_err(|_| bad("unparsable FIRAL_SPMD_RANK"))?;
            let size: usize = std::env::var(ENV_SIZE)
                .map_err(|_| bad("FIRAL_SPMD_SIZE missing"))?
                .parse()
                .map_err(|_| bad("unparsable FIRAL_SPMD_SIZE"))?;
            let addr = std::env::var(ENV_ADDR).map_err(|_| bad("FIRAL_SPMD_ADDR missing"))?;
            Self::connect(rank, size, &addr)
        };
        Some(parse())
    }

    fn connect_inner(
        rank: usize,
        size: usize,
        rendezvous: &str,
        pre_bound: Option<TcpListener>,
    ) -> io::Result<Self> {
        assert!(size > 0, "SPMD group needs at least one rank");
        assert!(rank < size, "rank {rank} out of {size}");
        // Rendezvous-phase fault hook: op-less `FIRAL_FAULT` specs fire
        // here, before this rank has checked in anywhere.
        let _ = FaultPlan::from_env().at_rendezvous(rank);
        let root = |peers: Vec<Option<RefCell<Peer>>>, aborts: Vec<Option<TcpStream>>| Self {
            world_rank: rank,
            peers: Rc::new(peers),
            abort_streams: Rc::new(aborts),
            members: (0..size).collect(),
            my_pos: rank,
            scope: wire::ROOT_SCOPE,
            split_seq: Cell::new(0),
            stats: RefCell::new(CommStats::default()),
            failed: RefCell::new(None),
            verify: Verifier::new(wire::ROOT_SCOPE),
            loopback: RefCell::new(VecDeque::new()),
        };
        let mut peers: Vec<Option<RefCell<Peer>>> = (0..size).map(|_| None).collect();
        if size == 1 {
            let aborts = (0..size).map(|_| None).collect();
            return Ok(root(peers, aborts));
        }
        let deadline = Instant::now() + rendezvous_timeout();

        if rank == 0 {
            let listener = match pre_bound {
                Some(l) => l,
                None => bind_retry(rendezvous)?,
            };
            let mut addrs: Vec<Option<String>> = vec![None; size];
            let mut checked_in = 0;
            while checked_in < size - 1 {
                let stream = accept_within(&listener, deadline)?;
                // Bound the check-in read by the remaining budget so a
                // silent stray connection cannot stall the rendezvous.
                let mut peer = match Peer::new(stream, Some(remaining(deadline))) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let checkin = (|| -> io::Result<(usize, String)> {
                    expect_magic(&mut peer.reader)?;
                    let r = wire::read_u64(&mut peer.reader)? as usize;
                    let addr = wire::read_str(&mut peer.reader)?;
                    Ok((r, addr))
                })();
                match checkin {
                    Ok((r, addr)) if r >= 1 && r < size && peers[r].is_none() => {
                        addrs[r] = Some(addr);
                        peers[r] = Some(RefCell::new(peer));
                        checked_in += 1;
                    }
                    Ok((r, _)) => {
                        // Dropping `peer` closes the socket; the slot stays
                        // open for the legitimate rank.
                        eprintln!(
                            "SocketComm rendezvous: dropped a connection claiming \
                             invalid or duplicate rank {r}"
                        );
                    }
                    Err(e) => {
                        eprintln!("SocketComm rendezvous: dropped a stray connection ({e})");
                    }
                }
            }
            for r in 1..size {
                let cell = peers[r].as_ref().expect("all ranks checked in");
                let mut p = cell.borrow_mut();
                wire::write_u64(&mut p.writer, MAGIC)?;
                wire::write_u64(&mut p.writer, size as u64)?;
                for a in addrs.iter().skip(1) {
                    let a = a.as_ref().expect("table complete");
                    wire::write_str(&mut p.writer, a)?;
                }
                p.writer.flush()?;
            }
        } else {
            // Our own listener for the mesh links from higher ranks.
            let mesh_listener = TcpListener::bind("127.0.0.1:0")?;
            let my_addr = mesh_listener.local_addr()?.to_string();

            // The table read below waits for *all* ranks to check in, so
            // it is bounded by the full rendezvous budget, not a remainder.
            let mut p0 = Peer::new(connect_retry(rendezvous)?, Some(rendezvous_timeout()))?;
            wire::write_u64(&mut p0.writer, MAGIC)?;
            wire::write_u64(&mut p0.writer, rank as u64)?;
            wire::write_str(&mut p0.writer, &my_addr)?;
            p0.writer.flush()?;

            expect_magic(&mut p0.reader)?;
            let echoed = wire::read_u64(&mut p0.reader)? as usize;
            if echoed != size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("group-size mismatch: launcher says {size}, rank 0 says {echoed}"),
                ));
            }
            let mut table = Vec::with_capacity(size - 1);
            for _ in 1..size {
                table.push(wire::read_str(&mut p0.reader)?);
            }
            peers[0] = Some(RefCell::new(p0));

            // Connect towards lower ranks, accept from higher ones.
            for i in 1..rank {
                let mut p = Peer::new(connect_retry(&table[i - 1])?, Some(rendezvous_timeout()))?;
                wire::write_u64(&mut p.writer, MAGIC)?;
                wire::write_u64(&mut p.writer, rank as u64)?;
                p.writer.flush()?;
                peers[i] = Some(RefCell::new(p));
            }
            let mut accepted = 0;
            while accepted < size - rank - 1 {
                let stream = accept_within(&mesh_listener, deadline)?;
                let mut p = match Peer::new(stream, Some(remaining(deadline))) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let announce = (|| -> io::Result<usize> {
                    expect_magic(&mut p.reader)?;
                    Ok(wire::read_u64(&mut p.reader)? as usize)
                })();
                match announce {
                    Ok(j) if j > rank && j < size && peers[j].is_none() => {
                        peers[j] = Some(RefCell::new(p));
                        accepted += 1;
                    }
                    Ok(j) => {
                        eprintln!(
                            "SocketComm mesh: dropped a link announcing invalid or \
                             duplicate rank {j}"
                        );
                    }
                    Err(e) => {
                        eprintln!("SocketComm mesh: dropped a stray connection ({e})");
                    }
                }
            }
        }

        let mut aborts: Vec<Option<TcpStream>> = Vec::with_capacity(size);
        for slot in &peers {
            aborts.push(match slot {
                Some(cell) => Some(cell.borrow().raw.try_clone()?),
                None => None,
            });
        }
        let comm = root(peers, aborts);
        // Construction is a sync point (like MPI_Init): nobody proceeds
        // until the whole mesh is wired. Still under the rendezvous budget.
        comm.hub_barrier().map_err(|e| {
            io::Error::new(e.kind(), format!("post-rendezvous barrier failed: {e}"))
        })?;
        // Steady state: flip every link to the communication deadline.
        for cell in comm.peers.iter().flatten() {
            cell.borrow().set_deadline(comm_timeout())?;
        }
        Ok(comm)
    }

    /// The per-rank collective sequence number the *next* collective on
    /// this endpoint will run at — the schedule coordinate that
    /// `FIRAL_FAULT` specs address with `op=` (see [`crate::fault`]).
    pub fn collective_seq(&self) -> u64 {
        self.verify.next_seq()
    }

    /// Install a process-wide panic hook that broadcasts an abort frame on
    /// every mesh link of this endpoint before the panic unwinds, so peers
    /// observe [`CommError::RemoteAbort`] (with the panic text as the
    /// reason) within one deadline instead of hanging until a socket
    /// closes. SPMD launchers call this once per rank right after joining
    /// the mesh; calling it again replaces the registered links.
    pub fn install_panic_abort(&self) {
        let mut links = PANIC_ABORT_LINKS.lock().unwrap_or_else(|p| p.into_inner());
        links.clear();
        for s in self.abort_streams.iter().flatten() {
            if let Ok(clone) = s.try_clone() {
                links.push((self.world_rank, clone));
            }
        }
        drop(links);
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let text = crate::thread_comm::panic_text(info.payload());
                let reason = match info.location() {
                    Some(loc) => format!("panic at {loc}: {text}"),
                    None => format!("panic: {text}"),
                };
                if let Ok(links) = PANIC_ABORT_LINKS.lock() {
                    for (origin, s) in links.iter() {
                        let _ = wire::write_abort(&mut &*s, *origin, &reason);
                    }
                }
                prev(info);
            }));
        });
    }

    /// The mesh link to a peer, addressed by **world rank**.
    fn peer(&self, world: usize) -> RefMut<'_, Peer> {
        self.peers[world]
            .as_ref()
            .expect("no mesh link at this slot (own rank?)")
            .borrow_mut()
    }

    /// World rank of this group's hub (group rank 0).
    fn hub(&self) -> usize {
        self.members[0]
    }

    /// Replay the first failure to every subsequent collective: a poisoned
    /// endpoint must not half-participate in a broken group.
    fn check_failed(&self) -> Result<(), CommError> {
        match &*self.failed.borrow() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Stash the first error so [`Self::check_failed`] replays it.
    fn seal<T>(&self, result: Result<T, CommError>) -> Result<T, CommError> {
        if let Err(e) = &result {
            let mut failed = self.failed.borrow_mut();
            if failed.is_none() {
                *failed = Some(e.clone());
            }
        }
        result
    }

    /// Consult the fault plan at a collective hook point. An injected
    /// connection drop severs every mesh link (both directions), then lets
    /// the collective proceed so the damage is observed as a structured
    /// error on all ranks.
    fn fault_hook(&self, seq: u64) {
        if FaultPlan::from_env().at_collective(self.world_rank, seq) == Some(Injected::DropConn) {
            self.sever_all_links();
        }
    }

    /// Shut down every mesh stream in both directions (the `drop-conn`
    /// injection, also used directly by chaos tests).
    fn sever_all_links(&self) {
        for s in self.abort_streams.iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// This rank's recent-collective trace, when the verifier is on — so a
    /// failure diagnosis tells the whole per-rank story.
    fn trace(&self) -> String {
        if self.verify.enabled() {
            format!(
                "\n  last collectives on this rank (oldest first):\n{}",
                self.verify.trace_dump()
            )
        } else {
            String::new()
        }
    }

    /// Classify a wire failure as a [`CommError`] — diagnosis only, no
    /// abort broadcast and no endpoint poisoning. The collective path wraps
    /// this in [`Self::fail`]; the point-to-point lane uses it directly,
    /// because a control-plane failure (one dead leader link, an expired
    /// recv patience) must not tear down sub-groups that are still healthy.
    fn diagnose(&self, op: &'static str, seq: u64, e: io::Error) -> CommError {
        let rank = self.my_pos;
        let size = self.members.len();
        if let Some(abort) = e.get_ref().and_then(|i| i.downcast_ref::<AbortMsg>()) {
            return CommError::RemoteAbort {
                rank,
                size,
                op,
                seq,
                origin: abort.origin,
                reason: format!("{}{}", abort.reason, self.trace()),
            };
        }
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => CommError::DeadlineExceeded {
                rank,
                size,
                op,
                seq,
                after: comm_timeout().unwrap_or_else(rendezvous_timeout),
            },
            io::ErrorKind::InvalidData => CommError::Protocol {
                rank,
                size,
                op,
                seq,
                detail: format!("{e}{}", self.trace()),
            },
            _ => CommError::PeerDeath {
                rank,
                size,
                op,
                seq,
                detail: format!("{e} (a peer rank likely died){}", self.trace()),
            },
        }
    }

    /// Diagnose a wire failure as a [`CommError`], broadcasting an abort
    /// frame for *original* failures (a received abort is not re-broadcast,
    /// so abort storms terminate).
    fn fail(&self, op: &'static str, seq: u64, e: io::Error) -> CommError {
        let err = self.diagnose(op, seq, e);
        if !matches!(err, CommError::RemoteAbort { .. }) {
            self.broadcast_abort(&err);
        }
        err
    }

    /// Best-effort abort broadcast on the raw clones of this **group's**
    /// mesh links, so the group's survivors fail their next frame read with
    /// [`CommError::RemoteAbort`] instead of waiting out the deadline.
    /// Confining the blast radius to `self.members` is what lets disjoint
    /// sub-groups (e.g. concurrent serving requests after a `split`) keep
    /// running when a sibling group dies: other groups only observe the
    /// failure at their next collective that shares a rank with the failed
    /// group, within one deadline. On a root communicator the members are
    /// the whole mesh, so the behaviour there is unchanged. Write failures
    /// are ignored — the link may be the thing that broke.
    fn broadcast_abort(&self, err: &CommError) {
        let reason = err.to_string();
        for &m in &self.members {
            if let Some(s) = &self.abort_streams[m] {
                let _ = wire::write_abort(&mut &*s, self.world_rank, &reason);
            }
        }
    }

    /// Scope tag of this group's point-to-point lane: derived from the
    /// group scope with a reserved salt, so control frames interleaved with
    /// collective traffic on a shared mesh link can never be consumed by a
    /// collective (and vice versa) — a misordered control plane fails as a
    /// scope mismatch, loudly.
    fn p2p_scope(&self) -> u64 {
        wire::derive_scope(self.scope, P2P_LANE_SALT, 0)
    }

    /// Send one opaque byte frame point-to-point to group rank `dest`.
    ///
    /// This is the serving layer's control lane (schedules, pool uploads,
    /// per-request results), **not** a collective: the schedule verifier
    /// does not stamp it, [`CommStats`] does not meter it, and the sender
    /// and receiver must agree on frame order per link out-of-band (the
    /// serving protocol's round structure provides that). A send to our own
    /// rank queues the frame on an in-process loopback.
    ///
    /// Failures are diagnosed as [`CommError`] but — unlike collective
    /// failures — neither broadcast an abort frame nor poison the endpoint:
    /// one dead control link must not tear down healthy sub-groups. The
    /// error's `seq` is the endpoint's current collective schedule
    /// coordinate, for cross-referencing with verifier traces.
    pub fn try_send_bytes(&self, dest: usize, payload: &[u8]) -> Result<(), CommError> {
        assert!(dest < self.members.len(), "p2p dest {dest} out of range");
        if dest == self.my_pos {
            self.loopback.borrow_mut().push_back(payload.to_vec());
            return Ok(());
        }
        let seq = self.verify.next_seq();
        let world = self.members[dest];
        let mut p = self.peer(world);
        (|| -> io::Result<()> {
            wire::write_scope(&mut p.writer, self.p2p_scope())?;
            wire::write_bytes(&mut p.writer, payload)?;
            p.writer.flush()
        })()
        .map_err(|e| self.diagnose("send_bytes", seq, e))
    }

    /// Receive one opaque byte frame sent point-to-point by group rank
    /// `src` via [`SocketComm::try_send_bytes`].
    ///
    /// `patience` bounds the wait for the frame to *start* arriving —
    /// independent of the steady-state `FIRAL_COMM_TIMEOUT` deadline, which
    /// only governs reads once bytes flow. A server blocked on the next
    /// request and a compute rank idling between rounds legitimately wait
    /// far longer than any per-frame deadline; `None` waits indefinitely
    /// (safe on a live mesh: a dying peer closes the link, which lands here
    /// as EOF, or its abort frame arrives first). Abort frames written by a
    /// failing peer surface as [`CommError::RemoteAbort`] carrying the
    /// origin's diagnosis. Same non-collective, non-aborting contract as
    /// the send side.
    pub fn try_recv_bytes(
        &self,
        src: usize,
        patience: Option<Duration>,
    ) -> Result<Vec<u8>, CommError> {
        assert!(src < self.members.len(), "p2p src {src} out of range");
        let seq = self.verify.next_seq();
        if src == self.my_pos {
            return self.loopback.borrow_mut().pop_front().ok_or_else(|| {
                self.diagnose(
                    "recv_bytes",
                    seq,
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "p2p receive from own rank with an empty loopback queue",
                    ),
                )
            });
        }
        let world = self.members[src];
        self.await_frame(world, patience)
            .and_then(|()| {
                let mut p = self.peer(world);
                wire::expect_scope(&mut p.reader, self.p2p_scope())?;
                wire::read_bytes(&mut p.reader)
            })
            .map_err(|e| self.diagnose("recv_bytes", seq, e))
    }

    /// Wait (bounded by `patience`) until at least one byte from `world` is
    /// readable, polling in short slices so the shared socket deadline is
    /// restored to [`comm_timeout`] before any frame payload is read. EOF
    /// while waiting is reported immediately — a dead peer must not consume
    /// the whole patience budget.
    fn await_frame(&self, world: usize, patience: Option<Duration>) -> io::Result<()> {
        const POLL_SLICE: Duration = Duration::from_millis(25);
        let start = Instant::now();
        loop {
            let p = self.peer(world);
            let slice = match patience {
                Some(total) => {
                    let left = total.saturating_sub(start.elapsed());
                    if left.is_zero() {
                        let _ = p.set_deadline(comm_timeout());
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("no p2p frame arrived within the {total:?} patience"),
                        ));
                    }
                    left.min(POLL_SLICE)
                }
                None => POLL_SLICE,
            };
            p.set_deadline(Some(slice.max(Duration::from_millis(1))))?;
            let mut p = p;
            let waited = p.reader.fill_buf().map(|buf| !buf.is_empty());
            let restore = p.set_deadline(comm_timeout());
            match waited {
                Ok(true) => return restore,
                Ok(false) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the link while a p2p frame was awaited",
                    ))
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
                {
                    // Keep polling until the patience budget expires.
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Debug-mode schedule check run at the top of every collective: stamp
    /// the fingerprint and exchange it hub-style over the group's
    /// scope-tagged links. The exchange always flows member → hub → member
    /// regardless of the collective's own data flow, so even kind
    /// mismatches whose data phases would deadlock (one rank in `bcast`,
    /// its peer in `allreduce`) abort with a diagnostic instead. No-op
    /// unless verification is enabled ([`crate::verify::verify_enabled`]),
    /// though the sequence number advances regardless.
    fn verify_collective(
        &self,
        kind: CollectiveKind,
        dtype: Dtype,
        param: u32,
        count: u64,
        op: &'static str,
        seq: u64,
    ) -> Result<(), CommError> {
        let Some(own) = self.verify.stamp(kind, dtype, param, count) else {
            return Ok(());
        };
        if self.members.len() == 1 {
            return Ok(());
        }
        self.verify_exchange(&own)
            .map_err(|e| self.fail(op, seq, e))
    }

    fn verify_exchange(&self, own: &Fingerprint) -> io::Result<()> {
        let mut frame = [0u8; Fingerprint::WIRE_BYTES];
        if self.my_pos == 0 {
            for (pos, &m) in self.members.iter().enumerate().skip(1) {
                let mut p = self.peer(m);
                wire::expect_scope(&mut p.reader, self.scope)?;
                p.reader.read_exact(&mut frame)?;
                let theirs = Fingerprint::decode(&frame);
                match theirs {
                    Some(fp) if own.matches(&fp) => {}
                    _ => self.verify.mismatch_panic(
                        self.my_pos,
                        self.members.len(),
                        *own,
                        pos,
                        theirs,
                    ),
                }
            }
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::write_scope(&mut p.writer, self.scope)?;
                p.writer.write_all(&own.encode())?;
                p.writer.flush()?;
            }
        } else {
            {
                let mut p = self.peer(self.hub());
                wire::write_scope(&mut p.writer, self.scope)?;
                p.writer.write_all(&own.encode())?;
                p.writer.flush()?;
            }
            let mut p = self.peer(self.hub());
            wire::expect_scope(&mut p.reader, self.scope)?;
            p.reader.read_exact(&mut frame)?;
            let theirs = Fingerprint::decode(&frame);
            match theirs {
                Some(fp) if own.matches(&fp) => {}
                _ => self
                    .verify
                    .mismatch_panic(self.my_pos, self.members.len(), *own, 0, theirs),
            }
        }
        Ok(())
    }

    fn hub_barrier(&self) -> io::Result<()> {
        if self.members.len() == 1 {
            return Ok(());
        }
        if self.my_pos == 0 {
            for &m in &self.members[1..] {
                wire::expect_scope(&mut self.peer(m).reader, self.scope)?;
            }
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::write_scope(&mut p.writer, self.scope)?;
                p.writer.flush()?;
            }
        } else {
            let mut p = self.peer(self.hub());
            wire::write_scope(&mut p.writer, self.scope)?;
            p.writer.flush()?;
            wire::expect_scope(&mut p.reader, self.scope)?;
        }
        Ok(())
    }

    /// Gather to the group hub, reduce in group-rank order, return the
    /// result to all — bitwise identical to [`crate::ThreadComm`]'s
    /// deposit/combine (and, for sub-groups, to a root group of the same
    /// size). Every frame is scope-tagged.
    fn hub_allreduce(&self, buf: &mut [f64], op: ReduceOp) -> io::Result<()> {
        if self.my_pos == 0 {
            let mut contrib = vec![0.0; buf.len()];
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::expect_scope(&mut p.reader, self.scope)?;
                wire::read_f64s_into(&mut p.reader, &mut contrib)?;
                for (b, v) in buf.iter_mut().zip(contrib.iter()) {
                    *b = op.combine(*b, *v);
                }
            }
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::write_scope(&mut p.writer, self.scope)?;
                wire::write_f64s(&mut p.writer, buf)?;
                p.writer.flush()?;
            }
        } else {
            let mut p = self.peer(self.hub());
            wire::write_scope(&mut p.writer, self.scope)?;
            wire::write_f64s(&mut p.writer, buf)?;
            p.writer.flush()?;
            wire::expect_scope(&mut p.reader, self.scope)?;
            wire::read_f64s_into(&mut p.reader, buf)?;
        }
        Ok(())
    }

    fn hub_bcast(&self, buf: &mut [f64], root: usize) -> io::Result<()> {
        let root_world = self.members[root];
        if self.my_pos == root {
            for &m in &self.members {
                if m == root_world {
                    continue;
                }
                let mut p = self.peer(m);
                wire::write_scope(&mut p.writer, self.scope)?;
                wire::write_f64s(&mut p.writer, buf)?;
                p.writer.flush()?;
            }
        } else {
            let mut p = self.peer(root_world);
            wire::expect_scope(&mut p.reader, self.scope)?;
            wire::read_f64s_into(&mut p.reader, buf)?;
        }
        Ok(())
    }

    fn hub_allgatherv(&self, local: &[f64]) -> io::Result<Vec<f64>> {
        if self.my_pos == 0 {
            let mut out = local.to_vec();
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::expect_scope(&mut p.reader, self.scope)?;
                out.extend(wire::read_f64s(&mut p.reader)?);
            }
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::write_scope(&mut p.writer, self.scope)?;
                wire::write_f64s(&mut p.writer, &out)?;
                p.writer.flush()?;
            }
            Ok(out)
        } else {
            let mut p = self.peer(self.hub());
            wire::write_scope(&mut p.writer, self.scope)?;
            wire::write_f64s(&mut p.writer, local)?;
            p.writer.flush()?;
            wire::expect_scope(&mut p.reader, self.scope)?;
            wire::read_f64s(&mut p.reader)
        }
    }

    fn hub_maxloc(&self, own: MaxLoc) -> io::Result<MaxLoc> {
        if self.my_pos == 0 {
            let mut contribs = Vec::with_capacity(self.members.len());
            contribs.push(own);
            let mut frame = [0u8; MaxLoc::WIRE_BYTES];
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::expect_scope(&mut p.reader, self.scope)?;
                p.reader.read_exact(&mut frame)?;
                contribs.push(MaxLoc::decode(&frame));
            }
            let best = MaxLoc::reduce_rank_ordered(contribs);
            for &m in &self.members[1..] {
                let mut p = self.peer(m);
                wire::write_scope(&mut p.writer, self.scope)?;
                p.writer.write_all(&best.encode())?;
                p.writer.flush()?;
            }
            Ok(best)
        } else {
            let mut p = self.peer(self.hub());
            wire::write_scope(&mut p.writer, self.scope)?;
            p.writer.write_all(&own.encode())?;
            p.writer.flush()?;
            wire::expect_scope(&mut p.reader, self.scope)?;
            let mut frame = [0u8; MaxLoc::WIRE_BYTES];
            p.reader.read_exact(&mut frame)?;
            Ok(MaxLoc::decode(&frame))
        }
    }
}

impl Communicator for SocketComm {
    fn rank(&self) -> usize {
        self.my_pos
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn try_barrier(&self) -> Result<(), CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(CollectiveKind::Barrier, Dtype::None, 0, 0, "barrier", seq)?;
            self.hub_barrier().map_err(|e| self.fail("barrier", seq, e))
        })();
        self.seal(result)
    }

    fn try_allreduce_f64(&self, buf: &mut [f64], op: ReduceOp) -> Result<(), CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::allreduce(op),
                Dtype::F64,
                0,
                buf.len() as u64,
                "allreduce_f64",
                seq,
            )?;
            let t0 = Instant::now();
            if self.size() > 1 {
                self.hub_allreduce(buf, op)
                    .map_err(|e| self.fail("allreduce_f64", seq, e))?;
            }
            let mut st = self.stats.borrow_mut();
            st.allreduce_calls += 1;
            st.allreduce_bytes += (buf.len() * 8) as u64;
            st.time += t0.elapsed();
            Ok(())
        })();
        self.seal(result)
    }

    fn try_bcast_f64(&self, buf: &mut [f64], root: usize) -> Result<(), CommError> {
        assert!(root < self.size(), "bcast root out of range");
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::Bcast,
                Dtype::F64,
                root as u32,
                buf.len() as u64,
                "bcast_f64",
                seq,
            )?;
            let t0 = Instant::now();
            if self.size() > 1 {
                self.hub_bcast(buf, root)
                    .map_err(|e| self.fail("bcast_f64", seq, e))?;
            }
            let mut st = self.stats.borrow_mut();
            st.bcast_calls += 1;
            st.bcast_bytes += (buf.len() * 8) as u64;
            st.time += t0.elapsed();
            Ok(())
        })();
        self.seal(result)
    }

    fn try_allgatherv_f64(&self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::Allgatherv,
                Dtype::F64,
                0,
                local.len() as u64,
                "allgatherv_f64",
                seq,
            )?;
            let t0 = Instant::now();
            let out = if self.size() > 1 {
                self.hub_allgatherv(local)
                    .map_err(|e| self.fail("allgatherv_f64", seq, e))?
            } else {
                local.to_vec()
            };
            let mut st = self.stats.borrow_mut();
            st.allgather_calls += 1;
            st.allgather_bytes += (local.len() * 8) as u64;
            st.time += t0.elapsed();
            Ok(out)
        })();
        self.seal(result)
    }

    fn try_allreduce_maxloc(&self, value: f64, payload: u64) -> Result<(f64, u64), CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            self.verify_collective(
                CollectiveKind::Maxloc,
                Dtype::MaxLocRec,
                0,
                1,
                "allreduce_maxloc",
                seq,
            )?;
            let t0 = Instant::now();
            let own = MaxLoc { value, payload };
            let best = if self.size() > 1 {
                self.hub_maxloc(own)
                    .map_err(|e| self.fail("allreduce_maxloc", seq, e))?
            } else {
                own
            };
            let mut st = self.stats.borrow_mut();
            st.allreduce_calls += 1;
            st.allreduce_bytes += MaxLoc::WIRE_BYTES as u64;
            st.time += t0.elapsed();
            Ok((best.value, best.payload))
        })();
        self.seal(result)
    }

    fn try_split(&self, color: usize, key: usize) -> Result<Box<dyn Communicator>, CommError> {
        self.check_failed()?;
        let seq = self.verify.next_seq();
        self.fault_hook(seq);
        let result = (|| {
            // Fingerprint the split itself before the membership exchange:
            // color/key are legitimately rank-dependent, but *that* every
            // rank is splitting here is part of the schedule contract.
            self.verify_collective(CollectiveKind::Split, Dtype::None, 0, 0, "split", seq)?;
            // Membership over the parent collectives (scope-tagged with the
            // *parent's* scope — split traffic belongs to the parent group).
            let (positions, my_pos) = comm_catch(|| split_membership(self, color, key))?;
            let members: Vec<usize> = positions.iter().map(|&p| self.members[p]).collect();
            let sseq = self.split_seq.get();
            self.split_seq.set(sseq + 1);
            let scope = wire::derive_scope(self.scope, sseq, color as u64);
            let sub = SocketComm {
                world_rank: self.world_rank,
                peers: Rc::clone(&self.peers),
                abort_streams: Rc::clone(&self.abort_streams),
                members,
                my_pos,
                scope,
                split_seq: Cell::new(0),
                stats: RefCell::new(CommStats::default()),
                failed: RefCell::new(None),
                verify: Verifier::new(scope),
                loopback: RefCell::new(VecDeque::new()),
            };
            // First use of the new scope is a barrier: a wiring or ordering
            // mistake fails loudly at split time, not at the first
            // collective.
            sub.hub_barrier()
                .map_err(|e| sub.fail("split", sub.verify.next_seq(), e))?;
            Ok(Box::new(sub) as Box<dyn Communicator>)
        })();
        self.seal(result)
    }

    fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

/// Reserve a free localhost rendezvous address by binding an ephemeral
/// port and releasing it. The launcher hands the address to all ranks and
/// rank 0 re-binds it; the window between release and re-bind is the
/// standard (tiny) ephemeral-port race.
pub fn free_rendezvous_addr() -> io::Result<String> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    Ok(listener.local_addr()?.to_string())
}

/// One rank's exit in a [`fork_self_report`] launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankExit {
    /// The rank (= child index).
    pub rank: usize,
    /// Raw exit code; signal deaths surface as `-1`.
    pub code: i32,
    /// Whether the supervisor killed this rank after the failure grace
    /// period expired (the code then reflects the kill, not its own work).
    pub reaped: bool,
}

/// Grace period survivors get to exit with their own diagnosis after the
/// first rank fails, before the supervisor kills the stragglers. Scaled
/// from the communication deadline when one is configured, so a
/// cooperative abort has time to propagate; generous otherwise.
fn failure_grace() -> Duration {
    comm_timeout()
        .map(|t| t * 4)
        .unwrap_or(Duration::from_secs(10))
        .max(Duration::from_secs(1))
}

/// Parent side of an SPMD process launch: re-execute the current binary
/// `size` times with identical arguments and the [`ENV_RANK`]/[`ENV_SIZE`]/
/// [`ENV_ADDR`] coordinates set, inheriting stdio, and wait for all ranks.
///
/// Returns the first non-zero child exit code (0 when every rank
/// succeeded), printing a per-rank exit report to stderr on failure. See
/// [`fork_self_report`] for the supervision contract.
pub fn fork_self(size: usize) -> io::Result<i32> {
    let report = fork_self_report(size)?;
    let first = report.iter().map(|r| r.code).find(|&c| c != 0).unwrap_or(0);
    if first != 0 {
        eprintln!("spmd: per-rank exit report:");
        for r in &report {
            let what = match r.code {
                0 => "ok".to_string(),
                KILL_EXIT_CODE => format!("exit {KILL_EXIT_CODE} (injected kill)"),
                c => format!("exit {c}"),
            };
            let how = if r.reaped {
                " (killed by supervisor after the grace period)"
            } else {
                ""
            };
            eprintln!("spmd:   rank {}: {what}{how}", r.rank);
        }
    }
    Ok(first)
}

/// Supervised SPMD launch returning the full per-rank exit table.
///
/// When a rank fails, the survivors get a grace period to observe the
/// failure cooperatively — via an abort frame or the communication
/// deadline — and exit with their own structured diagnosis. Only ranks
/// still running after the grace period are killed, and every child is
/// reaped before this returns, so no orphan outlives the launcher either
/// way.
pub fn fork_self_report(size: usize) -> io::Result<Vec<RankExit>> {
    assert!(size > 0, "SPMD launch needs at least one rank");
    let exe = std::env::current_exe()?;
    let args: Vec<std::ffi::OsString> = std::env::args_os().skip(1).collect();
    let addr = free_rendezvous_addr()?;
    let mut children = Vec::with_capacity(size);
    for rank in 0..size {
        children.push(
            Command::new(&exe)
                .args(&args)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, size.to_string())
                .env(ENV_ADDR, &addr)
                .spawn()?,
        );
    }
    supervise(&mut children)
}

fn supervise(children: &mut [Child]) -> io::Result<Vec<RankExit>> {
    let size = children.len();
    let mut exits: Vec<Option<RankExit>> = vec![None; size];
    let mut first_failure: Option<Instant> = None;
    loop {
        let mut all_done = true;
        for (rank, child) in children.iter_mut().enumerate() {
            if exits[rank].is_some() {
                continue;
            }
            match child.try_wait()? {
                Some(status) => {
                    // Signal deaths surface as a generic failure code.
                    let code = status.code().unwrap_or(-1);
                    exits[rank] = Some(RankExit {
                        rank,
                        code,
                        reaped: false,
                    });
                    if code != 0 && first_failure.is_none() {
                        first_failure = Some(Instant::now());
                    }
                }
                None => all_done = false,
            }
        }
        if all_done {
            break;
        }
        if let Some(t0) = first_failure {
            if t0.elapsed() > failure_grace() {
                for (rank, child) in children.iter_mut().enumerate() {
                    if exits[rank].is_none() {
                        let _ = child.kill();
                        let code = child.wait().map(|s| s.code().unwrap_or(-1)).unwrap_or(-1);
                        exits[rank] = Some(RankExit {
                            rank,
                            code,
                            reaped: true,
                        });
                    }
                }
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    Ok(exits
        .into_iter()
        .map(|e| e.expect("every rank reported"))
        .collect())
}

/// Run an SPMD closure on `p` ranks held by OS threads whose endpoints
/// communicate over real localhost TCP — the drop-in socket-backend
/// counterpart of [`crate::launch`], used by tests and the scaling
/// harnesses. Results are collected in rank order.
///
/// ```
/// let sums = firal_comm::socket_launch(3, |comm| {
///     use firal_comm::{Communicator, ReduceOp};
///     let mut x = vec![(comm.rank() + 1) as f64];
///     comm.allreduce_f64(&mut x, ReduceOp::Sum);
///     x[0]
/// });
/// assert_eq!(sums, vec![6.0, 6.0, 6.0]);
/// ```
pub fn socket_launch<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&SocketComm) -> R + Sync,
{
    assert!(p > 0, "socket_launch needs at least one rank");
    // Bind the rendezvous listener up front (no release/re-bind race) and
    // hand it to rank 0 directly.
    // lint: allow(comm-unwrap) bootstrap path: no mesh exists yet, so a bind failure is a launcher error, not a survivable collective failure
    let listener = TcpListener::bind("127.0.0.1:0").expect("no free localhost port");
    // lint: allow(comm-unwrap) bootstrap path: the listener was just bound, so a missing local address is a platform bug worth dying on
    let addr = listener
        .local_addr()
        .expect("rendezvous address unavailable")
        .to_string();
    let mut rank0_listener = Some(listener);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let addr = addr.clone();
                let pre_bound = if rank == 0 {
                    rank0_listener.take()
                } else {
                    None
                };
                let f = &f;
                scope.spawn(move || {
                    // lint: allow(comm-unwrap) bootstrap path: rendezvous failure in the in-process harness is a test-setup error with nobody left to report to
                    let comm = SocketComm::connect_inner(rank, p, &addr, pre_bound)
                        .expect("socket rendezvous failed");
                    f(&comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sum_all_ranks_agree() {
        for p in [1usize, 2, 4] {
            let results = socket_launch(p, |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0, 10.0 * (comm.rank() as f64 + 1.0)];
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
                buf
            });
            let expected0: f64 = (1..=p).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r[0], expected0);
                assert_eq!(r[1], 10.0 * expected0);
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let results = socket_launch(4, |comm| {
            let mut mx = vec![comm.rank() as f64];
            comm.allreduce_f64(&mut mx, ReduceOp::Max);
            let mut mn = vec![comm.rank() as f64];
            comm.allreduce_f64(&mut mn, ReduceOp::Min);
            (mx[0], mn[0])
        });
        for (mx, mn) in results {
            assert_eq!(mx, 3.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..3 {
            let results = socket_launch(3, move |comm| {
                let mut buf = if comm.rank() == root {
                    vec![42.0, 7.0]
                } else {
                    vec![0.0, 0.0]
                };
                comm.bcast_f64(&mut buf, root);
                buf
            });
            for r in results {
                assert_eq!(r, vec![42.0, 7.0]);
            }
        }
    }

    #[test]
    fn allgatherv_concatenates_variable_lengths_in_rank_order() {
        let results = socket_launch(3, |comm| {
            // Rank r contributes r+1 copies of r — deliberately unequal.
            let local = vec![comm.rank() as f64; comm.rank() + 1];
            comm.allgatherv_f64(&local)
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn allgatherv_handles_empty_contributions() {
        let results = socket_launch(3, |comm| {
            let local = if comm.rank() == 1 {
                vec![]
            } else {
                vec![comm.rank() as f64]
            };
            comm.allgatherv_f64(&local)
        });
        for r in results {
            assert_eq!(r, vec![0.0, 2.0]);
        }
    }

    #[test]
    fn maxloc_finds_global_argmax_with_payload() {
        let results = socket_launch(4, |comm| {
            let value = if comm.rank() == 2 {
                100.0
            } else {
                comm.rank() as f64
            };
            comm.allreduce_maxloc(value, 1000 + comm.rank() as u64)
        });
        for (v, p) in results {
            assert_eq!(v, 100.0);
            assert_eq!(p, 1002);
        }
    }

    #[test]
    fn maxloc_tie_prefers_lowest_rank() {
        let results = socket_launch(3, |comm| comm.allreduce_maxloc(1.0, comm.rank() as u64));
        for (_, p) in results {
            assert_eq!(p, 0);
        }
    }

    #[test]
    fn maxloc_all_neg_infinity_propagates_rank0_sentinel() {
        let results = socket_launch(3, |comm| comm.allreduce_maxloc(f64::NEG_INFINITY, u64::MAX));
        for (v, p) in results {
            assert_eq!(v, f64::NEG_INFINITY);
            assert_eq!(p, u64::MAX);
        }
    }

    #[test]
    fn maxloc_preserves_full_payload_bits() {
        let big = u64::MAX - 12345;
        let results = socket_launch(2, move |comm| {
            comm.allreduce_maxloc(comm.rank() as f64, big)
        });
        for (_, p) in results {
            assert_eq!(p, big);
        }
    }

    #[test]
    fn repeated_mixed_collectives_compose() {
        let results = socket_launch(3, |comm| {
            let mut acc = 0.0;
            for round in 0..10 {
                let mut buf = vec![(comm.rank() * round) as f64];
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
                let gathered = comm.allgatherv_f64(&buf[..1]);
                let mut top = vec![gathered.iter().sum::<f64>()];
                comm.bcast_f64(&mut top, round % 3);
                comm.barrier();
                acc += top[0];
            }
            acc
        });
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn stats_track_real_wire_time() {
        let results = socket_launch(2, |comm| {
            let mut buf = vec![0.5; 4096];
            for _ in 0..8 {
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            }
            comm.bcast_f64(&mut buf, 0);
            let _ = comm.allgatherv_f64(&buf[..16]);
            comm.stats()
        });
        for s in results {
            assert_eq!(s.allreduce_calls, 8);
            assert_eq!(s.allreduce_bytes, 8 * 4096 * 8);
            assert_eq!(s.bcast_calls, 1);
            assert_eq!(s.allgather_calls, 1);
            // Real socket round-trips: measurable, nonzero wire time.
            assert!(s.time > Duration::ZERO, "expected nonzero wire time");
        }
    }

    #[test]
    fn deterministic_reduction_matches_thread_backend_bitwise() {
        // Same contributions through both backends must reduce to the same
        // bits: they share the rank-ordered reduction contract.
        let contribution = |rank: usize| vec![[1.0e16, 1.0, -1.0e16][rank % 3]];
        let socket = socket_launch(4, |comm| {
            let mut buf = contribution(comm.rank());
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            buf[0].to_bits()
        });
        let thread = crate::launch(4, |comm| {
            let mut buf = contribution(comm.rank());
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            buf[0].to_bits()
        });
        assert!(socket.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(socket, thread);
    }

    #[test]
    fn split_disjoint_colors_form_independent_groups() {
        // 4 ranks → pairs {0, 2} and {1, 3}; each pair's collectives run
        // over the shared mesh links with their own scope tags.
        let results = socket_launch(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank());
            let mut buf = vec![comm.rank() as f64];
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            let gathered = sub.allgatherv_f64(&[10.0 + comm.rank() as f64]);
            (sub.rank(), sub.size(), buf[0], gathered)
        });
        for (rank, (sub_rank, sub_size, sum, gathered)) in results.into_iter().enumerate() {
            assert_eq!(sub_size, 2);
            assert_eq!(sub_rank, rank / 2);
            let (a, b) = (rank % 2, rank % 2 + 2);
            assert_eq!(sum, (a + b) as f64);
            assert_eq!(gathered, vec![10.0 + a as f64, 10.0 + b as f64]);
        }
    }

    #[test]
    fn split_singleton_groups_short_circuit() {
        let results = socket_launch(3, |comm| {
            let sub = comm.split(comm.rank(), 0);
            let mut buf = vec![5.0];
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            (sub.rank(), sub.size(), buf[0], sub.allreduce_maxloc(2.0, 7))
        });
        for (sub_rank, sub_size, v, maxloc) in results {
            assert_eq!((sub_rank, sub_size), (0, 1));
            assert_eq!(v, 5.0);
            assert_eq!(maxloc, (2.0, 7));
        }
    }

    #[test]
    fn split_key_reorders_sub_group_ranks() {
        // Descending keys reverse the group: new rank 0 = old rank 2, so a
        // sub-group bcast from root 0 must deliver old rank 2's buffer.
        let results = socket_launch(3, |comm| {
            let sub = comm.split(0, 100 - comm.rank());
            let mut buf = vec![comm.rank() as f64];
            sub.bcast_f64(&mut buf, 0);
            (sub.rank(), buf[0])
        });
        for (rank, (sub_rank, v)) in results.into_iter().enumerate() {
            assert_eq!(sub_rank, 2 - rank);
            assert_eq!(v, 2.0);
        }
    }

    #[test]
    fn split_nested_sub_groups_and_maxloc() {
        // Split 4 → pairs, then each pair → singletons; exercise MAXLOC at
        // every level interleaved with parent collectives, so frames of
        // three scope generations share the mesh without cross-talk.
        let results = socket_launch(4, |comm| {
            let pair = comm.split(comm.rank() / 2, comm.rank());
            let single = pair.split(pair.rank(), 0);
            let (pv, pp) = pair.allreduce_maxloc(comm.rank() as f64, comm.rank() as u64);
            let mut world = vec![1.0];
            comm.allreduce_f64(&mut world, ReduceOp::Sum);
            let (sv, sp) = single.allreduce_maxloc(-1.0, 99);
            (pv, pp, world[0], sv, sp)
        });
        for (rank, (pv, pp, world, sv, sp)) in results.into_iter().enumerate() {
            // Pair max = the higher rank of the pair.
            let hi = (rank / 2) * 2 + 1;
            assert_eq!((pv, pp), (hi as f64, hi as u64));
            assert_eq!(world, 4.0);
            assert_eq!((sv, sp), (-1.0, 99));
        }
    }

    #[test]
    fn split_sub_group_reduction_matches_root_group_bitwise() {
        // The determinism contract survives the split: a 2-rank sub-group
        // reduces the same bits as a 2-rank root group (and as ThreadComm).
        let contribution = |new_rank: usize| vec![[1.0e16, 1.0][new_rank]];
        let root = socket_launch(2, |comm| {
            let mut buf = contribution(comm.rank());
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            buf[0].to_bits()
        });
        let split = socket_launch(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank());
            let mut buf = contribution(sub.rank());
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            buf[0].to_bits()
        });
        let thread = crate::launch(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank());
            let mut buf = contribution(sub.rank());
            sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            buf[0].to_bits()
        });
        for &bits in &split {
            assert_eq!(bits, root[0]);
        }
        assert_eq!(split, thread);
    }

    #[test]
    fn split_sub_comm_tracks_its_own_wire_stats() {
        let results = socket_launch(2, |comm| {
            let sub = comm.split(0, comm.rank());
            let mut buf = vec![0.5; 256];
            for _ in 0..4 {
                sub.allreduce_f64(&mut buf, ReduceOp::Sum);
            }
            (sub.stats(), comm.stats())
        });
        for (sub_stats, parent_stats) in results {
            assert_eq!(sub_stats.allreduce_calls, 4);
            assert_eq!(sub_stats.allreduce_bytes, 4 * 256 * 8);
            assert!(sub_stats.time > Duration::ZERO, "sub-group wire time");
            // Parent saw only the split's membership allgather.
            assert_eq!(parent_stats.allreduce_calls, 0);
            assert_eq!(parent_stats.allgather_calls, 1);
        }
    }

    #[test]
    fn single_rank_group_needs_no_sockets() {
        let comm = SocketComm::connect(0, 1, "127.0.0.1:1").expect("p=1 must not dial");
        let mut buf = vec![3.0];
        comm.allreduce_f64(&mut buf, ReduceOp::Sum);
        assert_eq!(buf, vec![3.0]);
        assert_eq!(comm.allgatherv_f64(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(comm.allreduce_maxloc(5.0, 9), (5.0, 9));
        assert_eq!(comm.stats().allreduce_calls, 2);
    }

    #[test]
    fn from_env_is_none_outside_spmd() {
        // The test harness never sets the rank var globally.
        assert!(std::env::var(ENV_RANK).is_err());
        assert!(SocketComm::from_env().is_none());
    }

    #[test]
    fn collective_seq_advances_per_schedule_point() {
        let comm = SocketComm::connect(0, 1, "127.0.0.1:1").expect("p=1 must not dial");
        assert_eq!(comm.collective_seq(), 0);
        let mut buf = vec![1.0];
        comm.allreduce_f64(&mut buf, ReduceOp::Sum);
        assert_eq!(comm.collective_seq(), 1);
        comm.barrier();
        assert_eq!(comm.collective_seq(), 2);
    }

    #[test]
    fn stray_connection_with_bad_magic_is_dropped() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("port");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::scope(|s| {
            let a0 = addr.clone();
            let h0 = s.spawn(move || {
                let comm = SocketComm::connect_inner(0, 2, &a0, Some(listener))
                    .expect("rank 0 rendezvous must survive the stray");
                let mut buf = vec![1.0];
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
                buf[0]
            });
            // A stray client checks in with a bad magic word and hangs up;
            // rank 0 must drop it and still admit the real rank 1.
            let stray = TcpStream::connect(&addr).expect("stray connect");
            (&stray)
                .write_all(&0xDEAD_BEEF_DEAD_BEEFu64.to_le_bytes())
                .expect("stray write");
            drop(stray);
            let a1 = addr.clone();
            let h1 = s.spawn(move || {
                let comm = SocketComm::connect(1, 2, &a1).expect("rank 1 rendezvous");
                let mut buf = vec![2.0];
                comm.allreduce_f64(&mut buf, ReduceOp::Sum);
                buf[0]
            });
            assert_eq!(h0.join().expect("rank 0"), 3.0);
            assert_eq!(h1.join().expect("rank 1"), 3.0);
        });
    }

    #[test]
    fn dead_peer_mid_collective_yields_structured_errors_not_deadlock() {
        let results = socket_launch(3, |comm| {
            if comm.rank() == 1 {
                // Die silently: drop the endpoint without participating.
                return None;
            }
            let mut buf = vec![1.0];
            let err = comm
                .try_allreduce_f64(&mut buf, ReduceOp::Sum)
                .expect_err("a peer died — the collective cannot complete");
            let replay = comm
                .try_barrier()
                .expect_err("a failed endpoint stays poisoned");
            Some((err, replay))
        });
        for (rank, r) in results.into_iter().enumerate() {
            if rank == 1 {
                continue;
            }
            let (err, replay) = r.expect("survivor result");
            assert_eq!(err, replay, "poisoned endpoint replays the first failure");
            match &err {
                CommError::PeerDeath { .. } | CommError::RemoteAbort { .. } => {}
                other => panic!("unexpected error class: {other}"),
            }
            assert_eq!(err.op(), "allreduce_f64");
        }
    }

    #[test]
    fn p2p_byte_frames_roundtrip_and_interleave_with_collectives() {
        let results = socket_launch(3, |comm| {
            // Rank 0 sends a distinct frame to everyone (itself included,
            // via the loopback), a collective runs on the shared links, and
            // rank 0 then collects a reply from each rank — the serving
            // round shape.
            if comm.rank() == 0 {
                for dest in 0..3 {
                    comm.try_send_bytes(dest, format!("task-{dest}").as_bytes())
                        .expect("send");
                }
            }
            let task = comm
                .try_recv_bytes(0, Some(Duration::from_secs(5)))
                .expect("recv task");
            let mut buf = vec![1.0];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum);
            comm.try_send_bytes(0, format!("done:{}", comm.rank()).as_bytes())
                .expect("reply");
            let replies = if comm.rank() == 0 {
                (0..3)
                    .map(|src| {
                        let b = comm
                            .try_recv_bytes(src, Some(Duration::from_secs(5)))
                            .expect("collect");
                        String::from_utf8(b).expect("utf8")
                    })
                    .collect()
            } else {
                Vec::new()
            };
            (String::from_utf8(task).expect("utf8"), buf[0], replies)
        });
        for (rank, (task, sum, replies)) in results.into_iter().enumerate() {
            assert_eq!(task, format!("task-{rank}"));
            assert_eq!(sum, 3.0);
            if rank == 0 {
                assert_eq!(replies, vec!["done:0", "done:1", "done:2"]);
            }
        }
    }

    #[test]
    fn p2p_is_invisible_to_stats_and_the_collective_schedule() {
        let results = socket_launch(2, |comm| {
            let seq0 = comm.collective_seq();
            if comm.rank() == 0 {
                comm.try_send_bytes(1, b"ping").expect("send");
            } else {
                let got = comm
                    .try_recv_bytes(0, Some(Duration::from_secs(5)))
                    .expect("recv");
                assert_eq!(got, b"ping");
            }
            (comm.collective_seq() - seq0, comm.stats())
        });
        for (dseq, stats) in results {
            assert_eq!(dseq, 0, "p2p must not advance the collective schedule");
            assert_eq!(stats.total_calls(), 0, "p2p must not be metered");
        }
    }

    #[test]
    fn p2p_recv_patience_expires_as_a_structured_deadline_error() {
        let results = socket_launch(2, |comm| {
            if comm.rank() == 0 {
                // Never send: rank 1's patience must expire on its own.
                comm.barrier();
                return None;
            }
            let err = comm
                .try_recv_bytes(0, Some(Duration::from_millis(120)))
                .expect_err("nothing was sent");
            // The endpoint is NOT poisoned: collectives still work after a
            // control-plane timeout.
            comm.barrier();
            Some(err)
        });
        let err = results[1].clone().expect("rank 1 error");
        assert!(
            matches!(err, CommError::DeadlineExceeded { .. }),
            "unexpected class: {err}"
        );
        assert_eq!(err.op(), "recv_bytes");
    }

    #[test]
    fn p2p_recv_from_dead_peer_reports_eof_not_patience_exhaustion() {
        let t0 = Instant::now();
        let results = socket_launch(2, |comm| {
            if comm.rank() == 0 {
                return None; // Drop the endpoint: links close.
            }
            Some(comm.try_recv_bytes(0, Some(Duration::from_secs(30))))
        });
        let err = results[1].clone().expect("rank 1 ran").expect_err("EOF");
        assert!(
            matches!(err, CommError::PeerDeath { .. }),
            "unexpected class: {err}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "EOF must not burn the whole patience budget"
        );
    }

    #[test]
    fn poll_accept_is_nonblocking_and_accepts_when_a_client_arrives() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        assert!(poll_accept(&listener).expect("poll").is_none());
        let _client = TcpStream::connect(addr).expect("connect");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(stream) = poll_accept(&listener).expect("poll") {
                assert!(stream.peer_addr().is_ok());
                break;
            }
            assert!(
                Instant::now() < deadline,
                "accept never observed the client"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn severed_links_surface_as_structured_errors_on_all_ranks() {
        // Rank 1 severs every one of its links before the collective (the
        // `drop-conn` injection path, exercised directly). Rank 0 observes
        // the dead link and broadcasts an abort; rank 2's own link to the
        // hub is healthy, so only the abort (or the hub failing in turn)
        // can unblock it.
        let results = socket_launch(3, |comm| {
            if comm.rank() == 1 {
                comm.sever_all_links();
            }
            let mut buf = vec![1.0];
            comm.try_allreduce_f64(&mut buf, ReduceOp::Sum).err()
        });
        for (rank, err) in results.into_iter().enumerate() {
            let err = err.unwrap_or_else(|| panic!("rank {rank} must observe the failure"));
            match &err {
                CommError::PeerDeath { .. } | CommError::RemoteAbort { .. } => {}
                other => panic!("rank {rank}: unexpected error class: {other}"),
            }
        }
    }
}
