//! The selection server: a warm rank mesh held open behind a TCP accept
//! loop, serving concurrent requests on disjoint sub-groups.
//!
//! # Round protocol
//!
//! The mesh is driven in **batch-synchronous rounds**. Between rounds every
//! rank is idle; rank 0 (the *hub*) additionally owns the client listener:
//! it accepts connections ([`firal_comm::poll_accept`]), pumps nonblocking
//! reads through the pure incremental parser
//! ([`crate::proto::try_parse_frame`]), validates requests against the
//! strategy registry and the uploaded pools, and queues the survivors.
//! When enough work is queued ([`ServeConfig::min_batch`], or the oldest
//! request has waited [`ServeConfig::batch_wait`]), the hub plans a round
//! ([`crate::sched::plan_round`]), ships one **round frame** to every rank
//! over the root communicator's point-to-point lane, and everyone — hub
//! included — runs the same participant code: install newly shipped pools,
//! `split` the mesh by assignment color, and run the assigned request on
//! the sub-communicator via [`firal_core::dispatch_select`]. Per-link FIFO
//! order makes the interleaving safe: the round frame precedes the split's
//! collective traffic on every hub→worker link, and a sub-group's result
//! frame follows all of its collective traffic on the leader→hub link.
//!
//! Each sub-group sums its members' per-request bills with one allgather
//! on the *sub*-communicator (so the bill is exactly the request's own
//! traffic, disjoint from every concurrent request), and the group leader
//! sends the result to the hub, which answers the owning client.
//!
//! # Failure model
//!
//! A request that fails inside its sub-group — a killed rank, a deadline,
//! a verifier abort — comes back through the `try_`/[`CommError`] path as
//! a structured [`RemoteError`] to the owning client *only*: abort frames
//! are confined to the failing sub-group's links, so concurrent requests
//! on disjoint sub-groups run to completion and are answered normally.
//! Because the mesh's integrity is unknown after a comm-class failure, the
//! hub then **degrades**: queued requests are answered with
//! [`crate::proto::ERR_DEGRADED`], workers are told to stand down, and
//! [`run`] returns a summary carrying the degradation reason. Client-side
//! misbehaviour (malformed frames, unknown ops, bad strategy names,
//! disconnects) never reaches the mesh at all — it is answered or dropped
//! at the hub and the server keeps serving.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use firal_comm::{comm_timeout, poll_accept, wire, CommError, CommStats, Communicator, SocketComm};
use firal_core::{dispatch_select, strategy_by_name, SelectError, SelectRequest, SelectionProblem};

use crate::proto::{
    self, MutateAck, RemoteError, Request, Response, SelectSpec, SelectionOutcome, ServerStats,
    ERR_COMM, ERR_DEGRADED, ERR_PROTOCOL, ERR_UNKNOWN_POOL,
};
use crate::sched::{plan_round, RankDemand};

/// Round frame flag: serve the carried assignments.
const FLAG_SERVE: u64 = 0;
/// Round frame flag: clean shutdown — exit with a healthy summary.
const FLAG_SHUTDOWN: u64 = 1;
/// Round frame flag: the mesh degraded — stand down immediately.
const FLAG_DEGRADED: u64 = 2;

/// How the server is told to behave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Address the hub's client listener binds (e.g. `127.0.0.1:7700`).
    pub addr: String,
    /// Queue depth that triggers a round immediately. Raising it above 1
    /// trades first-request latency for concurrency (more requests share
    /// one round, each on a smaller sub-group).
    pub min_batch: usize,
    /// How long the oldest queued request may wait before a round runs
    /// even under [`ServeConfig::min_batch`] depth.
    pub batch_wait: Duration,
    /// How long the hub waits for a sub-group leader's result frame before
    /// declaring that request (and the mesh) failed. `None` derives a
    /// default from `FIRAL_COMM_TIMEOUT` when set.
    pub result_patience: Option<Duration>,
    /// Evict a pool nobody has touched (upload, select, mutate) for this
    /// long: its blob is dropped on the hub immediately and on every
    /// worker with the next round frame, and later requests naming the
    /// handle get [`ERR_UNKNOWN_POOL`]. `None` (the default) keeps pools
    /// until an explicit `OP_DELETE_POOL` or shutdown. Pools with queued
    /// requests are never TTL-evicted.
    pub pool_ttl: Option<Duration>,
}

impl ServeConfig {
    /// A config serving on `addr` with defaults: rounds run as soon as one
    /// request is queued.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            min_batch: 1,
            batch_wait: Duration::from_millis(50),
            result_patience: None,
            pool_ttl: None,
        }
    }

    /// Replace [`ServeConfig::min_batch`].
    pub fn with_min_batch(mut self, min_batch: usize) -> Self {
        self.min_batch = min_batch.max(1);
        self
    }

    /// Replace [`ServeConfig::batch_wait`].
    pub fn with_batch_wait(mut self, wait: Duration) -> Self {
        self.batch_wait = wait;
        self
    }

    /// Replace [`ServeConfig::result_patience`].
    pub fn with_result_patience(mut self, patience: Duration) -> Self {
        self.result_patience = Some(patience);
        self
    }

    /// Replace [`ServeConfig::pool_ttl`].
    pub fn with_pool_ttl(mut self, ttl: Duration) -> Self {
        self.pool_ttl = Some(ttl);
        self
    }

    /// Effective result patience: the explicit setting, else 8× the
    /// `FIRAL_COMM_TIMEOUT` deadline (floored at 2 s) so a slow-but-alive
    /// sub-group isn't mistaken for a dead one, else 30 s.
    pub fn effective_result_patience(&self) -> Duration {
        self.result_patience
            .unwrap_or_else(|| match comm_timeout() {
                Some(d) => (d * 8).max(Duration::from_secs(2)),
                None => Duration::from_secs(30),
            })
    }
}

/// What one rank's serve loop did, returned by [`run`]. Request counters
/// are authoritative on the hub; workers count only the assignments they
/// led.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Serving rounds driven (hub) or participated in (worker).
    pub rounds: u64,
    /// Requests answered successfully.
    pub requests_ok: u64,
    /// Requests answered with a structured error.
    pub requests_err: u64,
    /// `Some(reason)` when the server wound down because the mesh
    /// degraded rather than by a clean shutdown request.
    pub degraded: Option<String>,
}

/// Why [`run`] could not keep serving: a listener-side I/O failure (hub
/// only) or a mesh failure outside any request's sub-group (the round
/// control plane itself broke).
#[derive(Debug)]
pub enum ServeError {
    /// Client listener I/O failure (bind/accept).
    Io(io::Error),
    /// Root-communicator failure in the round control plane.
    Comm(CommError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve listener I/O failure: {e}"),
            ServeError::Comm(e) => write!(f, "serve control plane failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CommError> for ServeError {
    fn from(e: CommError) -> Self {
        ServeError::Comm(e)
    }
}

/// Run the serve loop on this rank of a warm root mesh. Rank 0 becomes the
/// hub (binding [`ServeConfig::addr`]); every other rank becomes a worker.
/// Returns when a client requests shutdown (clean) or the mesh degrades.
pub fn run(comm: &SocketComm, config: &ServeConfig) -> Result<ServeSummary, ServeError> {
    if comm.rank() == 0 {
        run_hub(comm, config)
    } else {
        run_worker(comm)
    }
}

// ---------------------------------------------------------------------------
// Mesh-internal frames (hub → workers and leader → hub)
// ---------------------------------------------------------------------------

/// One request as it rides inside a round frame.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AssignFrame {
    id: u64,
    pool: u64,
    strategy: String,
    budget: usize,
    seed: u64,
    threads: usize,
    /// World ranks, ascending; `ranks[0]` is the sub-group leader.
    ranks: Vec<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RoundFrame {
    round: u64,
    flag: u64,
    /// Pools not yet shipped to the mesh: `(handle, serialized blob)`.
    pools: Vec<(u64, Vec<u8>)>,
    /// Pool mutations not yet shipped, in client-arrival order:
    /// `(handle, wire op, encoded mutation body)`. Workers replay these
    /// through the same [`proto::apply_mutation`] the hub already ran, so
    /// replicated pool state stays bitwise-identical for O(Δpool) wire.
    muts: Vec<(u64, u64, Vec<u8>)>,
    /// Pool handles deleted or TTL-evicted since the last round; workers
    /// drop the blobs after applying `pools` and `muts`.
    evict: Vec<u64>,
    assigns: Vec<AssignFrame>,
}

/// Most entries a round frame may carry per list. Far above anything the
/// scheduler can produce (assignments are bounded by the mesh size, pools
/// and mutations by client traffic between two rounds), but small enough
/// that a corrupt count fails loudly.
const MAX_ROUND_ITEMS: usize = 1 << 16;

fn encode_round(frame: &RoundFrame) -> Vec<u8> {
    let mut out = Vec::new();
    wire::write_u64(&mut out, frame.round).unwrap();
    wire::write_u64(&mut out, frame.flag).unwrap();
    wire::write_u64(&mut out, frame.pools.len() as u64).unwrap();
    for (handle, blob) in &frame.pools {
        wire::write_u64(&mut out, *handle).unwrap();
        wire::write_bytes(&mut out, blob).unwrap();
    }
    wire::write_u64(&mut out, frame.muts.len() as u64).unwrap();
    for (handle, op, body) in &frame.muts {
        wire::write_u64(&mut out, *handle).unwrap();
        wire::write_u64(&mut out, *op).unwrap();
        wire::write_bytes(&mut out, body).unwrap();
    }
    wire::write_u64(&mut out, frame.evict.len() as u64).unwrap();
    for handle in &frame.evict {
        wire::write_u64(&mut out, *handle).unwrap();
    }
    wire::write_u64(&mut out, frame.assigns.len() as u64).unwrap();
    for a in &frame.assigns {
        wire::write_u64(&mut out, a.id).unwrap();
        wire::write_u64(&mut out, a.pool).unwrap();
        wire::write_str(&mut out, &a.strategy).unwrap();
        wire::write_u64(&mut out, a.budget as u64).unwrap();
        wire::write_u64(&mut out, a.seed).unwrap();
        wire::write_u64(&mut out, a.threads as u64).unwrap();
        proto::write_indices(&mut out, &a.ranks).unwrap();
    }
    out
}

/// Read one of a round frame's list counts, validating it against both the
/// item cap and the bytes actually remaining (`min_entry` is the smallest
/// possible encoding of one entry) *before* the caller's read loop runs —
/// a corrupt count is a structured decode error, never an allocation, an
/// OOM, or a long spin against an exhausted buffer.
fn read_round_count(r: &[u8], raw: u64, what: &str, min_entry: usize) -> io::Result<usize> {
    let n = raw as usize;
    if n > MAX_ROUND_ITEMS || n.saturating_mul(min_entry) > r.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "round frame claims {n} {what} entries but only {} bytes remain",
                r.len()
            ),
        ));
    }
    Ok(n)
}

fn decode_round(bytes: &[u8]) -> io::Result<RoundFrame> {
    let mut r = bytes;
    let round = wire::read_u64(&mut r)?;
    let flag = wire::read_u64(&mut r)?;
    // Every pool entry is at least a handle + a blob length (16 bytes);
    // a mutation adds an op word (24); an assignment is five u64s plus
    // two embedded length prefixes (56).
    let raw = wire::read_u64(&mut r)?;
    let n_pools = read_round_count(r, raw, "pool", 16)?;
    let mut pools = Vec::with_capacity(n_pools);
    for _ in 0..n_pools {
        let handle = wire::read_u64(&mut r)?;
        let blob = wire::read_bytes(&mut r)?;
        if blob.len() > proto::MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "pool {handle} blob of {} bytes exceeds the request cap",
                    blob.len()
                ),
            ));
        }
        pools.push((handle, blob));
    }
    let raw = wire::read_u64(&mut r)?;
    let n_muts = read_round_count(r, raw, "mutation", 24)?;
    let mut muts = Vec::with_capacity(n_muts);
    for _ in 0..n_muts {
        let handle = wire::read_u64(&mut r)?;
        let op = wire::read_u64(&mut r)?;
        let body = wire::read_bytes(&mut r)?;
        if body.len() > proto::MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "mutation body of {} bytes for pool {handle} exceeds the request cap",
                    body.len()
                ),
            ));
        }
        muts.push((handle, op, body));
    }
    let raw = wire::read_u64(&mut r)?;
    let n_evict = read_round_count(r, raw, "eviction", 8)?;
    let mut evict = Vec::with_capacity(n_evict);
    for _ in 0..n_evict {
        evict.push(wire::read_u64(&mut r)?);
    }
    let raw = wire::read_u64(&mut r)?;
    let n_assign = read_round_count(r, raw, "assignment", 56)?;
    let mut assigns = Vec::with_capacity(n_assign);
    for _ in 0..n_assign {
        assigns.push(AssignFrame {
            id: wire::read_u64(&mut r)?,
            pool: wire::read_u64(&mut r)?,
            strategy: wire::read_str(&mut r)?,
            budget: wire::read_u64(&mut r)? as usize,
            seed: wire::read_u64(&mut r)?,
            threads: wire::read_u64(&mut r)? as usize,
            ranks: proto::read_indices(&mut r)?,
        });
    }
    if !r.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("round frame has {} trailing bytes", r.len()),
        ));
    }
    Ok(RoundFrame {
        round,
        flag,
        pools,
        muts,
        evict,
        assigns,
    })
}

/// A finished assignment as its leader reports it to the hub.
#[derive(Debug, Clone, PartialEq)]
struct OkPayload {
    selected: Vec<usize>,
    /// Slowest member's wall-clock seconds.
    seconds: f64,
    /// Sum of every member's bill for this request.
    comm: CommStats,
}

fn encode_result(id: u64, payload: &Result<OkPayload, RemoteError>) -> Vec<u8> {
    let mut out = Vec::new();
    wire::write_u64(&mut out, id).unwrap();
    match payload {
        Ok(p) => {
            wire::write_u64(&mut out, 1).unwrap();
            proto::write_indices(&mut out, &p.selected).unwrap();
            wire::write_f64s(&mut out, &[p.seconds]).unwrap();
            proto::write_stats(&mut out, &p.comm).unwrap();
        }
        Err(e) => {
            wire::write_u64(&mut out, 0).unwrap();
            wire::write_u64(&mut out, e.code).unwrap();
            wire::write_str(&mut out, proto::clip(&e.message)).unwrap();
        }
    }
    out
}

fn decode_result(bytes: &[u8]) -> io::Result<(u64, Result<OkPayload, RemoteError>)> {
    let mut r = bytes;
    let id = wire::read_u64(&mut r)?;
    let ok = wire::read_u64(&mut r)?;
    let payload = if ok == 1 {
        let selected = proto::read_indices(&mut r)?;
        let mut seconds = [0.0f64];
        wire::read_f64s_into(&mut r, &mut seconds)?;
        let comm = proto::read_stats(&mut r)?;
        Ok(OkPayload {
            selected,
            seconds: seconds[0],
            comm,
        })
    } else {
        Err(RemoteError {
            code: wire::read_u64(&mut r)?,
            message: wire::read_str(&mut r)?,
        })
    };
    if !r.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("result frame has {} trailing bytes", r.len()),
        ));
    }
    Ok((id, payload))
}

// ---------------------------------------------------------------------------
// Participant path (every rank, hub included)
// ---------------------------------------------------------------------------

/// Run this rank's share of one round: split by assignment color, run the
/// assigned request (if any), aggregate the sub-group's bill, and — on the
/// group leader — return `(succeeded, encoded result frame)`.
///
/// The outer `Err` is reserved for failures *outside* any sub-group (the
/// root-communicator split): those poison the control plane and are fatal
/// to the serve loop. Failures inside a sub-group are folded into the
/// leader's result frame and the loop continues.
fn run_assignments(
    comm: &SocketComm,
    frame: &RoundFrame,
    pools: &BTreeMap<u64, SelectionProblem<f64>>,
) -> Result<Option<(bool, Vec<u8>)>, CommError> {
    let me = comm.rank();
    let n = frame.assigns.len();
    let color = frame
        .assigns
        .iter()
        .position(|a| a.ranks.contains(&me))
        .unwrap_or(n);
    // Collective over the *root* group: unassigned ranks participate with
    // the spare color and then idle.
    let sub = comm.try_split(color, me)?;
    if color == n {
        return Ok(None);
    }
    let a = &frame.assigns[color];
    let leader = sub.rank() == 0;
    let payload = match pools.get(&a.pool) {
        None => Err(RemoteError::new(
            ERR_UNKNOWN_POOL,
            format!("pool {} was never installed on rank {me}", a.pool),
        )),
        Some(problem) => {
            let req = SelectRequest::new(a.strategy.clone(), a.budget)
                .with_seed(a.seed)
                .with_threads(a.threads);
            match dispatch_select(sub.as_ref(), problem, &req) {
                Ok(report) => {
                    // One allgather on the sub-communicator sums the bill
                    // across exactly this request's members.
                    let mine = [
                        report.comm.allreduce_calls as f64,
                        report.comm.allreduce_bytes as f64,
                        report.comm.bcast_calls as f64,
                        report.comm.bcast_bytes as f64,
                        report.comm.allgather_calls as f64,
                        report.comm.allgather_bytes as f64,
                        report.comm.time.as_nanos() as f64,
                        report.seconds,
                    ];
                    match sub.try_allgatherv_f64(&mine) {
                        Ok(all) => {
                            let mut sums = [0.0f64; 7];
                            let mut slowest = 0.0f64;
                            for member in all.chunks(8) {
                                for (s, v) in sums.iter_mut().zip(member) {
                                    *s += v;
                                }
                                slowest = slowest.max(member[7]);
                            }
                            Ok(OkPayload {
                                selected: report.selected,
                                seconds: slowest,
                                comm: CommStats {
                                    allreduce_calls: sums[0] as u64,
                                    allreduce_bytes: sums[1] as u64,
                                    bcast_calls: sums[2] as u64,
                                    bcast_bytes: sums[3] as u64,
                                    allgather_calls: sums[4] as u64,
                                    allgather_bytes: sums[5] as u64,
                                    time: Duration::from_nanos(sums[6] as u64),
                                },
                            })
                        }
                        Err(ce) => Err(RemoteError::new(ERR_COMM, ce.to_string())),
                    }
                }
                Err(e) => Err(RemoteError::from_select_error(&e)),
            }
        }
    };
    if !leader {
        return Ok(None);
    }
    let ok = payload.is_ok();
    Ok(Some((ok, encode_result(a.id, &payload))))
}

/// Bring this rank's pool map up to the hub's state: install newly
/// shipped pools, replay queued mutations in client-arrival order through
/// the same [`proto::apply_mutation`] the hub already ran, then drop
/// evicted handles. Because every rank starts from bitwise-identical
/// blobs and applies the identical op sequence, replicated pool state is
/// bitwise-identical across the mesh after every frame.
fn apply_frame(
    frame: &RoundFrame,
    pools: &mut BTreeMap<u64, SelectionProblem<f64>>,
) -> io::Result<()> {
    for (handle, blob) in &frame.pools {
        let problem = proto::decode_pool(blob).map_err(|why| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("pool {handle} failed to decode on the mesh: {why}"),
            )
        })?;
        pools.insert(*handle, problem);
    }
    for (handle, op, body) in &frame.muts {
        let bad = |why: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("mutation for pool {handle} failed on the mesh: {why}"),
            )
        };
        let (pool, mutation) = match proto::decode_request(*op, body) {
            Ok(Request::Mutate { pool, mutation }) => (pool, mutation),
            Ok(other) => return Err(bad(format!("decoded to a non-mutation request {other:?}"))),
            Err(e) => return Err(bad(e.to_string())),
        };
        if pool != *handle {
            return Err(bad(format!("body names pool {pool}")));
        }
        let problem = pools
            .get_mut(handle)
            .ok_or_else(|| bad("pool is not installed here".into()))?;
        proto::apply_mutation(problem, &mutation).map_err(bad)?;
    }
    for handle in &frame.evict {
        pools.remove(handle);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Worker loop (ranks 1..p)
// ---------------------------------------------------------------------------

fn run_worker(comm: &SocketComm) -> Result<ServeSummary, ServeError> {
    let mut summary = ServeSummary::default();
    let mut pools: BTreeMap<u64, SelectionProblem<f64>> = BTreeMap::new();
    loop {
        // Idle between rounds: wait indefinitely for the hub's next frame
        // (a dead hub surfaces as EOF, a degraded one as a stale abort).
        let bytes = match comm.try_recv_bytes(0, None) {
            Ok(b) => b,
            Err(CommError::RemoteAbort { origin, reason, .. }) => {
                summary.degraded = Some(format!("abort from rank {origin}: {reason}"));
                return Ok(summary);
            }
            Err(e) => return Err(e.into()),
        };
        let frame = decode_round(&bytes)?;
        match frame.flag {
            FLAG_SHUTDOWN => return Ok(summary),
            FLAG_DEGRADED => {
                summary.degraded = Some("hub reported a degraded mesh".into());
                return Ok(summary);
            }
            _ => {}
        }
        summary.rounds += 1;
        apply_frame(&frame, &mut pools)?;
        if let Some((ok, result)) = run_assignments(comm, &frame, &pools)? {
            if ok {
                summary.requests_ok += 1;
            } else {
                summary.requests_err += 1;
            }
            comm.try_send_bytes(0, &result)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Hub loop (rank 0)
// ---------------------------------------------------------------------------

struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
    alive: bool,
}

impl ClientConn {
    fn respond(&mut self, resp: &Response) {
        if !self.alive {
            return;
        }
        let _ = self.stream.set_nonblocking(false);
        let ok =
            proto::write_response(&mut self.stream, resp).is_ok() && self.stream.flush().is_ok();
        let _ = self.stream.set_nonblocking(true);
        if !ok {
            self.alive = false;
        }
    }
}

struct Pending {
    id: u64,
    client: usize,
    spec: SelectSpec,
    since: Instant,
}

enum Event {
    Req(usize, Request),
    BadReq(usize, RemoteError),
    Fatal(usize, String),
}

/// Drain whatever a client has sent: grow its buffer, peel complete
/// frames, classify each. EOF with a partial frame buffered is a truncated
/// request — the client is gone, so there is nobody to answer.
fn pump_client(idx: usize, c: &mut ClientConn, events: &mut Vec<Event>) {
    let mut tmp = [0u8; 8192];
    loop {
        match c.stream.read(&mut tmp) {
            Ok(0) => {
                c.alive = false;
                break;
            }
            Ok(n) => c.buf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.alive = false;
                break;
            }
        }
    }
    loop {
        match proto::try_parse_frame(&c.buf) {
            Ok(Some((op, body, used))) => {
                c.buf.drain(..used);
                events.push(match proto::decode_request(op, &body) {
                    Ok(req) => Event::Req(idx, req),
                    Err(e) => Event::BadReq(idx, e),
                });
            }
            Ok(None) => break,
            Err(fe) => {
                events.push(Event::Fatal(idx, fe.to_string()));
                break;
            }
        }
    }
}

fn validate_spec(
    spec: &SelectSpec,
    problems: &BTreeMap<u64, SelectionProblem<f64>>,
) -> Result<(), RemoteError> {
    if strategy_by_name::<f64>(&spec.strategy).is_none() {
        return Err(RemoteError::from_select_error(
            &SelectError::UnknownStrategy {
                name: spec.strategy.clone(),
            },
        ));
    }
    let problem = problems.get(&spec.pool).ok_or_else(|| {
        RemoteError::new(
            ERR_UNKNOWN_POOL,
            format!("pool handle {} was never uploaded", spec.pool),
        )
    })?;
    if spec.budget == 0 {
        return Err(RemoteError::from_select_error(&SelectError::ZeroBudget));
    }
    if problem.pool_size() == 0 {
        return Err(RemoteError::from_select_error(&SelectError::EmptyPool));
    }
    if spec.budget > problem.pool_size() {
        return Err(RemoteError::from_select_error(
            &SelectError::BudgetTooLarge {
                budget: spec.budget,
                pool: problem.pool_size(),
            },
        ));
    }
    Ok(())
}

struct Hub<'a> {
    comm: &'a SocketComm,
    config: &'a ServeConfig,
    clients: Vec<ClientConn>,
    problems: BTreeMap<u64, SelectionProblem<f64>>,
    /// Uploaded blobs not yet shipped to the mesh.
    unshipped: Vec<(u64, Vec<u8>)>,
    /// Applied-but-unshipped mutations: `(handle, op, encoded body)`.
    unshipped_muts: Vec<(u64, u64, Vec<u8>)>,
    /// Deleted/TTL-evicted handles the mesh has not been told about yet.
    unshipped_evict: Vec<u64>,
    /// When each live pool was last uploaded, selected from, or mutated —
    /// the clock [`ServeConfig::pool_ttl`] eviction runs against.
    last_used: BTreeMap<u64, Instant>,
    pools_evicted: u64,
    queue: Vec<Pending>,
    next_pool: u64,
    next_id: u64,
    round: u64,
    requests_ok: u64,
    requests_err: u64,
    cumulative: CommStats,
    shutdown_acks: Vec<usize>,
    degraded: Option<String>,
}

fn run_hub(comm: &SocketComm, config: &ServeConfig) -> Result<ServeSummary, ServeError> {
    let listener = TcpListener::bind(&config.addr)?;
    let mut hub = Hub {
        comm,
        config,
        clients: Vec::new(),
        problems: BTreeMap::new(),
        unshipped: Vec::new(),
        unshipped_muts: Vec::new(),
        unshipped_evict: Vec::new(),
        last_used: BTreeMap::new(),
        pools_evicted: 0,
        queue: Vec::new(),
        next_pool: 1,
        next_id: 1,
        round: 0,
        requests_ok: 0,
        requests_err: 0,
        cumulative: CommStats::default(),
        shutdown_acks: Vec::new(),
        degraded: None,
    };
    loop {
        let shutting_down = !hub.shutdown_acks.is_empty();
        if !shutting_down {
            while let Some(stream) = poll_accept(&listener)? {
                stream.set_nonblocking(true)?;
                hub.clients.push(ClientConn {
                    stream,
                    buf: Vec::new(),
                    alive: true,
                });
            }
            hub.pump_and_handle();
            hub.sweep_ttl();
        }
        let overdue = hub
            .queue
            .first()
            .is_some_and(|p| p.since.elapsed() >= hub.config.batch_wait);
        let run_now = !hub.queue.is_empty()
            && (shutting_down || hub.queue.len() >= hub.config.min_batch || overdue);
        if run_now {
            hub.run_round()?;
            if hub.degraded.is_some() {
                return Ok(hub.wind_down(FLAG_DEGRADED));
            }
            continue;
        }
        if shutting_down {
            return Ok(hub.wind_down(FLAG_SHUTDOWN));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

impl Hub<'_> {
    fn pump_and_handle(&mut self) {
        let mut events = Vec::new();
        for (idx, c) in self.clients.iter_mut().enumerate() {
            if c.alive {
                pump_client(idx, c, &mut events);
            }
        }
        for event in events {
            match event {
                Event::Req(idx, Request::UploadPool(blob)) => {
                    // decode_request already validated the blob; decoding
                    // again here materializes the hub's own copy.
                    let problem =
                        proto::decode_pool(&blob).expect("decode_request validated this pool blob");
                    let handle = self.next_pool;
                    self.next_pool += 1;
                    self.problems.insert(handle, problem);
                    self.unshipped.push((handle, blob));
                    self.last_used.insert(handle, Instant::now());
                    self.clients[idx].respond(&Response::Pool { handle });
                }
                Event::Req(idx, Request::Select(spec)) => {
                    match validate_spec(&spec, &self.problems) {
                        Ok(()) => {
                            let id = self.next_id;
                            self.next_id += 1;
                            self.last_used.insert(spec.pool, Instant::now());
                            self.queue.push(Pending {
                                id,
                                client: idx,
                                spec,
                                since: Instant::now(),
                            });
                        }
                        Err(e) => {
                            self.requests_err += 1;
                            self.clients[idx].respond(&Response::Error(e));
                        }
                    }
                }
                Event::Req(idx, Request::Stats) => {
                    let stats = ServerStats {
                        rounds: self.round,
                        requests_ok: self.requests_ok,
                        requests_err: self.requests_err,
                        pools_live: self.problems.len() as u64,
                        pools_evicted: self.pools_evicted,
                        comm: self.cumulative,
                    };
                    self.clients[idx].respond(&Response::Stats(stats));
                }
                Event::Req(idx, Request::Mutate { pool, mutation }) => {
                    let outcome = match self.problems.get_mut(&pool) {
                        None => Err(RemoteError::new(
                            ERR_UNKNOWN_POOL,
                            format!("pool handle {pool} was never uploaded (or was deleted)"),
                        )),
                        Some(problem) => match proto::apply_mutation(problem, &mutation) {
                            Ok(()) => Ok(MutateAck {
                                handle: pool,
                                pool_size: problem.pool_size(),
                                labeled: problem.labeled_x.rows(),
                            }),
                            Err(why) => Err(RemoteError::new(
                                ERR_PROTOCOL,
                                format!("mutation rejected: {why}"),
                            )),
                        },
                    };
                    match outcome {
                        Ok(ack) => {
                            // The hub's copy is already mutated; queue the
                            // encoded delta so the next round frame brings
                            // every worker to the same state.
                            self.last_used.insert(pool, Instant::now());
                            self.unshipped_muts.push((
                                pool,
                                mutation.op(),
                                proto::encode_mutation(pool, &mutation),
                            ));
                            self.clients[idx].respond(&Response::Mutated(ack));
                        }
                        Err(e) => {
                            self.requests_err += 1;
                            self.clients[idx].respond(&Response::Error(e));
                        }
                    }
                }
                Event::Req(idx, Request::DeletePool { pool }) => {
                    if self.evict_pool(pool) {
                        self.clients[idx].respond(&Response::Deleted { handle: pool });
                    } else {
                        self.requests_err += 1;
                        self.clients[idx].respond(&Response::Error(RemoteError::new(
                            ERR_UNKNOWN_POOL,
                            format!(
                                "pool handle {pool} was never uploaded (or was already deleted)"
                            ),
                        )));
                    }
                }
                Event::Req(idx, Request::Shutdown) => {
                    self.shutdown_acks.push(idx);
                }
                Event::BadReq(idx, e) => {
                    self.requests_err += 1;
                    self.clients[idx].respond(&Response::Error(e));
                }
                Event::Fatal(idx, why) => {
                    self.requests_err += 1;
                    self.clients[idx]
                        .respond(&Response::Error(RemoteError::new(ERR_PROTOCOL, why)));
                    self.clients[idx].alive = false;
                }
            }
        }
        // Actively close dead connections so the peer observes EOF rather
        // than a socket that lingers until its own read deadline. Slots are
        // kept (queue entries and shutdown acks index into `clients`).
        for c in self.clients.iter_mut().filter(|c| !c.alive) {
            let _ = c.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Drop a pool everywhere: the hub's copy and clock entry go now, the
    /// workers' copies with the next round frame. A pool the mesh never
    /// saw (still unshipped) is simply forgotten — no eviction rides the
    /// wire, which is what keeps a rapid upload/delete churn at zero blob
    /// growth. Pending mutations of the pool are dropped alongside it.
    /// Returns `false` if the handle is unknown.
    fn evict_pool(&mut self, handle: u64) -> bool {
        if self.problems.remove(&handle).is_none() {
            return false;
        }
        self.last_used.remove(&handle);
        self.pools_evicted += 1;
        let never_shipped = self.unshipped.iter().any(|(h, _)| *h == handle);
        self.unshipped.retain(|(h, _)| *h != handle);
        self.unshipped_muts.retain(|(h, _, _)| *h != handle);
        if !never_shipped {
            self.unshipped_evict.push(handle);
        }
        true
    }

    /// Evict every pool whose [`ServeConfig::pool_ttl`] clock has run out,
    /// skipping pools a queued request still references.
    fn sweep_ttl(&mut self) {
        let Some(ttl) = self.config.pool_ttl else {
            return;
        };
        let expired: Vec<u64> = self
            .last_used
            .iter()
            .filter(|(_, touched)| touched.elapsed() >= ttl)
            .map(|(&h, _)| h)
            .collect();
        for handle in expired {
            if self.queue.iter().any(|p| p.spec.pool == handle) {
                continue;
            }
            self.evict_pool(handle);
        }
    }

    fn run_round(&mut self) -> Result<(), ServeError> {
        self.round += 1;
        let demands: Vec<RankDemand> = self
            .queue
            .iter()
            .map(|p| RankDemand {
                id: p.id,
                want_ranks: p.spec.max_ranks,
            })
            .collect();
        let idle: Vec<usize> = (0..self.comm.size()).collect();
        let plan = plan_round(&idle, &demands);
        // The FIFO policy makes the assignments a prefix of the queue.
        let running: Vec<Pending> = self.queue.drain(..plan.assignments.len()).collect();
        let assigns: Vec<AssignFrame> = plan
            .assignments
            .iter()
            .zip(&running)
            .map(|(a, p)| AssignFrame {
                id: a.id,
                pool: p.spec.pool,
                strategy: p.spec.strategy.clone(),
                budget: p.spec.budget,
                seed: p.spec.seed,
                threads: p.spec.threads,
                ranks: a.ranks.clone(),
            })
            .collect();
        let frame = RoundFrame {
            round: self.round,
            flag: FLAG_SERVE,
            pools: std::mem::take(&mut self.unshipped),
            muts: std::mem::take(&mut self.unshipped_muts),
            evict: std::mem::take(&mut self.unshipped_evict),
            assigns,
        };
        let bytes = encode_round(&frame);
        for r in 1..self.comm.size() {
            self.comm.try_send_bytes(r, &bytes)?;
        }
        // The hub is always inside assignment 0 (it holds the lowest idle
        // rank) and, as its lowest world rank, leads it.
        let mine = run_assignments(self.comm, &frame, &self.problems)?;
        let patience = self.config.effective_result_patience();
        for (i, a) in frame.assigns.iter().enumerate() {
            let outcome = if a.ranks[0] == 0 {
                let (_, result) = mine
                    .clone()
                    .expect("the hub leads the assignment containing rank 0");
                decode_result(&result)
            } else {
                match self.comm.try_recv_bytes(a.ranks[0], Some(patience)) {
                    Ok(b) => decode_result(&b),
                    Err(ce) => Ok((
                        a.id,
                        Err(RemoteError::new(
                            ERR_COMM,
                            format!(
                                "no result from the sub-group leader (rank {}): {ce}",
                                a.ranks[0]
                            ),
                        )),
                    )),
                }
            };
            let payload = match outcome {
                Ok((id, payload)) if id == a.id => payload,
                Ok((id, _)) => Err(RemoteError::new(
                    ERR_COMM,
                    format!(
                        "result for request {id} arrived where {} was expected",
                        a.id
                    ),
                )),
                Err(e) => Err(RemoteError::new(
                    ERR_COMM,
                    format!("undecodable result frame: {e}"),
                )),
            };
            let client = running[i].client;
            match payload {
                Ok(p) => {
                    self.requests_ok += 1;
                    self.cumulative.merge(&p.comm);
                    self.clients[client].respond(&Response::Select(SelectionOutcome {
                        round: frame.round,
                        group: a.ranks.clone(),
                        selected: p.selected,
                        seconds: p.seconds,
                        comm: p.comm,
                    }));
                }
                Err(e) => {
                    self.requests_err += 1;
                    if e.code == ERR_COMM && self.degraded.is_none() {
                        self.degraded = Some(e.message.clone());
                    }
                    self.clients[client].respond(&Response::Error(e));
                }
            }
        }
        Ok(())
    }

    /// Final frame to the mesh plus client goodbyes. Send failures are
    /// ignored: on the degraded path some links are already dead, and the
    /// harness-level grace kill is the backstop for unreachable workers.
    fn wind_down(&mut self, flag: u64) -> ServeSummary {
        let reason = self.degraded.clone();
        if let Some(why) = &reason {
            let queued: Vec<(usize, u64)> = self.queue.iter().map(|p| (p.client, p.id)).collect();
            for (client, id) in queued {
                self.requests_err += 1;
                self.clients[client].respond(&Response::Error(RemoteError::new(
                    ERR_DEGRADED,
                    format!("request {id} dropped: the mesh degraded ({why})"),
                )));
            }
            self.queue.clear();
        }
        let bytes = encode_round(&RoundFrame {
            round: self.round,
            flag,
            pools: Vec::new(),
            muts: Vec::new(),
            evict: Vec::new(),
            assigns: Vec::new(),
        });
        for r in 1..self.comm.size() {
            let _ = self.comm.try_send_bytes(r, &bytes);
        }
        let acks = std::mem::take(&mut self.shutdown_acks);
        for idx in acks {
            self.clients[idx].respond(&Response::Shutdown);
        }
        ServeSummary {
            rounds: self.round,
            requests_ok: self.requests_ok,
            requests_err: self.requests_err,
            degraded: reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_frames_roundtrip() {
        let frame = RoundFrame {
            round: 4,
            flag: FLAG_SERVE,
            pools: vec![(2, vec![1, 2, 3]), (3, Vec::new())],
            muts: vec![(2, proto::OP_REMOVE_POINTS, vec![7, 7, 7])],
            evict: vec![9, 12],
            assigns: vec![
                AssignFrame {
                    id: 10,
                    pool: 2,
                    strategy: "entropy".into(),
                    budget: 5,
                    seed: 9,
                    threads: 0,
                    ranks: vec![0, 1],
                },
                AssignFrame {
                    id: 11,
                    pool: 3,
                    strategy: "random".into(),
                    budget: 2,
                    seed: 0,
                    threads: 1,
                    ranks: vec![2, 3],
                },
            ],
        };
        assert_eq!(decode_round(&encode_round(&frame)).unwrap(), frame);
        assert!(decode_round(&encode_round(&frame)[..10]).is_err());
    }

    #[test]
    fn corrupt_round_counts_are_structured_errors_not_allocations() {
        // A frame claiming 2^40 pools backed by no bytes must fail before
        // any loop or allocation runs. Same for each later list.
        for lists_before in 0..4usize {
            let mut bytes = Vec::new();
            wire::write_u64(&mut bytes, 1).unwrap(); // round
            wire::write_u64(&mut bytes, FLAG_SERVE).unwrap();
            for _ in 0..lists_before {
                wire::write_u64(&mut bytes, 0).unwrap(); // an empty list
            }
            wire::write_u64(&mut bytes, 1u64 << 40).unwrap(); // corrupt count
            let err = decode_round(&bytes).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("entries"), "{err}");
        }

        // A pool blob length above the request cap is rejected even when
        // the count itself is plausible.
        let mut bytes = Vec::new();
        wire::write_u64(&mut bytes, 1).unwrap();
        wire::write_u64(&mut bytes, FLAG_SERVE).unwrap();
        wire::write_u64(&mut bytes, 1).unwrap(); // one pool
        wire::write_u64(&mut bytes, 5).unwrap(); // handle
        wire::write_u64(&mut bytes, (proto::MAX_REQUEST_BYTES as u64) + 1).unwrap();
        assert!(decode_round(&bytes).is_err());
    }

    #[test]
    fn apply_frame_replays_mutations_and_evictions_in_order() {
        let pool = SelectionProblem::new(
            firal_linalg::Matrix::from_vec(3, 2, (0..6).map(|i| i as f64).collect()),
            firal_linalg::Matrix::from_vec(3, 2, vec![0.25; 6]),
            firal_linalg::Matrix::from_vec(1, 2, vec![1.0; 2]),
            firal_linalg::Matrix::from_vec(1, 2, vec![0.5; 2]),
            3,
        );
        let mutation = proto::PoolMutation::Label { indices: vec![0] };
        let frame = RoundFrame {
            round: 1,
            flag: FLAG_SERVE,
            pools: vec![
                (4, proto::encode_pool(&pool)),
                (5, proto::encode_pool(&pool)),
            ],
            muts: vec![(4, mutation.op(), proto::encode_mutation(4, &mutation))],
            evict: vec![5],
            assigns: Vec::new(),
        };
        let mut pools = BTreeMap::new();
        apply_frame(&frame, &mut pools).unwrap();
        assert!(!pools.contains_key(&5), "evicted pool must be dropped");
        let p = &pools[&4];
        assert_eq!(p.pool_size(), 2);
        assert_eq!(p.labeled_x.rows(), 2);
        assert_eq!(p.labeled_x.row(1), &[0.0, 1.0]);

        // A mutation naming a pool that is not installed is a hard error
        // (the hub validated it, so this means the mesh desynced).
        let bad = RoundFrame {
            round: 2,
            flag: FLAG_SERVE,
            pools: Vec::new(),
            muts: vec![(99, mutation.op(), proto::encode_mutation(99, &mutation))],
            evict: Vec::new(),
            assigns: Vec::new(),
        };
        assert!(apply_frame(&bad, &mut pools).is_err());
    }

    #[test]
    fn result_frames_roundtrip_both_arms() {
        let ok = Ok(OkPayload {
            selected: vec![5, 1, 9],
            seconds: 0.125,
            comm: CommStats {
                allreduce_calls: 4,
                allreduce_bytes: 320,
                bcast_calls: 1,
                bcast_bytes: 8,
                allgather_calls: 2,
                allgather_bytes: 64,
                time: Duration::from_nanos(777),
            },
        });
        let (id, back) = decode_result(&encode_result(7, &ok)).unwrap();
        assert_eq!((id, back), (7, ok));

        let err = Err(RemoteError::new(ERR_COMM, "rank 3 died"));
        let (id, back) = decode_result(&encode_result(8, &err)).unwrap();
        assert_eq!((id, back), (8, err));
    }

    #[test]
    fn oversized_error_messages_are_clipped_not_fatal() {
        let err = Err(RemoteError::new(ERR_COMM, "x".repeat(10_000)));
        let (_, back) = decode_result(&encode_result(1, &err)).unwrap();
        match back {
            Err(e) => assert_eq!(e.message.len(), wire::MAX_WIRE_STR),
            Ok(_) => panic!("expected the error arm"),
        }
    }

    #[test]
    fn spec_validation_catches_the_whole_taxonomy_before_the_mesh() {
        let mut problems = BTreeMap::new();
        problems.insert(
            1u64,
            SelectionProblem::new(
                firal_linalg::Matrix::<f64>::zeros(6, 2),
                firal_linalg::Matrix::zeros(6, 2),
                firal_linalg::Matrix::zeros(2, 2),
                firal_linalg::Matrix::zeros(2, 2),
                3,
            ),
        );
        let base = SelectSpec {
            pool: 1,
            strategy: "entropy".into(),
            budget: 3,
            seed: 0,
            threads: 0,
            max_ranks: 0,
        };
        assert!(validate_spec(&base, &problems).is_ok());

        let mut bad = base.clone();
        bad.strategy = "no-such-thing".into();
        assert_eq!(
            validate_spec(&bad, &problems).unwrap_err().code,
            proto::ERR_UNKNOWN_STRATEGY
        );

        let mut bad = base.clone();
        bad.pool = 99;
        assert_eq!(
            validate_spec(&bad, &problems).unwrap_err().code,
            ERR_UNKNOWN_POOL
        );

        let mut bad = base.clone();
        bad.budget = 0;
        assert_eq!(
            validate_spec(&bad, &problems).unwrap_err().code,
            proto::ERR_ZERO_BUDGET
        );

        let mut bad = base;
        bad.budget = 100;
        assert_eq!(
            validate_spec(&bad, &problems).unwrap_err().code,
            proto::ERR_BUDGET_TOO_LARGE
        );
    }
}
