//! Active-learning-as-a-service: a persistent, multi-tenant selection
//! server held open over a warm rank mesh.
//!
//! `spmd_launch serve` (in `firal-bench`) wires `p` [`SocketComm`] ranks
//! into a mesh once and then keeps them hot: rank 0 listens for selection
//! clients while the mesh idles, and every batch of client requests is
//! carved onto **disjoint sub-communicators** (`Communicator::split`) so
//! independent requests run concurrently without sharing collectives —
//! the serving-layer payoff of the strategy determinism contract (selected
//! indices are identical at any rank count) and of the fault-tolerant
//! `try_`/[`CommError`] collectives: one bad request aborts its own
//! sub-group, answers its own client with a structured error, and the
//! server keeps serving.
//!
//! * [`proto`] — the length-framed client protocol (pool upload, select,
//!   stats, shutdown, plus the O(Δpool) pool-mutation ops
//!   add-points/remove-points/label and delete-pool) with a pure
//!   incremental parser and the `ERR_*` error taxonomy;
//! * [`sched`] — the pure round scheduler mapping a request queue onto
//!   idle ranks (disjointness and determinism are property-tested);
//! * [`server`] — the hub/worker round loops ([`run`]);
//! * [`client`] — the blocking [`ServeClient`] used by the load generator
//!   and the test suites.
//!
//! The repo-root `ARCHITECTURE.md` ("Serving layer") documents the round
//! protocol, the scheduler policy, and the failure-model delta against
//! the plain SPMD path.
//!
//! [`SocketComm`]: firal_comm::SocketComm
//! [`CommError`]: firal_comm::CommError

#![deny(missing_docs)]

pub mod client;
pub mod proto;
pub mod sched;
pub mod server;

pub use client::{ClientError, ServeClient};
pub use proto::{
    MutateAck, PoolMutation, RemoteError, Request, Response, SelectSpec, SelectionOutcome,
    ServerStats,
};
pub use sched::{plan_round, Assignment, RankDemand, RoundPlan};
pub use server::{run, ServeConfig, ServeError, ServeSummary};
